package pei_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"pimsim/pei"
)

func TestJobSpecNormalizeInfersKindAndDefaults(t *testing.T) {
	spec, _, err := pei.JobSpec{Workload: "bfs"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != pei.JobWorkload || spec.Size != "small" || spec.Mode != "locality" ||
		spec.Scale != 64 || spec.Threads <= 0 {
		t.Fatalf("normalized: %+v", spec)
	}

	espec, _, err := pei.JobSpec{Experiment: "sec76"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if espec.Kind != pei.JobExperiment || espec.Experiment != "sec7.6" {
		t.Fatalf("alias not canonicalized: %+v", espec)
	}
	if espec.OpBudget != 60_000 || espec.Pairs != 40 || len(espec.Workloads) != 10 {
		t.Fatalf("experiment defaults: %+v", espec)
	}
}

func TestJobSpecNormalizeRejectsInvalid(t *testing.T) {
	bad := []pei.JobSpec{
		{},
		{Workload: "bfs", Experiment: "fig2"},
		{Workload: "zzz"},
		{Experiment: "fig99"},
		{Workload: "bfs", Size: "tiny"},
		{Workload: "bfs", Mode: "quantum"},
		{Workload: "bfs", Config: "gigantic"},
		{Workload: "bfs", Verify: true, OpBudget: 100},
		{Experiment: "fig6", Workloads: []string{"nope"}},
		{Workload: "bfs", Overrides: json.RawMessage(`{"Cores": -3}`)},
		{Workload: "bfs", Kernel: "warp-drive"},
	}
	for _, s := range bad {
		if _, _, err := s.Normalize(); err == nil {
			t.Errorf("spec %+v should not normalize", s)
		}
	}
}

func TestJobSpecDigestStability(t *testing.T) {
	a, err := pei.JobSpec{Workload: "bfs"}.Digest()
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the defaults yields the same digest.
	b, err := pei.JobSpec{
		Kind: pei.JobWorkload, Workload: "bfs", Size: "small", Mode: "locality-aware",
		Config: "scaled", Scale: 64,
	}.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent specs digest differently:\n%s\n%s", a, b)
	}
	// Overrides that restate the preset collapse too (the digest hashes
	// the resolved config).
	c, err := pei.JobSpec{Workload: "bfs", Overrides: json.RawMessage(`{}`)}.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatal("no-op overrides changed the digest")
	}
	// The execution engine cannot change results, so it is not part of
	// job identity: kernel knobs must not split the cache.
	k, err := pei.JobSpec{Workload: "bfs", Kernel: "pdes", KernelWorkers: 8}.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if a != k {
		t.Fatal("kernel selection changed the digest")
	}

	for _, different := range []pei.JobSpec{
		{Workload: "bfs", Mode: "pim"},
		{Workload: "bfs", Scale: 128},
		{Workload: "bfs", Seed: 1},
		{Workload: "pr"},
		{Workload: "bfs", Config: "baseline"},
		{Workload: "bfs", Overrides: json.RawMessage(`{"Cores": 2}`)},
	} {
		d, err := different.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d == a {
			t.Errorf("spec %+v should digest differently", different)
		}
	}
}

func TestRunJobWorkloadDeterministic(t *testing.T) {
	spec := pei.JobSpec{Workload: "bfs", Scale: 4096, OpBudget: 2000}
	run := func() string {
		var buf bytes.Buffer
		if err := pei.RunJob(context.Background(), spec, &buf, pei.RunJobOptions{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	if !strings.Contains(first, "cycles") || !strings.Contains(first, "workload        bfs") {
		t.Fatalf("unexpected report:\n%s", first)
	}
	if second := run(); second != first {
		t.Fatalf("reports differ:\n%s\n---\n%s", first, second)
	}
}

func TestRunJobExperimentEmitsProgress(t *testing.T) {
	spec := pei.JobSpec{Experiment: "fig6", Scale: 2048, OpBudget: 1000, Workloads: []string{"hg"}}
	var buf bytes.Buffer
	var events []pei.JobProgress
	err := pei.RunJob(context.Background(), spec, &buf, pei.RunJobOptions{
		Parallelism: 1,
		Progress:    func(p pei.JobProgress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatalf("missing table:\n%s", buf.String())
	}
	starts, dones := 0, 0
	for _, ev := range events {
		if ev.Cell == "" {
			t.Fatalf("event without cell: %+v", ev)
		}
		if ev.Done {
			dones++
			if ev.Cycles <= 0 {
				t.Fatalf("done event without cycles: %+v", ev)
			}
		} else {
			starts++
		}
	}
	if starts == 0 || starts != dones {
		t.Fatalf("unbalanced progress events: %d starts, %d dones", starts, dones)
	}
}

func TestRunJobCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := pei.RunJob(ctx, pei.JobSpec{Workload: "bfs", Scale: 4096}, &buf, pei.RunJobOptions{})
	if err == nil {
		t.Fatal("cancelled job should fail")
	}
}
