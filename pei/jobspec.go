package pei

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pimsim/internal/harness"
	"pimsim/internal/machine"
	"pimsim/internal/workloads"
)

// ParseMode converts a mode name ("host", "pim", "locality", "ideal"
// and common aliases) into a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "host", "host-only":
		return HostOnly, nil
	case "pim", "pim-only":
		return PIMOnly, nil
	case "locality", "locality-aware", "la":
		return LocalityAware, nil
	case "ideal", "ideal-host":
		return IdealHost, nil
	}
	return 0, fmt.Errorf("pei: unknown mode %q (host|pim|locality|ideal)", s)
}

// ModeName returns the canonical short name ParseMode accepts.
func ModeName(m Mode) string {
	switch m {
	case HostOnly:
		return "host"
	case PIMOnly:
		return "pim"
	case LocalityAware:
		return "locality"
	default:
		return "ideal"
	}
}

// ParseSize converts "small"/"medium"/"large" into a Size.
func ParseSize(s string) (Size, error) { return workloads.ParseSize(strings.ToLower(s)) }

// Job kinds.
const (
	JobExperiment = "experiment"
	JobWorkload   = "workload"
)

// JobSpec is a serializable description of one simulation job: either a
// named experiment sweep (everything Reproduce runs — figures and
// ablations) or a single-workload run (what peisim does). It is the
// submission payload of peiserved's POST /v1/jobs and the unit the
// result cache is keyed on; see Digest.
type JobSpec struct {
	// Kind is JobExperiment or JobWorkload. Normalize infers it when
	// empty from whichever of Experiment/Workload is set.
	Kind string `json:"kind,omitempty"`

	// Experiment names a registered experiment (see Experiments), e.g.
	// "fig2" or "all". Experiment jobs render the same tables as
	// peibench.
	Experiment string `json:"experiment,omitempty"`

	// Workload names one of the paper's ten workloads for a
	// single-machine run; Size, Mode, Threads, Seed, and Verify apply
	// only to workload jobs.
	Workload string `json:"workload,omitempty"`
	Size     string `json:"size,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Verify   bool   `json:"verify,omitempty"`

	// Config picks the machine preset: "scaled" (default) or
	// "baseline" (the paper's Table 2 machine). Overrides, if present,
	// is a JSON object of Config field overrides layered on top.
	Config    string          `json:"config,omitempty"`
	Overrides json.RawMessage `json:"overrides,omitempty"`

	// Scale divides the Table 3 input sizes (default 64); OpBudget
	// bounds per-thread generated ops (default 60000 for experiment
	// jobs, 0 = run to completion for workload jobs); Pairs is the
	// fig9 mix count (default 40); Workloads optionally restricts
	// experiment jobs to a workload subset.
	Scale     int      `json:"scale,omitempty"`
	OpBudget  int64    `json:"budget,omitempty"`
	Pairs     int      `json:"pairs,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	// Kernel selects the event-execution engine ("seq" or "pdes") and
	// KernelWorkers the pdes epoch worker count. Both kernels produce
	// byte-identical output, so — like Parallelism — these are execution
	// knobs, not job identity: Digest excludes them, and a seq and a
	// pdes submission of the same job share one cache entry.
	Kernel        string `json:"kernel,omitempty"`
	KernelWorkers int    `json:"kernel_workers,omitempty"`
}

// validExperiment reports whether name is runnable (registry names,
// aliases, and "all"), returning the canonical spelling.
func validExperiment(name string) (string, bool) {
	if canonical, ok := experimentAliases[name]; ok {
		name = canonical
	}
	for _, e := range experiments {
		if e.name == name {
			return name, true
		}
	}
	if name == "all" {
		return name, true
	}
	return name, false
}

// ResolveConfig builds the machine config the spec describes: the named
// preset with Overrides layered on top, validated.
func (s JobSpec) ResolveConfig() (*Config, error) {
	var cfg *Config
	switch s.Config {
	case "", "scaled":
		cfg = ScaledConfig()
	case "baseline", "full":
		cfg = BaselineConfig()
	default:
		return nil, fmt.Errorf("pei: unknown config preset %q (scaled|baseline)", s.Config)
	}
	if len(s.Overrides) > 0 {
		if err := json.Unmarshal(s.Overrides, cfg); err != nil {
			return nil, fmt.Errorf("pei: config overrides: %w", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Normalize validates the spec and returns a canonical copy: kind
// inferred, names canonicalized and checked against the registries,
// defaults filled in (including Threads, resolved against the config's
// core count). Two specs that normalize identically describe the same
// simulation. The resolved config is returned alongside so callers
// (Digest, RunJob) resolve it exactly once.
func (s JobSpec) Normalize() (JobSpec, *Config, error) {
	cfg, err := s.ResolveConfig()
	if err != nil {
		return s, nil, err
	}
	if s.Kind == "" {
		switch {
		case s.Experiment != "" && s.Workload == "":
			s.Kind = JobExperiment
		case s.Workload != "" && s.Experiment == "":
			s.Kind = JobWorkload
		default:
			return s, nil, fmt.Errorf("pei: job must set exactly one of experiment or workload")
		}
	}
	if s.Config == "" {
		s.Config = "scaled"
	} else if s.Config == "full" {
		s.Config = "baseline"
	}
	if s.Scale <= 0 {
		s.Scale = 64
	}
	if km, err := machine.ParseKernelMode(s.Kernel); err != nil {
		return s, nil, err
	} else if s.Kernel != "" {
		s.Kernel = km.String()
	}
	switch s.Kind {
	case JobExperiment:
		if s.Workload != "" {
			return s, nil, fmt.Errorf("pei: experiment job cannot also set a workload")
		}
		canonical, ok := validExperiment(s.Experiment)
		if !ok {
			return s, nil, fmt.Errorf("pei: unknown experiment %q (valid: %s)", s.Experiment, strings.Join(Experiments(), ", "))
		}
		s.Experiment = canonical
		if s.OpBudget <= 0 {
			s.OpBudget = 60_000
		}
		if s.Pairs <= 0 {
			s.Pairs = 40
		}
		if len(s.Workloads) == 0 {
			s.Workloads = append([]string(nil), workloads.Names...)
		}
		for _, name := range s.Workloads {
			if !validWorkload(name) {
				return s, nil, fmt.Errorf("pei: unknown workload %q (valid: %s)", name, strings.Join(WorkloadNames, ", "))
			}
		}
	case JobWorkload:
		if s.Experiment != "" {
			return s, nil, fmt.Errorf("pei: workload job cannot also set an experiment")
		}
		if !validWorkload(s.Workload) {
			return s, nil, fmt.Errorf("pei: unknown workload %q (valid: %s)", s.Workload, strings.Join(WorkloadNames, ", "))
		}
		if s.Size == "" {
			s.Size = "small"
		}
		size, err := ParseSize(s.Size)
		if err != nil {
			return s, nil, err
		}
		s.Size = size.String()
		if s.Mode == "" {
			s.Mode = "locality"
		}
		mode, err := ParseMode(s.Mode)
		if err != nil {
			return s, nil, err
		}
		s.Mode = ModeName(mode)
		if s.Threads <= 0 {
			s.Threads = cfg.Cores
		}
		if s.Verify && s.OpBudget > 0 {
			return s, nil, fmt.Errorf("pei: cannot verify a budget-truncated run")
		}
		// Experiment-only knobs are meaningless here; zero them so they
		// don't split the cache key.
		s.Pairs = 0
		s.Workloads = nil
	default:
		return s, nil, fmt.Errorf("pei: unknown job kind %q (%s|%s)", s.Kind, JobExperiment, JobWorkload)
	}
	return s, cfg, nil
}

func validWorkload(name string) bool {
	for _, n := range WorkloadNames {
		if n == name {
			return true
		}
	}
	return false
}

// Digest returns the spec's content address: a hex SHA-256 over the
// normalized spec and the fully resolved machine config. Two specs with
// the same digest produce byte-identical results, so the digest is the
// result-cache key. Execution knobs that cannot change output
// (parallelism) are deliberately absent; override spellings that
// resolve to the same config collapse to one digest.
func (s JobSpec) Digest() (string, error) {
	n, cfg, err := s.Normalize()
	if err != nil {
		return "", err
	}
	n.Overrides = nil // cfg carries their effect
	// The kernel selection cannot change output (the cross-kernel golden
	// test pins byte-identical tables), so it must not split the cache:
	// a seq and a pdes submission of the same job coalesce to one entry.
	n.Kernel, n.KernelWorkers = "", 0
	sort.Strings(n.Workloads)
	payload, err := json.Marshal(struct {
		Spec   JobSpec `json:"spec"`
		Config *Config `json:"config"`
	}{n, cfg})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// JobProgress is one simulation-lifecycle event emitted while a job
// runs (re-exported from the harness).
type JobProgress = harness.Progress

// RunJobOptions are execution knobs that do not affect job output.
type RunJobOptions struct {
	// Parallelism is the number of simulation cells run concurrently
	// within this job (0 = GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, receives simulation start/finish events;
	// must be goroutine-safe.
	Progress func(JobProgress)
	// Snapshots, if non-nil, enables warm starts: every simulation the
	// job runs resumes from the deepest matching checkpoint in the store
	// and writes new phase-boundary checkpoints back. Functional results
	// are unchanged, but checkpointed runs use the phased execution
	// model (see DESIGN.md §13), so a server should enable snapshots for
	// all jobs or none — mixing the two models splits cycle counts for
	// otherwise-identical specs.
	Snapshots *SnapshotStore
}

// RunJob executes the spec and writes its rendered result — the same
// tables peibench prints for experiment jobs, a peisim-style report for
// workload jobs — to w. Output is deterministic: byte-identical for
// equal digests at any parallelism.
func RunJob(ctx context.Context, spec JobSpec, w io.Writer, opts RunJobOptions) error {
	spec, cfg, err := spec.Normalize()
	if err != nil {
		return err
	}
	switch spec.Kind {
	case JobExperiment:
		ro := ReproduceOptions{
			Cfg:           cfg,
			Scale:         spec.Scale,
			OpBudget:      spec.OpBudget,
			Workloads:     spec.Workloads,
			Pairs:         spec.Pairs,
			Parallelism:   opts.Parallelism,
			Progress:      opts.Progress,
			Kernel:        spec.Kernel,
			KernelWorkers: spec.KernelWorkers,
			SnapshotStore: opts.Snapshots,
		}
		return Reproduce(ctx, spec.Experiment, ro, w)
	default: // JobWorkload; Normalize rejected everything else
		size, _ := ParseSize(spec.Size)
		mode, _ := ParseMode(spec.Mode)
		params := WorkloadParams{
			Threads:  spec.Threads,
			Size:     size,
			Scale:    spec.Scale,
			Seed:     spec.Seed,
			OpBudget: spec.OpBudget,
		}
		cell := fmt.Sprintf("%s/%s/%s", spec.Workload, size, mode)
		if opts.Progress != nil {
			opts.Progress(JobProgress{Cell: cell, Simulations: 1})
		}
		var res Result
		var err error
		if opts.Snapshots != nil {
			// Warm-startable path: a throwaway Runner carrying the shared
			// store runs the workload phased, resuming from the deepest
			// stored boundary.
			r := harness.NewRunner(harness.Options{
				Cfg:           cfg,
				Kernel:        spec.Kernel,
				KernelWorkers: spec.KernelWorkers,
				SnapshotStore: opts.Snapshots,
			})
			res, err = r.RunPhasedWorkload(ctx, spec.Workload, params, mode, spec.Verify)
		} else {
			km, _ := machine.ParseKernelMode(spec.Kernel) // validated by Normalize
			res, err = runWorkloadOn(ctx, cfg, mode, spec.Workload, params, spec.Verify,
				machine.WithKernel(km, spec.KernelWorkers))
		}
		if opts.Progress != nil {
			var cycles int64
			if err == nil {
				cycles = int64(res.Cycles)
			}
			opts.Progress(JobProgress{Cell: cell, Done: true, Cycles: cycles, Simulations: 1})
		}
		if err != nil {
			return err
		}
		writeWorkloadReport(w, spec, res)
		return nil
	}
}

// writeWorkloadReport renders a single-workload result as the aligned
// key/value report peisim prints.
func writeWorkloadReport(w io.Writer, spec JobSpec, res Result) {
	fmt.Fprintf(w, "workload        %s (%s inputs, scale 1/%d, %d threads)\n",
		spec.Workload, spec.Size, spec.Scale, spec.Threads)
	fmt.Fprintf(w, "mode            %s\n", res.Mode)
	fmt.Fprintf(w, "cycles          %d\n", res.Cycles)
	fmt.Fprintf(w, "ops retired     %d (IPC %.3f)\n", res.Retired, res.IPC())
	fmt.Fprintf(w, "PEIs            %d (%d host, %d memory, %.1f%% PIM)\n",
		res.PEIHost+res.PEIMem, res.PEIHost, res.PEIMem, 100*res.PIMFraction())
	fmt.Fprintf(w, "off-chip bytes  %d\n", res.OffchipBytes)
	fmt.Fprintf(w, "DRAM accesses   %d\n", res.DRAMAccesses)
	fmt.Fprintf(w, "energy (nJ)     %.0f (caches %.0f, DRAM %.0f, links %.0f, TSV %.0f, PCU %.0f, PMU %.0f)\n",
		res.Energy.Total(), res.Energy.Caches, res.Energy.DRAM, res.Energy.Offchip,
		res.Energy.TSV, res.Energy.PCU, res.Energy.PMU)
	if spec.Verify {
		fmt.Fprintln(w, "verification    OK")
	}
}
