// Package pei is the public API of the PEI simulator: a facade over the
// internal packages that lets a user build a simulated machine, run the
// paper's workloads or their own PEI programs on it, and reproduce the
// paper's experiments.
//
// Quick start:
//
//	sys, _ := pei.NewSystem(pei.ScaledConfig(), pei.LocalityAware)
//	counter := sys.Alloc(8, 8)
//	prog := pei.NewProgram()
//	for i := 0; i < 100; i++ {
//		prog.AtomicAdd(counter, 1)
//	}
//	res, _ := sys.Run(prog)
//	fmt.Println(res.Cycles, sys.ReadU64(counter))
package pei

import (
	"fmt"
	"io"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/harness"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// Config describes the simulated machine; see the fields of
// internal/config.Config (re-exported verbatim).
type Config = config.Config

// Mode selects where PEIs may execute (§7's system configurations).
type Mode = pim.Mode

// The four system configurations of the paper's evaluation.
const (
	HostOnly      = pim.HostOnly
	PIMOnly       = pim.PIMOnly
	LocalityAware = pim.LocalityAware
	IdealHost     = pim.IdealHost
)

// Result summarizes a run (cycles, PEI steering, off-chip traffic,
// energy).
type Result = machine.Result

// Stream is a per-core op stream.
type Stream = cpu.Stream

// BaselineConfig returns the paper's Table 2 machine; ScaledConfig a
// laptop-scale variant with proportionally smaller caches.
func BaselineConfig() *Config { return config.Baseline() }
func ScaledConfig() *Config   { return config.Scaled() }

// LoadConfig reads a JSON config layered over the baseline.
func LoadConfig(path string) (*Config, error) { return config.LoadJSON(path) }

// System is a simulated machine ready to run streams.
type System struct {
	// M exposes the underlying machine for advanced use (stats registry,
	// PMU, hierarchy).
	M *machine.Machine
}

// NewSystem builds a machine for cfg in the given mode.
func NewSystem(cfg *Config, mode Mode) (*System, error) {
	m, err := machine.New(cfg, mode)
	if err != nil {
		return nil, err
	}
	return &System{M: m}, nil
}

// Alloc reserves n bytes of simulated physical memory (align must be a
// power of two) and returns its address.
func (s *System) Alloc(n int, align uint64) uint64 { return s.M.Store.Alloc(n, align) }

// ReadU64/WriteU64 and ReadF64/WriteF64 access simulated memory
// functionally.
func (s *System) ReadU64(a uint64) uint64      { return s.M.Store.ReadU64(a) }
func (s *System) WriteU64(a uint64, v uint64)  { s.M.Store.WriteU64(a, v) }
func (s *System) ReadF64(a uint64) float64     { return s.M.Store.ReadF64(a) }
func (s *System) WriteF64(a uint64, v float64) { s.M.Store.WriteF64(a, v) }

// Run executes the given streams, one per core, to completion.
func (s *System) Run(streams ...Stream) (Result, error) {
	return s.M.Run(streams)
}

// Summary returns a one-line steering summary.
func (s *System) Summary() string { return s.M.PMU.Summary() }

// DumpStats writes all counters.
func (s *System) DumpStats(w io.Writer) { s.M.Reg.Dump(w) }

// Program is a convenience builder for hand-written PEI streams: it
// records operations and plays them back as a Stream.
type Program struct {
	q cpu.Queue
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Load and Store emit normal memory accesses.
func (p *Program) Load(a uint64)  { p.q.PushLoad(a) }
func (p *Program) Store(a uint64) { p.q.PushStore(a) }

// Compute emits a run of non-memory work costing the given cycles.
func (p *Program) Compute(cycles int64) { p.q.PushCompute(cycles) }

// AtomicAdd emits an 8-byte PIM-enabled atomic increment repeated delta
// times when delta is small, or a float add for general deltas — for
// exact integer semantics use AtomicInc or AtomicMin.
func (p *Program) AtomicAdd(target uint64, delta float64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpFloatAdd, Target: target, Input: pim.F64Input(delta)})
}

// AtomicInc emits the 8-byte integer increment PEI.
func (p *Program) AtomicInc(target uint64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpInc64, Target: target})
}

// AtomicMin emits the 8-byte integer min PEI.
func (p *Program) AtomicMin(target uint64, v uint64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpMin64, Target: target, Input: pim.U64Input(v)})
}

// PEI emits an arbitrary PIM-enabled instruction.
func (p *Program) PEI(op pim.OpKind, target uint64, input []byte, done func(output []byte)) {
	pe := &pim.PEI{Op: op, Target: target, Input: input}
	if done != nil {
		pe.Done = func() { done(pe.Output) }
	}
	p.q.PushPEI(pe)
}

// Fence emits a pfence.
func (p *Program) Fence() { p.q.PushFence() }

// Next implements Stream.
func (p *Program) Next() (cpu.Op, bool) { return p.q.Next() }

// Workload names and sizes (re-exported).
var WorkloadNames = workloads.Names

type Size = workloads.Size

const (
	Small  = workloads.Small
	Medium = workloads.Medium
	Large  = workloads.Large
)

// WorkloadParams configures a benchmark workload.
type WorkloadParams = workloads.Params

// RunWorkload builds a machine, runs one of the paper's ten workloads on
// it, optionally verifies functional results, and returns the result.
func RunWorkload(cfg *Config, mode Mode, name string, p WorkloadParams, verify bool) (Result, error) {
	w, err := workloads.New(name, p)
	if err != nil {
		return Result{}, err
	}
	m, err := machine.New(cfg, mode)
	if err != nil {
		return Result{}, err
	}
	res, err := m.Run(w.Streams(m))
	if err != nil {
		return Result{}, err
	}
	if verify {
		if p.OpBudget > 0 {
			return res, fmt.Errorf("pei: cannot verify a budget-truncated run")
		}
		if err := w.Verify(m); err != nil {
			return res, err
		}
	}
	return res, nil
}

// ReproduceOptions configures the experiment harness.
type ReproduceOptions = harness.Options

// DefaultReproduceOptions returns laptop-scale experiment options.
func DefaultReproduceOptions() ReproduceOptions { return harness.Default() }

// Reproduce runs one named experiment ("fig2", "fig6", "fig7", "fig8",
// "fig9", "fig10", "fig11a", "fig11b", "sec7.6", "fig12", "ablations",
// or "all") and renders its tables to w.
func Reproduce(name string, opts ReproduceOptions, w io.Writer) error {
	return reproduceOn(harness.NewRunner(opts), name, opts, w)
}

func reproduceOn(r *harness.Runner, name string, opts ReproduceOptions, w io.Writer) error {
	render := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
	bySize := func(f func(workloads.Size) (*harness.Table, error)) error {
		for _, size := range []workloads.Size{workloads.Small, workloads.Medium, workloads.Large} {
			if err := render(f(size)); err != nil {
				return err
			}
		}
		return nil
	}
	switch name {
	case "fig2":
		return render(r.Fig2())
	case "fig6":
		return bySize(r.Fig6)
	case "fig7":
		return bySize(r.Fig7)
	case "fig8":
		return render(r.Fig8())
	case "fig9":
		return render(r.Fig9())
	case "fig10":
		return render(r.Fig10())
	case "fig11a":
		return render(r.Fig11a())
	case "fig11b":
		return render(r.Fig11b())
	case "sec7.6", "sec76":
		return render(r.Sec76())
	case "ablations":
		for _, f := range []func() (*harness.Table, error){
			r.AblationIgnoreBit, r.AblationPartialTagWidth,
			r.AblationDirectorySize, r.AblationDispatchWindow,
			r.AblationInterleave, r.AblationPrefetcher,
			r.ComparisonHMC2,
		} {
			if err := render(f()); err != nil {
				return err
			}
		}
		return nil
	case "fig12":
		return bySize(r.Fig12)
	case "all":
		// One runner for all experiments: figures 6, 7, 10, and 12 share
		// simulation cells through its cache.
		for _, exp := range []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "sec7.6", "fig12", "ablations"} {
			if err := reproduceOn(r, exp, opts, w); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("pei: unknown experiment %q", name)
}
