// Package pei is the public API of the PEI simulator: a facade over the
// internal packages that lets a user build a simulated machine, run the
// paper's workloads or their own PEI programs on it, and reproduce the
// paper's experiments.
//
// Quick start:
//
//	sys, _ := pei.NewSystem(pei.ScaledConfig(), pei.LocalityAware)
//	counter := sys.Alloc(8, 8)
//	prog := pei.NewProgram()
//	for i := 0; i < 100; i++ {
//		prog.AtomicAdd(counter, 1)
//	}
//	res, _ := sys.Run(prog)
//	fmt.Println(res.Cycles, sys.ReadU64(counter))
//
// Every run has a context-aware form (System.RunContext,
// RunWorkloadContext, Reproduce) that aborts the simulation promptly
// when the context is cancelled; the legacy signatures are thin wrappers
// over context.Background(). Reproduce executes experiment cells on a
// worker pool — see ReproduceOptions.Parallelism.
package pei

import (
	"context"
	"fmt"
	"io"
	"strings"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/harness"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
	"pimsim/internal/workloads"
)

// Config describes the simulated machine; see the fields of
// internal/config.Config (re-exported verbatim).
type Config = config.Config

// Mode selects where PEIs may execute (§7's system configurations).
type Mode = pim.Mode

// The four system configurations of the paper's evaluation.
const (
	HostOnly      = pim.HostOnly
	PIMOnly       = pim.PIMOnly
	LocalityAware = pim.LocalityAware
	IdealHost     = pim.IdealHost
)

// Result summarizes a run (cycles, PEI steering, off-chip traffic,
// energy).
type Result = machine.Result

// Stream is a per-core op stream.
type Stream = cpu.Stream

// BaselineConfig returns the paper's Table 2 machine; ScaledConfig a
// laptop-scale variant with proportionally smaller caches.
func BaselineConfig() *Config { return config.Baseline() }
func ScaledConfig() *Config   { return config.Scaled() }

// LoadConfig reads a JSON config layered over the baseline.
func LoadConfig(path string) (*Config, error) { return config.LoadJSON(path) }

// System is a simulated machine ready to run streams.
type System struct {
	// M exposes the underlying machine for advanced use (stats registry,
	// PMU, hierarchy).
	M *machine.Machine

	statsSink io.Writer
	pmuLog    io.Writer

	// Construction-time knobs, applied by options before the machine is
	// built; optErr defers option validation errors to NewSystem.
	kernel        machine.KernelMode
	kernelWorkers int
	optErr        error
}

// Option configures a System at construction. The functional-options
// form keeps NewSystem's signature stable as knobs accumulate.
type Option func(*System)

// WithStatsSink directs a full counter dump to w after every successful
// run.
func WithStatsSink(w io.Writer) Option { return func(s *System) { s.statsSink = w } }

// WithPMUVerbose writes the PMU's one-line steering summary to w after
// every successful run.
func WithPMUVerbose(w io.Writer) Option { return func(s *System) { s.pmuLog = w } }

// WithKernel selects the event-execution engine: "seq" (the default,
// also the empty string) or "pdes", the conservative parallel kernel
// with the given epoch worker count. Results are bit-identical either
// way; pdes trades per-epoch synchronization for multi-core wall clock
// on large configurations.
func WithKernel(kernel string, workers int) Option {
	return func(s *System) {
		km, err := machine.ParseKernelMode(kernel)
		if err != nil {
			s.optErr = err
			return
		}
		s.kernel = km
		s.kernelWorkers = workers
	}
}

// NewSystem builds a machine for cfg in the given mode.
func NewSystem(cfg *Config, mode Mode, opts ...Option) (*System, error) {
	s := &System{}
	for _, o := range opts {
		o(s)
	}
	if s.optErr != nil {
		return nil, s.optErr
	}
	m, err := machine.New(cfg, mode, machine.WithKernel(s.kernel, s.kernelWorkers))
	if err != nil {
		return nil, err
	}
	s.M = m
	return s, nil
}

// Alloc reserves n bytes of simulated physical memory (align must be a
// power of two) and returns its address.
func (s *System) Alloc(n int, align uint64) uint64 { return s.M.Store.Alloc(n, align) }

// ReadU64/WriteU64 and ReadF64/WriteF64 access simulated memory
// functionally.
func (s *System) ReadU64(a uint64) uint64      { return s.M.Store.ReadU64(a) }
func (s *System) WriteU64(a uint64, v uint64)  { s.M.Store.WriteU64(a, v) }
func (s *System) ReadF64(a uint64) float64     { return s.M.Store.ReadF64(a) }
func (s *System) WriteF64(a uint64, v float64) { s.M.Store.WriteF64(a, v) }

// Run executes the given streams, one per core, to completion.
//
//peilint:allow ctxfirst compat wrapper; delegates to RunContext with context.Background
func (s *System) Run(streams ...Stream) (Result, error) {
	return s.RunContext(context.Background(), streams...)
}

// RunContext is Run with cancellation: the simulation aborts and returns
// ctx.Err() promptly once ctx is done.
func (s *System) RunContext(ctx context.Context, streams ...Stream) (Result, error) {
	res, err := s.M.RunContext(ctx, streams)
	if err != nil {
		return res, err
	}
	if s.pmuLog != nil {
		fmt.Fprintln(s.pmuLog, s.M.PMU.Summary())
	}
	if s.statsSink != nil {
		s.M.Reg.Dump(s.statsSink)
	}
	return res, nil
}

// Summary returns a one-line steering summary.
func (s *System) Summary() string { return s.M.PMU.Summary() }

// DumpStats writes all counters.
func (s *System) DumpStats(w io.Writer) { s.M.Reg.Dump(w) }

// Program is a convenience builder for hand-written PEI streams: it
// records operations and plays them back as a Stream.
type Program struct {
	q cpu.Queue
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Load and Store emit normal memory accesses.
func (p *Program) Load(a uint64)  { p.q.PushLoad(a) }
func (p *Program) Store(a uint64) { p.q.PushStore(a) }

// Compute emits a run of non-memory work costing the given cycles.
func (p *Program) Compute(cycles int64) { p.q.PushCompute(cycles) }

// AtomicAdd emits an 8-byte PIM-enabled atomic increment repeated delta
// times when delta is small, or a float add for general deltas — for
// exact integer semantics use AtomicInc or AtomicMin.
func (p *Program) AtomicAdd(target uint64, delta float64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpFloatAdd, Target: target, Input: pim.F64Input(delta)})
}

// AtomicInc emits the 8-byte integer increment PEI.
func (p *Program) AtomicInc(target uint64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpInc64, Target: target})
}

// AtomicMin emits the 8-byte integer min PEI.
func (p *Program) AtomicMin(target uint64, v uint64) {
	p.q.PushPEI(&pim.PEI{Op: pim.OpMin64, Target: target, Input: pim.U64Input(v)})
}

// PEI emits an arbitrary PIM-enabled instruction.
func (p *Program) PEI(op pim.OpKind, target uint64, input []byte, done func(output []byte)) {
	pe := &pim.PEI{Op: op, Target: target, Input: input}
	if done != nil {
		pe.Done = func() { done(pe.Output) }
	}
	p.q.PushPEI(pe)
}

// Fence emits a pfence.
func (p *Program) Fence() { p.q.PushFence() }

// Next implements Stream.
func (p *Program) Next() (cpu.Op, bool) { return p.q.Next() }

// Workload names and sizes (re-exported).
var WorkloadNames = workloads.Names

type Size = workloads.Size

const (
	Small  = workloads.Small
	Medium = workloads.Medium
	Large  = workloads.Large
)

// WorkloadParams configures a benchmark workload.
type WorkloadParams = workloads.Params

// RunWorkload builds a machine, runs one of the paper's ten workloads on
// it, optionally verifies functional results, and returns the result.
//
//peilint:allow ctxfirst compat wrapper; delegates to RunWorkloadContext with context.Background
func RunWorkload(cfg *Config, mode Mode, name string, p WorkloadParams, verify bool) (Result, error) {
	return RunWorkloadContext(context.Background(), cfg, mode, name, p, verify)
}

// RunWorkloadContext is RunWorkload with cancellation. Of the options,
// only construction-time knobs (WithKernel) apply; the run's machine is
// internal, so output sinks like WithStatsSink have nothing to attach to
// and are ignored.
func RunWorkloadContext(ctx context.Context, cfg *Config, mode Mode, name string, p WorkloadParams, verify bool, opts ...Option) (Result, error) {
	s := &System{}
	for _, o := range opts {
		o(s)
	}
	if s.optErr != nil {
		return Result{}, s.optErr
	}
	return runWorkloadOn(ctx, cfg, mode, name, p, verify, machine.WithKernel(s.kernel, s.kernelWorkers))
}

// runWorkloadOn is RunWorkloadContext with machine construction options
// (the kernel selection of JobSpec workload jobs rides through here).
func runWorkloadOn(ctx context.Context, cfg *Config, mode Mode, name string, p WorkloadParams, verify bool, mopts ...machine.Option) (Result, error) {
	w, err := workloads.New(name, p)
	if err != nil {
		return Result{}, err
	}
	m, err := machine.New(cfg, mode, mopts...)
	if err != nil {
		return Result{}, err
	}
	res, err := m.RunContext(ctx, w.Streams(m))
	if err != nil {
		return Result{}, err
	}
	if verify {
		if p.OpBudget > 0 {
			return res, fmt.Errorf("pei: cannot verify a budget-truncated run")
		}
		if err := w.Verify(m); err != nil {
			return res, err
		}
	}
	return res, nil
}

// SnapshotStore is the content-addressed checkpoint store behind warm
// starts: blobs keyed by (config digest, phase, cycle) with LRU
// eviction. Point ReproduceOptions.SnapshotDir (or .SnapshotStore) or
// RunJobOptions.Snapshots at one to resume sweeps from the deepest
// shared checkpoint.
type SnapshotStore = snap.Store

// SnapshotStoreStats are a store's hit/miss/eviction counters.
type SnapshotStoreStats = snap.StoreStats

// OpenSnapshotStore opens (creating if needed) a snapshot store rooted
// at dir with an LRU byte budget (<= 0: unlimited).
func OpenSnapshotStore(dir string, budget int64) (*SnapshotStore, error) {
	return snap.NewStore(dir, budget)
}

// ReproduceOptions configures the experiment harness (including
// Parallelism, the worker-pool width for concurrent cells).
type ReproduceOptions = harness.Options

// DefaultReproduceOptions returns laptop-scale experiment options.
func DefaultReproduceOptions() ReproduceOptions { return harness.Default() }

// experiment is one registered named experiment.
type experiment struct {
	name string
	run  func(ctx context.Context, r *harness.Runner, w io.Writer) error
}

// renderer renders a (table, error) pair to w, propagating the error.
func renderer(w io.Writer) func(*harness.Table, error) error {
	return func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
}

// bySize runs a per-size figure (as a method expression) over the three
// Table 3 input sizes.
func bySize(f func(*harness.Runner, context.Context, workloads.Size) (*harness.Table, error)) func(context.Context, *harness.Runner, io.Writer) error {
	return func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		render := renderer(w)
		for _, size := range []workloads.Size{workloads.Small, workloads.Medium, workloads.Large} {
			if err := render(f(r, ctx, size)); err != nil {
				return err
			}
		}
		return nil
	}
}

// experiments is the registry Reproduce dispatches on, in paper order.
// "all" is implicit: it runs every entry on one shared runner so figures
// 6, 7, 10, and 12 reuse cached simulation cells.
var experiments = []experiment{
	{"fig2", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig2(ctx))
	}},
	{"fig6", bySize((*harness.Runner).Fig6)},
	{"fig7", bySize((*harness.Runner).Fig7)},
	{"fig8", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig8(ctx))
	}},
	{"fig9", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig9(ctx))
	}},
	{"fig10", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig10(ctx))
	}},
	{"fig11a", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig11a(ctx))
	}},
	{"fig11b", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Fig11b(ctx))
	}},
	{"sec7.6", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		return renderer(w)(r.Sec76(ctx))
	}},
	{"fig12", bySize((*harness.Runner).Fig12)},
	{"ablations", func(ctx context.Context, r *harness.Runner, w io.Writer) error {
		render := renderer(w)
		for _, f := range []func(context.Context) (*harness.Table, error){
			r.AblationIgnoreBit, r.AblationPartialTagWidth,
			r.AblationDirectorySize, r.AblationDispatchWindow,
			r.AblationInterleave, r.AblationPrefetcher,
			r.ComparisonHMC2,
		} {
			if err := render(f(ctx)); err != nil {
				return err
			}
		}
		return nil
	}},
}

// experimentAliases maps accepted alternate spellings to registry names.
var experimentAliases = map[string]string{"sec76": "sec7.6"}

// Experiments lists every runnable experiment name in paper order,
// ending with the meta-experiment "all".
func Experiments() []string {
	names := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return append(names, "all")
}

// Reproduce runs one named experiment (see Experiments for the valid
// names) and renders its tables to w. Cells execute concurrently per
// opts.Parallelism; cancelling ctx aborts the sweep promptly with
// ctx.Err(). "all" runs every experiment on one shared runner so figures
// 6, 7, 10, and 12 reuse simulation cells.
func Reproduce(ctx context.Context, name string, opts ReproduceOptions, w io.Writer) error {
	_, err := ReproduceWithReport(ctx, name, opts, w)
	return err
}

// SnapshotReport summarizes a run's warm-start activity: checkpoint
// store counters plus the simulated-vs-skipped cycle ledger
// (re-exported from the harness).
type SnapshotReport = harness.SnapshotReport

// ReproduceWithReport is Reproduce plus the warm-start summary of the
// sweep (the zero report when opts enables no snapshots).
func ReproduceWithReport(ctx context.Context, name string, opts ReproduceOptions, w io.Writer) (SnapshotReport, error) {
	r := harness.NewRunner(opts)
	err := reproduceOn(ctx, name, r, w)
	return r.SnapshotReport(), err
}

// reproduceOn dispatches one named experiment onto an existing runner.
func reproduceOn(ctx context.Context, name string, r *harness.Runner, w io.Writer) error {
	if name == "all" {
		for _, e := range experiments {
			if err := e.run(ctx, r, w); err != nil {
				return err
			}
		}
		return nil
	}
	if canonical, ok := experimentAliases[name]; ok {
		name = canonical
	}
	for _, e := range experiments {
		if e.name == name {
			return e.run(ctx, r, w)
		}
	}
	return fmt.Errorf("pei: unknown experiment %q (valid: %s)", name, strings.Join(Experiments(), ", "))
}
