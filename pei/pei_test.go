package pei

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pimsim/internal/pim"
)

func TestSystemProgramRoundTrip(t *testing.T) {
	sys, err := NewSystem(ScaledConfig(), LocalityAware)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.Alloc(8, 8)
	prog := NewProgram()
	for i := 0; i < 50; i++ {
		prog.AtomicInc(counter)
	}
	prog.Fence()
	res, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadU64(counter); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
	if res.Cycles <= 0 || res.PEIs != 50 {
		t.Fatalf("result %+v", res)
	}
	if !strings.Contains(sys.Summary(), "PEIs") {
		t.Fatal("summary missing")
	}
}

func TestProgramAllOps(t *testing.T) {
	sys, err := NewSystem(ScaledConfig(), HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Alloc(64, 64)
	sys.WriteF64(a, 1.0)
	sys.WriteU64(a+8, 100)
	prog := NewProgram()
	prog.Load(a)
	prog.Compute(3)
	prog.AtomicAdd(a, 2.5)
	prog.AtomicMin(a+8, 7)
	prog.Store(a + 16)
	var probed []byte
	prog.PEI(pim.OpHashProbe, a, pim.U64Input(999), func(out []byte) { probed = out })
	prog.Fence()
	if _, err := sys.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadF64(a); got != 3.5 {
		t.Fatalf("fadd result %v", got)
	}
	if got := sys.ReadU64(a + 8); got != 7 {
		t.Fatalf("min result %d", got)
	}
	if len(probed) != 9 {
		t.Fatalf("probe output %v", probed)
	}
}

func TestRunWorkloadWithVerify(t *testing.T) {
	p := WorkloadParams{Threads: 2, Size: Small, Scale: 1024}
	res, err := RunWorkload(ScaledConfig(), LocalityAware, "bfs", p, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEIs == 0 {
		t.Fatal("no PEIs")
	}
}

func TestRunWorkloadVerifyRejectsBudget(t *testing.T) {
	p := WorkloadParams{Threads: 2, Size: Small, Scale: 1024, OpBudget: 10}
	if _, err := RunWorkload(ScaledConfig(), HostOnly, "atf", p, true); err == nil {
		t.Fatal("expected error verifying a truncated run")
	}
}

func TestReproduceUnknown(t *testing.T) {
	if err := Reproduce(context.Background(), "fig99", DefaultReproduceOptions(), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestReproduceFig10Tiny(t *testing.T) {
	opts := DefaultReproduceOptions()
	opts.Scale = 1024
	opts.OpBudget = 2000
	opts.Workloads = []string{"sc"}
	var buf bytes.Buffer
	if err := Reproduce(context.Background(), "fig10", opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatalf("output missing table: %s", buf.String())
	}
}

func TestBaselineAndScaledConfigs(t *testing.T) {
	if err := BaselineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ScaledConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) == 0 || names[len(names)-1] != "all" {
		t.Fatalf("Experiments() = %v, want trailing \"all\"", names)
	}
	for _, want := range []string{"fig2", "fig6", "fig9", "sec7.6", "ablations"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Experiments() missing %q: %v", want, names)
		}
	}
}

func TestReproduceUnknownListsValidNames(t *testing.T) {
	err := Reproduce(context.Background(), "fig99", DefaultReproduceOptions(), &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"fig99", "fig6", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestReproduceAlias(t *testing.T) {
	opts := DefaultReproduceOptions()
	opts.Scale = 2048
	opts.OpBudget = 500
	opts.Workloads = []string{"atf"}
	var buf bytes.Buffer
	if err := Reproduce(context.Background(), "sec76", opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Section 7.6") {
		t.Fatalf("alias output missing table: %s", buf.String())
	}
}

func TestReproduceCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Reproduce(ctx, "fig6", DefaultReproduceOptions(), &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestNewSystemOptions(t *testing.T) {
	var stats, pmu bytes.Buffer
	sys, err := NewSystem(ScaledConfig(), LocalityAware, WithStatsSink(&stats), WithPMUVerbose(&pmu))
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.Alloc(8, 8)
	prog := NewProgram()
	for i := 0; i < 10; i++ {
		prog.AtomicInc(counter)
	}
	if _, err := sys.RunContext(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if stats.Len() == 0 {
		t.Fatal("stats sink received nothing")
	}
	if !strings.Contains(pmu.String(), "PEIs") {
		t.Fatalf("PMU log missing summary: %q", pmu.String())
	}
}

func TestRunWorkloadContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := WorkloadParams{Threads: 2, Size: Small, Scale: 1024}
	if _, err := RunWorkloadContext(ctx, ScaledConfig(), HostOnly, "atf", p, false); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestSystemRunContextCancelled(t *testing.T) {
	sys, err := NewSystem(ScaledConfig(), HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Alloc(8, 8)
	prog := NewProgram()
	for i := 0; i < 100; i++ {
		prog.AtomicInc(a)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, prog); err == nil {
		t.Fatal("expected cancellation error")
	}
}
