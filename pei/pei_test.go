package pei

import (
	"bytes"
	"strings"
	"testing"

	"pimsim/internal/pim"
)

func TestSystemProgramRoundTrip(t *testing.T) {
	sys, err := NewSystem(ScaledConfig(), LocalityAware)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.Alloc(8, 8)
	prog := NewProgram()
	for i := 0; i < 50; i++ {
		prog.AtomicInc(counter)
	}
	prog.Fence()
	res, err := sys.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadU64(counter); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
	if res.Cycles <= 0 || res.PEIs != 50 {
		t.Fatalf("result %+v", res)
	}
	if !strings.Contains(sys.Summary(), "PEIs") {
		t.Fatal("summary missing")
	}
}

func TestProgramAllOps(t *testing.T) {
	sys, err := NewSystem(ScaledConfig(), HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Alloc(64, 64)
	sys.WriteF64(a, 1.0)
	sys.WriteU64(a+8, 100)
	prog := NewProgram()
	prog.Load(a)
	prog.Compute(3)
	prog.AtomicAdd(a, 2.5)
	prog.AtomicMin(a+8, 7)
	prog.Store(a + 16)
	var probed []byte
	prog.PEI(pim.OpHashProbe, a, pim.U64Input(999), func(out []byte) { probed = out })
	prog.Fence()
	if _, err := sys.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := sys.ReadF64(a); got != 3.5 {
		t.Fatalf("fadd result %v", got)
	}
	if got := sys.ReadU64(a + 8); got != 7 {
		t.Fatalf("min result %d", got)
	}
	if len(probed) != 9 {
		t.Fatalf("probe output %v", probed)
	}
}

func TestRunWorkloadWithVerify(t *testing.T) {
	p := WorkloadParams{Threads: 2, Size: Small, Scale: 1024}
	res, err := RunWorkload(ScaledConfig(), LocalityAware, "bfs", p, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEIs == 0 {
		t.Fatal("no PEIs")
	}
}

func TestRunWorkloadVerifyRejectsBudget(t *testing.T) {
	p := WorkloadParams{Threads: 2, Size: Small, Scale: 1024, OpBudget: 10}
	if _, err := RunWorkload(ScaledConfig(), HostOnly, "atf", p, true); err == nil {
		t.Fatal("expected error verifying a truncated run")
	}
}

func TestReproduceUnknown(t *testing.T) {
	if err := Reproduce("fig99", DefaultReproduceOptions(), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestReproduceFig10Tiny(t *testing.T) {
	opts := DefaultReproduceOptions()
	opts.Scale = 1024
	opts.OpBudget = 2000
	opts.Workloads = []string{"sc"}
	var buf bytes.Buffer
	if err := Reproduce("fig10", opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatalf("output missing table: %s", buf.String())
	}
}

func TestBaselineAndScaledConfigs(t *testing.T) {
	if err := BaselineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ScaledConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
