package pei_test

import (
	"fmt"

	"pimsim/pei"
)

// The canonical PEI pattern: atomic updates to shared data with a
// pfence before results are read (Figure 1 of the paper, in miniature).
func Example() {
	sys, err := pei.NewSystem(pei.ScaledConfig(), pei.LocalityAware)
	if err != nil {
		panic(err)
	}
	counter := sys.Alloc(8, 64)

	prog := pei.NewProgram()
	for i := 0; i < 10; i++ {
		prog.AtomicInc(counter)
	}
	prog.Fence()
	if _, err := sys.Run(prog); err != nil {
		panic(err)
	}
	fmt.Println(sys.ReadU64(counter))
	// Output: 10
}

// Atomic min is the workhorse of BFS, shortest paths, and connected
// components (Table 1).
func ExampleProgram_AtomicMin() {
	sys, err := pei.NewSystem(pei.ScaledConfig(), pei.HostOnly)
	if err != nil {
		panic(err)
	}
	dist := sys.Alloc(8, 64)
	sys.WriteU64(dist, 1<<40)

	prog := pei.NewProgram()
	for _, v := range []uint64{90, 15, 40, 22} {
		prog.AtomicMin(dist, v)
	}
	prog.Fence()
	if _, err := sys.Run(prog); err != nil {
		panic(err)
	}
	fmt.Println(sys.ReadU64(dist))
	// Output: 15
}

// Running one of the paper's benchmark workloads with functional
// verification.
func ExampleRunWorkload() {
	params := pei.WorkloadParams{Threads: 2, Size: pei.Small, Scale: 2048}
	res, err := pei.RunWorkload(pei.ScaledConfig(), pei.LocalityAware, "bfs", params, true)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.PEIs > 0, res.Cycles > 0)
	// Output: true true
}
