// Command peitrace records a workload's op streams to a trace file and
// replays traces onto arbitrary machine configurations — useful for
// comparing designs without regenerating workloads, and for feeding the
// simulator traces produced elsewhere.
//
// Examples:
//
//	peitrace -record pr.trace -workload pr -size medium -scale 64
//	peitrace -replay pr.trace -mode pim
//	peitrace -replay pr.trace -mode locality -full
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/trace"
	"pimsim/internal/workloads"
	"pimsim/pei"
)

func main() {
	var (
		record   = flag.String("record", "", "record the workload to this trace file")
		replay   = flag.String("replay", "", "replay this trace file")
		workload = flag.String("workload", "pr", "workload to record")
		sizeStr  = flag.String("size", "small", "input size")
		scale    = flag.Int("scale", 64, "input scale divisor")
		budget   = flag.Int64("budget", 0, "per-thread op budget")
		modeStr  = flag.String("mode", "locality", "machine mode for the run")
		full     = flag.Bool("full", false, "use the full Table 2 machine")
	)
	flag.Parse()

	cfg := pei.ScaledConfig()
	if *full {
		cfg = pei.BaselineConfig()
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}

	switch {
	case *record != "":
		size, err := workloads.ParseSize(*sizeStr)
		if err != nil {
			fatal(err)
		}
		p := workloads.Params{Threads: cfg.Cores, Size: size, Scale: *scale, OpBudget: *budget}
		w, err := workloads.New(*workload, p)
		if err != nil {
			fatal(err)
		}
		m, err := machine.New(cfg, mode)
		if err != nil {
			fatal(err)
		}
		live := w.Streams(m)
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// Store size is finalized after Streams has allocated; write the
		// header now that it is known.
		tw, err := trace.NewWriterDigest(f, len(live), m.Store.Size(), cfgDigest(cfg))
		if err != nil {
			fatal(err)
		}
		rec := make([]cpu.Stream, len(live))
		for i, s := range live {
			rec[i] = &trace.RecordingStream{Inner: s, Writer: tw, Thread: i}
		}
		res, err := m.Run(rec)
		if err != nil {
			fatal(err)
		}
		if err := tw.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d ops (%d PEIs) to %s; live run: %d cycles\n",
			res.Retired, res.PEIs, *record, res.Cycles)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		m, err := machine.New(cfg, mode)
		if err != nil {
			fatal(err)
		}
		if tr.ConfigDigest != "" && tr.ConfigDigest != cfgDigest(cfg) {
			fmt.Fprintln(os.Stderr, "peitrace: note: trace was recorded on a different machine config (timing will differ from the recording run)")
		}
		if tr.StoreSize > 0 {
			m.Store.Alloc(int(tr.StoreSize), 64)
		}
		res, err := m.Run(tr.Streams())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d threads on %s: %d cycles, IPC %.3f, %.1f%% PIM, %d off-chip bytes\n",
			len(tr.PerThread), res.Mode, res.Cycles, res.IPC(), 100*res.PIMFraction(), res.OffchipBytes)

	default:
		fatal(fmt.Errorf("use -record FILE or -replay FILE"))
	}
}

// cfgDigest content-addresses the machine config for the trace header.
func cfgDigest(cfg *pei.Config) string {
	blob, err := json.Marshal(cfg)
	if err != nil {
		fatal(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

func parseMode(s string) (pim.Mode, error) {
	switch strings.ToLower(s) {
	case "host":
		return pim.HostOnly, nil
	case "pim":
		return pim.PIMOnly, nil
	case "locality", "la":
		return pim.LocalityAware, nil
	case "ideal":
		return pim.IdealHost, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peitrace:", err)
	os.Exit(1)
}
