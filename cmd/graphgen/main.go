// Command graphgen generates the synthetic graph datasets used by the
// reproduction, or converts user-provided edge lists. It exists so users
// with access to the original SNAP/LAW graphs can swap them in: generate
// a file, or feed a downloaded edge list through -in.
//
// Examples:
//
//	graphgen -list
//	graphgen -name soc-Slashdot0811 -scale 64 -out slashdot.el
//	graphgen -vertices 10000 -edges 100000 -seed 7 -out rmat.el
//	graphgen -in snap-download.txt -out normalized.el
package main

import (
	"flag"
	"fmt"
	"os"

	"pimsim/internal/graph"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the named datasets of Figures 2/8")
		name     = flag.String("name", "", "generate a named dataset stand-in")
		scale    = flag.Int("scale", 1, "scale divisor for -name")
		vertices = flag.Int("vertices", 0, "R-MAT vertex count (with -edges)")
		edges    = flag.Int("edges", 0, "R-MAT edge count")
		seed     = flag.Int64("seed", 1, "R-MAT seed")
		in       = flag.String("in", "", "normalize an existing edge-list file")
		out      = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("named datasets (synthetic R-MAT stand-ins, published sizes):")
		for _, d := range graph.Figure2Graphs {
			fmt.Printf("  %-20s %9d vertices  %9d edges\n", d.Name, d.Vertices, d.Edges)
		}
		return
	}

	var g *graph.Graph
	switch {
	case *in != "":
		var err error
		g, err = graph.LoadFile(*in)
		if err != nil {
			fatal(err)
		}
	case *name != "":
		var spec *graph.DatasetSpec
		for i := range graph.Figure2Graphs {
			if graph.Figure2Graphs[i].Name == *name {
				spec = &graph.Figure2Graphs[i]
				break
			}
		}
		if spec == nil {
			fatal(fmt.Errorf("unknown dataset %q (try -list)", *name))
		}
		g = spec.Scaled(*scale).Generate()
	case *vertices > 0 && *edges > 0:
		g = graph.RMAT(*vertices, *edges, *seed)
	default:
		fatal(fmt.Errorf("nothing to do: use -list, -name, -vertices/-edges, or -in"))
	}

	if *out == "" {
		if err := g.WriteEdgeList(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := g.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges to %s\n", g.NumVertices(), g.NumEdges(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
