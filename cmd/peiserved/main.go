// Command peiserved serves the PEI simulator over HTTP: experiments and
// workload runs become queued jobs with cached, content-addressed
// results, live SSE progress, and Prometheus metrics.
//
//	peiserved -addr :8080 -workers 4 -queue-depth 128 -cache-mb 256
//
// API (see README "Serving" for curl examples):
//
//	POST   /v1/jobs             submit a pei.JobSpec (JSON); 200 on a
//	                            cache hit, 202 when queued, 429 (with a
//	                            queue-depth-derived Retry-After) when full
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result rendered result (text/plain)
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      runnable experiments/workloads/modes
//	GET    /metrics             Prometheus text format
//	GET    /healthz             readiness alias (503 while draining or,
//	                            in cluster mode, before registration)
//	GET    /healthz/live        liveness (200 while the process is up)
//	GET    /healthz/ready       readiness
//
// Cluster mode (see README "Cluster" for a 3-node walkthrough):
//
//	peiserved -coordinator -addr :9000
//	peiserved -addr :9001 -join http://host:9000 -advertise http://host:9001
//
// A coordinator exposes the same job API and consistent-hashes each
// job's digest across the registered workers, so identical jobs always
// land where the cached result (and warm-start snapshots) live; workers
// consult the cluster's peer cache before simulating.
//
// SIGTERM/SIGINT stop accepting new jobs, deregister from the cluster
// (worker mode), drain queued and running jobs (bounded by
// -drain-timeout), then exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pimsim/internal/cluster"
	"pimsim/internal/serve"
	"pimsim/pei"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "jobs simulated concurrently")
		queueDepth   = flag.Int("queue-depth", 64, "max queued jobs before 429")
		cacheMB      = flag.Int64("cache-mb", 64, "result-cache LRU budget in MiB")
		parallel     = flag.Int("parallel", 0, "simulation cells per job (0 = GOMAXPROCS/workers)")
		snapshotDir  = flag.String("snapshot-dir", "", "checkpoint store directory for simulation warm starts (empty = disabled)")
		snapshotMB   = flag.Int64("snapshot-mb", 256, "snapshot store LRU budget in MiB (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max time to drain jobs on shutdown")

		coordinator    = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a worker")
		join           = flag.String("join", "", "coordinator URL to register with (worker cluster mode)")
		advertise      = flag.String("advertise", "", "this worker's base URL as the coordinator and peers reach it (required with -join)")
		healthInterval = flag.Duration("health-interval", time.Second, "coordinator health-check interval")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "peiserved ", log.LstdFlags|log.Lmsgprefix)
	if *coordinator {
		runCoordinator(logger, *addr, *healthInterval)
		return
	}
	if *join != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "peiserved: -join requires -advertise (the URL peers use to reach this worker)")
		os.Exit(2)
	}

	var snaps *pei.SnapshotStore
	if *snapshotDir != "" {
		// A directory starting with "-" is virtually always a swallowed
		// flag (`-snapshot-dir -snapshot-mb 512` makes "-snapshot-mb" the
		// directory value), and silently creating it litters the working
		// tree with un-globbable paths. Refuse it.
		if strings.HasPrefix(*snapshotDir, "-") {
			fmt.Fprintf(os.Stderr, "peiserved: -snapshot-dir %q looks like a flag, not a directory (missing value?)\n", *snapshotDir)
			os.Exit(2)
		}
		var err error
		if snaps, err = pei.OpenSnapshotStore(*snapshotDir, *snapshotMB<<20); err != nil {
			fmt.Fprintln(os.Stderr, "peiserved:", err)
			os.Exit(1)
		}
		logger.Printf("snapshots enabled dir=%s budget-mb=%d", *snapshotDir, *snapshotMB)
	}

	var agent *cluster.Client
	opts := serve.Options{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheBytes:  *cacheMB << 20,
		Parallelism: *parallel,
		Snapshots:   snaps,
		Logf:        logger.Printf,
	}
	if *join != "" {
		agent = cluster.NewClient(*join, *advertise, cluster.ClientOptions{Logf: logger.Printf})
		opts.Peers = agent
		opts.ClusterMode = true
	}
	srv := serve.New(opts)
	if agent != nil {
		agent.Start(srv.SetRegistered)
		logger.Printf("cluster mode: joining %s advertising %s", *join, *advertise)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening addr=%s workers=%d queue-depth=%d cache-mb=%d", *addr, *workers, *queueDepth, *cacheMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "peiserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	logger.Printf("shutdown requested; draining (timeout %s)", *drainTimeout)
	if agent != nil {
		// Deregister first: the coordinator stops routing new work here
		// while the queue drains.
		agent.Stop()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("bye")
}

// runCoordinator serves cluster.Coordinator until SIGTERM/SIGINT.
func runCoordinator(logger *log.Logger, addr string, healthInterval time.Duration) {
	coord := cluster.NewCoordinator(cluster.Options{
		HealthInterval: healthInterval,
		Logf:           logger.Printf,
	})
	httpSrv := &http.Server{Addr: addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("coordinator listening addr=%s health-interval=%s", addr, healthInterval)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "peiserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	logger.Printf("coordinator shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	coord.Close()
	logger.Printf("bye")
}
