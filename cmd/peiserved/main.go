// Command peiserved serves the PEI simulator over HTTP: experiments and
// workload runs become queued jobs with cached, content-addressed
// results, live SSE progress, and Prometheus metrics.
//
//	peiserved -addr :8080 -workers 4 -queue-depth 128 -cache-mb 256
//
// API (see README "Serving" for curl examples):
//
//	POST   /v1/jobs             submit a pei.JobSpec (JSON); 200 on a
//	                            cache hit, 202 when queued, 429 when the
//	                            queue is full
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result rendered result (text/plain)
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      runnable experiments/workloads/modes
//	GET    /metrics             Prometheus text format
//	GET    /healthz             liveness (503 while draining)
//
// SIGTERM/SIGINT stop accepting new jobs, drain queued and running
// jobs (bounded by -drain-timeout), then exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimsim/internal/serve"
	"pimsim/pei"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "jobs simulated concurrently")
		queueDepth   = flag.Int("queue-depth", 64, "max queued jobs before 429")
		cacheMB      = flag.Int64("cache-mb", 64, "result-cache LRU budget in MiB")
		parallel     = flag.Int("parallel", 0, "simulation cells per job (0 = GOMAXPROCS/workers)")
		snapshotDir  = flag.String("snapshot-dir", "", "checkpoint store directory for simulation warm starts (empty = disabled)")
		snapshotMB   = flag.Int64("snapshot-mb", 256, "snapshot store LRU budget in MiB (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max time to drain jobs on shutdown")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "peiserved ", log.LstdFlags|log.Lmsgprefix)
	var snaps *pei.SnapshotStore
	if *snapshotDir != "" {
		var err error
		if snaps, err = pei.OpenSnapshotStore(*snapshotDir, *snapshotMB<<20); err != nil {
			fmt.Fprintln(os.Stderr, "peiserved:", err)
			os.Exit(1)
		}
		logger.Printf("snapshots enabled dir=%s budget-mb=%d", *snapshotDir, *snapshotMB)
	}
	srv := serve.New(serve.Options{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheBytes:  *cacheMB << 20,
		Parallelism: *parallel,
		Snapshots:   snaps,
		Logf:        logger.Printf,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening addr=%s workers=%d queue-depth=%d cache-mb=%d", *addr, *workers, *queueDepth, *cacheMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "peiserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	logger.Printf("shutdown requested; draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("bye")
}
