// peilint is the project's static-analysis gate: it enforces the
// simulator's determinism and hot-path invariants (see DESIGN.md §10
// and §15).
//
// Usage:
//
//	go run ./cmd/peilint ./...        # whole module (what CI runs)
//	go run ./cmd/peilint ./internal/sim ./internal/cache/...
//	go run ./cmd/peilint -json ./...  # machine-readable findings
//	go run ./cmd/peilint -list        # describe the analyzers
//
// Packages are analyzed in import topological order so that analyzers
// exporting facts (nondeterminism reachability, per-call string
// allocation, HTTP round trips) see their dependencies' facts; the
// checks are therefore inter-procedural across the whole module, not
// per package. A well-formed //peilint:allow directive that no longer
// suppresses anything is itself reported as a stale waiver.
//
// Each finding prints as "file:line:col: analyzer: message" (or as a
// JSON array with file/line/col/analyzer/message fields under -json).
// Exit status: 0 clean, 1 findings, 2 load or internal errors.
// Deliberate exceptions carry `//peilint:allow <analyzer> <reason>`
// directives, themselves validated by the waiver analyzer.
//
// The binary is standard-library only and works offline: module-local
// packages are type-checked from source and the standard library is
// imported through go/importer's source importer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pimsim/internal/lint"
)

// jsonFinding is the -json output schema, consumed by the CI lint job.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	verbose := flag.Bool("v", false, "log each package as it is analyzed")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: peilint [-list] [-json] [-v] [packages]\n\npackages are ./dir or ./dir/... patterns; default ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			scope := "all packages"
			if a.Packages != nil {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Printf("%-12s %s\n%-12s scope: %s\n\n", a.Name, a.Doc, "", scope)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loadPatterns(loader, root, patterns)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(os.Stderr, "peilint: %s\n", pkg.ImportPath)
		}
	}
	diags, err := lint.Analyze(loader, pkgs, lint.Analyzers())
	if err != nil {
		fatal(err)
	}

	// Print module-relative paths so output is stable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonFlag {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "peilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "peilint: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// loadPatterns resolves ./dir and ./dir/... patterns (relative to the
// module root) into loaded packages, deduplicating by import path.
func loadPatterns(loader *lint.Loader, root string, patterns []string) ([]*lint.Package, error) {
	seen := make(map[string]bool)
	var out []*lint.Package
	add := func(ps ...*lint.Package) {
		for _, p := range ps {
			if !seen[p.ImportPath] {
				seen[p.ImportPath] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		dir := filepath.Join(root, filepath.FromSlash(pat))
		if recursive {
			ps, err := loader.LoadUnder(dir)
			if err != nil {
				return nil, err
			}
			add(ps...)
			continue
		}
		importPath := loader.ModulePath
		if pat != "" {
			importPath = loader.ModulePath + "/" + filepath.ToSlash(pat)
		}
		p, err := loader.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		add(p)
	}
	return out, nil
}
