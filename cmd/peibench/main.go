// Command peibench regenerates the paper's evaluation figures.
//
// Examples:
//
//	peibench -exp fig6                # Figure 6 at laptop scale
//	peibench -exp all -out results.txt
//	peibench -exp fig9 -pairs 200     # the paper's full mix count
//	peibench -exp fig6 -full -scale 1 # paper-scale machine and inputs (slow)
//	peibench -exp all -parallel 8     # eight concurrent simulation cells
//
// Experiment cells run concurrently (-parallel, default GOMAXPROCS);
// tables are byte-identical at any parallelism. Ctrl-C cancels the sweep
// cleanly mid-run.
//
// Profiling:
//
//	peibench -exp fig6 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pimsim/pei"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(pei.Experiments(), "|"))
		scale     = flag.Int("scale", 64, "input scale divisor (1 = paper-size inputs)")
		budget    = flag.Int64("budget", 60000, "per-thread op budget (0 = run to completion)")
		pairs     = flag.Int("pairs", 40, "multiprogrammed mixes for fig9 (paper: 200)")
		full      = flag.Bool("full", false, "use the full Table 2 machine")
		only      = flag.String("workloads", "", "comma-separated workload subset (default all)")
		out       = flag.String("out", "", "write tables to this file as well as stdout")
		parallel  = flag.Int("parallel", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		kernel    = flag.String("kernel", "seq", "event kernel: seq|pdes (tables are byte-identical either way)")
		kworkers  = flag.Int("kernelworkers", 0, "pdes epoch workers per simulation (0 = GOMAXPROCS)")
		snapDir   = flag.String("snapshot-dir", "", "checkpoint store for warm starts: cells resume from stored phase boundaries and write new ones (empty = disabled)")
		list      = flag.Bool("list", false, "list experiment names and exit")
		verbose   = flag.Bool("v", false, "log per-run progress")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON = flag.String("benchjson", "",
			"write a BENCH_*.json-style snapshot (ns_op, bytes_op, allocs_op for the whole run) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "peibench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "peibench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "peibench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "peibench:", err)
			}
		}()
	}

	if *list {
		for _, name := range pei.Experiments() {
			fmt.Println(name)
		}
		return
	}

	// A snapshot directory starting with "-" is virtually always a
	// swallowed flag (`-snapshot-dir -out x` makes "-out" the directory
	// value); refuse it instead of littering the tree with a dash-path.
	if strings.HasPrefix(*snapDir, "-") {
		fmt.Fprintf(os.Stderr, "peibench: -snapshot-dir %q looks like a flag, not a directory (missing value?)\n", *snapDir)
		os.Exit(2)
	}

	opts := pei.DefaultReproduceOptions()
	opts.Scale = *scale
	opts.OpBudget = *budget
	opts.Pairs = *pairs
	opts.Parallelism = *parallel
	opts.Kernel = *kernel
	opts.KernelWorkers = *kworkers
	opts.SnapshotDir = *snapDir
	if *full {
		opts.Cfg = pei.BaselineConfig()
	}
	if *only != "" {
		opts.Workloads = strings.Split(*only, ",")
	}
	if *verbose {
		opts.Verbose = os.Stderr
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "peibench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(w, "PEI reproduction — experiment %s (scale 1/%d, budget %d ops/thread)\n\n",
		*exp, *scale, *budget)
	var before runtime.MemStats
	if *benchJSON != "" {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	report, err := pei.ReproduceWithReport(ctx, *exp, opts, w)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// The note goes to stderr so piped/redirected table output
			// stays clean; 130 = 128+SIGINT, distinct from failures.
			fmt.Fprintln(os.Stderr, "peibench: interrupted — tables rendered so far are partial")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "peibench:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "completed in %s\n", elapsed.Round(time.Millisecond))
	if *snapDir != "" {
		fmt.Fprintf(w, "warm starts: %d hits, %d misses, %d cycles simulated, %d cycles skipped\n",
			report.Store.Hits, report.Store.Misses, report.CyclesSimulated, report.CyclesSkipped)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *exp, *scale, *budget, *kernel, *kworkers, *snapDir, elapsed, &before, report); err != nil {
			fmt.Fprintln(os.Stderr, "peibench:", err)
			os.Exit(1)
		}
	}
}

// benchSnapshot is the BENCH_*.json snapshot format the repository uses
// to record before/after numbers for performance work: one headline
// entry with the whole run's wall time and heap traffic, in the same
// ns_op / bytes_op / allocs_op units `go test -benchmem` reports.
type benchSnapshot struct {
	Description   string          `json:"description"`
	Experiment    string          `json:"experiment"`
	Scale         int             `json:"scale"`
	Budget        int64           `json:"budget"`
	Kernel        string          `json:"kernel"`
	KernelWorkers int             `json:"kernel_workers"`
	GoVersion     string          `json:"go_version"`
	Headline      benchHeadline   `json:"headline"`
	Snapshots     *benchSnapshots `json:"snapshots,omitempty"`
	PDES          *benchPDES      `json:"pdes,omitempty"`
}

type benchHeadline struct {
	NsOp     int64  `json:"ns_op"`
	BytesOp  uint64 `json:"bytes_op"`
	AllocsOp uint64 `json:"allocs_op"`
}

// benchSnapshots is the warm-start section, present only when the run
// used a -snapshot-dir.
type benchSnapshots struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	BytesWritten    int64 `json:"bytes_written"`
	CyclesSimulated int64 `json:"cycles_simulated"`
	CyclesSkipped   int64 `json:"cycles_skipped"`
}

// benchPDES is the parallel-kernel protocol section, present only when
// the run executed epochs under -kernel pdes: how much protocol work
// the conservative kernel did, summed over every simulation in the run.
type benchPDES struct {
	Epochs          int64 `json:"epochs"`
	SoloSprints     int64 `json:"solo_sprints"`
	PartsSkipped    int64 `json:"parts_skipped"`
	MailSlotsMerged int64 `json:"mail_slots_merged"`
	MailPostsMerged int64 `json:"mail_posts_merged"`
}

// writeBenchJSON records the run as a single-iteration benchmark: the
// heap counters are deltas across Reproduce, so the snapshot is
// comparable between commits at identical flags.
func writeBenchJSON(path, exp string, scale int, budget int64, kernel string, kworkers int, snapDir string, elapsed time.Duration, before *runtime.MemStats, report pei.SnapshotReport) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	snap := benchSnapshot{
		Description: "peibench single-run snapshot: wall time and heap traffic of one Reproduce call " +
			"(units match `go test -benchmem`; compare only at identical -exp/-scale/-budget flags)",
		Experiment:    exp,
		Scale:         scale,
		Budget:        budget,
		Kernel:        kernel,
		KernelWorkers: kworkers,
		GoVersion:     runtime.Version(),
		Headline: benchHeadline{
			NsOp:     elapsed.Nanoseconds(),
			BytesOp:  after.TotalAlloc - before.TotalAlloc,
			AllocsOp: after.Mallocs - before.Mallocs,
		},
	}
	if snapDir != "" {
		snap.Snapshots = &benchSnapshots{
			Hits:            report.Store.Hits,
			Misses:          report.Store.Misses,
			BytesWritten:    report.Store.BytesWritten,
			CyclesSimulated: report.CyclesSimulated,
			CyclesSkipped:   report.CyclesSkipped,
		}
	}
	if report.PDES.Epochs > 0 {
		snap.PDES = &benchPDES{
			Epochs:          report.PDES.Epochs,
			SoloSprints:     report.PDES.SoloSprints,
			PartsSkipped:    report.PDES.PartsSkipped,
			MailSlotsMerged: report.PDES.MailSlotsMerged,
			MailPostsMerged: report.PDES.MailPostsMerged,
		}
	}
	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
