// Command peisim runs one workload on one simulated machine
// configuration and reports timing, steering, traffic, and energy.
//
// Examples:
//
//	peisim -workload pr -size medium -mode locality -scale 64
//	peisim -workload hj -size large -mode pim -budget 200000 -stats
//	peisim -workload bfs -size small -scale 512 -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"pimsim/pei"
)

func main() {
	var (
		workload = flag.String("workload", "pr", "workload: "+strings.Join(pei.WorkloadNames, "|"))
		sizeStr  = flag.String("size", "small", "input size: small|medium|large")
		modeStr  = flag.String("mode", "locality", "execution mode: host|pim|locality|ideal")
		scale    = flag.Int("scale", 64, "input scale divisor (1 = paper-size inputs)")
		budget   = flag.Int64("budget", 0, "per-thread op budget (0 = run to completion)")
		threads  = flag.Int("threads", 0, "threads (default: all cores)")
		full     = flag.Bool("full", false, "use the full Table 2 machine instead of the scaled one")
		cfgPath  = flag.String("config", "", "JSON machine config (overrides -full)")
		verify   = flag.Bool("verify", false, "verify functional results (requires -budget 0)")
		stats    = flag.Bool("stats", false, "dump all counters")
		balanced = flag.Bool("balanced", false, "enable balanced dispatch (§7.4)")
		kernel   = flag.String("kernel", "seq", "event kernel: seq|pdes (results are byte-identical either way)")
		kworkers = flag.Int("kernelworkers", 0, "pdes epoch workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := pei.ScaledConfig()
	if *full {
		cfg = pei.BaselineConfig()
	}
	if *cfgPath != "" {
		var err error
		cfg, err = pei.LoadConfig(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	cfg.BalancedDispatch = *balanced

	mode, err := pei.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	size, err := pei.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	nThreads := *threads
	if nThreads <= 0 {
		nThreads = cfg.Cores
	}

	// Ctrl-C cancels the simulation cleanly mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	params := pei.WorkloadParams{Threads: nThreads, Size: size, Scale: *scale, OpBudget: *budget}
	res, err := pei.RunWorkloadContext(ctx, cfg, mode, *workload, params, *verify,
		pei.WithKernel(*kernel, *kworkers))
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Distinct exit code for interruption (128+SIGINT), like
			// shells report it, so scripts can tell Ctrl-C from failure.
			fmt.Fprintln(os.Stderr, "peisim: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("workload        %s (%s inputs, scale 1/%d, %d threads)\n", *workload, size, *scale, nThreads)
	fmt.Printf("mode            %s\n", res.Mode)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("ops retired     %d (IPC %.3f)\n", res.Retired, res.IPC())
	fmt.Printf("PEIs            %d (%d host, %d memory, %.1f%% PIM)\n",
		res.PEIHost+res.PEIMem, res.PEIHost, res.PEIMem, 100*res.PIMFraction())
	fmt.Printf("off-chip bytes  %d\n", res.OffchipBytes)
	fmt.Printf("DRAM accesses   %d\n", res.DRAMAccesses)
	fmt.Printf("energy (nJ)     %.0f (caches %.0f, DRAM %.0f, links %.0f, TSV %.0f, PCU %.0f, PMU %.0f)\n",
		res.Energy.Total(), res.Energy.Caches, res.Energy.DRAM, res.Energy.Offchip,
		res.Energy.TSV, res.Energy.PCU, res.Energy.PMU)
	if *verify {
		fmt.Println("verification    OK")
	}
	if *stats {
		fmt.Println()
		keys := make([]string, 0, len(res.Stats))
		for k := range res.Stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-40s %d\n", k, res.Stats[k])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peisim:", err)
	os.Exit(1)
}
