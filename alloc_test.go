package pimsim_test

import (
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
)

// The steady-state allocation pins: after the handler/transaction-pool
// rework of the event path, simulating a PEI end to end must stay
// (nearly) allocation-free once the pools and ring buckets are warm.
// These tests are the regression guard for that property — a stray
// closure or per-event buffer on the hot path shows up here long before
// it shows up in a profile.

// measurePEIAllocs issues rounds of PEIs against a fixed working set and
// reports the average heap allocations per PEI in steady state.
func measurePEIAllocs(t *testing.T, mode pim.Mode) float64 {
	t.Helper()
	m := machine.MustNew(config.Scaled(), mode)
	const blocks = 64
	const batch = 32
	base := m.Store.Alloc(blocks*64, 64)
	peis := make([]*pim.PEI, batch)
	for i := range peis {
		peis[i] = &pim.PEI{}
	}
	round := func() {
		for i, p := range peis {
			*p = pim.PEI{Op: pim.OpInc64, Target: base + uint64(i%blocks)*64}
			m.PMU.Issue(p)
		}
		m.K.Run()
	}
	// Warm every pool, ring bucket, and map bucket with the same access
	// pattern the measurement uses. The scheduler ring has 4096 per-cycle
	// buckets whose slices grow lazily, so the warmup must walk the ring
	// many times before the steady state is truly allocation-free.
	for i := 0; i < 4096; i++ {
		round()
	}
	return testing.AllocsPerRun(200, round) / batch
}

// TestPEIHostSideSteadyStateAllocs pins the host-side PEI path (§4.5
// Figure 4): PMU issue, directory, host PCU, cache hierarchy.
func TestPEIHostSideSteadyStateAllocs(t *testing.T) {
	allocs := measurePEIAllocs(t, pim.HostOnly)
	if allocs > 0.05 {
		t.Fatalf("host-side PEI allocates %.3f objects/op in steady state, want ~0", allocs)
	}
}

// TestPEIMemorySideSteadyStateAllocs pins the memory-side PEI path (§4.5
// Figure 5): coherence cleanup, packet codec, chain, vault PCU, DRAM.
func TestPEIMemorySideSteadyStateAllocs(t *testing.T) {
	allocs := measurePEIAllocs(t, pim.PIMOnly)
	if allocs > 0.05 {
		t.Fatalf("memory-side PEI allocates %.3f objects/op in steady state, want ~0", allocs)
	}
}

// TestPooledTxnSequentialReuse drives two deliberately different PEIs
// through the memory-side path back to back. The second reuses the
// transaction objects the first released (PMU, chain, vault, DRAM
// pools); stale state — a leftover writer flag, output size, or wire
// payload — would corrupt the probe's result.
func TestPooledTxnSequentialReuse(t *testing.T) {
	m := machine.MustNew(config.Scaled(), pim.PIMOnly)
	base := m.Store.Alloc(128, 64)

	// First life: a writer PEI with no input or output operand.
	done1 := false
	m.PMU.Issue(&pim.PEI{Op: pim.OpInc64, Target: base, Done: func() { done1 = true }})
	m.K.Run()
	if !done1 {
		t.Fatal("first PEI never retired")
	}
	if got := m.Store.ReadU64(base); got != 1 {
		t.Fatalf("inc64 result %d, want 1", got)
	}

	// Second life: a reader PEI with both operands, at a different block.
	key := uint64(0x1234)
	m.Store.WriteU64(base+64+pim.HashBucketKeyOff, key)
	var out []byte
	p := &pim.PEI{Op: pim.OpHashProbe, Target: base + 64, Input: pim.U64Input(key)}
	p.Done = func() { out = p.Output }
	m.PMU.Issue(p)
	m.K.Run()
	if len(out) != 9 {
		t.Fatalf("hashprobe output %d bytes, want 9", len(out))
	}
	if out[0] != 1 {
		t.Fatal("hashprobe missed a key that is present")
	}
	if got := m.Store.ReadU64(base); got != 1 {
		t.Fatalf("reader PEI corrupted the first target: %d", got)
	}
}
