// Quickstart: build a simulated machine, write a tiny PEI program by
// hand, and watch the locality-aware hardware steer it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pimsim/pei"
)

func main() {
	// A laptop-scale machine (4 cores, 256 KB L3, one HMC) with
	// locality-aware PEI steering — the paper's proposed configuration.
	sys, err := pei.NewSystem(pei.ScaledConfig(), pei.LocalityAware)
	if err != nil {
		log.Fatal(err)
	}

	// One hot counter (hammered, becomes cache-resident) and a large
	// cold array (each element touched once, streaming).
	hot := sys.Alloc(8, 64)
	const coldN = 4096
	cold := sys.Alloc(coldN*64, 64)

	prog := pei.NewProgram()
	for i := 0; i < coldN; i++ {
		// Stream: one atomic increment per cache block.
		prog.AtomicInc(cold + uint64(i*64))
		// Hot: every iteration bumps the same counter.
		prog.AtomicInc(hot)
	}
	// pfence: make every update visible before we read results.
	prog.Fence()

	res, err := sys.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d PEIs in %d cycles\n", res.PEIs, res.Cycles)
	fmt.Printf("hot counter = %d (expected %d)\n", sys.ReadU64(hot), coldN)
	fmt.Printf("steering: %d executed on the host, %d in memory (%.1f%% PIM)\n",
		res.PEIHost, res.PEIMem, 100*res.PIMFraction())
	fmt.Println()
	fmt.Println("the hot counter's block hits in the locality monitor and runs")
	fmt.Println("host-side; the cold stream misses and is offloaded to the vault")
	fmt.Println("PCUs — no software hints involved.")
	fmt.Printf("\n%s\n", sys.Summary())
}
