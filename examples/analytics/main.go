// In-memory analytics: hash join probing and histogram building with
// PEIs (§5.2), comparing execution policies and showing output-operand
// PEIs (hash probe returns a 9-byte match/next result; histogram returns
// 16 bin indexes per cache block).
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"pimsim/internal/pim"
	"pimsim/pei"
)

func main() {
	// Part 1: drive the hash-probe PEI directly through the public API.
	sys, err := pei.NewSystem(pei.ScaledConfig(), pei.LocalityAware)
	if err != nil {
		log.Fatal(err)
	}
	bucket := sys.Alloc(64, 64)
	sys.WriteU64(bucket+pim.HashBucketKeyOff, 42)     // key
	sys.WriteU64(bucket+pim.HashBucketKeyOff+8, 4242) // payload
	sys.WriteU64(bucket+pim.HashBucketNextOff, 0)     // end of chain
	prog := pei.NewProgram()
	var match []byte
	prog.PEI(pim.OpHashProbe, bucket, pim.U64Input(42), func(out []byte) { match = out })
	if _, err := sys.Run(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash probe for key 42: match=%d (output operand %v)\n\n", match[0], match)

	// Part 2: the full HJ and HG workloads under host vs memory vs
	// locality-aware execution.
	cfg := pei.ScaledConfig()
	for _, name := range []string{"hj", "hg"} {
		fmt.Printf("%s (medium inputs):\n", name)
		params := pei.WorkloadParams{Threads: cfg.Cores, Size: pei.Medium, Scale: 64, OpBudget: 40000}
		for _, mode := range []pei.Mode{pei.HostOnly, pei.PIMOnly, pei.LocalityAware} {
			res, err := pei.RunWorkload(cfg, mode, name, params, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-15s %10d cycles  %12d off-chip bytes  %.1f%% PIM\n",
				res.Mode, res.Cycles, res.OffchipBytes, 100*res.PIMFraction())
		}
		fmt.Println()
	}
}
