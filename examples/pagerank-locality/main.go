// PageRank locality study: the paper's flagship example (§2.2, Figure 1).
// Runs PageRank over a cache-resident graph and a memory-resident graph
// under the three execution policies, showing the crossover that
// motivates locality-aware PEI execution.
//
//	go run ./examples/pagerank-locality
package main

import (
	"fmt"
	"log"

	"pimsim/pei"
)

func run(size pei.Size, scale int, mode pei.Mode) pei.Result {
	cfg := pei.ScaledConfig()
	params := pei.WorkloadParams{Threads: cfg.Cores, Size: size, Scale: scale}
	res, err := pei.RunWorkload(cfg, mode, "pr", params, false)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("PageRank under the three policies (atomic float-add PEIs, Figure 1)")
	fmt.Println()

	cases := []struct {
		label string
		size  pei.Size
		scale int
	}{
		{"cache-resident graph (fits in L3)", pei.Small, 1024},
		{"memory-resident graph (spills L3)", pei.Large, 64},
	}
	for _, c := range cases {
		host := run(c.size, c.scale, pei.HostOnly)
		mem := run(c.size, c.scale, pei.PIMOnly)
		la := run(c.size, c.scale, pei.LocalityAware)
		fmt.Printf("%s:\n", c.label)
		fmt.Printf("  Host-Only       %10d cycles\n", host.Cycles)
		fmt.Printf("  PIM-Only        %10d cycles (%.2fx vs host)\n",
			mem.Cycles, float64(host.Cycles)/float64(mem.Cycles))
		fmt.Printf("  Locality-Aware  %10d cycles (%.2fx vs host), %.1f%% of PEIs offloaded\n",
			la.Cycles, float64(host.Cycles)/float64(la.Cycles), 100*la.PIMFraction())
		fmt.Printf("  off-chip bytes: host %d, pim %d, locality-aware %d\n",
			host.OffchipBytes, mem.OffchipBytes, la.OffchipBytes)
		fmt.Println()
	}
	fmt.Println("locality-aware execution tracks the better policy on both ends —")
	fmt.Println("and on power-law graphs it splits per vertex: hot (high-degree)")
	fmt.Println("vertices stay on the host, cold ones go to memory (§7.1).")
}
