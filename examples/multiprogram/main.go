// Multiprogrammed mix (§7.3): two applications with opposite locality
// share one machine — a cache-friendly streamcluster next to a
// memory-hungry ATF. Software cannot know per-block locality across a
// dynamic mix; the hardware locality monitor steers each PEI anyway.
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	"pimsim/internal/machine"
	"pimsim/internal/workloads"
	"pimsim/pei"
)

func runMix(mode pei.Mode) machine.Result {
	cfg := pei.ScaledConfig()
	half := cfg.Cores / 2

	// App A: ATF on a large graph (streaming, low locality).
	a, err := workloads.New("atf", workloads.Params{
		Threads: half, Size: workloads.Large, Scale: 64, OpBudget: 30000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// App B: streamcluster on a small point set (cache resident).
	b, err := workloads.New("sc", workloads.Params{
		Threads: cfg.Cores - half, Size: workloads.Small, Scale: 256, OpBudget: 30000, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	m, err := machine.New(cfg, mode)
	if err != nil {
		log.Fatal(err)
	}
	streams := append(a.Streams(m), b.Streams(m)...)
	res, err := m.Run(streams)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("multiprogrammed mix: atf-large (cores 0-1) + sc-small (cores 2-3)")
	fmt.Println()
	host := runMix(pei.HostOnly)
	pimOnly := runMix(pei.PIMOnly)
	la := runMix(pei.LocalityAware)

	show := func(label string, r machine.Result) {
		fmt.Printf("  %-15s IPC %.3f  (%.2fx vs Host-Only)  %.1f%% PIM\n",
			label, r.IPC(), r.IPC()/host.IPC(), 100*r.PIMFraction())
	}
	show("Host-Only", host)
	show("PIM-Only", pimOnly)
	show("Locality-Aware", la)
	fmt.Println()
	fmt.Println("locality-aware execution sends the streaming app's PEIs to memory")
	fmt.Println("while keeping the cache-resident app's PEIs on the host — per")
	fmt.Println("cache block, at runtime, with no software involvement (§7.3).")
}
