package trace

import (
	"bytes"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

func TestRoundTripAllOpKinds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// All seven record kinds in one stream, including a PEI carrying the
	// maximum (255-byte) input payload the u8 length field allows.
	maxInput := make([]byte, 255)
	for i := range maxInput {
		maxInput[i] = byte(i * 7)
	}
	barrier := cpu.NewBarrier(2)
	ops := []cpu.Op{
		{Kind: cpu.OpCompute, Cycles: 42},
		{Kind: cpu.OpLoad, Addr: 0x1234},
		{Kind: cpu.OpStore, Addr: 0x5678},
		{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpMin64, Target: 0x9ABC, Input: pim.U64Input(7)}},
		{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpFloatAdd, Target: 0xDEF0, Input: maxInput}},
		{Kind: cpu.OpFence},
		{Kind: cpu.OpBarrier, Barrier: barrier},
		{Kind: cpu.OpDrain},
	}
	for _, op := range ops {
		w.Record(0, op)
	}
	w.Record(1, cpu.Op{Kind: cpu.OpBarrier, Barrier: barrier})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StoreSize != 1<<20 {
		t.Fatalf("store size %d", tr.StoreSize)
	}
	if len(tr.PerThread[0]) != 8 || len(tr.PerThread[1]) != 1 {
		t.Fatalf("per-thread counts %d/%d", len(tr.PerThread[0]), len(tr.PerThread[1]))
	}
	got := tr.PerThread[0]
	for i, op := range ops {
		if got[i].Kind != op.Kind {
			t.Fatalf("op %d kind %d, want %d", i, got[i].Kind, op.Kind)
		}
	}
	if got[0].Cycles != 42 || got[1].Addr != 0x1234 || got[2].Addr != 0x5678 {
		t.Fatalf("scalar ops wrong: %+v", got[:3])
	}
	p := got[3].PEI
	if p.Op != pim.OpMin64 || p.Target != 0x9ABC || len(p.Input) != 8 {
		t.Fatalf("PEI wrong: %+v", p)
	}
	big := got[4].PEI
	if big.Op != pim.OpFloatAdd || big.Target != 0xDEF0 || !bytes.Equal(big.Input, maxInput) {
		t.Fatalf("max-payload PEI not preserved: op %v target %#x len %d", big.Op, big.Target, len(big.Input))
	}
	if got[6].Barrier == nil || got[6].Barrier != tr.PerThread[1][0].Barrier {
		t.Fatal("barrier identity not preserved across threads")
	}
}

// TestConfigDigestHeader pins the v2 header: a digest survives the
// round trip, a digest-less writer emits a byte-identical v1 header
// (old tooling keeps reading it), and records after a v2 header parse
// exactly as they do after a v1 header.
func TestConfigDigestHeader(t *testing.T) {
	const digest = "0123456789abcdef0123456789abcdef"
	write := func(d string) *bytes.Buffer {
		var buf bytes.Buffer
		w, err := NewWriterDigest(&buf, 1, 4096, d)
		if err != nil {
			t.Fatal(err)
		}
		w.Record(0, cpu.Op{Kind: cpu.OpLoad, Addr: 0xBEEF})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	v2 := write(digest)
	if !bytes.HasPrefix(v2.Bytes(), magicV2[:]) {
		t.Fatal("digest-carrying trace did not use the v2 magic")
	}
	tr, err := Read(v2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConfigDigest != digest {
		t.Fatalf("digest %q, want %q", tr.ConfigDigest, digest)
	}
	if len(tr.PerThread[0]) != 1 || tr.PerThread[0][0].Addr != 0xBEEF {
		t.Fatalf("records after v2 header wrong: %+v", tr.PerThread[0])
	}

	v1 := write("")
	if !bytes.HasPrefix(v1.Bytes(), magicV1[:]) {
		t.Fatal("digest-less trace did not keep the v1 magic")
	}
	var legacy bytes.Buffer
	lw, err := NewWriter(&legacy, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	lw.Record(0, cpu.Op{Kind: cpu.OpLoad, Addr: 0xBEEF})
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), legacy.Bytes()) {
		t.Fatal("NewWriterDigest with empty digest diverged from NewWriter bytes")
	}
	tr1, err := Read(v1)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.ConfigDigest != "" {
		t.Fatalf("v1 trace grew a digest %q", tr1.ConfigDigest)
	}
}

func TestReadTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(0, cpu.Op{Kind: cpu.OpCompute, Cycles: 10})
	w.Record(0, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: 64, Input: make([]byte, 255)}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every strict prefix that cuts into a record (header, record
	// preamble, payload, or the 255-byte PEI input) must error rather
	// than silently yield a short trace. Record boundaries — where a
	// truncated file is indistinguishable from a complete one — are the
	// only prefixes allowed to parse.
	recordStarts := map[int]bool{len(full): true}
	const headerLen = 8 + 12
	computeEnd := headerLen + 6
	recordStarts[headerLen] = true
	recordStarts[computeEnd] = true
	for cut := 0; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if recordStarts[cut] {
			if err != nil {
				t.Fatalf("cut at record boundary %d should parse: %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at byte %d of %d not detected", cut, len(full))
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("NOTATRACE....")); err == nil {
		t.Fatal("expected error")
	}
}

func TestRecordReplayWorkload(t *testing.T) {
	cfg := config.Scaled()
	p := workloads.Params{Threads: 2, Size: workloads.Small, Scale: 1024}

	// Live run, recording every op.
	w := workloads.MustNew("bfs", p)
	m := machine.MustNew(cfg, pim.LocalityAware)
	live := w.Streams(m)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, len(live), 0)
	if err != nil {
		t.Fatal(err)
	}
	recStreams := make([]cpu.Stream, len(live))
	for i, s := range live {
		recStreams[i] = &RecordingStream{Inner: s, Writer: tw, Thread: i}
	}
	liveRes, err := m.Run(recStreams)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the header's store size by rewriting (simpler: new writer
	// knew 0; the replay machine sizes its store from the live machine).
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ops := range tr.PerThread {
		total += len(ops)
	}
	if int64(total) != liveRes.Retired {
		t.Fatalf("trace has %d ops, live retired %d", total, liveRes.Retired)
	}

	// Replay onto a fresh machine: identical cycle count (determinism
	// across generation and replay), because the op sequence is the
	// machine's entire input.
	m2 := machine.MustNew(cfg, pim.LocalityAware)
	m2.Store.Alloc(int(m.Store.Size()), 64) // back the recorded addresses
	replayRes, err := m2.Run(tr.Streams())
	if err != nil {
		t.Fatal(err)
	}
	if replayRes.Cycles != liveRes.Cycles {
		t.Fatalf("replay %d cycles, live %d", replayRes.Cycles, liveRes.Cycles)
	}
	if replayRes.PEIMem != liveRes.PEIMem {
		t.Fatalf("replay steering differs: %d vs %d", replayRes.PEIMem, liveRes.PEIMem)
	}
}

func TestReplayTwiceFromOneTrace(t *testing.T) {
	cfg := config.Scaled()
	p := workloads.Params{Threads: 2, Size: workloads.Small, Scale: 2048}
	w := workloads.MustNew("atf", p)
	m := machine.MustNew(cfg, pim.HostOnly)
	live := w.Streams(m)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, len(live), 0)
	rec := make([]cpu.Stream, len(live))
	for i, s := range live {
		rec[i] = &RecordingStream{Inner: s, Writer: tw, Thread: i}
	}
	if _, err := m.Run(rec); err != nil {
		t.Fatal(err)
	}
	tw.Close()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run := func() int64 {
		m2 := machine.MustNew(cfg, pim.HostOnly)
		m2.Store.Alloc(int(m.Store.Size()), 64)
		res, err := m2.Run(tr.Streams())
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Cycles)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("re-replay differs: %d vs %d", a, b)
	}
}

func TestReplayAcrossModes(t *testing.T) {
	// A trace recorded once can drive any machine mode.
	cfg := config.Scaled()
	p := workloads.Params{Threads: 2, Size: workloads.Small, Scale: 2048}
	w := workloads.MustNew("atf", p)
	m := machine.MustNew(cfg, pim.HostOnly)
	live := w.Streams(m)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, len(live), 0)
	rec := make([]cpu.Stream, len(live))
	for i, s := range live {
		rec[i] = &RecordingStream{Inner: s, Writer: tw, Thread: i}
	}
	if _, err := m.Run(rec); err != nil {
		t.Fatal(err)
	}
	tw.Close()
	tr, _ := Read(&buf)
	for _, mode := range []pim.Mode{pim.HostOnly, pim.PIMOnly, pim.LocalityAware} {
		m2 := machine.MustNew(cfg, mode)
		m2.Store.Alloc(int(m.Store.Size()), 64)
		res, err := m2.Run(tr.Streams())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("%v: no progress", mode)
		}
	}
}
