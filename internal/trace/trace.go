// Package trace records and replays workload op streams. A trace
// decouples workload generation from machine simulation: record a
// workload once (or convert a trace from elsewhere), then replay it onto
// any number of machine configurations. Replayed PEIs execute against a
// zeroed functional store of the recorded size — timing is exact, the
// workload's own functional results are not reproduced (use live runs
// with Verify for that).
//
// Format (little-endian):
//
//	magic "PEITR1\n\x00" | threads u32 | storeSize u64
//	magic "PEITR2\n\x00" | threads u32 | storeSize u64 | digestLen u8 | digest
//	records: thread u8 | kind u8 | payload
//	  kind 0 compute: cycles u32
//	  kind 1 load:    addr u64
//	  kind 2 store:   addr u64
//	  kind 3 pei:     op u8 | target u64 | inputLen u8 | input bytes
//	  kind 4 fence:   —
//	  kind 5 barrier: id u8
//	  kind 6 drain:   —
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pimsim/internal/cpu"
	"pimsim/internal/pim"
)

// Two header versions. v1 is the original digest-less header; v2 adds
// a config-digest record identifying the machine configuration the
// trace was recorded on. Writers emit v2 only when a digest is present,
// so digest-less traces stay readable by pre-v2 tooling, and readers
// accept both.
var (
	magicV1 = [8]byte{'P', 'E', 'I', 'T', 'R', '1', '\n', 0}
	magicV2 = [8]byte{'P', 'E', 'I', 'T', 'R', '2', '\n', 0}
)

const (
	recCompute = iota
	recLoad
	recStore
	recPEI
	recFence
	recBarrier
	recDrain
)

// Writer serializes the op streams of one run.
type Writer struct {
	w        *bufio.Writer
	threads  int
	barriers map[*cpu.Barrier]uint8
	err      error
}

// NewWriter writes a trace header for the given thread count and store
// size (the simulated-memory high-water mark the replayer must allocate).
func NewWriter(w io.Writer, threads int, storeSize uint64) (*Writer, error) {
	return NewWriterDigest(w, threads, storeSize, "")
}

// NewWriterDigest is NewWriter plus an optional config digest recorded
// in the header (see Trace.ConfigDigest). An empty digest writes the
// original v1 header, byte-identical to pre-digest traces.
func NewWriterDigest(w io.Writer, threads int, storeSize uint64, digest string) (*Writer, error) {
	if len(digest) > 255 {
		return nil, fmt.Errorf("trace: config digest longer than 255 bytes")
	}
	bw := bufio.NewWriter(w)
	magic := magicV1
	if digest != "" {
		magic = magicV2
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(threads))
	binary.LittleEndian.PutUint64(hdr[4:], storeSize)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if digest != "" {
		if err := bw.WriteByte(byte(len(digest))); err != nil {
			return nil, err
		}
		if _, err := bw.WriteString(digest); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw, threads: threads, barriers: make(map[*cpu.Barrier]uint8)}, nil
}

func (t *Writer) put(b []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}

// Record appends one op from the given thread.
func (t *Writer) Record(thread int, op cpu.Op) {
	if thread < 0 || thread >= t.threads {
		t.err = fmt.Errorf("trace: thread %d out of range", thread)
		return
	}
	var buf [20]byte
	buf[0] = byte(thread)
	switch op.Kind {
	case cpu.OpCompute:
		buf[1] = recCompute
		binary.LittleEndian.PutUint32(buf[2:], uint32(op.Cycles))
		t.put(buf[:6])
	case cpu.OpLoad, cpu.OpStore:
		buf[1] = recLoad
		if op.Kind == cpu.OpStore {
			buf[1] = recStore
		}
		binary.LittleEndian.PutUint64(buf[2:], op.Addr)
		t.put(buf[:10])
	case cpu.OpPEI:
		buf[1] = recPEI
		buf[2] = byte(op.PEI.Op)
		binary.LittleEndian.PutUint64(buf[3:], op.PEI.Target)
		buf[11] = byte(len(op.PEI.Input))
		t.put(buf[:12])
		t.put(op.PEI.Input)
	case cpu.OpFence:
		buf[1] = recFence
		t.put(buf[:2])
	case cpu.OpBarrier:
		id, ok := t.barriers[op.Barrier]
		if !ok {
			if len(t.barriers) >= 255 {
				t.err = fmt.Errorf("trace: too many distinct barriers")
				return
			}
			id = uint8(len(t.barriers))
			t.barriers[op.Barrier] = id
		}
		buf[1] = recBarrier
		buf[2] = id
		t.put(buf[:3])
	case cpu.OpDrain:
		buf[1] = recDrain
		t.put(buf[:2])
	default:
		t.err = fmt.Errorf("trace: unknown op kind %d", op.Kind)
	}
}

// Close flushes the trace.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// RecordingStream wraps a Stream, copying every op into the writer as it
// is consumed.
type RecordingStream struct {
	Inner  cpu.Stream
	Writer *Writer
	Thread int
}

// Next implements cpu.Stream.
func (r *RecordingStream) Next() (cpu.Op, bool) {
	op, ok := r.Inner.Next()
	if ok {
		r.Writer.Record(r.Thread, op)
	}
	return op, ok
}

// Trace is a fully loaded trace ready to replay.
type Trace struct {
	// StoreSize is the simulated-memory size the machine must allocate.
	StoreSize uint64
	// ConfigDigest identifies the machine configuration the trace was
	// recorded on (empty for v1 traces and digest-less recordings).
	// Replays on a different configuration are legitimate — that is the
	// point of traces — but the digest lets tooling flag the mismatch.
	ConfigDigest string
	// PerThread holds each thread's ops in order.
	PerThread [][]cpu.Op
	// barrierParticipants maps trace barrier ids to participant thread
	// sets; barrierObjs holds the shared objects Read installed.
	barrierParticipants map[uint8]map[int]bool
	barrierObjs         map[uint8]*cpu.Barrier
}

// Read loads a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magicV1 && m != magicV2 {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	threads := int(binary.LittleEndian.Uint32(hdr[:4]))
	if threads <= 0 || threads > 1024 {
		return nil, fmt.Errorf("trace: implausible thread count %d", threads)
	}
	t := &Trace{
		StoreSize:           binary.LittleEndian.Uint64(hdr[4:]),
		PerThread:           make([][]cpu.Op, threads),
		barrierParticipants: make(map[uint8]map[int]bool),
	}
	if m == magicV2 {
		n, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading config digest: %w", err)
		}
		digest := make([]byte, int(n))
		if _, err := io.ReadFull(br, digest); err != nil {
			return nil, fmt.Errorf("trace: reading config digest: %w", err)
		}
		t.ConfigDigest = string(digest)
	}
	// First pass: raw records with barrier ids; barriers are resolved
	// into shared objects afterwards, once participant counts are known.
	type rawBarrier struct {
		thread int
		index  int
		id     uint8
	}
	var rawBarriers []rawBarrier
	for {
		var pre [2]byte
		if _, err := io.ReadFull(br, pre[:]); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading record: %w", err)
		}
		thread := int(pre[0])
		if thread >= threads {
			return nil, fmt.Errorf("trace: record for thread %d of %d", thread, threads)
		}
		var op cpu.Op
		switch pre[1] {
		case recCompute:
			var b [4]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, err
			}
			op = cpu.Op{Kind: cpu.OpCompute, Cycles: int64(binary.LittleEndian.Uint32(b[:]))}
		case recLoad, recStore:
			var b [8]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, err
			}
			kind := cpu.OpLoad
			if pre[1] == recStore {
				kind = cpu.OpStore
			}
			op = cpu.Op{Kind: kind, Addr: binary.LittleEndian.Uint64(b[:])}
		case recPEI:
			var b [10]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, err
			}
			input := make([]byte, int(b[9]))
			if _, err := io.ReadFull(br, input); err != nil {
				return nil, err
			}
			op = cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{
				Op:     pim.OpKind(b[0]),
				Target: binary.LittleEndian.Uint64(b[1:9]),
				Input:  input,
			}}
		case recFence:
			op = cpu.Op{Kind: cpu.OpFence}
		case recBarrier:
			id, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			rawBarriers = append(rawBarriers, rawBarrier{thread, len(t.PerThread[thread]), id})
			if t.barrierParticipants[id] == nil {
				t.barrierParticipants[id] = make(map[int]bool)
			}
			t.barrierParticipants[id][thread] = true
			op = cpu.Op{Kind: cpu.OpBarrier} // Barrier filled below
		case recDrain:
			op = cpu.Op{Kind: cpu.OpDrain}
		default:
			return nil, fmt.Errorf("trace: unknown record kind %d", pre[1])
		}
		t.PerThread[thread] = append(t.PerThread[thread], op)
	}
	// Resolve barriers: one shared object per id, sized to its
	// participant count.
	t.barrierObjs = make(map[uint8]*cpu.Barrier)
	for id, parts := range t.barrierParticipants {
		t.barrierObjs[id] = cpu.NewBarrier(len(parts))
	}
	for _, rb := range rawBarriers {
		t.PerThread[rb.thread][rb.index].Barrier = t.barrierObjs[rb.id]
	}
	return t, nil
}

// Streams returns replayable per-thread streams. Each call builds fresh
// barrier objects so a trace can be replayed multiple times.
func (t *Trace) Streams() []cpu.Stream {
	// Re-resolve barriers per replay (Read installed one set; clone by
	// mapping old pointers to new objects sized to the recorded
	// participant counts).
	clones := make(map[*cpu.Barrier]*cpu.Barrier)
	for id, obj := range t.barrierObjs {
		clones[obj] = cpu.NewBarrier(len(t.barrierParticipants[id]))
	}
	streams := make([]cpu.Stream, len(t.PerThread))
	for i, ops := range t.PerThread {
		copied := make([]cpu.Op, len(ops))
		copy(copied, ops)
		for j := range copied {
			if copied[j].Kind == cpu.OpBarrier {
				copied[j].Barrier = clones[copied[j].Barrier]
			}
			if copied[j].Kind == cpu.OpPEI {
				// Fresh PEI instances: replays must not share Output or
				// Done state.
				orig := copied[j].PEI
				copied[j].PEI = &pim.PEI{Op: orig.Op, Target: orig.Target, Input: orig.Input}
			}
		}
		streams[i] = &cpu.SliceStream{Ops: copied}
	}
	return streams
}
