// Package snap is the machine-state serialization layer behind
// checkpoint/warm-start snapshots: a little-endian binary record format
// (the same byte conventions as internal/trace) with explicit section
// tags and a version header, plus a content-addressed on-disk blob
// store with a byte-budget LRU (store.go).
//
// Every stateful component of the simulator implements a
// Snapshot(*snap.Writer) / Restore(*snap.Reader) pair against this
// package. The format is deliberately strict: sections are tagged and
// verified on read, counts are written before variable-length payloads,
// and any mismatch (wrong tag, short read, version skew) poisons the
// reader so a corrupt or mismatched blob fails loudly instead of
// resuming a subtly wrong machine.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// magic identifies a snapshot stream; the trailing digit is the major
// format generation (bump it for incompatible layout changes).
var magic = [8]byte{'P', 'E', 'I', 'S', 'N', 'A', 'P', '1'}

// Version is the snapshot format version written after the magic. It
// participates in the content-address digest, so a format bump
// invalidates old blobs instead of misreading them.
const Version uint32 = 1

// Writer serializes snapshot records to an underlying io.Writer with a
// sticky error: after the first failure every call is a no-op and Err
// reports the cause.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter writes the magic and version header and returns a Writer.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	if _, err := w.Write(magic[:]); err != nil {
		sw.err = err
		return sw
	}
	sw.U32(Version)
	return sw
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Fail poisons the writer with err (for callers that detect an
// unserializable state mid-snapshot, e.g. in-flight transactions).
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
	}
}

// Section writes a 4-character section tag. Readers verify tags, so a
// layout drift between Snapshot and Restore fails at the first
// misaligned section instead of silently transposing state.
func (w *Writer) Section(tag string) {
	if len(tag) != 4 {
		w.Fail(fmt.Errorf("snap: section tag %q must be 4 bytes", tag))
		return
	}
	w.write([]byte(tag))
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F32 writes a float32 as its IEEE-754 bits.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(xs []int64) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.I64(x)
	}
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(xs []uint64) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.U64(x)
	}
}

// maxSliceLen bounds length prefixes read back from a blob, so a
// corrupt stream cannot provoke a multi-gigabyte allocation.
const maxSliceLen = 1 << 32

// Reader deserializes snapshot records with the same sticky-error
// discipline as Writer.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader validates the magic and version header and returns a
// Reader.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: r}
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("snap: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("snap: bad magic %q (not a snapshot stream)", m[:])
	}
	if v := sr.U32(); v != Version {
		return nil, fmt.Errorf("snap: format version %d, want %d", v, Version)
	}
	if sr.err != nil {
		return nil, sr.err
	}
	return sr, nil
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail poisons the reader with err (for callers that detect a state
// mismatch mid-restore, e.g. a geometry change).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(b []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return false
	}
	return true
}

// Section reads a 4-byte tag and errors unless it matches.
func (r *Reader) Section(tag string) {
	var got [4]byte
	if !r.read(got[:]) {
		return
	}
	if string(got[:]) != tag {
		r.Fail(fmt.Errorf("snap: section %q, want %q (layout mismatch)", got[:], tag))
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64-encoded int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// F32 reads an IEEE-754 float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// Len reads a length prefix, rejecting implausible values.
func (r *Reader) Len() int {
	n := r.U64()
	if n > maxSliceLen {
		r.Fail(fmt.Errorf("snap: implausible length %d", n))
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if !r.read(b) {
		return nil
	}
	return b
}

// BytesInto reads a length-prefixed byte payload into dst, which must
// be exactly the recorded length.
func (r *Reader) BytesInto(dst []byte) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail(fmt.Errorf("snap: payload length %d, want %d", n, len(dst)))
		return
	}
	r.read(dst)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = r.I64()
	}
	return xs
}

// I64sInto reads a length-prefixed []int64 into dst, which must be
// exactly the recorded length.
func (r *Reader) I64sInto(dst []int64) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail(fmt.Errorf("snap: slice length %d, want %d", n, len(dst)))
		return
	}
	for i := range dst {
		dst[i] = r.I64()
	}
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = r.U64()
	}
	return xs
}

// ErrNotQuiescent is the sentinel components wrap when asked to
// snapshot or restore with in-flight work outstanding: snapshots are
// only defined at quiescent phase boundaries.
var ErrNotQuiescent = errors.New("snap: machine not quiescent")
