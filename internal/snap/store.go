package snap

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Blob identifies one stored snapshot: the machine's content-address
// digest plus the phase boundary and cycle it was taken at. Filenames
// encode all three (<digest>-p<phase>-c<cycle>.snap) so the store is
// both content-addressed and listable — tests and sweeps can pick the
// deepest usable phase without opening any blob.
type Blob struct {
	Digest string
	Phase  int
	Cycle  int64
	Path   string
	Size   int64
}

var blobName = regexp.MustCompile(`^([0-9a-f]+)-p(\d+)-c(\d+)\.snap$`)

// StoreStats is a point-in-time snapshot of the store's counters, the
// shape Prometheus gauges and the harness's warm-start report consume.
type StoreStats struct {
	Hits, Misses int64
	BytesWritten int64
	Evictions    int64
	Entries      int
	Bytes        int64
}

// Store is a filesystem-backed, content-addressed snapshot blob store
// with a byte-budget LRU (access-time order, mirroring the serve result
// cache's eviction discipline). It is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	budget int64 // bytes; <= 0 means unlimited

	hits, misses, bytesWritten, evictions int64
}

// NewStore opens (creating if needed) a snapshot store rooted at dir
// with the given byte budget (<= 0 for unlimited).
func NewStore(dir string, budget int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snap: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snap: creating store: %w", err)
	}
	return &Store{dir: dir, budget: budget}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// list returns every blob in the store, unsorted.
func (s *Store) list() []Blob {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var blobs []Blob
	for _, e := range ents {
		m := blobName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		phase, err1 := strconv.Atoi(m[2])
		cycle, err2 := strconv.ParseInt(m[3], 10, 64)
		info, err3 := e.Info()
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		blobs = append(blobs, Blob{
			Digest: m[1],
			Phase:  phase,
			Cycle:  cycle,
			Path:   filepath.Join(s.dir, e.Name()),
			Size:   info.Size(),
		})
	}
	return blobs
}

// Best returns the deepest (highest-phase) snapshot stored for digest,
// counting a hit or miss. A hit refreshes the blob's access time so the
// LRU keeps warm prefixes resident.
func (s *Store) Best(digest string) (Blob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best Blob
	found := false
	for _, b := range s.list() {
		if b.Digest != digest {
			continue
		}
		if !found || b.Phase > best.Phase {
			best, found = b, true
		}
	}
	if !found {
		s.misses++
		return Blob{}, false
	}
	s.hits++
	now := time.Now()
	_ = os.Chtimes(best.Path, now, now)
	return best, true
}

// Put stores data as the snapshot for (digest, phase, cycle), then
// evicts least-recently-used blobs beyond the byte budget. The write
// goes through a temp file + rename so concurrent readers never see a
// torn blob.
func (s *Store) Put(digest string, phase int, cycle int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := fmt.Sprintf("%s-p%d-c%d.snap", digest, phase, cycle)
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("snap: store put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	s.bytesWritten += int64(len(data))
	s.evict()
	return nil
}

// evict removes least-recently-used blobs until the store fits the
// budget. Caller holds mu. A single blob larger than the whole budget
// is evicted too — mirroring the result cache's "oversized values are
// not retained" rule.
func (s *Store) evict() {
	if s.budget <= 0 {
		return
	}
	blobs := s.list()
	var used int64
	for _, b := range blobs {
		used += b.Size
	}
	if used <= s.budget {
		return
	}
	sort.Slice(blobs, func(i, j int) bool {
		mi, ei := os.Stat(blobs[i].Path)
		mj, ej := os.Stat(blobs[j].Path)
		if ei != nil || ej != nil {
			return blobs[i].Path < blobs[j].Path
		}
		if !mi.ModTime().Equal(mj.ModTime()) {
			return mi.ModTime().Before(mj.ModTime())
		}
		return blobs[i].Path < blobs[j].Path
	})
	for _, b := range blobs {
		if used <= s.budget {
			break
		}
		if os.Remove(b.Path) == nil {
			used -= b.Size
			s.evictions++
		}
	}
}

// Stats returns a consistent snapshot of the store's counters plus its
// current entry count and resident bytes.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Hits:         s.hits,
		Misses:       s.misses,
		BytesWritten: s.bytesWritten,
		Evictions:    s.evictions,
	}
	for _, b := range s.list() {
		st.Entries++
		st.Bytes += b.Size
	}
	return st
}
