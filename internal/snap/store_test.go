package snap

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreBestPicksDeepestPhase(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const digest = "feedface"
	if _, ok := s.Best(digest); ok {
		t.Fatal("empty store claimed a blob")
	}
	for phase, cycle := range map[int]int64{1: 100, 3: 900, 2: 400} {
		if err := s.Put(digest, phase, cycle, []byte{byte(phase)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("0123ef", 9, 999, []byte("x")) // different digest must not win

	b, ok := s.Best(digest)
	if !ok || b.Phase != 3 || b.Cycle != 900 || b.Digest != digest {
		t.Fatalf("Best = %+v, ok %v; want phase 3 cycle 900", b, ok)
	}
	data, err := os.ReadFile(b.Path)
	if err != nil || len(data) != 1 || data[0] != 3 {
		t.Fatalf("blob contents %v (%v)", data, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 4 {
		t.Fatalf("stats %+v; want 1 hit, 1 miss, 4 entries", st)
	}
	if st.BytesWritten != 4 {
		t.Fatalf("bytes written %d, want 4", st.BytesWritten)
	}
}

func TestStoreEvictsLRUBeyondBudget(t *testing.T) {
	s, err := NewStore(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 100)
	for i, d := range []string{"aaaa", "bbbb", "cccc"} {
		if err := s.Put(d, 1, 10, blob); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is deterministic on coarse
		// filesystem timestamps.
		ts := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(filepath.Join(s.Dir(), d+"-p1-c10.snap"), ts, ts)
	}
	// 300 bytes resident vs a 256 budget: the oldest blob goes.
	s.Put("dddd", 1, 10, []byte{})
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions: %+v", st)
	}
	if st.Bytes > 256 {
		t.Fatalf("store over budget: %+v", st)
	}
	if _, ok := s.Best("aaaa"); ok {
		t.Fatal("oldest blob survived eviction")
	}
	if _, ok := s.Best("cccc"); !ok {
		t.Fatal("newest blob was evicted")
	}
}

func TestStoreBestRefreshesAccessTime(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("aaaa", 1, 10, []byte("x"))
	old := time.Now().Add(-time.Hour)
	path := filepath.Join(s.Dir(), "aaaa-p1-c10.snap")
	os.Chtimes(path, old, old)
	if _, ok := s.Best("aaaa"); !ok {
		t.Fatal("blob vanished")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(old.Add(time.Minute)) {
		t.Fatalf("hit did not refresh access time: %v", info.ModTime())
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a blob"), 0o644)
	os.WriteFile(filepath.Join(dir, "zzzz-p1-c10.snap.tmp123"), []byte("torn"), 0o644)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign files counted as blobs: %+v", st)
	}
	if _, ok := s.Best("zzzz"); ok {
		t.Fatal("temp file served as a blob")
	}
}
