package snap

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("TEST")
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 62)
	w.I64(-42)
	w.Int(7)
	w.F64(math.Pi)
	w.F32(2.5)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.I64s([]int64{-1, 0, 1})
	w.U64s([]uint64{10, 20})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section("TEST")
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 %#x", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Fatalf("U64 %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Fatalf("Int %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 %v", got)
	}
	if got := r.F32(); got != 2.5 {
		t.Fatalf("F32 %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String %q", got)
	}
	is := r.I64s()
	if len(is) != 3 || is[0] != -1 || is[2] != 1 {
		t.Fatalf("I64s %v", is)
	}
	us := r.U64s()
	if len(us) != 2 || us[0] != 10 || us[1] != 20 {
		t.Fatalf("U64s %v", us)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionMismatchPoisonsReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("AAAA")
	w.I64(1)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section("BBBB")
	if r.Err() == nil {
		t.Fatal("section mismatch went undetected")
	}
	// Sticky: subsequent reads stay failed and return zero values.
	if v := r.I64(); v != 0 || r.Err() == nil {
		t.Fatalf("poisoned reader returned %d", v)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTASNAP-extra--"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version+1)
	buf.Write(v[:])
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(maxSliceLen + 1) // forged length prefix
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Bytes(); got != nil || r.Err() == nil {
		t.Fatalf("forged length produced %d bytes, err %v", len(got), r.Err())
	}
}

func TestTruncatedStreamFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("TRNC")
	w.Bytes(make([]byte, 64))
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	r.Section("TRNC")
	if got := r.Bytes(); r.Err() == nil {
		t.Fatalf("truncated payload read %d bytes without error", len(got))
	}
}
