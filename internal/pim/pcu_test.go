package pim

import (
	"testing"

	"pimsim/internal/sim"
)

func TestOperandBufferLimitsInFlight(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 2, 1, 1)
	got := 0
	for i := 0; i < 5; i++ {
		p.Acquire(func() { got++ })
	}
	if got != 2 {
		t.Fatalf("granted = %d, want 2 (buffer size)", got)
	}
	if p.BufferFullStalls != 3 {
		t.Fatalf("stalls = %d, want 3", p.BufferFullStalls)
	}
	p.Release()
	if got != 3 {
		t.Fatalf("granted after release = %d, want 3", got)
	}
	for p.InFlight() > 0 {
		p.Release()
	}
	if got != 5 {
		t.Fatalf("granted = %d, want all 5", got)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Release()
}

func TestComputePipelinedAtWidthOne(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 4, 1, 1)
	var t1, t2 sim.Cycle
	// Pipelined single-issue logic: initiation interval 1, latency 10.
	p.Compute(10, func() { t1 = k.Now() })
	p.Compute(10, func() { t2 = k.Now() })
	k.Run()
	if t1 != 10 || t2 != 11 {
		t.Fatalf("completions %d,%d; want 10,11", t1, t2)
	}
}

func TestComputeParallelAtWidthTwo(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 4, 2, 1)
	var t1, t2, t3 sim.Cycle
	p.Compute(10, func() { t1 = k.Now() })
	p.Compute(10, func() { t2 = k.Now() })
	p.Compute(10, func() { t3 = k.Now() })
	k.Run()
	// Two ports: the third op initiates one cycle after the first.
	if t1 != 10 || t2 != 10 || t3 != 11 {
		t.Fatalf("completions %d,%d,%d; want 10,10,11", t1, t2, t3)
	}
}

func TestClockDivisorSlowsCompute(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 4, 1, 2) // memory-side PCU at 2 GHz
	var d1, d2 sim.Cycle
	p.Compute(10, func() { d1 = k.Now() })
	p.Compute(10, func() { d2 = k.Now() })
	k.Run()
	if d1 != 20 {
		t.Fatalf("completion at %d, want 20 (10 cycles at half clock)", d1)
	}
	if d2 != 22 {
		t.Fatalf("second completion at %d, want 22 (one 2-cycle initiation later)", d2)
	}
}

func TestComputeCountsExecuted(t *testing.T) {
	k := sim.NewKernel()
	p := NewPCU(k, 4, 1, 1)
	for i := 0; i < 7; i++ {
		p.Compute(1, func() {})
	}
	k.Run()
	if p.Executed != 7 {
		t.Fatalf("Executed = %d, want 7", p.Executed)
	}
}
