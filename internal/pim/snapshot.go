package pim

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes the monitor's tag array: every entry (valid,
// tag, LRU stamp, ignore flag) plus the LRU clock, so post-resume
// steering decisions replay the cold run's exactly.
func (m *Monitor) SnapshotTo(w *snap.Writer) {
	w.Section("LMON")
	w.Int(m.sets)
	w.Int(m.ways)
	w.U64(m.clock)
	for i := range m.entries {
		e := &m.entries[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.U64(e.lru)
		w.Bool(e.ignore)
	}
}

// RestoreFrom loads monitor state into a monitor of identical geometry.
func (m *Monitor) RestoreFrom(r *snap.Reader) {
	r.Section("LMON")
	sets, ways := r.Int(), r.Int()
	if r.Err() != nil {
		return
	}
	if sets != m.sets || ways != m.ways {
		r.Fail(fmt.Errorf("pim: monitor geometry %dx%d, snapshot has %dx%d", m.sets, m.ways, sets, ways))
		return
	}
	m.clock = r.U64()
	for i := range m.entries {
		e := &m.entries[i]
		e.valid = r.Bool()
		e.tag = r.U64()
		e.lru = r.U64()
		e.ignore = r.Bool()
	}
}

// SnapshotTo serializes the PCU's execution-port horizons and lifetime
// counters. The operand buffer must be empty with no queued waiters.
func (p *PCU) SnapshotTo(w *snap.Writer) {
	w.Section("PCU ")
	if p.inFlight != 0 || p.waitHead < len(p.waitQ) {
		w.Fail(fmt.Errorf("%w: PCU has %d in-flight PEIs and %d waiters",
			snap.ErrNotQuiescent, p.inFlight, len(p.waitQ)-p.waitHead))
		return
	}
	w.Int(len(p.ports))
	for _, c := range p.ports {
		w.I64(c)
	}
	w.I64(p.BufferFullStalls)
	w.I64(p.Executed)
}

// RestoreFrom loads PCU state saved by SnapshotTo. The target PCU must
// be quiescent: an in-flight PEI or a parked waiter would resume
// against the restored port horizons.
func (p *PCU) RestoreFrom(r *snap.Reader) {
	r.Section("PCU ")
	if p.inFlight != 0 || p.waitHead < len(p.waitQ) {
		r.Fail(fmt.Errorf("%w: restore target PCU has %d in-flight PEIs and %d waiters",
			snap.ErrNotQuiescent, p.inFlight, len(p.waitQ)-p.waitHead))
		return
	}
	ports := r.Int()
	if r.Err() != nil {
		return
	}
	if ports != len(p.ports) {
		r.Fail(fmt.Errorf("pim: PCU has %d ports, snapshot has %d", len(p.ports), ports))
		return
	}
	for i := range p.ports {
		p.ports[i] = r.I64()
	}
	p.BufferFullStalls = r.I64()
	p.Executed = r.I64()
}

// assertIdle fails the snapshot if the directory holds any lock, waiter,
// or unfenced writer. A quiescent directory is stateless (its counters
// live in the stats registry), so idleness is asserted rather than
// serialized.
func (d *Directory) assertIdle(fail func(error)) {
	if d.outstandingWriters != 0 || len(d.fenceWaiters) != 0 {
		fail(fmt.Errorf("%w: directory has %d outstanding writers and %d fence waiters",
			snap.ErrNotQuiescent, d.outstandingWriters, len(d.fenceWaiters)))
		return
	}
	for i := range d.entries {
		e := &d.entries[i]
		if e.readers != 0 || e.writer || e.queued() != 0 {
			fail(fmt.Errorf("%w: directory entry %d held (readers=%d writer=%v queued=%d)",
				snap.ErrNotQuiescent, i, e.readers, e.writer, e.queued()))
			return
		}
	}
	if len(d.idealLocks) != 0 {
		fail(fmt.Errorf("%w: ideal directory holds %d live locks", snap.ErrNotQuiescent, len(d.idealLocks)))
	}
}

// SnapshotTo serializes the PMU: the locality monitor, the PEI latency
// histogram, and every host- and memory-side PCU. The directory must be
// idle (asserted, not serialized) and no PEI transaction in flight —
// pools are recycling capacity only and never appear in the stream.
func (p *PMU) SnapshotTo(w *snap.Writer) {
	w.Section("PMU ")
	p.Dir.assertIdle(w.Fail)
	if w.Err() != nil {
		return
	}
	w.Int(len(p.HostPCU))
	w.Int(len(p.MemPCU))
	p.Mon.SnapshotTo(w)
	p.PEILatency.SnapshotTo(w)
	for _, u := range p.HostPCU {
		u.SnapshotTo(w)
	}
	for _, u := range p.MemPCU {
		u.SnapshotTo(w)
	}
}

// RestoreFrom loads PMU state saved by SnapshotTo.
func (p *PMU) RestoreFrom(r *snap.Reader) {
	r.Section("PMU ")
	hosts, mems := r.Int(), r.Int()
	if r.Err() != nil {
		return
	}
	if hosts != len(p.HostPCU) || mems != len(p.MemPCU) {
		r.Fail(fmt.Errorf("pim: PMU has %d host / %d mem PCUs, snapshot has %d / %d",
			len(p.HostPCU), len(p.MemPCU), hosts, mems))
		return
	}
	p.Mon.RestoreFrom(r)
	p.PEILatency.RestoreFrom(r)
	for _, u := range p.HostPCU {
		u.RestoreFrom(r)
	}
	for _, u := range p.MemPCU {
		u.RestoreFrom(r)
	}
}
