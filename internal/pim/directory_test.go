package pim

import (
	"math/rand"
	"testing"

	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

func newTestDirectory(entries int, ideal bool) (*sim.Kernel, *Directory) {
	k := sim.NewKernel()
	return k, NewDirectory(k, entries, 2, ideal, stats.NewRegistry())
}

func TestReadersShareEntry(t *testing.T) {
	k, d := newTestDirectory(16, false)
	granted := 0
	d.Acquire(0x40, false, func() { granted++ })
	d.Acquire(0x40, false, func() { granted++ })
	k.Run()
	if granted != 2 {
		t.Fatalf("granted = %d, want 2 concurrent readers", granted)
	}
}

func TestWriterExcludesWriter(t *testing.T) {
	k, d := newTestDirectory(16, false)
	var order []int
	d.Acquire(0x40, true, func() { order = append(order, 1) })
	d.Acquire(0x40, true, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 1 {
		t.Fatalf("second writer granted while first holds lock: %v", order)
	}
	d.Release(0x40, true)
	k.Run()
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("second writer not granted after release: %v", order)
	}
}

func TestWriterWaitsForReaders(t *testing.T) {
	k, d := newTestDirectory(16, false)
	writerIn := false
	d.Acquire(0x40, false, func() {})
	d.Acquire(0x40, false, func() {})
	k.Run()
	d.Acquire(0x40, true, func() { writerIn = true })
	k.Run()
	if writerIn {
		t.Fatal("writer granted while readers active")
	}
	d.Release(0x40, false)
	k.Run()
	if writerIn {
		t.Fatal("writer granted with one reader still active")
	}
	d.Release(0x40, false)
	k.Run()
	if !writerIn {
		t.Fatal("writer not granted after readers drained")
	}
}

func TestWaitingWriterBarsNewReaders(t *testing.T) {
	k, d := newTestDirectory(16, false)
	var events []string
	d.Acquire(0x40, false, func() { events = append(events, "r1") })
	k.Run()
	d.Acquire(0x40, true, func() { events = append(events, "w") })
	d.Acquire(0x40, false, func() { events = append(events, "r2") })
	k.Run()
	if len(events) != 1 {
		t.Fatalf("events = %v; writer must wait and bar r2", events)
	}
	d.Release(0x40, false) // r1 done -> writer in
	k.Run()
	if len(events) != 2 || events[1] != "w" {
		t.Fatalf("events = %v; want writer next (no reader overtaking)", events)
	}
	d.Release(0x40, true)
	k.Run()
	if len(events) != 3 || events[2] != "r2" {
		t.Fatalf("events = %v; r2 should follow writer", events)
	}
}

func TestAliasedBlocksSerialize(t *testing.T) {
	// With 2 entries the 1-bit fold is the parity of the block number:
	// blocks 0 (0b00) and 3 (0b11) both fold to 0 and alias.
	k, d := newTestDirectory(2, false)
	granted2 := false
	d.Acquire(0*64, true, func() {})
	d.Acquire(3*64, true, func() { granted2 = true })
	k.Run()
	if granted2 {
		t.Fatal("aliasing writers should serialize (false positive)")
	}
	d.Release(0*64, true)
	k.Run()
	if !granted2 {
		t.Fatal("aliased writer never granted")
	}
}

func TestIdealDirectoryNoAliasing(t *testing.T) {
	k, d := newTestDirectory(0, true)
	granted := 0
	for blk := uint64(0); blk < 100; blk++ {
		d.Acquire(blk*64, true, func() { granted++ })
	}
	k.Run()
	if granted != 100 {
		t.Fatalf("granted = %d, want 100 (distinct blocks never alias)", granted)
	}
	for blk := uint64(0); blk < 100; blk++ {
		d.Release(blk*64, true)
	}
	if d.OutstandingWriters() != 0 {
		t.Fatal("writer accounting leaked")
	}
}

func TestFenceImmediateWithoutWriters(t *testing.T) {
	k, d := newTestDirectory(16, false)
	d.Acquire(0x40, false, func() {}) // reader does not block pfence
	k.Run()
	fenced := false
	d.Fence(func() { fenced = true })
	k.Run()
	if !fenced {
		t.Fatal("fence must not wait for readers")
	}
}

func TestFenceWaitsForAllWriters(t *testing.T) {
	k, d := newTestDirectory(16, false)
	d.Acquire(0x40, true, func() {})
	d.Acquire(0x80, true, func() {})
	k.Run()
	fenced := false
	d.Fence(func() { fenced = true })
	k.Run()
	if fenced {
		t.Fatal("fence fired with writers outstanding")
	}
	d.Release(0x40, true)
	k.Run()
	if fenced {
		t.Fatal("fence fired with one writer outstanding")
	}
	d.Release(0x80, true)
	k.Run()
	if !fenced {
		t.Fatal("fence never fired")
	}
}

func TestFenceCoversQueuedWriters(t *testing.T) {
	k, d := newTestDirectory(16, false)
	w2done := false
	d.Acquire(0x40, true, func() {})
	d.Acquire(0x40, true, func() { w2done = true }) // queued
	k.Run()
	fenced := false
	d.Fence(func() { fenced = true })
	d.Release(0x40, true) // w2 now runs
	k.Run()
	if !w2done {
		t.Fatal("queued writer never granted")
	}
	if fenced {
		t.Fatal("fence fired before queued writer completed")
	}
	d.Release(0x40, true)
	k.Run()
	if !fenced {
		t.Fatal("fence never fired after queued writer")
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	_, d := newTestDirectory(16, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Release(0x40, true)
}

// Property: under random interleavings of acquires and releases, the
// invariant holds that no entry ever has a writer concurrently with any
// other holder, and every acquire is eventually granted.
func TestDirectoryInvariantUnderRandomLoad(t *testing.T) {
	k, d := newTestDirectory(8, false)
	rng := rand.New(rand.NewSource(99))
	type held struct {
		target uint64
		writer bool
	}
	var active []held
	granted, issued := 0, 0
	violation := false

	countHolders := func(target uint64) (readers, writers int) {
		for _, h := range active {
			// Aliasing means same-entry conflicts; approximate by block
			// since aliased blocks only over-serialize (safe).
			if h.target == target {
				if h.writer {
					writers++
				} else {
					readers++
				}
			}
		}
		return
	}

	for i := 0; i < 400; i++ {
		if len(active) > 0 && rng.Intn(2) == 0 {
			idx := rng.Intn(len(active))
			h := active[idx]
			active = append(active[:idx], active[idx+1:]...)
			d.Release(h.target, h.writer)
			k.Run()
			continue
		}
		target := uint64(rng.Intn(16)) * 64
		writer := rng.Intn(2) == 0
		issued++
		d.Acquire(target, writer, func() {
			r, w := countHolders(target)
			if writer && (r > 0 || w > 0) {
				violation = true
			}
			if !writer && w > 0 {
				violation = true
			}
			granted++
			active = append(active, held{target, writer})
		})
		k.Run()
	}
	for len(active) > 0 {
		h := active[0]
		active = active[1:]
		d.Release(h.target, h.writer)
		k.Run()
	}
	if violation {
		t.Fatal("atomicity invariant violated")
	}
	if granted != issued {
		t.Fatalf("granted %d of %d acquires", granted, issued)
	}
}
