package pim

import (
	"pimsim/internal/sim"
)

// PCU is a PEI computation unit (§4.2): computation logic shared by all
// PEI kinds plus a small operand buffer. The operand buffer bounds
// in-flight PEIs at this unit — memory accesses of buffered PEIs overlap
// freely, while the computation logic serializes at the configured issue
// width. Host-side PCUs run at the CPU clock; memory-side PCUs at the
// (slower) logic-die clock, expressed via clockDiv.
type PCU struct {
	k        sim.Scheduler
	entries  int
	clockDiv sim.Cycle

	inFlight int
	// waitQ with waitHead is a head-indexed FIFO: popping advances the
	// head and the slice is reset (retaining capacity) when it empties,
	// so steady-state churn never reallocates.
	waitQ    []sim.Cont
	waitHead int

	// ports holds the next-free cycle of each execution port
	// (len = execution width).
	ports []sim.Cycle

	// BufferFullStalls counts PEIs that had to wait for an operand
	// buffer entry; Executed counts completed computations.
	BufferFullStalls int64
	Executed         int64
}

// NewPCU creates a PCU with the given operand buffer size, execution
// width and clock divisor (1 = CPU clock, 2 = 2 GHz).
func NewPCU(k sim.Scheduler, entries, width int, clockDiv sim.Cycle) *PCU {
	if entries <= 0 || width <= 0 || clockDiv <= 0 {
		panic("pim: bad PCU parameters")
	}
	return &PCU{k: k, entries: entries, clockDiv: clockDiv, ports: make([]sim.Cycle, width)}
}

// Acquire obtains an operand buffer entry, queueing if all are in use.
// granted runs once the entry is held; the holder must call Release.
// Closure form of AcquireEvent.
func (p *PCU) Acquire(granted func()) {
	p.AcquireEvent(sim.Call(granted))
}

// AcquireEvent is the allocation-free form of Acquire: granted is
// invoked (synchronously when an entry is free) once the entry is held.
func (p *PCU) AcquireEvent(granted sim.Cont) {
	if p.inFlight < p.entries {
		p.inFlight++
		granted.Invoke()
		return
	}
	p.BufferFullStalls++
	p.waitQ = append(p.waitQ, granted)
}

// Release frees an operand buffer entry and admits the next waiter.
func (p *PCU) Release() {
	if p.waitHead < len(p.waitQ) {
		next := p.waitQ[p.waitHead]
		p.waitQ[p.waitHead] = sim.Cont{} // drop the handler reference
		p.waitHead++
		if p.waitHead == len(p.waitQ) {
			p.waitQ = p.waitQ[:0]
			p.waitHead = 0
		}
		next.Invoke()
		return
	}
	p.inFlight--
	if p.inFlight < 0 {
		panic("pim: PCU release without acquire")
	}
}

// InFlight reports current operand-buffer occupancy.
func (p *PCU) InFlight() int { return p.inFlight }

// Compute schedules one computation: the issuing port is busy for one
// PCU cycle (the logic is pipelined with an initiation interval of one),
// and done runs after the operation's full latency. A width-w PCU thus
// initiates up to w operations per PCU cycle, matching the paper's
// single-issue (per-PCU) computation logic whose latency is hidden by
// the operand buffer (§4.2).
func (p *PCU) Compute(cycles int64, done func()) {
	p.ComputeEvent(cycles, sim.Call(done))
}

// ComputeEvent is the allocation-free form of Compute.
func (p *PCU) ComputeEvent(cycles int64, done sim.Cont) {
	now := p.k.Now()
	best := 0
	for i := range p.ports {
		if p.ports[i] < p.ports[best] {
			best = i
		}
	}
	start := p.ports[best]
	if start < now {
		start = now
	}
	p.ports[best] = start + p.clockDiv
	end := start + sim.Cycle(cycles)*p.clockDiv
	p.Executed++
	p.k.AtEvent(end, done.H, done.Arg)
}
