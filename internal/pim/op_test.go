package pim

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"pimsim/internal/memlayout"
)

func TestTable1OperandSizes(t *testing.T) {
	want := []struct {
		op      OpKind
		r, w    bool
		in, out int
	}{
		{OpInc64, true, true, 0, 0},
		{OpMin64, true, true, 8, 0},
		{OpFloatAdd, true, true, 8, 0},
		{OpHashProbe, true, false, 8, 9},
		{OpHistBin, true, false, 1, 16},
		{OpEuclideanDist, true, false, 64, 4},
		{OpDotProduct, true, false, 32, 8},
	}
	for _, w := range want {
		info := w.op.Info()
		if info.Reader != w.r || info.Writer != w.w || info.InputBytes != w.in || info.OutputBytes != w.out {
			t.Errorf("%s: got %+v, want R=%v W=%v in=%d out=%d", info.Name, info, w.r, w.w, w.in, w.out)
		}
	}
}

func TestValidateOperandSize(t *testing.T) {
	p := &PEI{Op: OpMin64, Target: 64, Input: make([]byte, 4)}
	if err := p.Validate(); err == nil {
		t.Fatal("expected operand-size error")
	}
	p.Input = make([]byte, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateSingleCacheBlockRestriction(t *testing.T) {
	// A dot product (32 B) starting 40 bytes into a block crosses it.
	p := &PEI{Op: OpDotProduct, Target: 64 + 40, Input: make([]byte, 32)}
	if err := p.Validate(); err == nil {
		t.Fatal("expected block-crossing error")
	}
	p.Target = 64 + 32
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteInc64(t *testing.T) {
	s := memlayout.NewStore()
	a := s.Alloc(8, 8)
	s.WriteU64(a, 41)
	if out := Execute(OpInc64, s, a, nil); out != nil {
		t.Fatalf("inc output = %v, want nil", out)
	}
	if s.ReadU64(a) != 42 {
		t.Fatalf("value = %d, want 42", s.ReadU64(a))
	}
}

func TestExecuteMin64Signed(t *testing.T) {
	s := memlayout.NewStore()
	a := s.Alloc(8, 8)
	s.WriteU64(a, 100)
	Execute(OpMin64, s, a, U64Input(7))
	if s.ReadU64(a) != 7 {
		t.Fatalf("min(100,7) = %d", s.ReadU64(a))
	}
	Execute(OpMin64, s, a, U64Input(50))
	if s.ReadU64(a) != 7 {
		t.Fatalf("min must not increase: %d", s.ReadU64(a))
	}
	// Signed comparison: -1 < 7.
	Execute(OpMin64, s, a, U64Input(uint64(0xFFFFFFFFFFFFFFFF)))
	if int64(s.ReadU64(a)) != -1 {
		t.Fatalf("signed min failed: %d", int64(s.ReadU64(a)))
	}
}

func TestExecuteFloatAdd(t *testing.T) {
	s := memlayout.NewStore()
	a := s.Alloc(8, 8)
	s.WriteF64(a, 1.5)
	Execute(OpFloatAdd, s, a, F64Input(2.25))
	if got := s.ReadF64(a); got != 3.75 {
		t.Fatalf("fadd = %v, want 3.75", got)
	}
}

func TestExecuteHashProbe(t *testing.T) {
	s := memlayout.NewStore()
	b := s.Alloc(64, 64)
	s.WriteU64(b+HashBucketNextOff, 0xBEEF00)
	s.WriteU64(b+HashBucketKeyOff+0*HashBucketStride, 111)
	s.WriteU64(b+HashBucketKeyOff+1*HashBucketStride, 222)
	s.WriteU64(b+HashBucketKeyOff+2*HashBucketStride, 333)

	out := Execute(OpHashProbe, s, b, U64Input(222))
	if out[0] != 1 {
		t.Fatal("expected match for key 222")
	}
	if next := binary.LittleEndian.Uint64(out[1:]); next != 0xBEEF00 {
		t.Fatalf("next = %#x, want 0xBEEF00", next)
	}
	out = Execute(OpHashProbe, s, b, U64Input(999))
	if out[0] != 0 {
		t.Fatal("expected no match for key 999")
	}
	if next := binary.LittleEndian.Uint64(out[1:]); next != 0xBEEF00 {
		t.Fatal("next pointer must be returned even on miss")
	}
}

func TestExecuteHistBin(t *testing.T) {
	s := memlayout.NewStore()
	b := s.Alloc(64, 64)
	for i := 0; i < 16; i++ {
		s.WriteU32(b+uint64(i*4), uint32(i)<<24)
	}
	out := Execute(OpHistBin, s, b, []byte{24})
	if len(out) != 16 {
		t.Fatalf("output %d bytes, want 16", len(out))
	}
	for i := 0; i < 16; i++ {
		if out[i] != byte(i) {
			t.Fatalf("bin[%d] = %d, want %d", i, out[i], i)
		}
	}
}

func TestExecuteEuclideanDist(t *testing.T) {
	s := memlayout.NewStore()
	b := s.Alloc(64, 64)
	input := make([]byte, 64)
	for i := 0; i < 16; i++ {
		s.WriteF32(b+uint64(i*4), float32(i))
		binary.LittleEndian.PutUint32(input[i*4:], math.Float32bits(float32(i)+1))
	}
	out := Execute(OpEuclideanDist, s, b, input)
	// Each dimension differs by 1: squared distance = 16.
	if got := math.Float32frombits(binary.LittleEndian.Uint32(out)); got != 16 {
		t.Fatalf("distance = %v, want 16", got)
	}
}

func TestExecuteDotProduct(t *testing.T) {
	s := memlayout.NewStore()
	b := s.Alloc(32, 64)
	input := make([]byte, 32)
	for i := 0; i < 4; i++ {
		s.WriteF64(b+uint64(i*8), float64(i+1)) // 1,2,3,4
		binary.LittleEndian.PutUint64(input[i*8:], math.Float64bits(2))
	}
	out := Execute(OpDotProduct, s, b, input)
	if got := math.Float64frombits(binary.LittleEndian.Uint64(out)); got != 20 {
		t.Fatalf("dot = %v, want 20", got)
	}
}

// Property: a sequence of OpMin64 leaves the minimum of the initial
// value and all inputs (atomic-min semantics).
func TestMin64SequenceProperty(t *testing.T) {
	f := func(init int64, inputs []int64) bool {
		s := memlayout.NewStore()
		a := s.Alloc(8, 8)
		s.WriteU64(a, uint64(init))
		want := init
		for _, v := range inputs {
			Execute(OpMin64, s, a, U64Input(uint64(v)))
			if v < want {
				want = v
			}
		}
		return int64(s.ReadU64(a)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OpInc64 applied n times adds n.
func TestInc64CountProperty(t *testing.T) {
	f := func(n uint8, init uint32) bool {
		s := memlayout.NewStore()
		a := s.Alloc(8, 8)
		s.WriteU64(a, uint64(init))
		for i := 0; i < int(n); i++ {
			Execute(OpInc64, s, a, nil)
		}
		return s.ReadU64(a) == uint64(init)+uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	if OpInc64.String() != "inc64" || OpDotProduct.String() != "dot" {
		t.Fatal("op names wrong")
	}
}
