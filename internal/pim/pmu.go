package pim

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/cache"
	"pimsim/internal/config"
	"pimsim/internal/hmc"
	"pimsim/internal/memlayout"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Mode selects the system configuration of §7: where PEIs may execute
// and whether the locality monitor is consulted.
type Mode int

const (
	// HostOnly executes every PEI on host-side PCUs (monitor disabled).
	HostOnly Mode = iota
	// PIMOnly executes every PEI on memory-side PCUs (monitor disabled).
	PIMOnly
	// LocalityAware steers each PEI by the locality monitor (and
	// balanced dispatch when enabled).
	LocalityAware
	// IdealHost models the idealized conventional machine: PEIs are
	// plain host instructions with a free, infinite PIM directory.
	IdealHost
)

func (m Mode) String() string {
	switch m {
	case HostOnly:
		return "Host-Only"
	case PIMOnly:
		return "PIM-Only"
	case LocalityAware:
		return "Locality-Aware"
	default:
		return "Ideal-Host"
	}
}

// PMU is the PEI management unit (§4.3) plus the PCUs it coordinates.
// It owns PEI atomicity (PIM directory), coherence for offloaded PEIs
// (back-invalidation / back-writeback through the hierarchy), locality
// profiling, and the dispatch decision.
type PMU struct {
	k     *sim.Kernel
	cfg   *config.Config
	reg   *stats.Registry
	hier  *cache.Hierarchy
	chain *hmc.Chain
	store *memlayout.Store

	Mode Mode

	Dir     *Directory
	Mon     *Monitor
	HostPCU []*PCU // per core
	MemPCU  []*PCU // per vault (global index)

	// PEILatency records issue-to-retire latency of every PEI.
	PEILatency *stats.Histogram

	// Per-PEI counters, resolved at construction; cOp is indexed by
	// OpKind ("pei.op.<name>").
	cTotal, cHost, cMem stats.Handle
	cFences, cBalanced  stats.Handle
	cOp                 []stats.Handle
}

// NewPMU wires the PMU into an existing hierarchy and chain. It installs
// the locality monitor's L3 hook.
func NewPMU(k *sim.Kernel, cfg *config.Config, hier *cache.Hierarchy, chain *hmc.Chain,
	store *memlayout.Store, mode Mode, reg *stats.Registry) *PMU {

	idealDir := cfg.IdealDirectory || mode == IdealHost
	p := &PMU{
		k: k, cfg: cfg, reg: reg, hier: hier, chain: chain, store: store,
		Mode: mode,
		Dir:  NewDirectory(k, cfg.DirectoryEntries, cfg.DirectoryLatency, idealDir, reg),
	}
	p.PEILatency = stats.NewHistogram(16, 64, 256, 1024, 4096, 16384)
	monSets := cfg.L3.Sets()
	p.Mon = NewMonitor(monSets, cfg.L3.Ways, cfg.PartialTagBits, cfg.UseIgnoreBit, cfg.IdealMonitor, reg)
	if mode == LocalityAware {
		hier.OnL3Access = p.Mon.OnCacheAccess
	}
	for c := 0; c < cfg.Cores; c++ {
		p.HostPCU = append(p.HostPCU, NewPCU(k, cfg.OperandBufferEntries, cfg.PCUExecWidth, 1))
	}
	for v := 0; v < cfg.Mapping().VaultsTotal(); v++ {
		p.MemPCU = append(p.MemPCU, NewPCU(k, cfg.OperandBufferEntries, cfg.PCUExecWidth, cfg.MemPCUClockDiv))
	}
	p.cTotal = reg.Counter("pei.total")
	p.cHost = reg.Counter("pei.host")
	p.cMem = reg.Counter("pei.mem")
	p.cFences = reg.Counter("pei.fences")
	p.cBalanced = reg.Counter("pei.balanced_to_host")
	p.cOp = make([]stats.Handle, len(Ops))
	for op := range Ops {
		p.cOp[op] = reg.Counter("pei.op." + Ops[op].Name)
	}
	return p
}

// Issue starts execution of a PEI. The PEI's Done callback runs when it
// retires; its Output field then holds the output operand.
func (p *PMU) Issue(pei *PEI) {
	if err := pei.Validate(); err != nil {
		panic(err)
	}
	p.cTotal.Inc()
	p.cOp[pei.Op].Inc()
	start := p.k.Now()
	userDone := pei.Done
	pei.Done = func() {
		p.PEILatency.Observe(int64(p.k.Now() - start))
		if userDone != nil {
			userDone()
		}
	}

	if p.Mode == IdealHost {
		p.issueIdeal(pei)
		return
	}
	if p.cfg.HMC2AtomicsMode {
		// HMC 2.0-style native atomic: straight to the vault, no PIM
		// directory, no coherence action (the target region is treated
		// as non-cacheable, as prior PIM proposals require). The vault's
		// inseparable-group scheduling provides per-block atomicity.
		p.k.Schedule(p.cfg.NoCLatency, func() { p.sendPIMOpRaw(pei, false) })
		return
	}

	// Step 1-2 (§4.5): operands to the host PCU's memory-mapped
	// registers, then the PMU consult — directory lock and locality
	// monitor in parallel; the monitor's latency is covered by the
	// crossbar hop to the PMU. Writer PEIs are registered for pfence
	// ordering at issue, before the lock request reaches the directory.
	info := pei.Op.Info()
	if info.Writer {
		p.Dir.RegisterWriter()
	}
	p.k.Schedule(p.cfg.NoCLatency+p.cfg.MonitorLatency, func() {
		p.Dir.AcquireRegistered(pei.Target, info.Writer, func() {
			if p.decideHost(pei) {
				p.executeHost(pei)
			} else {
				p.executeMemory(pei)
			}
		})
	})
}

// decideHost applies the mode's steering policy.
func (p *PMU) decideHost(pei *PEI) bool {
	switch p.Mode {
	case HostOnly:
		return true
	case PIMOnly:
		return false
	}
	blk := addr.BlockOf(pei.Target)
	host, miss := p.Mon.Predict(blk)
	if miss && p.cfg.BalancedDispatch {
		host = p.balancedChoice(pei.Op)
		if host {
			p.cBalanced.Inc()
		}
	}
	return host
}

// balancedChoice picks the execution side that relieves the more loaded
// off-chip direction (§7.4). Host execution costs a 16 B read request
// and an 80 B response (plus an eventual 80 B writeback request for
// writer PEIs); memory execution costs header+input on the request link
// and header+output on the response link.
func (p *PMU) balancedChoice(op OpKind) bool {
	info := op.Info()
	h := float64(p.cfg.PacketHeaderBytes)
	hostReq, hostRes := h, h+float64(addr.BlockBytes)
	if info.Writer {
		hostReq += h + float64(addr.BlockBytes)
	}
	memReq := h + float64(info.InputBytes)
	memRes := h + float64(info.OutputBytes)
	if p.chain.ResPressure() > p.chain.ReqPressure() {
		return hostRes < memRes
	}
	return hostReq < memReq
}

// issueIdeal runs the PEI as if it were a normal host instruction:
// perfect atomicity at zero cost, no PCU structures.
func (p *PMU) issueIdeal(pei *PEI) {
	info := pei.Op.Info()
	p.Dir.Acquire(pei.Target, info.Writer, func() {
		p.hier.Access(pei.Core, pei.Target, false, func() {
			p.k.Schedule(sim.Cycle(info.ComputeCycles), func() {
				pei.Output = Execute(pei.Op, p.store, pei.Target, pei.Input)
				finish := func() {
					p.cHost.Inc()
					pei.Done()
					p.Dir.Release(pei.Target, info.Writer)
				}
				if info.Writer {
					p.hier.Access(pei.Core, pei.Target, true, finish)
				} else {
					finish()
				}
			})
		})
	})
}

// executeHost runs the PEI on the issuing core's host-side PCU (§4.5,
// Figure 4): operand buffer entry, block load through the L1, compute,
// store back through the L1 for writer PEIs.
func (p *PMU) executeHost(pei *PEI) {
	info := pei.Op.Info()
	pcu := p.HostPCU[pei.Core]
	pcu.Acquire(func() {
		p.hier.Access(pei.Core, pei.Target, false, func() {
			pcu.Compute(info.ComputeCycles, func() {
				pei.Output = Execute(pei.Op, p.store, pei.Target, pei.Input)
				finish := func() {
					p.cHost.Inc()
					pcu.Release()
					pei.Done()
					p.Dir.Release(pei.Target, info.Writer)
				}
				if info.Writer {
					p.hier.Access(pei.Core, pei.Target, true, finish)
				} else {
					finish()
				}
			})
		})
	})
}

// executeMemory offloads the PEI to the vault owning its target (§4.5,
// Figure 5): back-invalidate/back-writeback the block, ship the operands,
// run on the vault PCU, and return the output operand.
func (p *PMU) executeMemory(pei *PEI) {
	info := pei.Op.Info()
	blk := addr.BlockOf(pei.Target)
	if p.Mode == LocalityAware {
		p.Mon.OnPIMIssue(blk)
	}

	// Steps 3 and 4 proceed in parallel: coherence cleanup of the target
	// block, and operand transfer from the host PCU's memory-mapped
	// registers to the PMU.
	pending := 2
	proceed := func() {
		pending--
		if pending > 0 {
			return
		}
		p.sendPIMOp(pei)
	}
	if info.Writer {
		p.hier.BackInvalidate(pei.Target, proceed)
	} else {
		p.hier.BackWriteback(pei.Target, proceed)
	}
	p.k.Schedule(p.cfg.NoCLatency, proceed)
}

func (p *PMU) sendPIMOp(pei *PEI) { p.sendPIMOpRaw(pei, true) }

// sendPIMOpRaw ships the PIM operation to its vault; locked indicates a
// PIM-directory entry is held and must be released at completion.
func (p *PMU) sendPIMOpRaw(pei *PEI, locked bool) {
	info := pei.Op.Info()
	p.chain.Deliver(pei.Target, hmc.CmdPEI, uint8(pei.Op), pei.Input, func(v *hmc.Vault, loc addr.Location, respond hmc.Responder) {
		pcu := p.MemPCU[v.Index]
		pcu.Acquire(func() {
			v.ReadBlock(loc, func() {
				pcu.Compute(info.ComputeCycles, func() {
					pei.Output = Execute(pei.Op, p.store, pei.Target, pei.Input)
					if info.Writer {
						// Posted write: the vault's DRAM controller
						// schedules a PEI's accesses as an inseparable
						// group (§4.3), so the response needs not wait
						// for the write to restore — any later access
						// to this block at this vault orders behind it.
						v.WriteBlock(loc, nil)
					}
					respond(info.OutputBytes, func() {
						p.cMem.Inc()
						pei.Done()
						if locked {
							p.Dir.Release(pei.Target, info.Writer)
						}
					})
					pcu.Release()
				})
			})
		})
	})
}

// Fence implements pfence: done runs once all previously issued writer
// PEIs (from any core) have completed.
func (p *PMU) Fence(done func()) {
	p.cFences.Inc()
	p.Dir.Fence(done)
}

// Summary formats the steering statistics.
func (p *PMU) Summary() string {
	host, mem := p.reg.Get("pei.host"), p.reg.Get("pei.mem")
	total := host + mem
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(mem) / float64(total)
	}
	return fmt.Sprintf("%s: %d PEIs (%d host, %d memory, %.1f%% PIM)", p.Mode, total, host, mem, pct)
}
