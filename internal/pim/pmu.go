package pim

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/cache"
	"pimsim/internal/config"
	"pimsim/internal/hmc"
	"pimsim/internal/memlayout"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Mode selects the system configuration of §7: where PEIs may execute
// and whether the locality monitor is consulted.
type Mode int

const (
	// HostOnly executes every PEI on host-side PCUs (monitor disabled).
	HostOnly Mode = iota
	// PIMOnly executes every PEI on memory-side PCUs (monitor disabled).
	PIMOnly
	// LocalityAware steers each PEI by the locality monitor (and
	// balanced dispatch when enabled).
	LocalityAware
	// IdealHost models the idealized conventional machine: PEIs are
	// plain host instructions with a free, infinite PIM directory.
	IdealHost
)

func (m Mode) String() string {
	switch m {
	case HostOnly:
		return "Host-Only"
	case PIMOnly:
		return "PIM-Only"
	case LocalityAware:
		return "Locality-Aware"
	default:
		return "Ideal-Host"
	}
}

// PMU is the PEI management unit (§4.3) plus the PCUs it coordinates.
// It owns PEI atomicity (PIM directory), coherence for offloaded PEIs
// (back-invalidation / back-writeback through the hierarchy), locality
// profiling, and the dispatch decision.
type PMU struct {
	k     sim.Scheduler
	cfg   *config.Config
	reg   *stats.Registry
	hier  *cache.Hierarchy
	chain *hmc.Chain
	store *memlayout.Store

	Mode Mode

	Dir     *Directory
	Mon     *Monitor
	HostPCU []*PCU // per core
	MemPCU  []*PCU // per vault (global index)

	// PEILatency records issue-to-retire latency of every PEI.
	PEILatency *stats.Histogram

	// Per-PEI counters, resolved at construction; cOp is indexed by
	// OpKind ("pei.op.<name>").
	cTotal, cHost, cMem stats.Handle
	cFences, cBalanced  stats.Handle
	cOp                 []stats.Handle

	free []*peiTxn //peilint:allow snapcomplete pool of recycled PEI transactions: capacity, not state
}

// peiTxn carries one in-flight PEI through its execution pipeline —
// directory acquire, coherence cleanup, PCU compute, retire — as a
// pooled state machine (the stage rides in the event argument) instead
// of a chain of closures. The PMU owns the pool and releases the
// transaction in its finish stage.
type peiTxn struct {
	p        *PMU
	pei      *PEI
	start    sim.Cycle
	writer   bool
	compute  int64
	outBytes int
	locked   bool // a PIM-directory entry is held (not in HMC2 mode)
	pending  int  // outstanding prerequisites before the op can ship
	pcu      *PCU
	dt       *hmc.Txn
}

// Pipeline stages, one per event hop. The host path is §4.5 Figure 4,
// the memory path Figure 5, the ideal path §7.6.
const (
	stConsult       = iota // NoC+monitor hop done; acquire the directory lock
	stGranted              // directory lock held; steer host vs memory
	stHostAcquired         // host PCU operand buffer entry held
	stHostLoaded           // target block loaded through the L1
	stHostComputed         // computation done; store back or finish
	stHostFinish           // writer store retired; finish host execution
	stMemProceed           // one of {coherence cleanup, operand transfer} done
	stSend                 // ship the PIM op (the HMC2 path enters here)
	stVaultAcquired        // vault PCU operand buffer entry held
	stVaultRead            // target block read from DRAM to the logic die
	stVaultComputed        // computation done at the vault
	stMemFinish            // response delivered to the host; retire
	stIdealGranted         // ideal: lock held at zero cost; load
	stIdealLoaded          // ideal: block loaded; plain compute delay
	stIdealComputed        // ideal: execute; store back or finish
	stIdealFinish          // ideal: writer store retired
)

func (t *peiTxn) OnEvent(arg sim.EventArg) {
	p := t.p
	switch arg.N {
	case stConsult:
		p.Dir.AcquireRegisteredEvent(t.pei.Target, t.writer, sim.Cont{H: t, Arg: sim.EventArg{N: stGranted}})
	case stGranted:
		if p.decideHost(t.pei) {
			p.executeHost(t)
		} else {
			p.executeMemory(t)
		}
	case stHostAcquired:
		p.hier.AccessEvent(t.pei.Core, t.pei.Target, false, sim.Cont{H: t, Arg: sim.EventArg{N: stHostLoaded}})
	case stHostLoaded:
		t.pcu.ComputeEvent(t.compute, sim.Cont{H: t, Arg: sim.EventArg{N: stHostComputed}})
	case stHostComputed:
		t.pei.Output = Execute(t.pei.Op, p.store, t.pei.Target, t.pei.Input)
		if t.writer {
			p.hier.AccessEvent(t.pei.Core, t.pei.Target, true, sim.Cont{H: t, Arg: sim.EventArg{N: stHostFinish}})
			return
		}
		p.hostFinish(t)
	case stHostFinish:
		p.hostFinish(t)
	case stMemProceed:
		t.pending--
		if t.pending > 0 {
			return
		}
		p.sendPIMOp(t)
	case stSend:
		p.sendPIMOp(t)
	case stVaultAcquired:
		t.dt.Vault().ReadBlockEvent(t.dt.Loc(), sim.Cont{H: t, Arg: sim.EventArg{N: stVaultRead}})
	case stVaultRead:
		t.pcu.ComputeEvent(t.compute, sim.Cont{H: t, Arg: sim.EventArg{N: stVaultComputed}})
	case stVaultComputed:
		p.vaultComputed(t)
	case stMemFinish:
		p.memFinish(t)
	case stIdealGranted:
		p.hier.AccessEvent(t.pei.Core, t.pei.Target, false, sim.Cont{H: t, Arg: sim.EventArg{N: stIdealLoaded}})
	case stIdealLoaded:
		p.k.ScheduleEvent(sim.Cycle(t.compute), t, sim.EventArg{N: stIdealComputed})
	case stIdealComputed:
		t.pei.Output = Execute(t.pei.Op, p.store, t.pei.Target, t.pei.Input)
		if t.writer {
			p.hier.AccessEvent(t.pei.Core, t.pei.Target, true, sim.Cont{H: t, Arg: sim.EventArg{N: stIdealFinish}})
			return
		}
		p.idealFinish(t)
	default:
		p.idealFinish(t)
	}
}

func (p *PMU) getTxn() *peiTxn {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		t.p = p
		return t
	}
	return &peiTxn{p: p}
}

// putTxn recycles a retired transaction; the nil p field marks it free
// so a double release panics instead of corrupting the pool.
func (p *PMU) putTxn(t *peiTxn) {
	if t.p == nil {
		panic("pim: PEI transaction double-released")
	}
	*t = peiTxn{}
	p.free = append(p.free, t)
}

// NewPMU wires the PMU into an existing hierarchy and chain. It installs
// the locality monitor's L3 hook.
func NewPMU(k sim.Scheduler, cfg *config.Config, hier *cache.Hierarchy, chain *hmc.Chain,
	store *memlayout.Store, mode Mode, reg *stats.Registry) *PMU {

	idealDir := cfg.IdealDirectory || mode == IdealHost
	p := &PMU{
		k: k, cfg: cfg, reg: reg, hier: hier, chain: chain, store: store,
		Mode: mode,
		Dir:  NewDirectory(k, cfg.DirectoryEntries, cfg.DirectoryLatency, idealDir, reg),
	}
	p.PEILatency = stats.NewHistogram(16, 64, 256, 1024, 4096, 16384)
	monSets := cfg.L3.Sets()
	p.Mon = NewMonitor(monSets, cfg.L3.Ways, cfg.PartialTagBits, cfg.UseIgnoreBit, cfg.IdealMonitor, reg)
	if mode == LocalityAware {
		hier.OnL3Access = p.Mon.OnCacheAccess
	}
	for c := 0; c < cfg.Cores; c++ {
		p.HostPCU = append(p.HostPCU, NewPCU(k, cfg.OperandBufferEntries, cfg.PCUExecWidth, 1))
	}
	for v := 0; v < cfg.Mapping().VaultsTotal(); v++ {
		// A vault PCU lives on the logic die, i.e. in its vault's PDES
		// partition; it must schedule on that partition's clock.
		p.MemPCU = append(p.MemPCU, NewPCU(chain.VaultAt(v).Scheduler(), cfg.OperandBufferEntries, cfg.PCUExecWidth, cfg.MemPCUClockDiv))
	}
	p.cTotal = reg.Counter("pei.total")
	p.cHost = reg.Counter("pei.host")
	p.cMem = reg.Counter("pei.mem")
	p.cFences = reg.Counter("pei.fences")
	p.cBalanced = reg.Counter("pei.balanced_to_host")
	p.cOp = make([]stats.Handle, len(Ops))
	for op := range Ops {
		p.cOp[op] = reg.Counter("pei.op." + Ops[op].Name)
	}
	return p
}

// Issue starts execution of a PEI. When it retires, the PEI's Issuer is
// notified (or, absent one, its Done callback runs); its Output field
// then holds the output operand.
func (p *PMU) Issue(pei *PEI) {
	if err := pei.Validate(); err != nil {
		panic(err)
	}
	p.cTotal.Inc()
	p.cOp[pei.Op].Inc()
	info := pei.Op.Info()
	t := p.getTxn()
	t.pei = pei
	t.start = p.k.Now()
	t.writer = info.Writer
	t.compute = info.ComputeCycles
	t.outBytes = info.OutputBytes

	if p.Mode == IdealHost {
		p.Dir.AcquireEvent(pei.Target, t.writer, sim.Cont{H: t, Arg: sim.EventArg{N: stIdealGranted}})
		return
	}
	if p.cfg.HMC2AtomicsMode {
		// HMC 2.0-style native atomic: straight to the vault, no PIM
		// directory, no coherence action (the target region is treated
		// as non-cacheable, as prior PIM proposals require). The vault's
		// inseparable-group scheduling provides per-block atomicity.
		p.k.ScheduleEvent(p.cfg.NoCLatency, t, sim.EventArg{N: stSend})
		return
	}

	// Step 1-2 (§4.5): operands to the host PCU's memory-mapped
	// registers, then the PMU consult — directory lock and locality
	// monitor in parallel; the monitor's latency is covered by the
	// crossbar hop to the PMU. Writer PEIs are registered for pfence
	// ordering at issue, before the lock request reaches the directory.
	t.locked = true
	if t.writer {
		p.Dir.RegisterWriter()
	}
	p.k.ScheduleEvent(p.cfg.NoCLatency+p.cfg.MonitorLatency, t, sim.EventArg{N: stConsult})
}

// retire observes the issue-to-retire latency and hands the PEI back to
// its issuer (or runs Done directly when no issuer is registered).
func (p *PMU) retire(t *peiTxn) {
	p.PEILatency.Observe(int64(p.k.Now() - t.start))
	pei := t.pei
	if pei.Issuer != nil {
		pei.Issuer.PEIRetired(pei)
		return
	}
	if pei.Done != nil {
		pei.Done()
	}
}

// decideHost applies the mode's steering policy.
func (p *PMU) decideHost(pei *PEI) bool {
	switch p.Mode {
	case HostOnly:
		return true
	case PIMOnly:
		return false
	}
	blk := addr.BlockOf(pei.Target)
	host, miss := p.Mon.Predict(blk)
	if miss && p.cfg.BalancedDispatch {
		host = p.balancedChoice(pei.Op)
		if host {
			p.cBalanced.Inc()
		}
	}
	return host
}

// balancedChoice picks the execution side that relieves the more loaded
// off-chip direction (§7.4). Host execution costs a 16 B read request
// and an 80 B response (plus an eventual 80 B writeback request for
// writer PEIs); memory execution costs header+input on the request link
// and header+output on the response link.
func (p *PMU) balancedChoice(op OpKind) bool {
	info := op.Info()
	h := float64(p.cfg.PacketHeaderBytes)
	hostReq, hostRes := h, h+float64(addr.BlockBytes)
	if info.Writer {
		hostReq += h + float64(addr.BlockBytes)
	}
	memReq := h + float64(info.InputBytes)
	memRes := h + float64(info.OutputBytes)
	if p.chain.ResPressure() > p.chain.ReqPressure() {
		return hostRes < memRes
	}
	return hostReq < memReq
}

// executeHost runs the PEI on the issuing core's host-side PCU (§4.5,
// Figure 4): operand buffer entry, block load through the L1, compute,
// store back through the L1 for writer PEIs.
func (p *PMU) executeHost(t *peiTxn) {
	t.pcu = p.HostPCU[t.pei.Core]
	t.pcu.AcquireEvent(sim.Cont{H: t, Arg: sim.EventArg{N: stHostAcquired}})
}

func (p *PMU) hostFinish(t *peiTxn) {
	p.cHost.Inc()
	t.pcu.Release()
	p.retire(t)
	p.Dir.Release(t.pei.Target, t.writer)
	p.putTxn(t)
}

func (p *PMU) idealFinish(t *peiTxn) {
	p.cHost.Inc()
	p.retire(t)
	p.Dir.Release(t.pei.Target, t.writer)
	p.putTxn(t)
}

// executeMemory offloads the PEI to the vault owning its target (§4.5,
// Figure 5): back-invalidate/back-writeback the block, ship the operands,
// run on the vault PCU, and return the output operand.
func (p *PMU) executeMemory(t *peiTxn) {
	if p.Mode == LocalityAware {
		p.Mon.OnPIMIssue(addr.BlockOf(t.pei.Target))
	}

	// Steps 3 and 4 proceed in parallel: coherence cleanup of the target
	// block, and operand transfer from the host PCU's memory-mapped
	// registers to the PMU.
	t.pending = 2
	proceed := sim.Cont{H: t, Arg: sim.EventArg{N: stMemProceed}}
	if t.writer {
		p.hier.BackInvalidateEvent(t.pei.Target, proceed)
	} else {
		p.hier.BackWritebackEvent(t.pei.Target, proceed)
	}
	p.k.ScheduleEvent(p.cfg.NoCLatency, t, sim.EventArg{N: stMemProceed})
}

// sendPIMOp ships the PIM operation to its vault. The transaction rides
// along as the delivery's user payload; AtVault picks it back up on the
// logic die.
func (p *PMU) sendPIMOp(t *peiTxn) {
	p.chain.DeliverEvent(t.pei.Target, hmc.CmdPEI, uint8(t.pei.Op), t.pei.Input,
		p, sim.EventArg{Ptr: t}, sim.Cont{})
}

// AtVault implements hmc.VaultVisitor: the PIM op has crossed the chain
// and reached its vault's logic die.
func (p *PMU) AtVault(dt *hmc.Txn) {
	t := dt.User().Ptr.(*peiTxn)
	t.dt = dt
	t.pcu = p.MemPCU[dt.Vault().Index]
	t.pcu.AcquireEvent(sim.Cont{H: t, Arg: sim.EventArg{N: stVaultAcquired}})
}

func (p *PMU) vaultComputed(t *peiTxn) {
	pei := t.pei
	pei.Output = Execute(pei.Op, p.store, pei.Target, pei.Input)
	dt := t.dt
	if t.writer {
		// Posted write: the vault's DRAM controller schedules a PEI's
		// accesses as an inseparable group (§4.3), so the response needs
		// not wait for the write to restore — any later access to this
		// block at this vault orders behind it.
		dt.Vault().WriteBlockEvent(dt.Loc(), sim.Cont{})
	}
	t.dt = nil
	dt.Respond(t.outBytes, sim.Cont{H: t, Arg: sim.EventArg{N: stMemFinish}})
	t.pcu.Release()
}

func (p *PMU) memFinish(t *peiTxn) {
	p.cMem.Inc()
	p.retire(t)
	if t.locked {
		p.Dir.Release(t.pei.Target, t.writer)
	}
	p.putTxn(t)
}

// Fence implements pfence: done runs once all previously issued writer
// PEIs (from any core) have completed. Closure form of FenceEvent.
func (p *PMU) Fence(done func()) {
	p.FenceEvent(sim.Call(done))
}

// FenceEvent is the allocation-free form of Fence.
func (p *PMU) FenceEvent(done sim.Cont) {
	p.cFences.Inc()
	p.Dir.FenceEvent(done)
}

// Summary formats the steering statistics.
func (p *PMU) Summary() string {
	host, mem := p.reg.Get("pei.host"), p.reg.Get("pei.mem")
	total := host + mem
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(mem) / float64(total)
	}
	//peilint:allow hotalloc end-of-run reporting, runs once per simulation
	return fmt.Sprintf("%s: %d PEIs (%d host, %d memory, %.1f%% PIM)", p.Mode, total, host, mem, pct)
}
