package pim

import (
	"testing"

	"pimsim/internal/stats"
)

func newTestMonitor(ignore, ideal bool) *Monitor {
	return NewMonitor(16, 2, 10, ignore, ideal, stats.NewRegistry())
}

func TestColdPredictsMemory(t *testing.T) {
	m := newTestMonitor(true, false)
	host, miss := m.Predict(123)
	if host || !miss {
		t.Fatalf("cold predict = (%v,%v), want (false,true)", host, miss)
	}
}

func TestCacheAccessMakesHost(t *testing.T) {
	m := newTestMonitor(true, false)
	m.OnCacheAccess(5)
	host, miss := m.Predict(5)
	if !host || miss {
		t.Fatalf("predict after cache access = (%v,%v), want (true,false)", host, miss)
	}
}

func TestIgnoreBitDampsFirstHit(t *testing.T) {
	m := newTestMonitor(true, false)
	m.OnPIMIssue(7)
	// First consult after a PIM allocation: ignored (memory), not a miss.
	host, miss := m.Predict(7)
	if host || miss {
		t.Fatalf("first hit on PIM entry = (%v,%v), want (false,false)", host, miss)
	}
	// Second consult: genuine hit.
	host, _ = m.Predict(7)
	if !host {
		t.Fatal("second hit should predict host")
	}
}

func TestIgnoreBitDisabled(t *testing.T) {
	m := newTestMonitor(false, false)
	m.OnPIMIssue(7)
	host, _ := m.Predict(7)
	if !host {
		t.Fatal("with ignore disabled, first hit should predict host")
	}
}

func TestLRUWithinSet(t *testing.T) {
	m := newTestMonitor(true, false)
	// Blocks 0, 16, 32 share set 0 in a 16-set/2-way monitor.
	m.OnCacheAccess(0)
	m.OnCacheAccess(16)
	m.OnCacheAccess(0)  // promote 0; 16 becomes LRU
	m.OnCacheAccess(32) // evicts 16
	if host, _ := m.Predict(16); host {
		t.Fatal("evicted block should miss")
	}
	if host, _ := m.Predict(0); !host {
		t.Fatal("retained block should hit")
	}
	if host, _ := m.Predict(32); !host {
		t.Fatal("newly inserted block should hit")
	}
}

func TestPartialTagAliasing(t *testing.T) {
	m := newTestMonitor(true, false)
	// Two blocks in the same set whose full tags fold to the same
	// 10-bit partial tag: tags differing by a multiple of 2^10 with
	// identical folded chunks. tag1 = 1, tag2 = 1<<20 | ... fold(1)=1;
	// find a colliding tag by construction: full tag t and t^(x|x<<10)
	// fold identically when x==0... simplest: t2 = t + (1<<10) + 1 may
	// not collide; instead use t2 whose fold equals fold(t1):
	// fold(0b1_0000000001) = 1 ^ 1 = 0; fold(0) = 0. So tags 0x401 and 0
	// collide.
	set := uint64(3)
	blk1 := 0*16 + set     // tag 0
	blk2 := 0x401*16 + set // tag 0x401, folds to 0
	m.OnCacheAccess(blk1)
	if host, _ := m.Predict(blk2); !host {
		t.Fatal("partial tags should alias (false hit) for colliding tags")
	}
	ideal := newTestMonitor(true, true)
	ideal.OnCacheAccess(blk1)
	if host, _ := ideal.Predict(blk2); host {
		t.Fatal("ideal monitor must not alias")
	}
}

func TestPIMIssuePromotesExistingEntry(t *testing.T) {
	m := newTestMonitor(true, false)
	m.OnCacheAccess(0)
	m.OnCacheAccess(16)
	m.OnPIMIssue(0) // promotes 0 without setting ignore (entry exists)
	m.OnCacheAccess(32)
	if host, _ := m.Predict(0); !host {
		t.Fatal("PIM issue should promote the existing entry (and not set ignore)")
	}
}

func TestMonitorBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMonitor(3, 2, 10, true, false, stats.NewRegistry())
}
