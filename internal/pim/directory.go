package pim

import (
	"pimsim/internal/addr"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Directory is the PIM directory of §4.3: a direct-mapped, tag-less
// array of reader–writer locks indexed by the XOR-folded target block
// address. Distinct blocks may alias the same entry (a false positive
// serializes them — harmless for correctness); the absence of tags means
// there are never false negatives.
//
// Each entry admits multiple concurrent readers or one writer. Arriving
// writers bar new readers (write starvation avoidance), and a second
// writer waits for the first (the 1-bit writer counter). Waiters queue
// FIFO.
type Directory struct {
	k        sim.Scheduler
	cBlocked stats.Handle

	// latency is the directory access time added to every acquire.
	latency sim.Cycle

	// ideal gives infinite entries at zero latency (Ideal-Host, §7.6):
	// every block gets its own lock.
	ideal      bool
	entries    []dirEntry
	indexBits  uint
	idealLocks map[uint64]*dirEntry

	// outstandingWriters tracks writer PEIs holding or waiting for any
	// entry; pfence drains when it reaches zero.
	outstandingWriters int
	fenceWaiters       []sim.Cont

	free []*dirTxn // recycled acquire/fence transactions
}

type dirWaiter struct {
	writer  bool
	granted sim.Cont
}

// dirTxn carries one acquire or fence request across the directory
// access latency; it is released at dispatch, before the grant logic
// runs, so a synchronously granted continuation can re-enter the pool.
type dirTxn struct {
	d       *Directory
	target  uint64
	writer  bool
	fence   bool
	granted sim.Cont
}

func (t *dirTxn) OnEvent(sim.EventArg) {
	d := t.d
	target, writer, fence, granted := t.target, t.writer, t.fence, t.granted
	d.putTxn(t)
	if fence {
		if d.outstandingWriters == 0 {
			granted.Invoke()
			return
		}
		d.fenceWaiters = append(d.fenceWaiters, granted)
		return
	}
	// Resolve the entry at dispatch time: ideal-mode entries are
	// garbage-collected when idle, so a pointer captured at request
	// time could be orphaned by an intervening release.
	e := d.entryFor(target)
	if d.canGrant(e, writer) {
		d.grant(e, writer)
		granted.Invoke()
		return
	}
	d.cBlocked.Inc()
	e.queue = append(e.queue, dirWaiter{writer: writer, granted: granted})
	if writer {
		e.writerWaiting++
	}
}

func (d *Directory) getTxn() *dirTxn {
	if n := len(d.free); n > 0 {
		t := d.free[n-1]
		d.free = d.free[:n-1]
		t.d = d
		return t
	}
	return &dirTxn{d: d}
}

func (d *Directory) putTxn(t *dirTxn) {
	if t.d == nil {
		panic("pim: directory transaction double-released")
	}
	*t = dirTxn{}
	d.free = append(d.free, t)
}

type dirEntry struct {
	readers int  // active reader PEIs
	writer  bool // active writer PEI
	// writerWaiting marks a queued writer; new readers must queue behind
	// it rather than overtaking (non-readable state in the paper).
	writerWaiting int
	// queue with qhead is a head-indexed FIFO (reset, retaining capacity,
	// when drained) so waiter churn never reallocates.
	queue []dirWaiter
	qhead int
}

func (e *dirEntry) queued() int { return len(e.queue) - e.qhead }

func (e *dirEntry) popWaiter() dirWaiter {
	w := e.queue[e.qhead]
	e.queue[e.qhead] = dirWaiter{}
	e.qhead++
	if e.qhead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qhead = 0
	}
	return w
}

// NewDirectory creates a directory with the given entry count (rounded
// up to a power of two) or an ideal one if entries <= 0 or ideal is set.
func NewDirectory(k sim.Scheduler, entries int, latency sim.Cycle, ideal bool, reg *stats.Registry) *Directory {
	d := &Directory{k: k, cBlocked: reg.Counter("pmu.dir_blocked"), latency: latency, ideal: ideal}
	if ideal {
		d.idealLocks = make(map[uint64]*dirEntry)
		d.latency = 0
		return d
	}
	n := 1
	bits := uint(0)
	for n < entries {
		n <<= 1
		bits++
	}
	d.entries = make([]dirEntry, n)
	d.indexBits = bits
	if bits == 0 {
		d.indexBits = 1
		d.entries = make([]dirEntry, 2)
	}
	return d
}

func (d *Directory) entryFor(target uint64) *dirEntry {
	blk := addr.BlockOf(target)
	if d.ideal {
		e, ok := d.idealLocks[blk]
		if !ok {
			e = &dirEntry{}
			d.idealLocks[blk] = e
		}
		return e
	}
	return &d.entries[addr.XORFold(blk, d.indexBits)]
}

// RegisterWriter notes an issued writer PEI before its lock request
// reaches the directory, so a pfence issued immediately afterwards still
// waits for it. Paired with AcquireRegistered.
func (d *Directory) RegisterWriter() { d.outstandingWriters++ }

// Acquire obtains the reader–writer lock covering target. granted runs
// (possibly later) once the lock is held. Closure form of AcquireEvent.
func (d *Directory) Acquire(target uint64, writer bool, granted func()) {
	d.AcquireEvent(target, writer, sim.Call(granted))
}

// AcquireEvent is the allocation-free form of Acquire.
func (d *Directory) AcquireEvent(target uint64, writer bool, granted sim.Cont) {
	if writer {
		d.RegisterWriter()
	}
	d.AcquireRegisteredEvent(target, writer, granted)
}

// AcquireRegistered is Acquire for a writer already counted via
// RegisterWriter (readers behave identically under both entry points).
// Closure form of AcquireRegisteredEvent.
func (d *Directory) AcquireRegistered(target uint64, writer bool, granted func()) {
	d.AcquireRegisteredEvent(target, writer, sim.Call(granted))
}

// AcquireRegisteredEvent is the allocation-free form of
// AcquireRegistered: the request rides a pooled transaction across the
// directory access latency.
func (d *Directory) AcquireRegisteredEvent(target uint64, writer bool, granted sim.Cont) {
	t := d.getTxn()
	t.target = target
	t.writer = writer
	t.granted = granted
	d.k.ScheduleEvent(d.latency, t, sim.EventArg{})
}

func (d *Directory) canGrant(e *dirEntry, writer bool) bool {
	if writer {
		// One writer at a time, and it must wait for readers to drain.
		return !e.writer && e.readers == 0 && e.queued() == 0
	}
	// Readers are barred while a writer is active or waiting.
	return !e.writer && e.writerWaiting == 0
}

func (d *Directory) grant(e *dirEntry, writer bool) {
	if writer {
		e.writer = true
	} else {
		e.readers++
	}
}

// Release drops a previously acquired lock and wakes eligible waiters.
func (d *Directory) Release(target uint64, writer bool) {
	e := d.entryFor(target)
	if writer {
		if !e.writer {
			panic("pim: directory release of unheld writer lock")
		}
		e.writer = false
		d.writerDone()
	} else {
		if e.readers <= 0 {
			panic("pim: directory release of unheld reader lock")
		}
		e.readers--
	}
	d.wake(e)
	if d.ideal && e.readers == 0 && !e.writer && e.queued() == 0 {
		delete(d.idealLocks, addr.BlockOf(target))
	}
}

// wake admits queued waiters FIFO: either one writer, or a maximal run
// of readers up to the next queued writer.
func (d *Directory) wake(e *dirEntry) {
	for e.queued() > 0 {
		w := e.queue[e.qhead]
		if w.writer {
			if e.writer || e.readers > 0 {
				return
			}
			e.popWaiter()
			e.writerWaiting--
			e.writer = true
			w.granted.Invoke()
			return
		}
		if e.writer {
			return
		}
		e.popWaiter()
		e.readers++
		w.granted.Invoke()
	}
}

func (d *Directory) writerDone() {
	d.outstandingWriters--
	if d.outstandingWriters == 0 && len(d.fenceWaiters) > 0 {
		waiters := d.fenceWaiters
		d.fenceWaiters = nil
		for _, c := range waiters {
			c.Invoke()
		}
	}
}

// Fence implements pfence (§3.2): done runs once every writer PEI issued
// so far has completed (all entries readable). Closure form of
// FenceEvent.
func (d *Directory) Fence(done func()) {
	d.FenceEvent(sim.Call(done))
}

// FenceEvent is the allocation-free form of Fence.
func (d *Directory) FenceEvent(done sim.Cont) {
	t := d.getTxn()
	t.fence = true
	t.granted = done
	d.k.ScheduleEvent(d.latency, t, sim.EventArg{})
}

// OutstandingWriters exposes the writer count for tests.
func (d *Directory) OutstandingWriters() int { return d.outstandingWriters }
