// Package pim implements the paper's primary contribution: PIM-enabled
// instructions (PEIs) and the hardware that executes them — PEI
// Computation Units (PCUs) on the host side and in each vault, and the
// PEI Management Unit (PMU) with its PIM directory, locality monitor, and
// balanced dispatch logic.
package pim

import (
	"encoding/binary"
	"fmt"
	"math"

	"pimsim/internal/addr"
	"pimsim/internal/memlayout"
)

// OpKind identifies one of the seven PIM operations of Table 1.
type OpKind uint8

const (
	// OpInc64 is the 8-byte atomic integer increment (ATF).
	OpInc64 OpKind = iota
	// OpMin64 is the 8-byte atomic integer min (BFS, SP, WCC).
	OpMin64
	// OpFloatAdd is the double-precision atomic add (PR).
	OpFloatAdd
	// OpHashProbe checks the keys in one hash bucket for a match and
	// returns the match result and the next-bucket address (HJ).
	OpHashProbe
	// OpHistBin shifts each of the 16 4-byte words in the target block by
	// the given amount and returns the 16 one-byte bin indexes (HG, RP).
	OpHistBin
	// OpEuclideanDist computes the squared Euclidean distance between the
	// 16-dimensional single-precision vector in the target block and the
	// input vector (SC).
	OpEuclideanDist
	// OpDotProduct computes the dot product of the 4-dimensional
	// double-precision vector at the target and the input vector (SVM).
	OpDotProduct

	numOps
)

// OpInfo describes one PEI kind: Table 1's reader/writer flags and
// operand sizes, plus the PCU compute occupancy.
type OpInfo struct {
	Name string
	// Reader/Writer: whether the operation reads/modifies its target
	// cache block.
	Reader, Writer bool
	// InputBytes/OutputBytes are the operand payload sizes.
	InputBytes, OutputBytes int
	// ComputeCycles is the PCU computation-logic occupancy in PCU clock
	// cycles (single-issue logic; the operand buffer overlaps the memory
	// accesses of multiple PEIs, §4.2).
	ComputeCycles int64
}

// Ops is Table 1. Indexed by OpKind.
var Ops = [numOps]OpInfo{
	OpInc64:         {Name: "inc64", Reader: true, Writer: true, InputBytes: 0, OutputBytes: 0, ComputeCycles: 1},
	OpMin64:         {Name: "min64", Reader: true, Writer: true, InputBytes: 8, OutputBytes: 0, ComputeCycles: 1},
	OpFloatAdd:      {Name: "fadd", Reader: true, Writer: true, InputBytes: 8, OutputBytes: 0, ComputeCycles: 4},
	OpHashProbe:     {Name: "hashprobe", Reader: true, Writer: false, InputBytes: 8, OutputBytes: 9, ComputeCycles: 4},
	OpHistBin:       {Name: "histbin", Reader: true, Writer: false, InputBytes: 1, OutputBytes: 16, ComputeCycles: 8},
	OpEuclideanDist: {Name: "euclid", Reader: true, Writer: false, InputBytes: 64, OutputBytes: 4, ComputeCycles: 16},
	OpDotProduct:    {Name: "dot", Reader: true, Writer: false, InputBytes: 32, OutputBytes: 8, ComputeCycles: 8},
}

func (k OpKind) Info() OpInfo { return Ops[k] }

func (k OpKind) String() string { return Ops[k].Name }

// Hash-bucket layout for OpHashProbe. A bucket fills one cache block:
// an 8-byte next-bucket address (0 = end of chain) followed by
// HashBucketKeys (key, payload) pairs of 8 bytes each.
const (
	HashBucketNextOff = 0
	HashBucketKeys    = 3
	HashBucketKeyOff  = 8
	HashBucketStride  = 16
)

// PEI is one in-flight PIM-enabled instruction. Target is the physical
// address of the accessed word/vector; the single-cache-block restriction
// requires Target's operand to lie within one 64-byte block, which
// Validate enforces.
type PEI struct {
	Op     OpKind
	Target uint64
	// Input holds the input operand (len must match Ops[Op].InputBytes).
	Input []byte
	// Output receives the output operand before Done runs.
	Output []byte
	// Core is the issuing host processor.
	Core int
	// Done runs when the PEI retires (output operand readable).
	Done func()
	// Issuer, when non-nil, is notified at retire INSTEAD of Done being
	// called by the PMU; the issuer then owns calling Done. The CPU core
	// model sets itself here so per-PEI retirement needs no closures.
	Issuer Retiree
}

// Retiree receives PEI retirement notifications (see PEI.Issuer).
type Retiree interface {
	PEIRetired(p *PEI)
}

// targetBytes returns how many bytes at Target the operation touches.
func (k OpKind) targetBytes() int {
	switch k {
	case OpHashProbe, OpHistBin, OpEuclideanDist:
		return addr.BlockBytes
	case OpDotProduct:
		return 32
	default:
		return 8
	}
}

// Validate checks operand sizes and the single-cache-block restriction.
func (p *PEI) Validate() error {
	info := p.Op.Info()
	if len(p.Input) != info.InputBytes {
		//peilint:allow hotalloc invalid-PEI error path; Issue panics on it, ending the run
		return fmt.Errorf("pim: %s input operand %d bytes, want %d", info.Name, len(p.Input), info.InputBytes)
	}
	n := uint64(p.Op.targetBytes())
	if addr.BlockOf(p.Target) != addr.BlockOf(p.Target+n-1) {
		//peilint:allow hotalloc invalid-PEI error path; Issue panics on it, ending the run
		return fmt.Errorf("pim: %s target %#x..+%d crosses a cache-block boundary", info.Name, p.Target, n)
	}
	return nil
}

// Execute performs the operation functionally against the store,
// returning the output operand (nil for zero-output ops). It is invoked
// by whichever PCU the PEI was steered to, at the simulated time the
// computation completes; the PIM directory guarantees no other PEI is
// mid-flight on the same block at that moment.
func Execute(op OpKind, s *memlayout.Store, target uint64, input []byte) []byte {
	switch op {
	case OpInc64:
		s.WriteU64(target, s.ReadU64(target)+1)
		return nil
	case OpMin64:
		v := binary.LittleEndian.Uint64(input)
		if int64(v) < int64(s.ReadU64(target)) {
			s.WriteU64(target, v)
		}
		return nil
	case OpFloatAdd:
		d := math.Float64frombits(binary.LittleEndian.Uint64(input))
		s.WriteF64(target, s.ReadF64(target)+d)
		return nil
	case OpHashProbe:
		key := binary.LittleEndian.Uint64(input)
		out := make([]byte, 9)
		for i := 0; i < HashBucketKeys; i++ {
			off := target + HashBucketKeyOff + uint64(i*HashBucketStride)
			if s.ReadU64(off) == key {
				out[0] = 1
				break
			}
		}
		binary.LittleEndian.PutUint64(out[1:], s.ReadU64(target+HashBucketNextOff))
		return out
	case OpHistBin:
		shift := uint(input[0])
		out := make([]byte, 16)
		for i := 0; i < 16; i++ {
			out[i] = byte(s.ReadU32(target+uint64(i*4)) >> shift)
		}
		return out
	case OpEuclideanDist:
		var sum float32
		for i := 0; i < 16; i++ {
			a := s.ReadF32(target + uint64(i*4))
			b := math.Float32frombits(binary.LittleEndian.Uint32(input[i*4:]))
			d := a - b
			sum += d * d
		}
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, math.Float32bits(sum))
		return out
	case OpDotProduct:
		var sum float64
		for i := 0; i < 4; i++ {
			a := s.ReadF64(target + uint64(i*8))
			b := math.Float64frombits(binary.LittleEndian.Uint64(input[i*8:]))
			sum += a * b
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, math.Float64bits(sum))
		return out
	default:
		panic(fmt.Sprintf("pim: unknown op %d", op))
	}
}

// U64Input encodes an 8-byte input operand.
func U64Input(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// F64Input encodes a double input operand.
func F64Input(v float64) []byte { return U64Input(math.Float64bits(v)) }
