package pim

import (
	"pimsim/internal/addr"
	"pimsim/internal/stats"
)

// Monitor is the locality monitor of §4.3: a tag array with the same
// sets/ways as the last-level cache, holding a valid bit, a partial tag
// (XOR-folded), LRU bits, and the 1-bit ignore flag. It is updated by
// every L3 access *and* by every PIM operation issued to memory, so a
// block's locality is tracked no matter where its PEIs execute.
//
// Predict reports the locality decision for a PEI: true means "high
// locality — execute on the host". The first hit on an entry allocated
// by a PIM issue is ignored (flag), damping one-off re-references.
type Monitor struct {
	sets, ways int
	entries    []monEntry
	clock      uint64

	partialBits uint
	useIgnore   bool
	// ideal uses full tags (no aliasing), §7.6's idealized monitor.
	ideal bool

	cHit, cMiss, cIgnoredHit stats.Handle
}

type monEntry struct {
	valid  bool
	tag    uint64
	lru    uint64
	ignore bool
}

// NewMonitor creates a monitor with the L3's geometry.
func NewMonitor(sets, ways int, partialBits uint, useIgnore, ideal bool, reg *stats.Registry) *Monitor {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("pim: bad monitor geometry")
	}
	return &Monitor{
		sets: sets, ways: ways,
		entries:     make([]monEntry, sets*ways),
		partialBits: partialBits,
		useIgnore:   useIgnore,
		ideal:       ideal,
		cHit:        reg.Counter("pmu.monitor_hit"),
		cMiss:       reg.Counter("pmu.monitor_miss"),
		cIgnoredHit: reg.Counter("pmu.monitor_ignored_hit"),
	}
}

func (m *Monitor) set(blk uint64) []monEntry {
	s := int(blk) & (m.sets - 1)
	return m.entries[s*m.ways : (s+1)*m.ways]
}

func (m *Monitor) tagOf(blk uint64) uint64 {
	full := blk / uint64(m.sets)
	if m.ideal {
		return full
	}
	return addr.XORFold(full, m.partialBits)
}

func (m *Monitor) find(blk uint64) *monEntry {
	set := m.set(blk)
	tag := m.tagOf(blk)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// touch promotes or allocates blk's entry; fromPIM controls the ignore
// flag on allocation.
func (m *Monitor) touch(blk uint64, fromPIM bool) *monEntry {
	m.clock++
	if e := m.find(blk); e != nil {
		e.lru = m.clock
		return e
	}
	set := m.set(blk)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	*victim = monEntry{valid: true, tag: m.tagOf(blk), lru: m.clock, ignore: fromPIM && m.useIgnore}
	return victim
}

// OnCacheAccess mirrors an L3 access to blk (hook from the hierarchy).
func (m *Monitor) OnCacheAccess(blk uint64) {
	m.touch(blk, false)
}

// OnPIMIssue mirrors a PIM operation sent to memory, updating the
// monitor as if the L3 had been accessed (§4.3).
func (m *Monitor) OnPIMIssue(blk uint64) {
	m.touch(blk, true)
}

// Predict reports whether the PEI targeting blk should run on the host
// (host=true) or in memory, applying the ignore-flag rule: the first hit
// on a PIM-allocated entry is treated as low locality and clears the
// flag. miss reports a true tag-array miss, the case where balanced
// dispatch (§7.4) is allowed to override the decision.
func (m *Monitor) Predict(blk uint64) (host, miss bool) {
	e := m.find(blk)
	if e == nil {
		m.cMiss.Inc()
		return false, true
	}
	if e.ignore {
		e.ignore = false
		m.cIgnoredHit.Inc()
		return false, false
	}
	m.cHit.Inc()
	return true, false
}
