package pim

import (
	"testing"

	"pimsim/internal/hmc"
)

// The pooled-transaction lifecycle rules (DESIGN.md §11): a release
// must scrub every field so the next acquisition starts clean, and a
// double release must panic rather than corrupt the free list.

func TestPEITxnPoolReuseCarriesNoStaleState(t *testing.T) {
	p := &PMU{}
	tx := p.getTxn()
	tx.pei = &PEI{Op: OpInc64}
	tx.start = 42
	tx.writer = true
	tx.compute = 9
	tx.outBytes = 8
	tx.locked = true
	tx.pending = 2
	tx.pcu = &PCU{}
	tx.dt = &hmc.Txn{}
	p.putTxn(tx)

	got := p.getTxn()
	if got != tx {
		t.Fatal("pool did not recycle the released transaction")
	}
	if got.p != p {
		t.Fatal("recycled transaction lost its owner")
	}
	if got.pei != nil || got.start != 0 || got.writer || got.compute != 0 ||
		got.outBytes != 0 || got.locked || got.pending != 0 || got.pcu != nil || got.dt != nil {
		t.Fatalf("recycled transaction carries stale state: %+v", got)
	}
}

func TestPEITxnDoubleReleasePanics(t *testing.T) {
	p := &PMU{}
	tx := p.getTxn()
	p.putTxn(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.putTxn(tx)
}

func TestDirTxnDoubleReleasePanics(t *testing.T) {
	d := &Directory{}
	tx := d.getTxn()
	d.putTxn(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	d.putTxn(tx)
}
