package pim

import (
	"testing"

	"pimsim/internal/addr"
	"pimsim/internal/cache"
	"pimsim/internal/config"
	"pimsim/internal/dram"
	"pimsim/internal/hmc"
	"pimsim/internal/memlayout"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

type rig struct {
	k     *sim.Kernel
	cfg   *config.Config
	reg   *stats.Registry
	chain *hmc.Chain
	hier  *cache.Hierarchy
	store *memlayout.Store
	pmu   *PMU
}

func newRig(t testing.TB, mode Mode, mutate func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Scaled()
	if mutate != nil {
		mutate(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	chain := hmc.NewChain(k, hmc.Config{
		Mapping:           cfg.Mapping(),
		Timing:            dram.Timing{TCL: cfg.TCL, TRCD: cfg.TRCD, TRP: cfg.TRP, IssueGap: 2},
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
		LinkLatency:       cfg.LinkLatency,
		HopLatency:        cfg.HopLatency,
		TSVBytesPerCycle:  cfg.TSVBytesPerCycle,
		TSVLatency:        cfg.TSVLatency,
		PacketHeaderBytes: cfg.PacketHeaderBytes,
		DispatchWindowCyc: cfg.DispatchWindowCyc,
	}, reg)
	hier := cache.NewHierarchy(k, cfg, chain, reg)
	store := memlayout.NewStore()
	pmu := NewPMU(k, cfg, hier, chain, store, mode, reg)
	return &rig{k: k, cfg: cfg, reg: reg, chain: chain, hier: hier, store: store, pmu: pmu}
}

func (r *rig) issueAndRun(t testing.TB, p *PEI) {
	t.Helper()
	done := false
	p.Done = func() { done = true }
	r.pmu.Issue(p)
	r.k.Run()
	if !done {
		t.Fatal("PEI never retired")
	}
}

func TestHostOnlyExecutesOnHost(t *testing.T) {
	r := newRig(t, HostOnly, nil)
	a := r.store.Alloc(8, 8)
	r.store.WriteU64(a, 10)
	r.issueAndRun(t, &PEI{Op: OpInc64, Target: a, Core: 0})
	if r.store.ReadU64(a) != 11 {
		t.Fatalf("value = %d, want 11", r.store.ReadU64(a))
	}
	if r.reg.Get("pei.host") != 1 || r.reg.Get("pei.mem") != 0 {
		t.Fatalf("host/mem = %d/%d", r.reg.Get("pei.host"), r.reg.Get("pei.mem"))
	}
	// The host path pulled the block into the cache.
	if !r.hier.CachedAnywhere(a) {
		t.Fatal("host-side PEI should cache its block")
	}
}

func TestPIMOnlyExecutesInMemory(t *testing.T) {
	r := newRig(t, PIMOnly, nil)
	a := r.store.Alloc(8, 8)
	r.store.WriteU64(a, 10)
	r.issueAndRun(t, &PEI{Op: OpInc64, Target: a, Core: 0})
	if r.store.ReadU64(a) != 11 {
		t.Fatalf("value = %d, want 11", r.store.ReadU64(a))
	}
	if r.reg.Get("pei.mem") != 1 {
		t.Fatal("PEI not executed in memory")
	}
	if r.hier.CachedAnywhere(a) {
		t.Fatal("memory-side PEI must not populate caches")
	}
	if r.reg.Get("dram.reads") == 0 {
		t.Fatal("memory-side PEI must access DRAM")
	}
}

func TestMemorySidePEIFlushesDirtyBlock(t *testing.T) {
	r := newRig(t, PIMOnly, nil)
	a := r.store.Alloc(8, 8)
	// Make the block dirty in core 1's cache via a normal store.
	storeDone := false
	r.hier.Access(1, a, true, func() { storeDone = true })
	r.k.Run()
	if !storeDone {
		t.Fatal("priming store never completed")
	}
	wbBefore := r.reg.Get("pmu.back_invalidations")
	r.issueAndRun(t, &PEI{Op: OpInc64, Target: a, Core: 0})
	if r.reg.Get("pmu.back_invalidations") != wbBefore+1 {
		t.Fatal("writer PEI must back-invalidate the target block")
	}
	if r.hier.CachedAnywhere(a) {
		t.Fatal("block still cached after back-invalidation")
	}
}

func TestReaderPEIUsesBackWriteback(t *testing.T) {
	r := newRig(t, PIMOnly, nil)
	b := r.store.Alloc(64, 64)
	r.hier.Access(0, b, true, func() {})
	r.k.Run()
	r.issueAndRun(t, &PEI{Op: OpHistBin, Target: b, Core: 0, Input: []byte{0}})
	if r.reg.Get("pmu.back_writebacks") != 1 {
		t.Fatal("reader PEI must use back-writeback")
	}
	if r.reg.Get("pmu.back_invalidations") != 0 {
		t.Fatal("reader PEI must not invalidate")
	}
	if !r.hier.CachedAnywhere(b) {
		t.Fatal("back-writeback must keep clean cached copies")
	}
}

func TestAtomicityManyWritersSameBlock(t *testing.T) {
	r := newRig(t, HostOnly, nil)
	a := r.store.Alloc(8, 8)
	retired := 0
	const n = 50
	for i := 0; i < n; i++ {
		r.pmu.Issue(&PEI{Op: OpInc64, Target: a, Core: i % r.cfg.Cores, Done: func() { retired++ }})
	}
	r.k.Run()
	if retired != n {
		t.Fatalf("retired %d of %d", retired, n)
	}
	if got := r.store.ReadU64(a); got != n {
		t.Fatalf("value = %d, want %d (lost updates)", got, n)
	}
}

func TestAtomicityMixedModesLocalityAware(t *testing.T) {
	r := newRig(t, LocalityAware, nil)
	a := r.store.Alloc(8, 8)
	retired := 0
	const n = 40
	for i := 0; i < n; i++ {
		r.pmu.Issue(&PEI{Op: OpInc64, Target: a, Core: i % r.cfg.Cores, Done: func() { retired++ }})
	}
	r.k.Run()
	if retired != n || r.store.ReadU64(a) != n {
		t.Fatalf("retired=%d value=%d, want %d/%d", retired, r.store.ReadU64(a), n, n)
	}
	// The stream hammers one block: after warmup the monitor should
	// steer to the host.
	if r.reg.Get("pei.host") == 0 {
		t.Fatal("locality-aware never used the host for a hot block")
	}
}

func TestLocalityAwareColdStreamGoesToMemory(t *testing.T) {
	r := newRig(t, LocalityAware, nil)
	// One PEI per cache block (stride 8 elements) so nothing re-touches
	// a block: pure streaming, zero locality.
	arr := r.store.AllocU64Array(512 * 8)
	retired := 0
	for i := 0; i < 512; i++ {
		r.pmu.Issue(&PEI{Op: OpInc64, Target: arr.Addr(i * 8), Core: 0, Done: func() { retired++ }})
		if i%8 == 7 {
			r.k.Run()
		}
	}
	r.k.Run()
	if retired != 512 {
		t.Fatalf("retired %d", retired)
	}
	mem, host := r.reg.Get("pei.mem"), r.reg.Get("pei.host")
	if mem <= host*4 {
		t.Fatalf("cold stream: mem=%d host=%d; expected heavy memory steering", mem, host)
	}
}

func TestLocalityAwareHotBlockGoesToHost(t *testing.T) {
	r := newRig(t, LocalityAware, nil)
	a := r.store.Alloc(8, 8)
	// Warm the monitor with cache traffic.
	for i := 0; i < 4; i++ {
		r.hier.Access(0, a, false, func() {})
		r.k.Run()
	}
	r.issueAndRun(t, &PEI{Op: OpFloatAdd, Target: a, Core: 0, Input: F64Input(1.0)})
	if r.reg.Get("pei.host") != 1 {
		t.Fatal("hot block PEI should run on host")
	}
}

func TestIdealHostNoPCUNoDirectoryCost(t *testing.T) {
	r := newRig(t, IdealHost, nil)
	a := r.store.Alloc(8, 8)
	r.issueAndRun(t, &PEI{Op: OpInc64, Target: a, Core: 0})
	if r.store.ReadU64(a) != 1 {
		t.Fatal("ideal host did not execute")
	}
	if r.reg.Get("pei.host") != 1 {
		t.Fatal("ideal host counts as host execution")
	}
}

func TestPfenceOrdersWriters(t *testing.T) {
	r := newRig(t, LocalityAware, nil)
	arr := r.store.AllocU64Array(64)
	retired := 0
	for i := 0; i < 64; i++ {
		r.pmu.Issue(&PEI{Op: OpInc64, Target: arr.Addr(i), Core: i % r.cfg.Cores, Done: func() { retired++ }})
	}
	fenced := false
	r.pmu.Fence(func() {
		fenced = true
		if retired != 64 {
			t.Errorf("fence fired with %d/64 PEIs retired", retired)
		}
		for i := 0; i < 64; i++ {
			if arr.Get(i) != 1 {
				t.Errorf("element %d = %d at fence", i, arr.Get(i))
			}
		}
	})
	r.k.Run()
	if !fenced {
		t.Fatal("fence never fired")
	}
}

func TestOutputOperandDelivered(t *testing.T) {
	r := newRig(t, PIMOnly, nil)
	b := r.store.Alloc(64, 64)
	r.store.WriteU64(b+HashBucketKeyOff, 42)
	p := &PEI{Op: OpHashProbe, Target: b, Core: 0, Input: U64Input(42)}
	r.issueAndRun(t, p)
	if len(p.Output) != 9 || p.Output[0] != 1 {
		t.Fatalf("output = %v, want match", p.Output)
	}
}

func TestBalancedDispatchRedirectsToHost(t *testing.T) {
	r := newRig(t, LocalityAware, func(c *config.Config) { c.BalancedDispatch = true })
	// Saturate the request direction with writes so C_req >> C_res.
	for i := 0; i < 50; i++ {
		r.chain.Write(uint64(i)*addr.BlockBytes+1<<19, nil)
	}
	r.k.Run()
	if r.chain.ReqPressure() <= r.chain.ResPressure() {
		t.Fatal("test setup: request pressure should dominate")
	}
	// A Euclidean-distance PEI (64 B input) on a cold block would cost
	// 80 B of request bandwidth in memory but only 16 B on the host:
	// balanced dispatch must choose the host despite the monitor miss.
	blkBase := r.store.Alloc(64, 64)
	r.issueAndRun(t, &PEI{Op: OpEuclideanDist, Target: blkBase, Core: 0, Input: make([]byte, 64)})
	if r.reg.Get("pei.host") != 1 {
		t.Fatal("balanced dispatch should redirect to host under request pressure")
	}
	if r.reg.Get("pei.balanced_to_host") != 1 {
		t.Fatal("balanced dispatch counter not incremented")
	}
}

func TestOperandBufferSaturation(t *testing.T) {
	small := newRig(t, HostOnly, func(c *config.Config) { c.OperandBufferEntries = 1 })
	arr := small.store.AllocU64Array(32)
	retired := 0
	for i := 0; i < 32; i++ {
		small.pmu.Issue(&PEI{Op: OpInc64, Target: arr.Addr(i), Core: 0, Done: func() { retired++ }})
	}
	small.k.Run()
	if retired != 32 {
		t.Fatalf("retired %d", retired)
	}
	if small.pmu.HostPCU[0].BufferFullStalls == 0 {
		t.Fatal("single-entry buffer should stall under 32 back-to-back PEIs")
	}
}

func TestInvalidPEIPanics(t *testing.T) {
	r := newRig(t, HostOnly, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid PEI")
		}
	}()
	r.pmu.Issue(&PEI{Op: OpMin64, Target: 64, Input: nil, Done: func() {}})
}

func TestSummaryString(t *testing.T) {
	r := newRig(t, HostOnly, nil)
	a := r.store.Alloc(8, 8)
	r.issueAndRun(t, &PEI{Op: OpInc64, Target: a, Core: 0})
	s := r.pmu.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestHMC2AtomicsMode(t *testing.T) {
	r := newRig(t, PIMOnly, func(c *config.Config) { c.HMC2AtomicsMode = true })
	arr := r.store.AllocU64Array(32)
	retired := 0
	for i := 0; i < 32; i++ {
		r.pmu.Issue(&PEI{Op: OpInc64, Target: arr.Addr(i), Done: func() { retired++ }})
	}
	r.k.Run()
	if retired != 32 {
		t.Fatalf("retired %d", retired)
	}
	for i := 0; i < 32; i++ {
		if arr.Get(i) != 1 {
			t.Fatalf("element %d = %d", i, arr.Get(i))
		}
	}
	// No directory traffic and no coherence actions in this mode.
	if r.reg.Get("pmu.dir_blocked") != 0 {
		t.Fatal("HMC2 mode must not use the PIM directory")
	}
	if r.reg.Get("pmu.back_invalidations") != 0 {
		t.Fatal("HMC2 mode must not issue back-invalidations")
	}
	if r.reg.Get("pei.mem") != 32 {
		t.Fatal("HMC2 atomics must execute in memory")
	}
}

// pfence still works in HMC2 mode (writers are registered but released
// without directory entries)? No: HMC2 atomics bypass the directory, so
// pfence cannot order them — exactly the interoperability gap the paper
// calls out for prior PIM interfaces. Pin that behavior.
func TestHMC2AtomicsBypassFence(t *testing.T) {
	r := newRig(t, PIMOnly, func(c *config.Config) { c.HMC2AtomicsMode = true })
	a := r.store.Alloc(8, 8)
	r.pmu.Issue(&PEI{Op: OpInc64, Target: a, Done: func() {}})
	fenced := false
	r.pmu.Fence(func() { fenced = true })
	r.k.RunUntil(10)
	if !fenced {
		t.Fatal("fence should return immediately: HMC2 atomics are invisible to it")
	}
	r.k.Run()
}
