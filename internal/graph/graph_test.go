package graph

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromEdgeListBasic(t *testing.T) {
	g, err := FromEdgeList(4, []int32{0, 0, 1, 3}, []int32{1, 2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("size %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(2) != 0 {
		t.Fatalf("degrees wrong: %d, %d", g.OutDegree(0), g.OutDegree(2))
	}
	succ := g.Successors(0)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Fatalf("successors(0) = %v", succ)
	}
}

func TestFromEdgeListRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdgeList(2, []int32{0}, []int32{5}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := FromEdgeList(2, []int32{0, 1}, []int32{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSymmetrizeDoublesEdges(t *testing.T) {
	g, _ := FromEdgeList(3, []int32{0, 1}, []int32{1, 2})
	s := g.Symmetrize()
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", s.NumEdges())
	}
	if s.OutDegree(1) != 2 {
		t.Fatalf("vertex 1 degree = %d, want 2", s.OutDegree(1))
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(1024, 8192, 42)
	b := RMAT(1024, 8192, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := RMAT(1024, 8192, 43)
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(1000, 10000, 7)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 10000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Successors(v) {
			if w < 0 || int(w) >= 1000 {
				t.Fatalf("edge target %d out of range", w)
			}
		}
	}
}

// R-MAT graphs must be skewed: the top 1% of vertices should own far
// more than 1% of the edges (power-law degree property the paper's
// locality results rely on).
func TestRMATPowerLawSkew(t *testing.T) {
	g := RMAT(4096, 65536, 11)
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.OutDegree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:41] { // top 1%
		top += d
	}
	frac := float64(top) / float64(g.NumEdges())
	if frac < 0.10 {
		t.Fatalf("top 1%% of vertices hold only %.1f%% of edges; not power-law", 100*frac)
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g, _ := FromEdgeList(4, []int32{0, 1, 1, 1}, []int32{1, 0, 2, 3})
	if got := g.MaxDegreeVertex(); got != 1 {
		t.Fatalf("MaxDegreeVertex = %d, want 1", got)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(256, 2048, 5)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Successors(v), g2.Successors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d successor mismatch", v)
			}
		}
	}
}

func TestReadEdgeListHeaderless(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 3\n3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("inferred size %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestDatasetSpecs(t *testing.T) {
	if len(Figure2Graphs) != 9 {
		t.Fatalf("Figure2Graphs has %d entries, want 9", len(Figure2Graphs))
	}
	for i := 1; i < len(Figure2Graphs); i++ {
		if Figure2Graphs[i].Vertices <= Figure2Graphs[i-1].Vertices {
			t.Fatal("Figure2Graphs not in ascending vertex order")
		}
	}
	s := Figure2Graphs[0].Scaled(16)
	if s.Vertices != Figure2Graphs[0].Vertices/16 {
		t.Fatalf("scaled vertices = %d", s.Vertices)
	}
	g := DatasetSpec{Name: "t", Vertices: 128, Edges: 512, Seed: 3}.Generate()
	if g.NumVertices() != 128 || g.NumEdges() != 512 {
		t.Fatal("Generate produced wrong shape")
	}
}

// Property: CSR construction conserves edges — sum of out-degrees equals
// the edge count, and offsets are monotone.
func TestCSRConservation(t *testing.T) {
	f := func(pairs []uint16) bool {
		n := 64
		var src, dst []int32
		for _, p := range pairs {
			src = append(src, int32(p%uint16(n)))
			dst = append(dst, int32((p/uint16(n))%uint16(n)))
		}
		g, err := FromEdgeList(n, src, dst)
		if err != nil {
			return false
		}
		total := 0
		for v := 0; v < n; v++ {
			if g.Offsets[v+1] < g.Offsets[v] {
				return false
			}
			total += g.OutDegree(v)
		}
		return total == len(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
