// Package graph provides the graph substrate the five graph-processing
// workloads run on: a compact CSR representation, an R-MAT power-law
// generator standing in for the paper's real-world social/web graphs
// (DESIGN.md §3), named dataset recipes matching the nine graphs of
// Figures 2 and 8, and an edge-list exchange format.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	Name string
	// Offsets has NumVertices+1 entries; successors of v are
	// Edges[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	Edges   []int32
}

// NumVertices and NumEdges report the size.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }
func (g *Graph) NumEdges() int    { return len(g.Edges) }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Successors returns v's successor slice (shared storage; do not
// modify).
func (g *Graph) Successors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// FromEdgeList builds a CSR graph from (src, dst) pairs. Vertices are
// 0..n-1; edges keep duplicates (multi-edges occur in real crawls too)
// but are sorted per source for locality.
func FromEdgeList(n int, src, dst []int32) (*Graph, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch %d/%d", len(src), len(dst))
	}
	g := &Graph{Offsets: make([]int64, n+1), Edges: make([]int32, len(src))}
	for i, s := range src {
		if int(s) >= n || s < 0 || int(dst[i]) >= n || dst[i] < 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", s, dst[i], n)
		}
		g.Offsets[s+1]++
	}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.Offsets[:n])
	for i, s := range src {
		g.Edges[cursor[s]] = dst[i]
		cursor[s]++
	}
	for v := 0; v < n; v++ {
		e := g.Edges[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(e, func(i, j int) bool { return e[i] < e[j] })
	}
	return g, nil
}

// Symmetrize returns the undirected version of g (every edge plus its
// reverse), used by WCC where edge direction is ignored.
func (g *Graph) Symmetrize() *Graph {
	n := g.NumVertices()
	m := g.NumEdges()
	src := make([]int32, 0, 2*m)
	dst := make([]int32, 0, 2*m)
	for v := 0; v < n; v++ {
		for _, w := range g.Successors(v) {
			src = append(src, int32(v))
			dst = append(dst, w)
			src = append(src, w)
			dst = append(dst, int32(v))
		}
	}
	sym, err := FromEdgeList(n, src, dst)
	if err != nil {
		panic(err) // cannot happen: inputs came from a valid graph
	}
	sym.Name = g.Name + "-sym"
	return sym
}

// RMAT generates a power-law graph with the Graph500 R-MAT parameters
// (a=0.57, b=0.19, c=0.19, d=0.05), the standard synthetic stand-in for
// social-network graphs. n is rounded up to a power of two internally
// for quadrant recursion, then vertices are taken modulo n so the
// requested count is exact. Deterministic for a given seed.
func RMAT(n, edges int, seed int64) *Graph {
	if n <= 0 || edges < 0 {
		panic("graph: bad RMAT parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for 1<<levels < n {
		levels++
	}
	src := make([]int32, edges)
	dst := make([]int32, edges)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < edges; i++ {
		var s, d int
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing set
			case r < a+b:
				d |= 1 << l
			case r < a+b+c:
				s |= 1 << l
			default:
				s |= 1 << l
				d |= 1 << l
			}
		}
		src[i] = int32(s % n)
		dst[i] = int32(d % n)
	}
	g, err := FromEdgeList(n, src, dst)
	if err != nil {
		panic(err)
	}
	return g
}

// MaxDegreeVertex returns the vertex with the largest out-degree (used
// as a well-connected BFS/SSSP source).
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
