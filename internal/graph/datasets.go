package graph

import "fmt"

// DatasetSpec names a synthetic stand-in for one of the real graphs used
// in Figures 2 and 8. Vertices/Edges match the published sizes of the
// originals (SNAP [45] / LAW [29]); Generate builds an R-MAT graph of
// that shape. See DESIGN.md §3 for why R-MAT preserves the relevant
// behaviour (footprint and power-law degree skew).
type DatasetSpec struct {
	Name     string
	Vertices int
	Edges    int
	Seed     int64
}

// Figure2Graphs lists the nine graphs of Figures 2 and 8 in ascending
// vertex-count order, the order the paper plots them in.
var Figure2Graphs = []DatasetSpec{
	{Name: "p2p-Gnutella31", Vertices: 62_586, Edges: 147_892, Seed: 1},
	{Name: "soc-Slashdot0811", Vertices: 77_360, Edges: 905_468, Seed: 2},
	{Name: "web-Stanford", Vertices: 281_903, Edges: 2_312_497, Seed: 3},
	{Name: "amazon-2008", Vertices: 735_323, Edges: 5_158_388, Seed: 4},
	{Name: "web-Google", Vertices: 875_713, Edges: 5_105_039, Seed: 5},
	{Name: "frwiki-2013", Vertices: 1_352_053, Edges: 34_378_431, Seed: 6},
	{Name: "wiki-Talk", Vertices: 2_394_385, Edges: 5_021_410, Seed: 7},
	{Name: "cit-Patents", Vertices: 3_774_768, Edges: 16_518_948, Seed: 8},
	{Name: "soc-LiveJournal1", Vertices: 4_847_571, Edges: 68_993_773, Seed: 9},
}

// Table3Graphs gives the small/medium/large graph inputs of Table 3.
var Table3Graphs = map[string]DatasetSpec{
	"small":  {Name: "soc-Slashdot0811", Vertices: 77_360, Edges: 905_468, Seed: 2},
	"medium": {Name: "frwiki-2013", Vertices: 1_352_053, Edges: 34_378_431, Seed: 6},
	"large":  {Name: "soc-LiveJournal1", Vertices: 4_847_571, Edges: 68_993_773, Seed: 9},
}

// Scaled returns the spec shrunk by factor (vertices and edges divided),
// used to keep simulations laptop-scale while preserving the
// footprint-to-cache-size ratios when the cache configuration is scaled
// by the same factor.
func (d DatasetSpec) Scaled(factor int) DatasetSpec {
	if factor <= 1 {
		return d
	}
	s := d
	s.Name = fmt.Sprintf("%s/%d", d.Name, factor)
	s.Vertices = max(16, d.Vertices/factor)
	s.Edges = max(32, d.Edges/factor)
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds the synthetic graph.
func (d DatasetSpec) Generate() *Graph {
	g := RMAT(d.Vertices, d.Edges, d.Seed)
	g.Name = d.Name
	return g
}
