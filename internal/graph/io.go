package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteEdgeList writes the graph as "numVertices" header line followed
// by "src dst" pairs, a format users can swap for real SNAP downloads.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.Successors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format (or a raw SNAP edge list
// when the header is absent — vertex count inferred as max id + 1).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var src, dst []int32
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var v, e int
			if _, err := fmt.Sscanf(line, "# vertices %d edges %d", &v, &e); err == nil {
				n = v
			}
			continue
		}
		var s, d int32
		if _, err := fmt.Sscanf(line, "%d %d", &s, &d); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", line, err)
		}
		src = append(src, s)
		dst = append(dst, d)
		if int(s) >= n {
			n = int(s) + 1
		}
		if int(d) >= n {
			n = int(d) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdgeList(n, src, dst)
}

// SaveFile and LoadFile are file-path conveniences.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WriteEdgeList(f)
}

func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
