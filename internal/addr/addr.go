// Package addr defines the simulated physical address space: cache-block
// arithmetic, the XOR-folding hash the paper uses for the PIM directory
// index and the locality monitor's partial tags, and the mapping from
// physical addresses to HMC cube / vault / DRAM bank / row.
package addr

import "fmt"

const (
	// BlockBytes is the last-level cache block size; the single-cache-block
	// restriction means every PEI targets exactly one such block.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
)

// BlockOf returns the block number containing physical address a.
func BlockOf(a uint64) uint64 { return a >> BlockShift }

// BlockBase returns the first byte address of a's block.
func BlockBase(a uint64) uint64 { return a &^ uint64(BlockBytes-1) }

// XORFold folds x into a value of the given bit width by XORing
// successive width-bit chunks, the hash the paper prescribes for the
// tag-less PIM directory index and the 10-bit partial tags of the
// locality monitor.
func XORFold(x uint64, bits uint) uint64 {
	if bits == 0 || bits > 63 {
		panic(fmt.Sprintf("addr: XORFold width %d out of range", bits))
	}
	mask := uint64(1)<<bits - 1
	var folded uint64
	for x != 0 {
		folded ^= x & mask
		x >>= bits
	}
	return folded
}

// Location identifies a DRAM resource: cube on the chain, vault within
// the cube, bank within the vault, and DRAM row within the bank.
type Location struct {
	Cube  int
	Vault int
	Bank  int
	Row   uint64
}

// Mapping distributes cache blocks across the memory system. Consecutive
// blocks interleave across cubes, then vaults, then banks (maximizing
// parallelism for streams); the remaining quotient selects the column
// within a row and then the row, giving FR-FCFS row-buffer locality to
// strided revisits of the same bank.
type Mapping struct {
	Cubes         int
	VaultsPerCube int
	BanksPerVault int
	// RowBytes is the DRAM row (page) size per bank.
	RowBytes int
	// InterleaveBlocks is how many consecutive blocks stay in one cube
	// before moving to the next (1 = fully interleaved).
	InterleaveBlocks int
}

// Validate reports whether the mapping's parameters are usable.
func (m Mapping) Validate() error {
	switch {
	case m.Cubes <= 0:
		return fmt.Errorf("addr: Cubes = %d, must be positive", m.Cubes)
	case m.VaultsPerCube <= 0:
		return fmt.Errorf("addr: VaultsPerCube = %d, must be positive", m.VaultsPerCube)
	case m.BanksPerVault <= 0:
		return fmt.Errorf("addr: BanksPerVault = %d, must be positive", m.BanksPerVault)
	case m.RowBytes < BlockBytes:
		return fmt.Errorf("addr: RowBytes = %d, must be at least one block", m.RowBytes)
	case m.InterleaveBlocks <= 0:
		return fmt.Errorf("addr: InterleaveBlocks = %d, must be positive", m.InterleaveBlocks)
	}
	return nil
}

// Locate maps a physical byte address to its DRAM location.
func (m Mapping) Locate(a uint64) Location {
	b := BlockOf(a)
	ilv := uint64(m.InterleaveBlocks)
	group := b / ilv
	cube := int(group % uint64(m.Cubes))
	group /= uint64(m.Cubes)
	vault := int(group % uint64(m.VaultsPerCube))
	group /= uint64(m.VaultsPerCube)
	bank := int(group % uint64(m.BanksPerVault))
	group /= uint64(m.BanksPerVault)
	// group now counts block-groups within this bank; convert to blocks
	// and divide by blocks per row for the row index.
	blockInBank := group*ilv + b%ilv
	row := blockInBank / uint64(m.RowBytes/BlockBytes)
	return Location{Cube: cube, Vault: vault, Bank: bank, Row: row}
}

// VaultsTotal returns the total number of vaults in the system.
func (m Mapping) VaultsTotal() int { return m.Cubes * m.VaultsPerCube }
