package addr

import (
	"testing"
	"testing/quick"
)

func TestBlockArithmetic(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(63) != 0 || BlockOf(64) != 1 {
		t.Fatal("BlockOf wrong")
	}
	if BlockBase(130) != 128 {
		t.Fatalf("BlockBase(130) = %d, want 128", BlockBase(130))
	}
}

func TestXORFoldWidth(t *testing.T) {
	for _, bits := range []uint{1, 10, 11, 16, 32} {
		for _, x := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
			v := XORFold(x, bits)
			if v >= 1<<bits {
				t.Fatalf("XORFold(%#x,%d) = %#x exceeds width", x, bits, v)
			}
		}
	}
}

func TestXORFoldKnownValues(t *testing.T) {
	// 0xABCD folded to 8 bits: 0xAB ^ 0xCD = 0x66.
	if got := XORFold(0xABCD, 8); got != 0x66 {
		t.Fatalf("XORFold(0xABCD,8) = %#x, want 0x66", got)
	}
	if got := XORFold(0, 10); got != 0 {
		t.Fatalf("XORFold(0,10) = %d, want 0", got)
	}
}

// Property: XORFold is deterministic and self-inverse under chunk XOR:
// folding x and folding x^(y<<bits) differ by fold of the injected chunk.
func TestXORFoldProperty(t *testing.T) {
	f := func(x uint64) bool {
		return XORFold(x, 10) == XORFold(x, 10) && XORFold(x, 10) < 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func baselineMapping() Mapping {
	return Mapping{Cubes: 8, VaultsPerCube: 16, BanksPerVault: 16, RowBytes: 8192, InterleaveBlocks: 1}
}

func TestMappingValidate(t *testing.T) {
	m := baselineMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.RowBytes = 32
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for tiny RowBytes")
	}
	bad = m
	bad.Cubes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero cubes")
	}
}

func TestMappingInterleavesAcrossCubes(t *testing.T) {
	m := baselineMapping()
	for i := 0; i < 8; i++ {
		loc := m.Locate(uint64(i * BlockBytes))
		if loc.Cube != i {
			t.Fatalf("block %d -> cube %d, want %d", i, loc.Cube, i)
		}
		if loc.Vault != 0 || loc.Bank != 0 || loc.Row != 0 {
			t.Fatalf("block %d unexpected location %+v", i, loc)
		}
	}
	// Block 8 wraps to cube 0, vault 1.
	loc := m.Locate(8 * BlockBytes)
	if loc.Cube != 0 || loc.Vault != 1 {
		t.Fatalf("block 8 -> %+v, want cube 0 vault 1", loc)
	}
}

func TestMappingRowAdvances(t *testing.T) {
	m := baselineMapping()
	blocksPerRow := uint64(m.RowBytes / BlockBytes)               // 128
	stride := uint64(m.Cubes * m.VaultsPerCube * m.BanksPerVault) // 2048 blocks between same-bank visits
	first := m.Locate(0)
	same := m.Locate(stride * BlockBytes)
	if same.Cube != first.Cube || same.Vault != first.Vault || same.Bank != first.Bank {
		t.Fatalf("stride revisit moved banks: %+v vs %+v", first, same)
	}
	if same.Row != 0 {
		t.Fatalf("stride revisit row = %d, want 0", same.Row)
	}
	far := m.Locate(stride * blocksPerRow * BlockBytes)
	if far.Row != 1 {
		t.Fatalf("row after %d same-bank blocks = %d, want 1", blocksPerRow, far.Row)
	}
}

// Property: every address maps to in-range resources, and addresses in
// the same block map to the same location.
func TestMappingRangeProperty(t *testing.T) {
	m := baselineMapping()
	f := func(a uint64) bool {
		a &= (1 << 40) - 1 // constrain to 1 TB
		loc := m.Locate(a)
		loc2 := m.Locate(BlockBase(a))
		return loc == loc2 &&
			loc.Cube >= 0 && loc.Cube < m.Cubes &&
			loc.Vault >= 0 && loc.Vault < m.VaultsPerCube &&
			loc.Bank >= 0 && loc.Bank < m.BanksPerVault
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the mapping is balanced — a long run of consecutive blocks
// spreads evenly (within one block) across all vaults of all cubes.
func TestMappingBalance(t *testing.T) {
	m := baselineMapping()
	counts := make(map[[2]int]int)
	n := 4096
	for i := 0; i < n; i++ {
		loc := m.Locate(uint64(i * BlockBytes))
		counts[[2]int{loc.Cube, loc.Vault}]++
	}
	want := n / m.VaultsTotal()
	for k, c := range counts {
		if c != want {
			t.Fatalf("vault %v got %d blocks, want %d", k, c, want)
		}
	}
}

func TestMappingCoarseInterleave(t *testing.T) {
	m := baselineMapping()
	m.InterleaveBlocks = 4
	for i := 0; i < 4; i++ {
		if loc := m.Locate(uint64(i * BlockBytes)); loc.Cube != 0 {
			t.Fatalf("block %d should stay in cube 0, got %+v", i, loc)
		}
	}
	if loc := m.Locate(4 * BlockBytes); loc.Cube != 1 {
		t.Fatalf("block 4 should move to cube 1, got %+v", loc)
	}
}
