package sim

import (
	"fmt"

	"pimsim/internal/snap"
)

// This file implements the kernel-layer half of checkpoint snapshots.
// Snapshots are only defined at quiescence — every calendar queue
// empty, every PDES mailbox drained — so no pending event, ring bucket,
// or far-heap entry is ever serialized. What the kernel contributes to
// a snapshot is purely its clock and dispatch accounting; the seq
// counter restarts at zero (it only breaks ties among pending far
// events, of which a quiescent kernel has none) and base is re-anchored
// at now, which is sound because migrate() preserves global same-cycle
// FIFO regardless of the ring's origin.

// SnapshotTo serializes the kernel's clock state. It fails if events
// are pending: snapshots are defined only at quiescence. The section
// tag and payload are identical to (*PDES).SnapshotTo's — at a
// quiesced, clock-aligned boundary both kernels' state reduces to the
// same two words, which is what makes snapshot blobs kernel-agnostic.
func (k *Kernel) SnapshotTo(w *snap.Writer) {
	w.Section("CLCK")
	if n := k.Pending(); n != 0 {
		w.Fail(fmt.Errorf("%w: kernel has %d pending events", snap.ErrNotQuiescent, n))
		return
	}
	w.I64(k.now)
	w.U64(k.Executed)
}

// RestoreFrom loads clock state into an empty kernel.
func (k *Kernel) RestoreFrom(r *snap.Reader) {
	r.Section("CLCK")
	if n := k.Pending(); n != 0 {
		r.Fail(fmt.Errorf("%w: restore target kernel has %d pending events", snap.ErrNotQuiescent, n))
		return
	}
	k.now = r.I64()
	k.base = k.now
	k.Executed = r.U64()
	k.seq = 0
}

// AdvanceTo moves an empty kernel's clock forward to cycle (a no-op if
// already there or beyond). Machine.Quiesce uses it to align every
// clock — the sequential kernel, or all PDES partitions — to the global
// maximum at a phase boundary, making phase boundaries kernel-agnostic:
// both kernels resume the next phase from the identical cycle.
func (k *Kernel) AdvanceTo(cycle Cycle) {
	if k.Pending() != 0 {
		panic(fmt.Sprintf("sim: AdvanceTo with %d pending events", k.Pending()))
	}
	if cycle > k.now {
		k.now = cycle
		k.base = cycle
	}
}

// SnapshotTo serializes the link's occupancy horizon and traffic
// counters. nextFree is kept exactly (it may lag now at quiescence;
// restoring it preserves QueueDelay arithmetic and the Busy invariant).
func (l *Link) SnapshotTo(w *snap.Writer) {
	w.Section("LINK")
	w.I64(l.nextFree)
	w.U64(l.BytesTransferred)
	w.U64(l.FlitsTransferred)
	w.I64(l.Busy)
}

// RestoreFrom loads link state.
func (l *Link) RestoreFrom(r *snap.Reader) {
	r.Section("LINK")
	l.nextFree = r.I64()
	l.BytesTransferred = r.U64()
	l.FlitsTransferred = r.U64()
	l.Busy = r.I64()
}

// Quiesced reports whether the ensemble is fully drained: no partition
// has pending events and every cross-partition mailbox is empty.
func (pd *PDES) Quiesced() bool { return pd.Pending() == 0 }

// AdvanceAllTo aligns every partition's clock to cycle (see
// Kernel.AdvanceTo). Only legal at quiescence.
func (pd *PDES) AdvanceAllTo(cycle Cycle) {
	if !pd.Quiesced() {
		panic("sim: AdvanceAllTo before quiescence")
	}
	for _, p := range pd.parts {
		p.Kernel.AdvanceTo(cycle)
	}
}

// SnapshotTo serializes ensemble-wide clock state in a kernel-agnostic
// form: by the time a snapshot is taken the machine has Quiesce()d, so
// all partition clocks are equal and only one cycle value plus the
// total dispatch count is stored — the same two words the sequential
// kernel stores. A blob written under either kernel restores under
// either.
func (pd *PDES) SnapshotTo(w *snap.Writer) {
	w.Section("CLCK")
	if !pd.Quiesced() {
		w.Fail(fmt.Errorf("%w: pdes ensemble has pending events or undrained mail", snap.ErrNotQuiescent))
		return
	}
	now := pd.MaxNow()
	for _, p := range pd.parts {
		if p.Now() != now {
			w.Fail(fmt.Errorf("snap: partition %d clock %d not aligned to %d (Quiesce not called)", p.id, p.Now(), now))
			return
		}
	}
	w.I64(now)
	w.U64(pd.Executed())
}

// RestoreFrom loads ensemble clock state: every partition's clock is
// set to the stored cycle and the total dispatch count is assigned to
// the host partition (Executed is ensemble-wide accounting; its
// per-partition split is not semantically meaningful).
func (pd *PDES) RestoreFrom(r *snap.Reader) {
	r.Section("CLCK")
	if !pd.Quiesced() {
		r.Fail(fmt.Errorf("%w: restore target ensemble has pending events", snap.ErrNotQuiescent))
		return
	}
	now := r.I64()
	executed := r.U64()
	if r.Err() != nil {
		return
	}
	for _, p := range pd.parts {
		p.Kernel.now = now
		p.Kernel.base = now
		p.Kernel.seq = 0
		p.Kernel.Executed = 0
	}
	pd.parts[0].Kernel.Executed = executed
	// The memoized next-event cycles predate the restore; force every
	// partition to re-peek on the next epoch.
	for i := range pd.stale {
		pd.stale[i] = true
	}
}
