package sim

import "math"

// Link models a bandwidth-limited, fixed-latency, in-order channel such as
// an HMC serial lane bundle, a vault's TSV bundle, or a crossbar port.
//
// A transfer of n bytes occupies the link for ceil(n/BytesPerCycle)
// cycles; transfers queue behind one another (store-and-forward), and the
// payload is delivered Latency cycles after its occupancy ends. The model
// therefore captures both serialization delay and queueing delay, the two
// effects the paper's bandwidth arguments rest on.
type Link struct {
	k Scheduler

	// BytesPerCycle is the link bandwidth expressed in the kernel's base
	// clock. 80 GB/s at a 4 GHz base clock is 20 bytes/cycle.
	BytesPerCycle float64
	// Latency is the propagation delay added after serialization.
	Latency Cycle

	nextFree Cycle

	// BytesTransferred accumulates total payload bytes; FlitsTransferred
	// counts 16-byte flits (rounded up per packet), matching how the
	// paper's balanced-dispatch counters measure traffic.
	BytesTransferred uint64
	FlitsTransferred uint64
	// Busy accumulates cycles during which the link was occupied.
	Busy Cycle
}

// FlitBytes is the flit size used for link traffic accounting (HMC-style
// 16-byte flits).
const FlitBytes = 16

// NewLink creates a link scheduled on k, which must be the scheduler of
// the partition that owns (sends on) the link.
func NewLink(k Scheduler, bytesPerCycle float64, latency Cycle) *Link {
	if bytesPerCycle <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{k: k, BytesPerCycle: bytesPerCycle, Latency: latency}
}

// Send queues a transfer of the given number of bytes and invokes done
// (if non-nil) when the payload has been delivered. It returns the cycle
// at which delivery will occur. Closure variant for cold paths; hot
// paths use SendEvent.
func (l *Link) Send(bytes int, done func()) Cycle {
	if done == nil {
		return l.SendEvent(bytes, nil, EventArg{})
	}
	return l.SendEvent(bytes, funcEvent(done), EventArg{})
}

// SendEvent queues a transfer of the given number of bytes and delivers
// arg to h (if non-nil) when the payload arrives. It returns the cycle
// at which delivery will occur.
func (l *Link) SendEvent(bytes int, h Handler, arg EventArg) Cycle {
	return l.SendEventTo(l.k, bytes, h, arg)
}

// SendEventTo is SendEvent with an explicit delivery sink: serialization
// and occupancy are accounted on the sender's clock, and the payload is
// posted to sink at the delivery cycle. When the receiver lives in
// another PDES partition the sink is that partition's mailbox; the link
// latency then doubles as the synchronization lookahead, so delivery
// always lands at least a full window past the sender's clock.
func (l *Link) SendEventTo(sink EventSink, bytes int, h Handler, arg EventArg) Cycle {
	if bytes <= 0 {
		bytes = 1
	}
	occ := Cycle(math.Ceil(float64(bytes) / l.BytesPerCycle))
	start := l.k.Now()
	if l.nextFree > start {
		start = l.nextFree
	}
	end := start + occ
	l.nextFree = end
	l.Busy += occ
	l.BytesTransferred += uint64(bytes)
	l.FlitsTransferred += uint64((bytes + FlitBytes - 1) / FlitBytes)
	at := end + l.Latency
	if h != nil {
		sink.PostEvent(at, h, arg)
	}
	return at
}

// QueueDelay reports how long a transfer issued now would wait before
// starting serialization.
func (l *Link) QueueDelay() Cycle {
	d := l.nextFree - l.k.Now()
	if d < 0 {
		return 0
	}
	return d
}
