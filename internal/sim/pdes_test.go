package sim

import (
	"context"
	"fmt"
	"testing"
)

// node is a test component living in one partition: on each received
// event it logs (cycle, tag) and, while budget remains, sends a reply
// to its peer over its outbound link.
type node struct {
	sched  Scheduler
	link   *Link // outbound; delivers into the peer's partition
	sink   EventSink
	peer   *node
	budget int
	log    []string
}

func (n *node) OnEvent(arg EventArg) {
	n.log = append(n.log, fmt.Sprintf("%d:%d", n.sched.Now(), arg.N))
	if n.budget <= 0 {
		return
	}
	n.budget--
	// Vary payload size so serialization queueing differs per message.
	n.link.SendEventTo(n.sink, int(16+(arg.N%5)*48), n.peer, EventArg{N: arg.N + 1})
}

// TestPDESPingPongMatchesSequential drives the same ping-pong topology
// on the sequential kernel and on PDES at several worker counts and
// requires identical per-node event logs.
func TestPDESPingPongMatchesSequential(t *testing.T) {
	const (
		nremote = 5
		window  = 8
		budget  = 40
	)

	build := func(pd *PDES) ([]*node, []*node) {
		// Returns (remotes, all) where all[0] is the host node.
		var hostSched Scheduler
		if pd != nil {
			hostSched = pd.Part(0)
		} else {
			hostSched = NewKernel()
		}
		host := &node{sched: hostSched}
		all := []*node{host}
		var remotes []*node
		for i := 0; i < nremote; i++ {
			var rs Scheduler
			var toRemote, toHost EventSink
			if pd != nil {
				rs = pd.Part(i + 1)
				toRemote = pd.Sink(0, i+1)
				toHost = pd.Sink(i+1, 0)
			} else {
				rs = hostSched
				toRemote = hostSched
				toHost = hostSched
			}
			r := &node{sched: rs, budget: budget, peer: host}
			r.link = NewLink(rs, 8, window)
			r.sink = toHost
			// The host's reply path to this remote.
			h := &node{sched: hostSched, budget: budget, peer: r}
			h.link = NewLink(hostSched, 8, window)
			h.sink = toRemote
			host.log = nil
			// Remote replies go to h (the host-side responder), which
			// logs on the host partition and replies back to r.
			r.peer = h
			// Seed: host sends the first message to each remote at
			// distinct cycles so batches overlap across partitions.
			h.link.SendEventTo(toRemote, 16+i*32, r, EventArg{N: int64(i)})
			remotes = append(remotes, r)
			all = append(all, h, r)
		}
		return remotes, all
	}

	seqRemotes, seqAll := build(nil)
	seqAll[0].sched.(*Kernel).Run()
	_ = seqRemotes

	for _, workers := range []int{1, 2, 8} {
		pd := NewPDES(window, 1+nremote, workers)
		_, all := build(pd)
		if err := pd.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if pd.Pending() != 0 {
			t.Fatalf("workers=%d: %d events still pending", workers, pd.Pending())
		}
		for i := range all {
			if fmt.Sprint(all[i].log) != fmt.Sprint(seqAll[i].log) {
				t.Fatalf("workers=%d node %d log diverged:\n pdes %v\n  seq %v",
					workers, i, all[i].log, seqAll[i].log)
			}
		}
		if got, want := pd.MaxNow(), seqAll[0].sched.(*Kernel).Now(); got != want {
			t.Fatalf("workers=%d: MaxNow %d, sequential Now %d", workers, got, want)
		}
	}
}

// TestPDESLookaheadViolationPanics pins the fail-fast contract: posting
// into another partition nearer than the epoch horizon is a modeling
// error and must panic, not silently corrupt causality.
func TestPDESLookaheadViolationPanics(t *testing.T) {
	pd := NewPDES(16, 2, 1)
	sink := pd.Sink(0, 1)
	pd.Part(0).Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("post below the lookahead horizon did not panic")
			}
		}()
		// Horizon is T+16 = 16; a post at cycle 3 violates lookahead.
		sink.PostEvent(3, funcEvent(func() {}), EventArg{})
	})
	if err := pd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPDESMergeOrderIsCanonical pins the (cycle, source, sequence)
// merge rule: same-cycle posts from different source partitions arrive
// in source order regardless of which source's epoch work ran first.
func TestPDESMergeOrderIsCanonical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pd := NewPDES(4, 3, workers)
		var got []int64
		rec := funcEvent(func() {})
		_ = rec
		h := &recorder{out: &got}
		// Both sources post to partition 0 for the same arrival cycle.
		// Source 2 schedules its local event before source 1's in wall
		// terms (worker interleave is arbitrary), but arrivals must land
		// source-ascending.
		pd.Part(1).Schedule(0, func() { pd.Sink(1, 0).PostEvent(10, h, EventArg{N: 1}) })
		pd.Part(2).Schedule(0, func() { pd.Sink(2, 0).PostEvent(10, h, EventArg{N: 2}) })
		if err := pd.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != "[1 2]" {
			t.Fatalf("workers=%d: merge order %v, want [1 2]", workers, got)
		}
	}
}

type recorder struct{ out *[]int64 }

func (r *recorder) OnEvent(arg EventArg) { *r.out = append(*r.out, arg.N) }

// TestKernelRunUpTo pins that RunUpTo never advances now into idle time,
// unlike RunUntil.
func TestKernelRunUpTo(t *testing.T) {
	k := NewKernel()
	k.Schedule(3, func() {})
	k.Schedule(10, func() {})
	k.RunUpTo(7)
	if k.Now() != 3 {
		t.Fatalf("now = %d after RunUpTo(7), want 3 (last dispatched event)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.RunUpTo(20)
	if k.Now() != 10 {
		t.Fatalf("now = %d, want 10", k.Now())
	}
}

// farChain hops its own partition's clock in strides larger than the
// calendar ring, so every reschedule takes the far-heap overflow path
// and later migrates back into the ring — all while the ensemble's
// epoch protocol (and its memoized peeks) advances around it.
type farChain struct {
	s    Scheduler
	step Cycle
	hops int64
	out  *[]string
}

func (f *farChain) OnEvent(arg EventArg) {
	*f.out = append(*f.out, fmt.Sprintf("far%d@%d", arg.N, f.s.Now()))
	if arg.N < f.hops {
		f.s.ScheduleEvent(f.step, f, EventArg{N: arg.N + 1})
	}
}

// tickNode dispatches one local event per cycle until its budget runs
// out, keeping its partition active in consecutive epochs.
type tickNode struct {
	s      Scheduler
	budget int64
	out    *[]string
}

func (tn *tickNode) OnEvent(arg EventArg) {
	*tn.out = append(*tn.out, fmt.Sprintf("tick@%d", tn.s.Now()))
	if arg.N < tn.budget {
		tn.s.ScheduleEvent(1, tn, EventArg{N: arg.N + 1})
	}
}

// TestPDESFarEventsAcrossEpochs pins the calendar overflow-heap path
// from inside a PDES partition: far-future AtEvent/ScheduleEvent
// targets beyond the 4096-cycle ring must migrate and dispatch exactly
// as on the sequential kernel while epochs advance — including the
// solo-sprint epochs that carry the ensemble across the multi-thousand
// cycle gaps between far events.
func TestPDESFarEventsAcrossEpochs(t *testing.T) {
	const (
		window = 8
		step   = ringWindow + 1000 // strictly beyond the ring: far heap
		hops   = 3
		ticks  = 300
	)
	run := func(pd *PDES) (tick, far []string) {
		var s0, s1 Scheduler
		if pd != nil {
			s0, s1 = pd.Part(0), pd.Part(1)
		} else {
			k := NewKernel()
			s0, s1 = k, k
		}
		tn := &tickNode{s: s0, budget: ticks, out: &tick}
		s0.AtEvent(0, tn, EventArg{})
		fc := &farChain{s: s1, step: step, hops: hops, out: &far}
		// Seed straight onto the far heap: the first event is already
		// beyond the ring window.
		s1.AtEvent(step, fc, EventArg{N: 1})
		if pd != nil {
			if err := pd.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if pd.Pending() != 0 {
				t.Fatalf("%d events still pending", pd.Pending())
			}
		} else {
			s0.(*Kernel).Run()
		}
		return tick, far
	}

	seqTick, seqFar := run(nil)
	if len(seqFar) != hops {
		t.Fatalf("sequential far chain ran %d hops, want %d", len(seqFar), hops)
	}
	for _, workers := range []int{1, 2} {
		tick, far := run(NewPDES(window, 2, workers))
		if fmt.Sprint(tick) != fmt.Sprint(seqTick) || fmt.Sprint(far) != fmt.Sprint(seqFar) {
			t.Fatalf("workers=%d diverged from sequential:\n pdes %v %v\n  seq %v %v",
				workers, tick, far, seqTick, seqFar)
		}
	}
}

// TestPDESGangRestartAcrossRuns drives one ensemble through several Run
// calls — the harness's one-Run-per-phase shape — re-seeding work
// between them, with workers > 1 so every Run stops and restarts the
// persistent worker gang. The restart invariant under test: a fresh
// gang's generation counter must rewind to 0 before workers spawn
// (workers enter the wait loop at local generation 0), otherwise a
// restarted worker sees the stale counter from the previous gang, skips
// parking, and races the coordinator into an unreleased epoch. The
// multi-restart sequence runs the exact window under -race; the
// white-box check at the end pins the reset directly.
func TestPDESGangRestartAcrossRuns(t *testing.T) {
	const (
		window  = 8
		nparts  = 4
		workers = 4
		rounds  = 6
	)
	pd := NewPDES(window, nparts, workers)
	var got, want []int64
	h := &recorder{out: &got}
	for r := 0; r < rounds; r++ {
		// All sources post to partition 0 at one absolute cycle, beyond
		// every sender's clock plus the window, so each round's arrivals
		// merge in the canonical source-ascending order.
		base := pd.MaxNow() + 1 + window
		for src := 1; src < nparts; src++ {
			src := src
			n := int64(r*nparts + src)
			want = append(want, n)
			pd.Part(src).Schedule(1, func() {
				pd.Sink(src, 0).PostEvent(base, h, EventArg{N: n})
			})
		}
		if err := pd.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if pd.gang.n != 0 {
			t.Fatalf("round %d: %d gang workers still live after Run", r, pd.gang.n)
		}
		if pd.gang.gen == 0 {
			t.Fatalf("round %d: gang never released an epoch (no multi-partition epoch ran)", r)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("arrival order diverged across gang restarts:\n got %v\nwant %v", got, want)
	}
	// White-box: restarting the gang must rewind the generation counter
	// so freshly spawned workers (local generation 0) park until the
	// coordinator releases the first epoch.
	pd.startGang()
	pd.gang.mu.Lock()
	g := pd.gang.gen
	pd.gang.mu.Unlock()
	if g != 0 {
		t.Fatalf("restarted gang generation = %d, want 0 (workers would skip parking)", g)
	}
	pd.stopGang()
}

// phaseNode models the shape solo sprints exist for: a long host-only
// compute phase (a chain of back-to-back local events) followed by one
// cross-partition handoff, ping-ponging between two partitions.
type phaseNode struct {
	s      Scheduler
	link   *Link
	sink   EventSink
	peer   *phaseNode
	chain  int64 // local events per compute phase
	rounds int   // handoffs this node will still initiate
	out    *[]string
}

func (p *phaseNode) OnEvent(arg EventArg) {
	*p.out = append(*p.out, fmt.Sprintf("%d@%d", arg.N, p.s.Now()))
	if arg.N > 0 {
		p.s.ScheduleEvent(1, p, EventArg{N: arg.N - 1})
		return
	}
	if p.rounds == 0 {
		return
	}
	p.rounds--
	p.link.SendEventTo(p.sink, 64, p.peer, EventArg{N: p.peer.chain})
}

// TestPDESSoloSprintMatchesSequential drives a workload dominated by
// host-only compute phases — thousands of cycles where exactly one
// partition has events — and requires byte-identical logs against the
// sequential kernel plus evidence that sprint mode actually engaged.
// Each phase is far longer than the lookahead window, so without
// sprints it would advance in window-sized epoch hops.
func TestPDESSoloSprintMatchesSequential(t *testing.T) {
	const (
		window     = 16
		hostChain  = 5000 // long host-only phase; also crosses the ring once
		otherChain = 40
		rounds     = 3
	)
	run := func(pd *PDES) (hlog, rlog []string, proto ProtoStats) {
		var hs, rs Scheduler
		var toRemote, toHost EventSink
		if pd != nil {
			hs, rs = pd.Part(0), pd.Part(1)
			toRemote, toHost = pd.Sink(0, 1), pd.Sink(1, 0)
		} else {
			k := NewKernel()
			hs, rs = k, k
			// Mirror machine wiring: cross-partition links always
			// deliver through the early lane under either kernel.
			toRemote, toHost = k.EarlySink(), k.EarlySink()
		}
		host := &phaseNode{s: hs, chain: hostChain, rounds: rounds, out: &hlog}
		remote := &phaseNode{s: rs, chain: otherChain, rounds: rounds, out: &rlog}
		host.link = NewLink(hs, 8, window)
		host.sink = toRemote
		host.peer = remote
		remote.link = NewLink(rs, 8, window)
		remote.sink = toHost
		remote.peer = host
		hs.AtEvent(0, host, EventArg{N: hostChain})
		if pd != nil {
			if err := pd.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if pd.Pending() != 0 {
				t.Fatalf("%d events still pending", pd.Pending())
			}
			proto = pd.Proto()
		} else {
			hs.(*Kernel).Run()
		}
		return hlog, rlog, proto
	}

	seqH, seqR, _ := run(nil)
	if len(seqH) == 0 || len(seqR) == 0 {
		t.Fatal("sequential run produced empty logs")
	}
	for _, workers := range []int{1, 2, 8} {
		hlog, rlog, proto := run(NewPDES(window, 2, workers))
		if fmt.Sprint(hlog) != fmt.Sprint(seqH) || fmt.Sprint(rlog) != fmt.Sprint(seqR) {
			t.Fatalf("workers=%d logs diverged from sequential", workers)
		}
		if proto.SoloSprints == 0 {
			t.Fatalf("workers=%d: no solo sprints on a host-phase workload (proto %+v)", workers, proto)
		}
		if proto.Epochs == 0 || proto.SoloSprints > proto.Epochs {
			t.Fatalf("workers=%d: implausible counters %+v", workers, proto)
		}
		// The compute phases dominate: sprints must have collapsed the
		// window-hop epochs (hostChain/window per phase without them).
		if hops := uint64(hostChain / window); proto.Epochs >= hops {
			t.Fatalf("workers=%d: %d epochs for a sprintable workload (un-sprinted floor %d)", workers, proto.Epochs, hops)
		}
		if proto.MailPostsMerged != uint64(2*rounds) {
			t.Fatalf("workers=%d: %d posts merged, want %d", workers, proto.MailPostsMerged, 2*rounds)
		}
	}
}
