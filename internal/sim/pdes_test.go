package sim

import (
	"context"
	"fmt"
	"testing"
)

// node is a test component living in one partition: on each received
// event it logs (cycle, tag) and, while budget remains, sends a reply
// to its peer over its outbound link.
type node struct {
	sched  Scheduler
	link   *Link // outbound; delivers into the peer's partition
	sink   EventSink
	peer   *node
	budget int
	log    []string
}

func (n *node) OnEvent(arg EventArg) {
	n.log = append(n.log, fmt.Sprintf("%d:%d", n.sched.Now(), arg.N))
	if n.budget <= 0 {
		return
	}
	n.budget--
	// Vary payload size so serialization queueing differs per message.
	n.link.SendEventTo(n.sink, int(16+(arg.N%5)*48), n.peer, EventArg{N: arg.N + 1})
}

// TestPDESPingPongMatchesSequential drives the same ping-pong topology
// on the sequential kernel and on PDES at several worker counts and
// requires identical per-node event logs.
func TestPDESPingPongMatchesSequential(t *testing.T) {
	const (
		nremote = 5
		window  = 8
		budget  = 40
	)

	build := func(pd *PDES) ([]*node, []*node) {
		// Returns (remotes, all) where all[0] is the host node.
		var hostSched Scheduler
		if pd != nil {
			hostSched = pd.Part(0)
		} else {
			hostSched = NewKernel()
		}
		host := &node{sched: hostSched}
		all := []*node{host}
		var remotes []*node
		for i := 0; i < nremote; i++ {
			var rs Scheduler
			var toRemote, toHost EventSink
			if pd != nil {
				rs = pd.Part(i + 1)
				toRemote = pd.Sink(0, i+1)
				toHost = pd.Sink(i+1, 0)
			} else {
				rs = hostSched
				toRemote = hostSched
				toHost = hostSched
			}
			r := &node{sched: rs, budget: budget, peer: host}
			r.link = NewLink(rs, 8, window)
			r.sink = toHost
			// The host's reply path to this remote.
			h := &node{sched: hostSched, budget: budget, peer: r}
			h.link = NewLink(hostSched, 8, window)
			h.sink = toRemote
			host.log = nil
			// Remote replies go to h (the host-side responder), which
			// logs on the host partition and replies back to r.
			r.peer = h
			// Seed: host sends the first message to each remote at
			// distinct cycles so batches overlap across partitions.
			h.link.SendEventTo(toRemote, 16+i*32, r, EventArg{N: int64(i)})
			remotes = append(remotes, r)
			all = append(all, h, r)
		}
		return remotes, all
	}

	seqRemotes, seqAll := build(nil)
	seqAll[0].sched.(*Kernel).Run()
	_ = seqRemotes

	for _, workers := range []int{1, 2, 8} {
		pd := NewPDES(window, 1+nremote, workers)
		_, all := build(pd)
		if err := pd.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if pd.Pending() != 0 {
			t.Fatalf("workers=%d: %d events still pending", workers, pd.Pending())
		}
		for i := range all {
			if fmt.Sprint(all[i].log) != fmt.Sprint(seqAll[i].log) {
				t.Fatalf("workers=%d node %d log diverged:\n pdes %v\n  seq %v",
					workers, i, all[i].log, seqAll[i].log)
			}
		}
		if got, want := pd.MaxNow(), seqAll[0].sched.(*Kernel).Now(); got != want {
			t.Fatalf("workers=%d: MaxNow %d, sequential Now %d", workers, got, want)
		}
	}
}

// TestPDESLookaheadViolationPanics pins the fail-fast contract: posting
// into another partition nearer than the epoch horizon is a modeling
// error and must panic, not silently corrupt causality.
func TestPDESLookaheadViolationPanics(t *testing.T) {
	pd := NewPDES(16, 2, 1)
	sink := pd.Sink(0, 1)
	pd.Part(0).Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("post below the lookahead horizon did not panic")
			}
		}()
		// Horizon is T+16 = 16; a post at cycle 3 violates lookahead.
		sink.PostEvent(3, funcEvent(func() {}), EventArg{})
	})
	if err := pd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPDESMergeOrderIsCanonical pins the (cycle, source, sequence)
// merge rule: same-cycle posts from different source partitions arrive
// in source order regardless of which source's epoch work ran first.
func TestPDESMergeOrderIsCanonical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pd := NewPDES(4, 3, workers)
		var got []int64
		rec := funcEvent(func() {})
		_ = rec
		h := &recorder{out: &got}
		// Both sources post to partition 0 for the same arrival cycle.
		// Source 2 schedules its local event before source 1's in wall
		// terms (worker interleave is arbitrary), but arrivals must land
		// source-ascending.
		pd.Part(1).Schedule(0, func() { pd.Sink(1, 0).PostEvent(10, h, EventArg{N: 1}) })
		pd.Part(2).Schedule(0, func() { pd.Sink(2, 0).PostEvent(10, h, EventArg{N: 2}) })
		if err := pd.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != "[1 2]" {
			t.Fatalf("workers=%d: merge order %v, want [1 2]", workers, got)
		}
	}
}

type recorder struct{ out *[]int64 }

func (r *recorder) OnEvent(arg EventArg) { *r.out = append(*r.out, arg.N) }

// TestKernelRunUpTo pins that RunUpTo never advances now into idle time,
// unlike RunUntil.
func TestKernelRunUpTo(t *testing.T) {
	k := NewKernel()
	k.Schedule(3, func() {})
	k.Schedule(10, func() {})
	k.RunUpTo(7)
	if k.Now() != 3 {
		t.Fatalf("now = %d after RunUpTo(7), want 3 (last dispatched event)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.RunUpTo(20)
	if k.Now() != 10 {
		t.Fatalf("now = %d, want 10", k.Now())
	}
}
