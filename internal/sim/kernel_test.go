package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(5, func() { got = append(got, 5) })
	k.Schedule(1, func() { got = append(got, 1) })
	k.Schedule(3, func() { got = append(got, 3) })
	k.Run()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", k.Now())
	}
}

func TestKernelFIFOSameCycle(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(7, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events ran out of order: %v", got)
		}
	}
}

func TestKernelZeroDelayRunsThisCycle(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(2, func() {
		k.Schedule(0, func() {
			if k.Now() != 2 {
				t.Errorf("zero-delay event ran at %d, want 2", k.Now())
			}
			fired = true
		})
	})
	k.Run()
	if !fired {
		t.Fatal("zero-delay event never fired")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(1, rec)
		}
	}
	k.Schedule(0, rec)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 99 {
		t.Fatalf("Now() = %d, want 99", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Cycle
	for _, c := range []Cycle{10, 20, 30} {
		c := c
		k.At(c, func() { fired = append(fired, c) })
	}
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run, want three", fired)
	}
}

func TestKernelRunUntilAdvancesIdleTime(t *testing.T) {
	k := NewKernel()
	k.RunUntil(1000)
	if k.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", k.Now())
	}
}

func TestKernelPastSchedulePanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scheduling in the past")
		}
	}()
	k.At(5, func() {})
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	k.Schedule(-1, func() {})
}

// Property: however delays are chosen, events fire in nondecreasing time
// order and the kernel dispatches exactly as many events as scheduled.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var last Cycle = -1
		ok := true
		for _, d := range delays {
			k.Schedule(Cycle(d), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok && k.Executed == uint64(len(delays))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelRunWhile(t *testing.T) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() { n++; k.Schedule(1, tick) }
	k.Schedule(0, tick)
	k.RunWhile(func() bool { return n < 50 })
	if n != 50 {
		t.Fatalf("n = %d, want 50", n)
	}
}

// TestKernelEarlyLane pins the arrivals-before-locals rule: an event
// posted through AtEventEarly (or EarlySink) dispatches before every
// normal-lane event of the same cycle, regardless of insertion order —
// the property both kernels rely on to keep same-cycle ties between
// link arrivals and local events identical.
func TestKernelEarlyLane(t *testing.T) {
	k := NewKernel()
	var got []int64
	r := &recorder{out: &got}
	// Normal-lane events inserted first; early-lane events inserted
	// last must still run first, FIFO within each lane.
	k.AtEvent(5, r, EventArg{N: 10})
	k.AtEvent(5, r, EventArg{N: 11})
	k.EarlySink().PostEvent(5, r, EventArg{N: 1})
	k.AtEventEarly(5, r, EventArg{N: 2})
	k.AtEvent(5, r, EventArg{N: 12})
	k.Run()
	want := []int64{1, 2, 10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", k.Pending())
	}
}

// TestKernelEarlyLaneFarHeap pins lane routing through the far heap:
// events beyond the calendar ring's window keep their lane when they
// migrate into a bucket.
func TestKernelEarlyLaneFarHeap(t *testing.T) {
	k := NewKernel()
	var got []int64
	r := &recorder{out: &got}
	far := Cycle(ringWindow + 100)
	k.AtEvent(far, r, EventArg{N: 10})
	k.AtEventEarly(far, r, EventArg{N: 1})
	k.AtEvent(far, r, EventArg{N: 11})
	k.AtEventEarly(far, r, EventArg{N: 2})
	k.Run()
	want := []int64{1, 2, 10, 11}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != far {
		t.Fatalf("Now() = %d, want %d", k.Now(), far)
	}
}

// TestKernelEarlyPastPanics pins that the early lane rejects
// non-future posts — cross-partition deliveries are always at least
// one cycle out, so a same-cycle early insert is a wiring bug.
func TestKernelEarlyPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(3, func() {
		defer func() {
			if recover() == nil {
				t.Error("AtEventEarly at now did not panic")
			}
		}()
		k.AtEventEarly(3, funcEvent(func() {}), EventArg{})
	})
	k.Run()
}
