package sim

import "testing"

// BenchmarkKernelScheduleStep measures the steady-state scheduler round
// trip: one Schedule into the near-future ring plus one Step dispatch.
// This is the per-event cost every timed component pays.
func BenchmarkKernelScheduleStep(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	k.Schedule(1, fn)
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(3, fn)
		k.Step()
	}
}

// BenchmarkKernelScheduleStepFar stresses the overflow heap: every event
// lands beyond the ring window and migrates in.
func BenchmarkKernelScheduleStepFar(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(ringWindow+17, fn)
		k.Step()
	}
}
