package sim

import "testing"

// BenchmarkKernelScheduleStep measures the steady-state scheduler round
// trip: one Schedule into the near-future ring plus one Step dispatch.
// This is the per-event cost every timed component pays.
func BenchmarkKernelScheduleStep(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	k.Schedule(1, fn)
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(3, fn)
		k.Step()
	}
}

// BenchmarkKernelScheduleStepFar stresses the overflow heap: every event
// lands beyond the ring window and migrates in.
func BenchmarkKernelScheduleStepFar(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(ringWindow+17, fn)
		k.Step()
	}
}

// epochTicker keeps a partition active every epoch: each dispatch
// reschedules itself one lookahead window ahead.
type epochTicker struct {
	s      Scheduler
	period Cycle
}

func (e *epochTicker) OnEvent(arg EventArg) { e.s.ScheduleEvent(e.period, e, arg) }

// BenchmarkPDESEpochOverhead pins the per-epoch protocol cost on the
// machine's real shape (host + 32 vaults = 33 partitions): every
// partition has exactly one event per window, so each iteration is one
// full epoch — mailbox drain check, fused peek scan, active-set build,
// and 33 single-event partition runs — with no cross-partition traffic.
func BenchmarkPDESEpochOverhead(b *testing.B) {
	const (
		nparts = 33
		window = 16
	)
	pd := NewPDES(window, nparts, 1)
	for i := 0; i < nparts; i++ {
		t := &epochTicker{s: pd.Part(i), period: window}
		pd.Part(i).AtEvent(0, t, EventArg{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd.Epoch()
	}
}
