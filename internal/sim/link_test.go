package sim

import (
	"testing"
	"testing/quick"
)

func TestLinkSerialization(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 16, 4) // 16 B/cycle, 4-cycle latency
	var at Cycle
	l.Send(64, func() { at = k.Now() }) // 4 cycles occupancy + 4 latency
	k.Run()
	if at != 8 {
		t.Fatalf("delivery at %d, want 8", at)
	}
}

func TestLinkQueueing(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 16, 0)
	var first, second Cycle
	l.Send(64, func() { first = k.Now() })  // occupies 0..4
	l.Send(64, func() { second = k.Now() }) // occupies 4..8
	k.Run()
	if first != 4 || second != 8 {
		t.Fatalf("deliveries at %d,%d; want 4,8", first, second)
	}
}

func TestLinkFractionalBandwidthRoundsUp(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 9, 0) // crossbar port: 144-bit @2GHz = 9 B per 4GHz cycle
	var at Cycle
	l.Send(80, func() { at = k.Now() }) // ceil(80/9) = 9
	k.Run()
	if at != 9 {
		t.Fatalf("delivery at %d, want 9", at)
	}
}

func TestLinkFlitAccounting(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 20, 1)
	l.Send(16, nil) // 1 flit
	l.Send(17, nil) // 2 flits
	l.Send(80, nil) // 5 flits
	k.Run()
	if l.FlitsTransferred != 8 {
		t.Fatalf("flits = %d, want 8", l.FlitsTransferred)
	}
	if l.BytesTransferred != 113 {
		t.Fatalf("bytes = %d, want 113", l.BytesTransferred)
	}
}

func TestLinkIdleGapDoesNotAccumulate(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 16, 0)
	l.Send(16, nil) // occupies cycle 0..1
	k.Schedule(100, func() {
		var at Cycle
		l.Send(16, func() { at = k.Now() })
		k.Schedule(50, func() {
			if at != 101 {
				t.Errorf("post-idle delivery at %d, want 101", at)
			}
		})
	})
	k.Run()
}

func TestLinkQueueDelay(t *testing.T) {
	k := NewKernel()
	l := NewLink(k, 1, 0)
	l.Send(10, nil)
	if d := l.QueueDelay(); d != 10 {
		t.Fatalf("QueueDelay = %d, want 10", d)
	}
	k.RunUntil(10)
	if d := l.QueueDelay(); d != 0 {
		t.Fatalf("QueueDelay after drain = %d, want 0", d)
	}
}

// Property: for any sequence of packet sizes, total busy time equals the
// sum of per-packet occupancies, and deliveries are in order.
func TestLinkBusyProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		k := NewKernel()
		l := NewLink(k, 4, 2)
		var want Cycle
		var lastDelivery Cycle = -1
		ordered := true
		for _, s := range sizes {
			n := int(s)
			if n == 0 {
				n = 1
			}
			want += Cycle((n + 3) / 4)
			l.Send(n, func() {
				if k.Now() < lastDelivery {
					ordered = false
				}
				lastDelivery = k.Now()
			})
		}
		k.Run()
		return l.Busy == want && ordered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
