// Package sim provides the discrete-event simulation kernel used by every
// timed component in the simulator: a cycle-granular event wheel, clock
// domain helpers, and bandwidth-limited links.
//
// The kernel is deliberately single-threaded. All hardware concurrency is
// expressed as events on one totally-ordered queue, which makes runs
// deterministic: the same configuration and seed always produce the same
// cycle counts. Events scheduled for the same cycle run in FIFO order of
// scheduling.
package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in CPU cycles of the base
// clock domain (4 GHz in the baseline configuration).
type Cycle = int64

// EventArg is the payload handed to a Handler when its event fires. Ptr
// typically carries a pooled transaction (storing a pointer in an `any`
// does not allocate) and N a small scalar such as a state-machine stage
// or an address.
type EventArg struct {
	Ptr any
	N   int64
}

// Handler receives event dispatch. Hot-path components implement it on a
// pointer receiver (pooled transaction objects, or a component acting as
// its own handler) so scheduling an event allocates nothing.
type Handler interface {
	OnEvent(arg EventArg)
}

// Cont is a suspended continuation: a handler plus the argument to
// deliver to it. Components pass Cont values through their APIs instead
// of `func()` callbacks so completion notification stays allocation-free.
// The zero Cont is valid and means "no one to notify".
type Cont struct {
	H   Handler
	Arg EventArg
}

// Invoke delivers the continuation now (synchronously). A zero Cont is a
// no-op.
func (c Cont) Invoke() {
	if c.H != nil {
		c.H.OnEvent(c.Arg)
	}
}

// funcEvent adapts a bare closure to the Handler interface. A func value
// is pointer-shaped, so the interface conversion does not allocate; the
// closure itself may, which is why hot paths use typed handlers instead.
type funcEvent func()

func (f funcEvent) OnEvent(EventArg) { f() }

// Call wraps a closure as a Cont for cold paths and compatibility
// shims. A nil fn yields the zero (no-op) Cont.
func Call(fn func()) Cont {
	if fn == nil {
		return Cont{}
	}
	return Cont{H: funcEvent(fn)}
}

// The kernel is a calendar queue: a ring of per-cycle FIFO buckets
// covering the next ringWindow cycles, plus a min-heap overflow for
// events farther out. Nearly all simulator events (cache pipelines, link
// serialization, DRAM timing) land within ~100 cycles of now, so the
// steady state is bucket appends and pops — no interface boxing, no
// per-event allocation, O(1) amortized ordering.
//
// The ring is deliberately small. Its footprint is what the dispatch
// loop walks continuously, and a PDES ensemble keeps nparts rings live
// at once: at 1<<12 cycles (the original size) one ring was ≈230 KiB
// and a 33-partition ensemble blew every cache level (≈7.6 MiB), which
// measured as a double-digit slowdown on both kernels. 1<<7 covers the
// cross-partition link latency and full DRAM bank timing chains;
// rarer far-out events (refresh, phase boundaries) take the heap path,
// whose cost is dwarfed by the locality win (BENCH_pdes2.json).
const (
	ringWindow = 1 << 7 // cycles of near future covered by the ring
	ringMask   = ringWindow - 1
	occWords   = ringWindow / 64
)

// event is the uniform record stored in ring buckets and the far heap:
// a handler and its argument. Closure-based scheduling goes through the
// funcEvent adapter, so the queue itself never stores bare func values.
type event struct {
	h   Handler
	arg EventArg
}

// bucket holds the events of one in-window cycle in two FIFO lanes:
// the early lane carries cross-partition link deliveries (AtEventEarly)
// and dispatches before the normal lane. The split makes the relative
// order of a link arrival and a same-cycle local event a fixed rule —
// arrivals first — instead of an artifact of queue insertion time,
// which is the property that lets the PDES kernel (whose mailbox drains
// insert arrivals at epoch barriers, not at send time) reproduce the
// sequential kernel byte for byte.
type bucket struct {
	early []event
	ehead int
	evs   []event
	head  int
}

// farEvent is an event beyond the ring's horizon. seq breaks ties so
// same-cycle far events migrate into their bucket in scheduling order;
// early marks which lane the event belongs to.
type farEvent struct {
	when  Cycle
	seq   uint64
	early bool
	ev    event
}

// Kernel is the discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now Cycle

	// base is the cycle mapped to the ring's current origin; the ring
	// holds exactly the pending events with base <= when < base+ringWindow
	// (invariant: base <= now, so nothing schedulable lands behind it).
	base      Cycle              //peilint:allow snapcomplete re-anchored to the restored cycle by RestoreFrom (base <= now invariant holds by construction)
	ring      [ringWindow]bucket //peilint:allow snapcomplete quiescence-empty: a snapshot with pending events fails, so there is nothing to serialize
	occ       [occWords]uint64   //peilint:allow snapcomplete occupancy bitmap (one bit per bucket) of the quiescence-empty ring
	ringCount int

	far []farEvent // min-heap on (when, seq)
	seq uint64     //peilint:allow snapcomplete zeroed by RestoreFrom: orders same-cycle events, of which quiescence leaves none

	// Executed counts events dispatched since construction; useful for
	// rough simulation-effort reporting.
	Executed uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in
// the current cycle, after all previously scheduled current-cycle events.
// Closure variant for cold paths; hot paths use ScheduleEvent.
func (k *Kernel) Schedule(delay Cycle, fn func()) {
	k.ScheduleEvent(delay, funcEvent(fn), EventArg{})
}

// At runs fn at the given absolute cycle, which must not be in the past.
// Closure variant for cold paths; hot paths use AtEvent.
func (k *Kernel) At(cycle Cycle, fn func()) {
	k.AtEvent(cycle, funcEvent(fn), EventArg{})
}

// ScheduleEvent delivers arg to h delay cycles from now. A delay of 0
// dispatches later in the current cycle, after all previously scheduled
// current-cycle events. Scheduling itself never allocates in steady
// state (bucket and heap storage is recycled).
func (k *Kernel) ScheduleEvent(delay Cycle, h Handler, arg EventArg) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.AtEvent(k.now+delay, h, arg)
}

// AtEvent delivers arg to h at the given absolute cycle, which must not
// be in the past.
func (k *Kernel) AtEvent(cycle Cycle, h Handler, arg EventArg) {
	if cycle < k.now {
		panic(fmt.Sprintf("sim: schedule in the past (now %d, at %d)", k.now, cycle))
	}
	if cycle < k.base+ringWindow {
		slot := int(cycle & ringMask)
		k.ring[slot].evs = append(k.ring[slot].evs, event{h: h, arg: arg})
		k.occ[slot>>6] |= 1 << uint(slot&63)
		k.ringCount++
		return
	}
	k.farPush(farEvent{when: cycle, seq: k.seq, ev: event{h: h, arg: arg}})
	k.seq++
}

// AtEventEarly delivers arg to h at the given absolute cycle in the
// bucket's early lane: it dispatches before every normal-lane event of
// that cycle, regardless of when either was inserted. It exists for
// cross-partition link deliveries only (see EarlySink and the PDES
// mailbox drain) — the fixed arrivals-before-locals rule is what keeps
// both kernels' same-cycle order identical. The cycle must be strictly
// in the future: link serialization guarantees that, and an early
// insert into the currently dispatching bucket would be unreachable.
func (k *Kernel) AtEventEarly(cycle Cycle, h Handler, arg EventArg) {
	if cycle <= k.now && !(cycle == 0 && k.now == 0 && k.Executed == 0) {
		panic(fmt.Sprintf("sim: early event not in the future (now %d, at %d)", k.now, cycle))
	}
	if cycle < k.base+ringWindow {
		slot := int(cycle & ringMask)
		k.ring[slot].early = append(k.ring[slot].early, event{h: h, arg: arg})
		k.occ[slot>>6] |= 1 << uint(slot&63)
		k.ringCount++
		return
	}
	k.farPush(farEvent{when: cycle, seq: k.seq, early: true, ev: event{h: h, arg: arg}})
	k.seq++
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.ringCount + len(k.far) }

// nextRingCycle returns the earliest cycle with a pending ring event.
// Precondition: ringCount > 0. The occupancy bitmap makes the scan
// O(ringWindow/64) worst case, one word test per 64 empty buckets.
func (k *Kernel) nextRingCycle() Cycle {
	start := int(k.base & ringMask)
	w := start >> 6
	word := k.occ[w] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			d := slot - start
			if d < 0 {
				d += ringWindow
			}
			return k.base + Cycle(d)
		}
		w = (w + 1) & (occWords - 1)
		word = k.occ[w]
	}
	panic("sim: ring events pending but no occupied bucket")
}

// migrate moves far events that now fall inside the ring's horizon into
// their buckets. Heap order is (when, seq), so same-cycle events land in
// scheduling order; migration happens the moment the window first covers
// a cycle, before any direct append to that cycle is possible, which
// preserves global same-cycle FIFO.
func (k *Kernel) migrate() {
	horizon := k.base + ringWindow
	for len(k.far) > 0 && k.far[0].when < horizon {
		e := k.farPop()
		slot := int(e.when & ringMask)
		if e.early {
			k.ring[slot].early = append(k.ring[slot].early, e.ev)
		} else {
			k.ring[slot].evs = append(k.ring[slot].evs, e.ev)
		}
		k.occ[slot>>6] |= 1 << uint(slot&63)
		k.ringCount++
	}
}

// peek returns the cycle of the next pending event. Any ring event
// precedes every far event (far implies when >= base+ringWindow).
func (k *Kernel) peek() (Cycle, bool) {
	if k.ringCount > 0 {
		return k.nextRingCycle(), true
	}
	if len(k.far) > 0 {
		return k.far[0].when, true
	}
	return 0, false
}

// dispatch pops and runs the head event of cycle c's bucket, advancing
// time to c. Precondition: c is the earliest pending cycle, already
// inside the ring window (callers obtain it via nextRingCycle, jumping
// base and migrating first when needed), so no bitmap rescan happens
// here.
func (k *Kernel) dispatch(c Cycle) {
	slot := int(c & ringMask)
	b := &k.ring[slot]
	var ev event
	if b.ehead < len(b.early) {
		ev = b.early[b.ehead]
		b.early[b.ehead] = event{} // release handler/arg references once run
		b.ehead++
	} else {
		ev = b.evs[b.head]
		b.evs[b.head] = event{}
		b.head++
	}
	k.ringCount--
	if b.ehead == len(b.early) && b.head == len(b.evs) {
		b.early = b.early[:0]
		b.ehead = 0
		b.evs = b.evs[:0]
		b.head = 0
		k.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	k.now = c
	k.Executed++
	ev.h.OnEvent(ev.arg)
}

// Step dispatches the next event, advancing time to its cycle. It reports
// whether an event was dispatched.
func (k *Kernel) Step() bool {
	if k.ringCount == 0 {
		if len(k.far) == 0 {
			return false
		}
		// Idle gap longer than the window: jump the ring to the next
		// event and pull everything newly in range into buckets.
		k.base = k.far[0].when
		k.migrate()
	}
	c := k.nextRingCycle()
	if c != k.base {
		k.base = c
		k.migrate()
	}
	k.dispatch(c)
	return true
}

// Run dispatches events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with cycle <= limit, then sets time to limit
// if the simulation got there. Events beyond limit remain queued. The
// loop scans the occupancy bitmap once per dispatched event: the cycle
// found by the scan is compared against limit and dispatched directly,
// rather than peeked at and then recomputed by Step.
func (k *Kernel) RunUntil(limit Cycle) {
	for {
		if k.ringCount == 0 {
			if len(k.far) == 0 || k.far[0].when > limit {
				break
			}
			k.base = k.far[0].when
			k.migrate()
		}
		c := k.nextRingCycle()
		if c > limit {
			break
		}
		if c != k.base {
			k.base = c
			k.migrate()
		}
		k.dispatch(c)
	}
	if k.now < limit {
		k.now = limit
	}
}

// RunUpTo dispatches events with cycle <= limit and leaves time at the
// last dispatched event. Unlike RunUntil it never advances now into idle
// time, so after a bounded run the clock still tracks the events
// actually processed — the property a coordinating layer needs when the
// clock feeds a global minimum (PDES.runPart keeps the same invariant,
// but inlines its own loop because its limit shrinks mid-run and it
// carries a dispatch budget; this fixed-limit form is for external
// callers driving a lone Kernel).
//
// It returns the cycle of the earliest event still pending, or -1 if the
// queue drained. The loop's exit paths have already computed it (the
// over-limit ring scan or the far-heap head), so returning it is free
// and saves the caller a re-peek.
func (k *Kernel) RunUpTo(limit Cycle) Cycle {
	for {
		if k.ringCount == 0 {
			if len(k.far) == 0 {
				return -1
			}
			if k.far[0].when > limit {
				return k.far[0].when
			}
			k.base = k.far[0].when
			k.migrate()
		}
		c := k.nextRingCycle()
		if c > limit {
			return c
		}
		if c != k.base {
			k.base = c
			k.migrate()
		}
		k.dispatch(c)
	}
}

// RunWhile dispatches events as long as cond returns true and events
// remain. cond is checked before each event.
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}

// farPush and farPop maintain the overflow min-heap without the
// interface boxing of container/heap.
func (k *Kernel) farPush(e farEvent) {
	k.far = append(k.far, e)
	i := len(k.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !farLess(k.far[i], k.far[p]) {
			break
		}
		k.far[i], k.far[p] = k.far[p], k.far[i]
		i = p
	}
}

func (k *Kernel) farPop() farEvent {
	h := k.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = farEvent{} // drop the handler reference
	k.far = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && farLess(h[l], h[small]) {
			small = l
		}
		if r < n && farLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

func farLess(a, b farEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
