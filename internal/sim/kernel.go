// Package sim provides the discrete-event simulation kernel used by every
// timed component in the simulator: a cycle-granular event wheel, clock
// domain helpers, and bandwidth-limited links.
//
// The kernel is deliberately single-threaded. All hardware concurrency is
// expressed as events on one totally-ordered queue, which makes runs
// deterministic: the same configuration and seed always produce the same
// cycle counts. Events scheduled for the same cycle run in FIFO order of
// scheduling.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in CPU cycles of the base
// clock domain (4 GHz in the baseline configuration).
type Cycle = int64

// event is a scheduled callback. seq breaks ties so same-cycle events run
// in the order they were scheduled.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now    Cycle
	seq    uint64
	events eventHeap
	// Executed counts events dispatched since construction; useful for
	// rough simulation-effort reporting.
	Executed uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.events)
	return k
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in
// the current cycle, after all previously scheduled current-cycle events.
func (k *Kernel) Schedule(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (k *Kernel) At(cycle Cycle, fn func()) {
	if cycle < k.now {
		panic(fmt.Sprintf("sim: schedule in the past (now %d, at %d)", k.now, cycle))
	}
	heap.Push(&k.events, event{when: cycle, seq: k.seq, fn: fn})
	k.seq++
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Step dispatches the next event, advancing time to its cycle. It reports
// whether an event was dispatched.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.when
	k.Executed++
	e.fn()
	return true
}

// Run dispatches events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with cycle <= limit, then sets time to limit
// if the simulation got there. Events beyond limit remain queued.
func (k *Kernel) RunUntil(limit Cycle) {
	for len(k.events) > 0 && k.events[0].when <= limit {
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}

// RunWhile dispatches events as long as cond returns true and events
// remain. cond is checked before each event.
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}
