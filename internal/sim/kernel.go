// Package sim provides the discrete-event simulation kernel used by every
// timed component in the simulator: a cycle-granular event wheel, clock
// domain helpers, and bandwidth-limited links.
//
// The kernel is deliberately single-threaded. All hardware concurrency is
// expressed as events on one totally-ordered queue, which makes runs
// deterministic: the same configuration and seed always produce the same
// cycle counts. Events scheduled for the same cycle run in FIFO order of
// scheduling.
package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in CPU cycles of the base
// clock domain (4 GHz in the baseline configuration).
type Cycle = int64

// The kernel is a calendar queue: a ring of per-cycle FIFO buckets
// covering the next ringWindow cycles, plus a min-heap overflow for
// events farther out. Nearly all simulator events (cache pipelines, link
// serialization, DRAM timing) land within a few thousand cycles of now,
// so the steady state is bucket appends and pops — no interface boxing,
// no per-event allocation, O(1) amortized ordering.
const (
	ringWindow = 1 << 12 // cycles of near future covered by the ring
	ringMask   = ringWindow - 1
	occWords   = ringWindow / 64
)

// bucket holds the events of one in-window cycle, dispatched FIFO via a
// head cursor so same-cycle scheduling during dispatch stays ordered.
type bucket struct {
	fns  []func()
	head int
}

// farEvent is an event beyond the ring's horizon. seq breaks ties so
// same-cycle far events migrate into their bucket in scheduling order.
type farEvent struct {
	when Cycle
	seq  uint64
	fn   func()
}

// Kernel is the discrete-event scheduler. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now Cycle

	// base is the cycle mapped to the ring's current origin; the ring
	// holds exactly the pending events with base <= when < base+ringWindow
	// (invariant: base <= now, so nothing schedulable lands behind it).
	base      Cycle
	ring      [ringWindow]bucket
	occ       [occWords]uint64 // occupancy bitmap, one bit per bucket
	ringCount int

	far []farEvent // min-heap on (when, seq)
	seq uint64

	// Executed counts events dispatched since construction; useful for
	// rough simulation-effort reporting.
	Executed uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in
// the current cycle, after all previously scheduled current-cycle events.
func (k *Kernel) Schedule(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (k *Kernel) At(cycle Cycle, fn func()) {
	if cycle < k.now {
		panic(fmt.Sprintf("sim: schedule in the past (now %d, at %d)", k.now, cycle))
	}
	if cycle < k.base+ringWindow {
		slot := int(cycle & ringMask)
		k.ring[slot].fns = append(k.ring[slot].fns, fn)
		k.occ[slot>>6] |= 1 << uint(slot&63)
		k.ringCount++
		return
	}
	k.farPush(farEvent{when: cycle, seq: k.seq, fn: fn})
	k.seq++
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.ringCount + len(k.far) }

// nextRingCycle returns the earliest cycle with a pending ring event.
// Precondition: ringCount > 0. The occupancy bitmap makes the scan
// O(ringWindow/64) worst case, one word test per 64 empty buckets.
func (k *Kernel) nextRingCycle() Cycle {
	start := int(k.base & ringMask)
	w := start >> 6
	word := k.occ[w] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			d := slot - start
			if d < 0 {
				d += ringWindow
			}
			return k.base + Cycle(d)
		}
		w = (w + 1) & (occWords - 1)
		word = k.occ[w]
	}
	panic("sim: ring events pending but no occupied bucket")
}

// migrate moves far events that now fall inside the ring's horizon into
// their buckets. Heap order is (when, seq), so same-cycle events land in
// scheduling order; migration happens the moment the window first covers
// a cycle, before any direct append to that cycle is possible, which
// preserves global same-cycle FIFO.
func (k *Kernel) migrate() {
	horizon := k.base + ringWindow
	for len(k.far) > 0 && k.far[0].when < horizon {
		e := k.farPop()
		slot := int(e.when & ringMask)
		k.ring[slot].fns = append(k.ring[slot].fns, e.fn)
		k.occ[slot>>6] |= 1 << uint(slot&63)
		k.ringCount++
	}
}

// peek returns the cycle of the next pending event. Any ring event
// precedes every far event (far implies when >= base+ringWindow).
func (k *Kernel) peek() (Cycle, bool) {
	if k.ringCount > 0 {
		return k.nextRingCycle(), true
	}
	if len(k.far) > 0 {
		return k.far[0].when, true
	}
	return 0, false
}

// Step dispatches the next event, advancing time to its cycle. It reports
// whether an event was dispatched.
func (k *Kernel) Step() bool {
	if k.ringCount == 0 {
		if len(k.far) == 0 {
			return false
		}
		// Idle gap longer than the window: jump the ring to the next
		// event and pull everything newly in range into buckets.
		k.base = k.far[0].when
		k.migrate()
	}
	c := k.nextRingCycle()
	if c != k.base {
		k.base = c
		k.migrate()
	}
	slot := int(c & ringMask)
	b := &k.ring[slot]
	fn := b.fns[b.head]
	b.fns[b.head] = nil // release the closure as soon as it has run
	b.head++
	k.ringCount--
	if b.head == len(b.fns) {
		b.fns = b.fns[:0]
		b.head = 0
		k.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	k.now = c
	k.Executed++
	fn()
	return true
}

// Run dispatches events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil dispatches events with cycle <= limit, then sets time to limit
// if the simulation got there. Events beyond limit remain queued.
func (k *Kernel) RunUntil(limit Cycle) {
	for {
		c, ok := k.peek()
		if !ok || c > limit {
			break
		}
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}

// RunWhile dispatches events as long as cond returns true and events
// remain. cond is checked before each event.
func (k *Kernel) RunWhile(cond func() bool) {
	for cond() && k.Step() {
	}
}

// farPush and farPop maintain the overflow min-heap without the
// interface boxing of container/heap.
func (k *Kernel) farPush(e farEvent) {
	k.far = append(k.far, e)
	i := len(k.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !farLess(k.far[i], k.far[p]) {
			break
		}
		k.far[i], k.far[p] = k.far[p], k.far[i]
		i = p
	}
}

func (k *Kernel) farPop() farEvent {
	h := k.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = farEvent{} // drop the closure reference
	k.far = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && farLess(h[l], h[small]) {
			small = l
		}
		if r < n && farLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

func farLess(a, b farEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
