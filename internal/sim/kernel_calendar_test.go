package sim

import (
	"testing"
)

// TestKernelSteadyStateZeroAllocs pins the headline property of the
// calendar-queue scheduler: once bucket capacity is warm, a
// Schedule+Step round trip performs no heap allocations.
func TestKernelSteadyStateZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm up with the same access pattern the measurement uses, walking
	// every ring slot at least once so each bucket slice has capacity.
	for i := 0; i < 2*ringWindow; i++ {
		k.Schedule(3, fn)
		k.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(3, fn)
		if !k.Step() {
			t.Fatal("no event dispatched")
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocated %.1f objects/op, want 0", allocs)
	}
}

// TestKernelFIFOAcrossOverflow schedules same-cycle events through both
// paths — directly into the ring and via the far-event overflow heap
// (scheduled before the target cycle entered the ring's window) — and
// checks global FIFO order is still scheduling order.
func TestKernelFIFOAcrossOverflow(t *testing.T) {
	k := NewKernel()
	target := Cycle(ringWindow + 500) // beyond the initial window
	var got []int
	// First two land in the overflow heap.
	k.At(target, func() { got = append(got, 0) })
	k.At(target, func() { got = append(got, 1) })
	// Walk time forward so target migrates into the ring, then append
	// two more directly.
	k.At(target-1, func() {
		k.Schedule(1, func() { got = append(got, 2) })
		k.Schedule(1, func() { got = append(got, 3) })
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("events ran out of scheduling order: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("dispatched %d of 4 events", len(got))
	}
}

// TestKernelFarEventsOrdered drives events spread far beyond the ring
// window in scrambled scheduling order and checks time-ordered dispatch.
func TestKernelFarEventsOrdered(t *testing.T) {
	k := NewKernel()
	var got []Cycle
	cycles := []Cycle{5 * ringWindow, 3, 2 * ringWindow, ringWindow - 1, 7 * ringWindow, ringWindow, 1}
	for _, c := range cycles {
		c := c
		k.At(c, func() { got = append(got, c) })
	}
	k.Run()
	want := []Cycle{1, 3, ringWindow - 1, ringWindow, 2 * ringWindow, 5 * ringWindow, 7 * ringWindow}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if k.Now() != 7*ringWindow {
		t.Fatalf("Now() = %d", k.Now())
	}
}

// TestKernelIdleJumpThenSchedule exercises the base re-sync path: a long
// idle RunUntil leaves now far past the ring origin; subsequent
// scheduling must still dispatch correctly.
func TestKernelIdleJumpThenSchedule(t *testing.T) {
	k := NewKernel()
	k.RunUntil(100 * ringWindow)
	if k.Now() != 100*ringWindow {
		t.Fatalf("Now() = %d", k.Now())
	}
	var got []int
	k.Schedule(0, func() { got = append(got, 0) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(Cycle(2*ringWindow), func() { got = append(got, 2) })
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
	if len(got) != 3 || k.Now() != 102*ringWindow {
		t.Fatalf("got %v, Now() = %d", got, k.Now())
	}
}

// TestKernelRunUntilBeyondWindow checks RunUntil leaves far events
// queued and does not disturb later scheduling near the limit.
func TestKernelRunUntilBeyondWindow(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(3*ringWindow, func() { fired++ })
	k.RunUntil(2 * ringWindow)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// Scheduling at the current (jumped-to) time still works.
	k.Schedule(1, func() { fired++ })
	k.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}
