// Conservative parallel discrete-event kernel.
//
// The simulated system is split into partitions — in this simulator,
// the host (cores, caches, PMU, chain front-end) and one partition per
// HMC vault — each with its own calendar queue and clock. Partitions
// advance in barrier-synchronized epochs: every epoch runs all events in
// [T, T+W) where T is the global minimum pending cycle and W is the
// lookahead window, the minimum cross-partition latency (the off-chip
// SerDes link latency in this topology). Because any event one partition
// can cause in another is at least W cycles away, events inside the
// window are causally independent across partitions and may run
// concurrently.
//
// Cross-partition communication goes exclusively through per
// (source, destination) mailboxes (the EventSink implementation handed
// to sim.Link.SendEventTo). Each mailbox has a single writer — the
// source partition's goroutine — so posting is race-free, and mailboxes
// are drained at the epoch barrier in a fixed (destination, source,
// post-index) order. Same-cycle events therefore land in each
// destination bucket in an order that depends only on simulated history,
// never on goroutine interleaving: results are bit-identical for any
// worker count, including 1.
//
// Three fast paths keep the protocol's per-epoch cost near the
// sequential kernel's (DESIGN.md §12, BENCH_pdes2.json): a persistent
// worker gang parked on an epoch-generation barrier instead of per-epoch
// goroutine spawns, a dirty-slot mailbox drain that touches only
// non-empty mailboxes instead of scanning all P² slots, and per-partition
// epoch limits that let the globally earliest partition run past the
// fixed lookahead window — all the way past every idle partition when it
// is alone (a solo sprint) — until its first cross-partition post pulls
// its limit back in.
//
// This file is the only place in the simulator where goroutines and
// synchronization primitives are allowed (peilint's partsafe analyzer
// enforces that); component code stays single-threaded and identical
// under either kernel.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Partition is one member of a PDES ensemble: a full calendar-queue
// kernel plus its partition identity. It implements Scheduler, so
// components constructed against it schedule exactly as they would on
// the sequential kernel; only explicitly-sunk link deliveries cross
// partitions.
type Partition struct {
	Kernel
	pd *PDES
	id int
}

// ID returns the partition's index in the ensemble (0 is conventionally
// the host partition).
func (p *Partition) ID() int { return p.id }

// post is one mailbox entry: an event bound for another partition.
type post struct {
	cycle Cycle
	h     Handler
	arg   EventArg
}

// inbox is the EventSink for one (source, destination) partition pair.
// Only the source partition's goroutine appends during an epoch; the
// coordinator drains it at the barrier. src and key are precomputed at
// construction: src indexes the per-source dirty list (written only by
// the source's goroutine, so dirty tracking stays race-free) and key is
// the (destination, source) drain-order index dst*nparts+src.
type inbox struct {
	pd   *PDES
	slot int
	src  int
	key  int32
}

// PostEvent queues a cross-partition event. The conservative protocol is
// only sound if every post spans at least the lookahead window from the
// sender's own clock — a nearer post is a hard modeling error (a
// component communicated across partitions with less than the lookahead
// latency) and panics rather than silently corrupting causality. The
// check applies from the first post: seeding a mailbox before Run must
// target cycle >= window, the sender's clock still being 0.
//
// A post also shrinks the sender's own epoch limit: the receiver can
// react no sooner than cycle+window, so a sender running past the fixed
// window on an extended limit (see Epoch) must stop at cycle+window-1
// and let the next barrier deliver the mail. Only the sender's slot is
// written, from the sender's own goroutine, so the shrink is race-free.
func (ib *inbox) PostEvent(cycle Cycle, h Handler, arg EventArg) {
	pd := ib.pd
	if now := pd.parts[ib.src].Now(); cycle < now+pd.window {
		panic(fmt.Sprintf("sim: pdes lookahead violation: post at cycle %d from partition %d at cycle %d (window %d)", cycle, ib.src, now, pd.window))
	}
	if lim := cycle + pd.window - 1; lim < pd.limits[ib.src] {
		pd.limits[ib.src] = lim
	}
	m := pd.mail[ib.slot]
	if len(m) == 0 {
		pd.dirty[ib.src] = append(pd.dirty[ib.src], ib.key)
	}
	pd.mail[ib.slot] = append(m, post{cycle: cycle, h: h, arg: arg})
}

// ProtoStats counts the PDES protocol's own work. These are engine
// diagnostics, not simulated state: they deliberately live outside the
// stats.Registry so a pdes run's Result (counters included) stays
// byte-identical to a sequential run's. machine surfaces them through
// KernelProtoStats and peibench records them in -benchjson snapshots.
type ProtoStats struct {
	// Epochs is the number of barrier-synchronized windows run,
	// including solo sprints.
	Epochs uint64
	// SoloSprints counts epochs with exactly one active partition,
	// which then runs on an unbounded (or next-waker-bounded) limit
	// until its first cross-partition post.
	SoloSprints uint64
	// PartsSkipped accumulates partitions with no work inside the
	// epoch's window, summed over epochs: the protocol never woke them.
	PartsSkipped uint64
	// MailSlotsMerged counts non-empty (source, destination) mailboxes
	// drained at barriers; the dirty-slot drain touches only these, so
	// MailSlotsMerged/Epochs ≪ P² is the saving over a full scan.
	MailSlotsMerged uint64
	// MailPostsMerged counts cross-partition events merged.
	MailPostsMerged uint64
}

// gang is the persistent epoch-worker pool: workers-1 long-lived
// goroutines parked on a generation-counter barrier. The coordinator
// releases an epoch by bumping gen under mu and broadcasting; each
// worker participates exactly once per generation (a worker that missed
// the broadcast still sees the bumped counter), claims partitions off
// the shared cursor, and reports completion on done. stop is only set
// between epochs, so workers are always parked or draining an already
// counted epoch when asked to exit.
type gang struct {
	mu   sync.Mutex
	cond sync.Cond
	gen  uint64
	stop bool
	n    int            // live worker goroutines (0 = gang not running)
	join sync.WaitGroup // worker exit, for stopGang
	done sync.WaitGroup // per-epoch completion barrier
}

// runBatch bounds the cycles one partition may dispatch per Epoch call
// (one budget unit covers a whole calendar bucket: dispatch runs every
// event scheduled for that cycle). A solo partition with a
// self-perpetuating event chain would otherwise turn one sprint epoch
// into an unbounded run, making Run's per-epoch cancellation check
// worthless; breaking after a fixed count is deterministic (the next
// epoch resumes the same run) and keeps cancellation latency bounded by
// nparts×runBatch dispatched cycles' worth of events.
const runBatch = 1 << 16

// PDES is a conservative parallel discrete-event kernel: a fixed set of
// partitions advanced in lookahead-bounded epochs by a persistent pool
// of worker goroutines. Construct with NewPDES, wire components against
// the partitions' Schedulers and the Sink mailboxes, then call Run.
type PDES struct {
	window  Cycle
	parts   []*Partition
	inboxes []inbox
	mail    [][]post // [src*len(parts)+dst]; written only by src's goroutine

	// dirty[src] lists the drain keys (dst*nparts+src) of mailboxes that
	// went empty→non-empty this epoch; appended only by src's goroutine
	// at post time, consumed by the coordinator at the barrier.
	dirty [][]int32 //peilint:allow snapcomplete per-epoch scratch; every barrier drains it and snapshots require quiescence
	// mergeBits is the coordinator's drain bitmap, indexed by drain key,
	// so merging visits dirty slots in (destination, source) order
	// without sorting. Coordinator-only.
	mergeBits []uint64 //peilint:allow snapcomplete coordinator scratch, all-zero between epochs

	workers int

	active []*Partition //peilint:allow snapcomplete per-epoch scratch; no epoch runs across a quiescent boundary
	// nexts memoizes each partition's next pending cycle (-1 = empty);
	// stale marks entries to re-peek. A partition's queue only changes
	// when it runs or receives mail, so each epoch re-peeks only those.
	nexts []Cycle //peilint:allow snapcomplete memoized peek cache, re-derived whenever stale
	stale []bool  //peilint:allow snapcomplete all-true after RestoreFrom and at Run entry; forces re-peek
	next  atomic.Int64

	// limits[i] is partition i's inclusive epoch bound: the earliest
	// other pending cycle plus window-1 (math.MaxInt64 for a partition
	// alone in the system). The coordinator writes it at the barrier;
	// during the epoch only partition i's own goroutine touches it (posts
	// shrink it, the run loop reads it), so no synchronization is needed
	// beyond the barrier itself.
	limits []Cycle //peilint:allow snapcomplete per-epoch bounds recomputed at the top of every epoch; dead between epochs

	gang gang

	proto ProtoStats //peilint:allow snapcomplete engine diagnostics, not simulated state (Results stay kernel-identical)
}

// pdesPool recycles whole quiescent ensembles from one machine to the
// next. An ensemble is heavy to cold-start — nparts calendar rings plus
// every ring bucket's event slice grown from nil, the latter being the
// bulk of it — and sweep harnesses build hundreds of short-lived
// machines, so reuse converts the dominant per-machine allocation burst
// into a handful of scalar resets while keeping bucket capacities warm.
// Capacity never affects dispatch order (buckets are index-FIFO, the far
// heap is empty at quiescence), so a recycled ensemble is behaviorally
// identical to a fresh one.
var pdesPool sync.Pool

// NewPDES creates an ensemble of nparts partitions with the given
// lookahead window (the minimum cross-partition event latency, in
// cycles) and worker goroutine count. window must be at least 1: a
// zero-lookahead topology has no causally independent events to run
// concurrently. workers is clamped to at least 1; workers == 1 runs the
// identical epoch protocol inline with no goroutines at all. With
// workers > 1 the coordinator itself works each epoch alongside a gang
// of workers-1 persistent goroutines, started on first use and joined
// when Run returns (or at Close).
//
// The ensemble may come from the recycle pool (see Recycle); a pooled
// ensemble of the wrong shape is discarded, not adapted.
func NewPDES(window Cycle, nparts, workers int) *PDES {
	if window < 1 {
		panic("sim: pdes lookahead window must be >= 1")
	}
	if nparts < 1 {
		panic("sim: pdes needs at least one partition")
	}
	if workers < 1 {
		workers = 1
	}
	if v := pdesPool.Get(); v != nil {
		if pd := v.(*PDES); pd.window == window && len(pd.parts) == nparts && pd.workers == workers {
			pd.resetForReuse()
			return pd
		}
		// Wrong shape: let the GC have it and build fresh.
	}
	pd := &PDES{
		window:    window,
		workers:   workers,
		inboxes:   make([]inbox, nparts*nparts),
		mail:      make([][]post, nparts*nparts),
		dirty:     make([][]int32, nparts),
		mergeBits: make([]uint64, (nparts*nparts+63)/64),
		nexts:     make([]Cycle, nparts),
		stale:     make([]bool, nparts),
		limits:    make([]Cycle, nparts),
	}
	pd.gang.cond.L = &pd.gang.mu
	for i := 0; i < nparts; i++ {
		pd.parts = append(pd.parts, &Partition{pd: pd, id: i})
		pd.stale[i] = true
	}
	for i := range pd.inboxes {
		src, dst := i/nparts, i%nparts
		pd.inboxes[i] = inbox{pd: pd, slot: i, src: src, key: int32(dst*nparts + src)}
	}
	return pd
}

// resetForReuse rewinds a recycled quiescent ensemble to the state a
// fresh NewPDES returns: clocks, dispatch accounting, protocol counters
// and epoch scratch all zeroed. Queue storage is already empty (Recycle
// requires quiescence, and dispatch/drain zero entries as they pop), so
// only scalars move; the warmed bucket and heap capacities are the point
// of pooling.
func (pd *PDES) resetForReuse() {
	for _, p := range pd.parts {
		k := &p.Kernel
		k.now, k.base = 0, 0
		k.seq, k.Executed = 0, 0
	}
	pd.proto = ProtoStats{}
	pd.active = pd.active[:0]
	pd.next.Store(0)
	for i := range pd.stale {
		pd.stale[i] = true
		pd.nexts[i] = 0
		pd.limits[i] = 0
	}
}

// Recycle returns a finished ensemble to the package pool for the next
// NewPDES of the same shape. Only legal — and only useful — at
// quiescence: with events still pending it is a no-op, leaving the
// ensemble for the GC. The caller must drop every reference to the
// ensemble and its partitions afterwards. The worker gang is joined
// first, so pooled ensembles hold no goroutines.
func (pd *PDES) Recycle() {
	if pd.Pending() != 0 {
		return
	}
	pd.stopGang()
	pdesPool.Put(pd)
}

// Part returns partition i's scheduler.
func (pd *PDES) Part(i int) *Partition { return pd.parts[i] }

// Sink returns the mailbox carrying events from partition src to
// partition dst. The returned sink must only be posted to from src's
// own events.
func (pd *PDES) Sink(src, dst int) EventSink {
	return &pd.inboxes[src*len(pd.parts)+dst]
}

// Proto returns the protocol counters accumulated so far.
func (pd *PDES) Proto() ProtoStats { return pd.proto }

// Pending reports queued events across all partitions, including
// cross-partition posts not yet drained into their destination queues.
func (pd *PDES) Pending() int {
	n := 0
	for _, p := range pd.parts {
		n += p.Pending()
	}
	for _, m := range pd.mail {
		n += len(m)
	}
	return n
}

// Executed reports events dispatched across all partitions.
func (pd *PDES) Executed() uint64 {
	var n uint64
	for _, p := range pd.parts {
		n += p.Kernel.Executed
	}
	return n
}

// MaxNow returns the clock of the furthest-advanced partition: the cycle
// of the globally last dispatched event, matching what the sequential
// kernel's Now reports after a full run.
func (pd *PDES) MaxNow() Cycle {
	var m Cycle
	for _, p := range pd.parts {
		if n := p.Now(); n > m {
			m = n
		}
	}
	return m
}

// Run drives all partitions until every queue is empty. ctx is checked
// once per epoch (partition runs are batched, so an epoch dispatches at
// most nparts×runBatch simulated cycles' worth of events before the
// check). The persistent worker gang
// is joined before Run returns, so an idle or abandoned ensemble holds
// no goroutines; a later Run restarts it on demand.
func (pd *PDES) Run(ctx context.Context) error {
	// Events may have been scheduled into partitions since the last
	// epoch ran — stream re-arming between phases, pre-run seeding — so
	// every memoized peek is refreshed once per Run.
	for i := range pd.stale {
		pd.stale[i] = true
	}
	defer pd.stopGang()
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if !pd.Epoch() {
			return nil
		}
	}
}

// Close joins the persistent worker gang, if running. The ensemble
// stays usable — a later Run restarts the gang — so Close is only
// needed by callers that drive Epoch directly and never call Run.
func (pd *PDES) Close() { pd.stopGang() }

// Epoch runs one barrier-synchronized window: drain mailbox posts from
// the previous epoch (or pre-run seeding) into their destination
// queues, find the global minimum pending cycle T, then execute the
// active partitions (those with work in [T, T+window)) concurrently,
// each up to its own limit. It reports whether any work remained.
//
// Limits are per partition: partition i may run through
// min{next[j] : j≠i, j non-empty} + window - 1 — any event another
// partition dispatches this epoch is at its own next-cycle or later, so
// nothing it posts can land at or below that bound. For every active
// partition except the global minimum, that bound equals the classic
// T+window-1; the global-minimum partition gets the second-smallest
// next-cycle as its base instead, letting the one partition that is
// ahead of the pack (typically the host during compute phases) run on
// without extra barriers. Alone in the system, its limit is unbounded —
// the solo sprint. Either way the run stops early at c+window-1 after a
// first cross-partition post at c, since the receiver may react at
// c+window (posts shrink the sender's own limit; see inbox.PostEvent).
//
// Epoch memoizes each partition's next pending cycle between calls;
// callers that schedule events into partitions outside Epoch (as Run's
// re-arming contract allows) must go through Run, which invalidates the
// memo.
func (pd *PDES) Epoch() bool {
	pd.drainMail()
	// One fused pass: refresh the memoized next-cycle of every
	// partition whose queue changed last epoch (it ran, or mail was
	// merged into it) and track the two smallest pending cycles.
	min1, min2 := Cycle(-1), Cycle(-1)
	arg1 := -1
	for i, p := range pd.parts {
		if pd.stale[i] {
			if c, ok := p.peek(); ok {
				pd.nexts[i] = c
			} else {
				pd.nexts[i] = -1
			}
			pd.stale[i] = false
		}
		c := pd.nexts[i]
		if c < 0 {
			continue
		}
		if min1 < 0 || c < min1 {
			min2 = min1
			min1, arg1 = c, i
		} else if min2 < 0 || c < min2 {
			min2 = c
		}
	}
	if arg1 < 0 {
		return false
	}
	pd.proto.Epochs++
	limit := min1 + pd.window - 1
	pd.active = pd.active[:0]
	for i, p := range pd.parts {
		c := pd.nexts[i]
		if c < 0 {
			continue
		}
		if c <= limit {
			// No stale mark: running a partition refreshes its memoized
			// next-cycle for free (runPart stores it).
			pd.limits[i] = limit
			pd.active = append(pd.active, p)
		}
	}
	// The global minimum's extended limit: second-smallest next-cycle
	// plus window-1 (every ties-at-min1 partition lands in min2, so ties
	// correctly pin this to min1+window-1), unbounded when no other
	// partition has work at all.
	if min2 >= 0 {
		pd.limits[arg1] = min2 + pd.window - 1
	} else {
		pd.limits[arg1] = Cycle(math.MaxInt64)
	}
	pd.proto.PartsSkipped += uint64(len(pd.parts) - len(pd.active))
	if len(pd.active) == 1 {
		pd.proto.SoloSprints++
		pd.runPart(pd.active[0])
		return true
	}
	pd.runActive()
	return true
}

// runPart executes one partition's events through its epoch limit —
// re-read every iteration, since the partition's own posts shrink it —
// and stores the next pending cycle (or -1) into the memo. Exactly one
// goroutine owns a given partition per epoch, so the limit and memo
// slots need no synchronization beyond the epoch barrier. The loop is
// Kernel.Run's dispatch loop with the limit check inline; it stops when
// the queue drains, the next event lies beyond the limit, or the batch
// budget runs out (then the memo is marked stale instead, and the next
// epoch resumes the same run).
func (pd *PDES) runPart(p *Partition) {
	k := &p.Kernel
	next := Cycle(-1)
	for budget := runBatch; ; budget-- {
		if budget == 0 {
			pd.stale[p.id] = true
			return
		}
		if k.ringCount == 0 {
			if len(k.far) == 0 {
				break
			}
			if k.far[0].when > pd.limits[p.id] {
				next = k.far[0].when
				break
			}
			k.base = k.far[0].when
			k.migrate()
		}
		c := k.nextRingCycle()
		if c > pd.limits[p.id] {
			next = c
			break
		}
		if c != k.base {
			k.base = c
			k.migrate()
		}
		k.dispatch(c)
	}
	pd.nexts[p.id] = next
}

// runActive executes this epoch's active partitions, each up to its own
// limit: inline for one worker, otherwise on the persistent gang plus
// the coordinator itself, all claiming partitions off the shared cursor.
func (pd *PDES) runActive() {
	if pd.workers == 1 {
		for _, p := range pd.active {
			pd.runPart(p)
		}
		return
	}
	pd.startGang()
	g := &pd.gang
	pd.next.Store(0)
	g.done.Add(g.n)
	g.mu.Lock()
	g.gen++
	g.mu.Unlock()
	g.cond.Broadcast()
	for {
		i := pd.next.Add(1) - 1
		if i >= int64(len(pd.active)) {
			break
		}
		pd.runPart(pd.active[i])
	}
	g.done.Wait()
}

// startGang launches the persistent worker goroutines if they are not
// already running. Gang size is workers-1 (the coordinator works too),
// capped at nparts-1 since extra workers could never claim a partition.
func (pd *PDES) startGang() {
	g := &pd.gang
	if g.n > 0 {
		return
	}
	n := pd.workers - 1
	if m := len(pd.parts) - 1; n > m {
		n = m
	}
	if n <= 0 {
		return
	}
	// Workers enter the wait loop with a local generation of 0, so the
	// shared counter must restart from 0 too: a restarted gang (second
	// Run, Close-then-Run, recycled ensemble) would otherwise hand fresh
	// workers a nonzero g.gen and admit them to an epoch the coordinator
	// has not released yet. No worker is live here (g.n == 0 after the
	// previous stopGang joined), and the go statements below publish the
	// reset, so no lock is needed.
	g.gen = 0
	g.stop = false
	g.n = n
	g.join.Add(n)
	for i := 0; i < n; i++ {
		go pd.gangWorker()
	}
}

// stopGang asks the gang to exit and joins it. Must only be called
// between epochs (every worker parked or about to park).
func (pd *PDES) stopGang() {
	g := &pd.gang
	if g.n == 0 {
		return
	}
	g.mu.Lock()
	g.stop = true
	g.mu.Unlock()
	g.cond.Broadcast()
	g.join.Wait()
	g.n = 0
}

// gangWorker is one persistent epoch worker: park until the generation
// counter moves, claim active partitions off the shared cursor until
// none remain, report completion, repeat. The generation counter — not
// the broadcast — is what admits a worker to an epoch, so a worker that
// was still finishing the previous epoch when the next was released
// joins it without a wakeup.
func (pd *PDES) gangWorker() {
	g := &pd.gang
	var gen uint64
	for {
		g.mu.Lock()
		for g.gen == gen && !g.stop {
			g.cond.Wait()
		}
		stop := g.stop
		gen = g.gen
		g.mu.Unlock()
		if stop {
			g.join.Done()
			return
		}
		for {
			i := pd.next.Add(1) - 1
			if i >= int64(len(pd.active)) {
				break
			}
			// Each claimed partition's limit and memo slots are touched
			// by exactly one goroutine this epoch; the done barrier
			// publishes them to the coordinator.
			pd.runPart(pd.active[i])
		}
		g.done.Done()
	}
}

// drainMail merges every non-empty mailbox into its destination queue.
// Dirty slots — recorded per source at post time, by the slot's single
// writer — are gathered into a bitmap indexed by (destination, source),
// so the drain visits only mailboxes that hold posts, in the fixed
// (destination ascending, source ascending, post order) sequence of the
// deterministic merge rule; calendar buckets are FIFO, so same-cycle
// cross-partition events always land in the same relative order
// regardless of how worker goroutines interleaved during the epoch.
// Posts land in the destination's early lane (AtEventEarly), the same
// lane the sequential kernel uses for link deliveries, so a drained
// arrival keeps its arrivals-before-locals position against events the
// destination schedules for the same cycle during its own epoch.
func (pd *PDES) drainMail() {
	n := len(pd.parts)
	dirty := false
	for src := range pd.dirty {
		dl := pd.dirty[src]
		if len(dl) == 0 {
			continue
		}
		dirty = true
		for _, key := range dl {
			pd.mergeBits[key>>6] |= 1 << (uint(key) & 63)
		}
		pd.dirty[src] = dl[:0]
	}
	if !dirty {
		return
	}
	for w, word := range pd.mergeBits {
		if word == 0 {
			continue
		}
		pd.mergeBits[w] = 0
		base := w << 6
		for ; word != 0; word &= word - 1 {
			key := base + bits.TrailingZeros64(word)
			dst, src := key/n, key%n
			slot := src*n + dst
			m := pd.mail[slot]
			dk := &pd.parts[dst].Kernel
			for i := range m {
				dk.AtEventEarly(m[i].cycle, m[i].h, m[i].arg)
				m[i] = post{} // release handler/arg references
			}
			pd.proto.MailSlotsMerged++
			pd.proto.MailPostsMerged += uint64(len(m))
			pd.mail[slot] = m[:0]
			pd.stale[dst] = true
		}
	}
}

var _ Scheduler = (*Partition)(nil)
