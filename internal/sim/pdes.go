// Conservative parallel discrete-event kernel.
//
// The simulated system is split into partitions — in this simulator,
// the host (cores, caches, PMU, chain front-end) and one partition per
// HMC vault — each with its own calendar queue and clock. Partitions
// advance in barrier-synchronized epochs: every epoch runs all events in
// [T, T+W) where T is the global minimum pending cycle and W is the
// lookahead window, the minimum cross-partition latency (the off-chip
// SerDes link latency in this topology). Because any event one partition
// can cause in another is at least W cycles away, events inside the
// window are causally independent across partitions and may run
// concurrently.
//
// Cross-partition communication goes exclusively through per
// (source, destination) mailboxes (the EventSink implementation handed
// to sim.Link.SendEventTo). Each mailbox has a single writer — the
// source partition's goroutine — so posting is race-free, and mailboxes
// are drained at the epoch barrier in a fixed (destination, source,
// post-index) order. Same-cycle events therefore land in each
// destination bucket in an order that depends only on simulated history,
// never on goroutine interleaving: results are bit-identical for any
// worker count, including 1.
//
// This file is the only place in the simulator where goroutines and
// synchronization primitives are allowed (peilint's partsafe analyzer
// enforces that); component code stays single-threaded and identical
// under either kernel.
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Partition is one member of a PDES ensemble: a full calendar-queue
// kernel plus its partition identity. It implements Scheduler, so
// components constructed against it schedule exactly as they would on
// the sequential kernel; only explicitly-sunk link deliveries cross
// partitions.
type Partition struct {
	Kernel
	pd *PDES
	id int
}

// ID returns the partition's index in the ensemble (0 is conventionally
// the host partition).
func (p *Partition) ID() int { return p.id }

// post is one mailbox entry: an event bound for another partition.
type post struct {
	cycle Cycle
	h     Handler
	arg   EventArg
}

// inbox is the EventSink for one (source, destination) partition pair.
// Only the source partition's goroutine appends during an epoch; the
// coordinator drains it at the barrier.
type inbox struct {
	pd   *PDES
	slot int
}

// PostEvent queues a cross-partition event. The conservative protocol is
// only sound if every post lands at or beyond the current epoch horizon
// — the receiver may already have executed events up to horizon-1 — so a
// nearer post is a hard modeling error (a component communicated across
// partitions with less than the lookahead latency) and panics rather
// than silently corrupting causality.
func (ib *inbox) PostEvent(cycle Cycle, h Handler, arg EventArg) {
	pd := ib.pd
	if cycle < pd.horizon {
		panic(fmt.Sprintf("sim: pdes lookahead violation: post at cycle %d before epoch horizon %d", cycle, pd.horizon))
	}
	pd.mail[ib.slot] = append(pd.mail[ib.slot], post{cycle: cycle, h: h, arg: arg})
}

// PDES is a conservative parallel discrete-event kernel: a fixed set of
// partitions advanced in lookahead-bounded epochs by a pool of worker
// goroutines. Construct with NewPDES, wire components against the
// partitions' Schedulers and the Sink mailboxes, then call Run.
type PDES struct {
	window  Cycle
	parts   []*Partition
	inboxes []inbox
	mail    [][]post // [src*len(parts)+dst]; written only by src's goroutine

	// horizon is the exclusive upper bound of the running epoch. Workers
	// read it (via inbox posts) during an epoch; the coordinator writes
	// it only between epochs, with the barrier providing the necessary
	// happens-before edges.
	horizon Cycle //peilint:allow snapcomplete zeroed by RestoreFrom and recomputed at the top of every epoch
	workers int

	active []*Partition //peilint:allow snapcomplete per-epoch scratch; no epoch runs across a quiescent boundary
	next   atomic.Int64 // work-stealing cursor over active
	limit  Cycle        //peilint:allow snapcomplete per-epoch bound derived from horizon; dead between epochs
	wg     sync.WaitGroup
}

// NewPDES creates an ensemble of nparts partitions with the given
// lookahead window (the minimum cross-partition event latency, in
// cycles) and worker goroutine count. window must be at least 1: a
// zero-lookahead topology has no causally independent events to run
// concurrently. workers is clamped to at least 1; workers == 1 runs the
// identical epoch protocol inline with no goroutines at all.
func NewPDES(window Cycle, nparts, workers int) *PDES {
	if window < 1 {
		panic("sim: pdes lookahead window must be >= 1")
	}
	if nparts < 1 {
		panic("sim: pdes needs at least one partition")
	}
	if workers < 1 {
		workers = 1
	}
	pd := &PDES{
		window:  window,
		workers: workers,
		inboxes: make([]inbox, nparts*nparts),
		mail:    make([][]post, nparts*nparts),
	}
	for i := 0; i < nparts; i++ {
		pd.parts = append(pd.parts, &Partition{pd: pd, id: i})
	}
	for i := range pd.inboxes {
		pd.inboxes[i] = inbox{pd: pd, slot: i}
	}
	return pd
}

// Part returns partition i's scheduler.
func (pd *PDES) Part(i int) *Partition { return pd.parts[i] }

// Sink returns the mailbox carrying events from partition src to
// partition dst. The returned sink must only be posted to from src's
// own events.
func (pd *PDES) Sink(src, dst int) EventSink {
	return &pd.inboxes[src*len(pd.parts)+dst]
}

// Pending reports queued events across all partitions, including
// cross-partition posts not yet drained into their destination queues.
func (pd *PDES) Pending() int {
	n := 0
	for _, p := range pd.parts {
		n += p.Pending()
	}
	for _, m := range pd.mail {
		n += len(m)
	}
	return n
}

// Executed reports events dispatched across all partitions.
func (pd *PDES) Executed() uint64 {
	var n uint64
	for _, p := range pd.parts {
		n += p.Kernel.Executed
	}
	return n
}

// MaxNow returns the clock of the furthest-advanced partition: the cycle
// of the globally last dispatched event, matching what the sequential
// kernel's Now reports after a full run.
func (pd *PDES) MaxNow() Cycle {
	var m Cycle
	for _, p := range pd.parts {
		if n := p.Now(); n > m {
			m = n
		}
	}
	return m
}

// Run drives all partitions until every queue is empty. ctx is checked
// once per epoch, so cancellation latency is one lookahead window's
// worth of events.
func (pd *PDES) Run(ctx context.Context) error {
	done := ctx.Done()
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if !pd.Epoch() {
			return nil
		}
	}
}

// Epoch runs one barrier-synchronized window: drain mailbox posts from
// the previous epoch (or pre-run seeding) into their destination
// queues, find the global minimum pending cycle T, then execute every
// partition's events in [T, T+window) concurrently. It reports whether
// any work remained.
func (pd *PDES) Epoch() bool {
	pd.drainMail()
	// Global minimum pending cycle and the epoch's active set. A
	// partition whose next event is beyond the horizon has nothing to do
	// this epoch and is skipped entirely.
	var t Cycle
	found := false
	for _, p := range pd.parts {
		if c, ok := p.peek(); ok && (!found || c < t) {
			t, found = c, true
		}
	}
	if !found {
		return false
	}
	pd.horizon = t + pd.window
	limit := pd.horizon - 1
	pd.active = pd.active[:0]
	for _, p := range pd.parts {
		if c, ok := p.peek(); ok && c <= limit {
			pd.active = append(pd.active, p)
		}
	}

	pd.runActive(limit)
	return true
}

// runActive executes this epoch's active partitions up to limit,
// inline for one worker (or one active partition), otherwise on worker
// goroutines claiming partitions off a shared cursor.
func (pd *PDES) runActive(limit Cycle) {
	if pd.workers == 1 || len(pd.active) == 1 {
		for _, p := range pd.active {
			p.RunUpTo(limit)
		}
		return
	}
	w := pd.workers
	if w > len(pd.active) {
		w = len(pd.active)
	}
	pd.limit = limit
	pd.next.Store(0)
	pd.wg.Add(w)
	for i := 0; i < w; i++ {
		go pd.work()
	}
	pd.wg.Wait()
}

// work is one epoch worker: claim active partitions off the shared
// cursor until none remain. It is a method rather than a closure so
// spawning it captures no per-epoch environment.
func (pd *PDES) work() {
	defer pd.wg.Done()
	limit := pd.limit
	for {
		i := pd.next.Add(1) - 1
		if i >= int64(len(pd.active)) {
			return
		}
		pd.active[i].RunUpTo(limit)
	}
}

// drainMail merges every mailbox into its destination queue. The drain
// order — destinations ascending, then sources ascending, then post
// order within a source — is fixed, and calendar buckets are FIFO, so
// same-cycle cross-partition events always land in the same relative
// order regardless of how worker goroutines interleaved during the
// epoch. This is the deterministic (cycle, source, sequence) merge rule.
// Posts land in the destination's early lane (AtEventEarly), the same
// lane the sequential kernel uses for link deliveries, so a drained
// arrival keeps its arrivals-before-locals position against events the
// destination schedules for the same cycle during its own epoch.
func (pd *PDES) drainMail() {
	n := len(pd.parts)
	for dst := 0; dst < n; dst++ {
		dk := &pd.parts[dst].Kernel
		for src := 0; src < n; src++ {
			slot := src*n + dst
			m := pd.mail[slot]
			if len(m) == 0 {
				continue
			}
			for i := range m {
				dk.AtEventEarly(m[i].cycle, m[i].h, m[i].arg)
				m[i] = post{} // release handler/arg references
			}
			pd.mail[slot] = m[:0]
		}
	}
}

var _ Scheduler = (*Partition)(nil)
