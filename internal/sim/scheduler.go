package sim

// EventSink accepts an event post at an absolute cycle. It is the only
// channel through which one PDES partition may inject work into another:
// the sequential Kernel implements it as a plain AtEvent, while the PDES
// kernel hands out per-(source, destination) mailboxes whose posts are
// merged deterministically at epoch boundaries.
type EventSink interface {
	PostEvent(cycle Cycle, h Handler, arg EventArg)
}

// Scheduler is the interface every timed component programs against: the
// clock plus event scheduling. It is implemented by the sequential
// *Kernel and by each *Partition of the PDES kernel, so component code is
// identical under either execution engine. Scheduling is always
// partition-local; cross-partition communication goes through an
// explicit EventSink (see Link.SendEventTo).
type Scheduler interface {
	EventSink

	// Now returns the current simulated cycle of this scheduler's clock.
	Now() Cycle
	// ScheduleEvent delivers arg to h delay cycles from now; AtEvent at
	// an absolute cycle. These are the hot-path forms and never allocate
	// in steady state.
	ScheduleEvent(delay Cycle, h Handler, arg EventArg)
	AtEvent(cycle Cycle, h Handler, arg EventArg)
	// Schedule and At are the closure variants for cold paths.
	Schedule(delay Cycle, fn func())
	At(cycle Cycle, fn func())
	// Pending reports the number of queued events.
	Pending() int

	// EarlySink returns an EventSink that posts into the calendar's
	// early lane: events delivered through it run before every
	// normal-lane event of the same cycle. It is the sink components
	// hand to cross-partition links (Link.SendEventTo), making the
	// order of a link arrival against same-cycle local events a fixed
	// rule — arrivals first — identical under both kernels.
	EarlySink() EventSink
}

// PostEvent implements EventSink on the sequential kernel: a post is an
// ordinary absolute-cycle insertion into the one global queue. Local
// (same-partition) links deliver through this normal lane; only
// cross-partition deliveries use the early lane.
func (k *Kernel) PostEvent(cycle Cycle, h Handler, arg EventArg) {
	k.AtEvent(cycle, h, arg)
}

// earlySink adapts a kernel's early lane to the EventSink interface.
type earlySink struct{ k *Kernel }

func (s earlySink) PostEvent(cycle Cycle, h Handler, arg EventArg) {
	s.k.AtEventEarly(cycle, h, arg)
}

// EarlySink implements Scheduler.EarlySink on the sequential kernel.
// The returned sink is handed out once at wiring time, so the interface
// boxing here is off the hot path.
func (k *Kernel) EarlySink() EventSink { return earlySink{k} }

var _ Scheduler = (*Kernel)(nil)
