package memlayout

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes the allocator's high-water mark and every
// allocated byte. Layout (which addresses hold what) is not recorded —
// it is a pure function of the workload's deterministic Streams()
// construction, which a resuming run replays before overlaying these
// bytes.
func (s *Store) SnapshotTo(w *snap.Writer) {
	w.Section("STOR")
	w.U64(s.next)
	w.Bytes(s.mem[:s.next])
}

// RestoreFrom overlays snapshot bytes onto a store whose allocations
// must already match (same workload, same params, same construction
// order). A high-water-mark mismatch means the resuming run was not
// built identically and fails the restore.
func (s *Store) RestoreFrom(r *snap.Reader) {
	r.Section("STOR")
	next := r.U64()
	if r.Err() != nil {
		return
	}
	if next != s.next {
		r.Fail(fmt.Errorf("memlayout: allocation high-water mark %#x, snapshot has %#x (layout mismatch)", s.next, next))
		return
	}
	r.BytesInto(s.mem[:s.next])
}
