package memlayout

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	s := NewStore()
	a := s.Alloc(10, 64)
	if a%64 != 0 {
		t.Fatalf("address %#x not 64-aligned", a)
	}
	b := s.Alloc(8, 8)
	if b < a+10 {
		t.Fatalf("overlapping allocations: %#x after [%#x,+10)", b, a)
	}
	if a < Base {
		t.Fatalf("allocation below base: %#x", a)
	}
}

func TestAllocBadAlignPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Alloc(8, 3)
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewStore()
	a := s.Alloc(64, 64)
	s.WriteU64(a, 0xdeadbeefcafef00d)
	if got := s.ReadU64(a); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x", got)
	}
	s.WriteF64(a+8, 3.25)
	if got := s.ReadF64(a + 8); got != 3.25 {
		t.Fatalf("ReadF64 = %v", got)
	}
	s.WriteU32(a+16, 77)
	if got := s.ReadU32(a + 16); got != 77 {
		t.Fatalf("ReadU32 = %d", got)
	}
	s.WriteF32(a+20, -1.5)
	if got := s.ReadF32(a + 20); got != -1.5 {
		t.Fatalf("ReadF32 = %v", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := NewStore()
	a := s.Alloc(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Bytes(a+8, 8)
}

func TestStoreGrows(t *testing.T) {
	s := NewStore()
	a := s.Alloc(10<<20, 64) // force growth past initial capacity
	s.WriteU64(a+(10<<20)-8, 42)
	if got := s.ReadU64(a + (10 << 20) - 8); got != 42 {
		t.Fatalf("value after growth = %d", got)
	}
}

func TestU64Array(t *testing.T) {
	s := NewStore()
	arr := s.AllocU64Array(100)
	if arr.Len() != 100 {
		t.Fatalf("Len = %d", arr.Len())
	}
	arr.Fill(7)
	for i := 0; i < 100; i++ {
		if arr.Get(i) != 7 {
			t.Fatalf("element %d = %d after Fill", i, arr.Get(i))
		}
	}
	arr.Set(50, 123)
	if arr.Get(50) != 123 || arr.Get(49) != 7 || arr.Get(51) != 7 {
		t.Fatal("Set leaked to neighbors")
	}
	if arr.Addr(1)-arr.Addr(0) != 8 {
		t.Fatal("element stride wrong")
	}
	arr.SetF(2, 2.5)
	if arr.GetF(2) != 2.5 {
		t.Fatal("float accessors broken")
	}
}

// Property: sequential allocations never overlap and preserve values.
func TestAllocNoOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewStore()
		type region struct {
			a uint64
			n int
		}
		var regs []region
		for i, sz := range sizes {
			n := int(sz)%128 + 8
			a := s.Alloc(n, 8)
			s.WriteU64(a, uint64(i))
			regs = append(regs, region{a, n})
		}
		for i, r := range regs {
			if s.ReadU64(r.a) != uint64(i) {
				return false
			}
			if i > 0 {
				prev := regs[i-1]
				if r.a < prev.a+uint64(prev.n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
