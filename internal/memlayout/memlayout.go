// Package memlayout provides the simulated physical memory: a bump
// allocator handing out addresses in the simulated address space and a
// flat byte store holding functional data. The timing simulator never
// reads this store — it works on addresses alone — but PEI operations and
// workload verification execute against it, so coherence and atomicity
// bugs surface as wrong values, not just wrong cycle counts.
package memlayout

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Base is the first allocatable address. Address 0 is kept unmapped so
// zero-valued pointers in workload data structures (e.g. hash-bucket next
// pointers) are distinguishable.
const Base = 1 << 20

// Store is the functional memory image plus allocator.
type Store struct {
	mem  []byte
	next uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{mem: make([]byte, Base), next: Base}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the base address.
func (s *Store) Alloc(n int, align uint64) uint64 {
	if n < 0 {
		panic("memlayout: negative allocation")
	}
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("memlayout: alignment %d not a power of two", align))
	}
	a := (s.next + align - 1) &^ (align - 1)
	s.next = a + uint64(n)
	if s.next > uint64(len(s.mem)) {
		grown := make([]byte, s.next*3/2)
		copy(grown, s.mem)
		s.mem = grown
	}
	return a
}

// Size reports the high-water mark of allocated memory.
func (s *Store) Size() uint64 { return s.next }

// Bytes returns a mutable view of [a, a+n). The range must have been
// allocated.
func (s *Store) Bytes(a uint64, n int) []byte {
	if a+uint64(n) > s.next {
		panic(fmt.Sprintf("memlayout: access [%#x,%#x) beyond allocation %#x", a, a+uint64(n), s.next))
	}
	return s.mem[a : a+uint64(n)]
}

// ReadU64 and WriteU64 access an 8-byte little-endian word.
func (s *Store) ReadU64(a uint64) uint64     { return binary.LittleEndian.Uint64(s.Bytes(a, 8)) }
func (s *Store) WriteU64(a uint64, v uint64) { binary.LittleEndian.PutUint64(s.Bytes(a, 8), v) }
func (s *Store) ReadU32(a uint64) uint32     { return binary.LittleEndian.Uint32(s.Bytes(a, 4)) }
func (s *Store) WriteU32(a uint64, v uint32) { binary.LittleEndian.PutUint32(s.Bytes(a, 4), v) }

// ReadF64 and WriteF64 access an 8-byte IEEE-754 double.
func (s *Store) ReadF64(a uint64) float64     { return math.Float64frombits(s.ReadU64(a)) }
func (s *Store) WriteF64(a uint64, v float64) { s.WriteU64(a, math.Float64bits(v)) }
func (s *Store) ReadF32(a uint64) float32     { return math.Float32frombits(s.ReadU32(a)) }
func (s *Store) WriteF32(a uint64, v float32) { s.WriteU32(a, math.Float32bits(v)) }

// U64Array is a convenience wrapper for an allocated array of 8-byte
// elements, the layout every graph workload uses for per-vertex fields.
type U64Array struct {
	s    *Store
	base uint64
	n    int
}

// AllocU64Array allocates n 8-byte elements aligned to their own size.
func (s *Store) AllocU64Array(n int) U64Array {
	return U64Array{s: s, base: s.Alloc(n*8, 8), n: n}
}

// Addr returns the address of element i (usable as a PEI target).
func (a U64Array) Addr(i int) uint64 { return a.base + uint64(i)*8 }

// Len returns the element count.
func (a U64Array) Len() int { return a.n }

// Get and Set access element i functionally.
func (a U64Array) Get(i int) uint64      { return a.s.ReadU64(a.Addr(i)) }
func (a U64Array) Set(i int, v uint64)   { a.s.WriteU64(a.Addr(i), v) }
func (a U64Array) GetF(i int) float64    { return a.s.ReadF64(a.Addr(i)) }
func (a U64Array) SetF(i int, v float64) { a.s.WriteF64(a.Addr(i), v) }

// Fill sets every element to v.
func (a U64Array) Fill(v uint64) {
	for i := 0; i < a.n; i++ {
		a.Set(i, v)
	}
}
