package hmc

import (
	"testing"

	"pimsim/internal/addr"
	"pimsim/internal/dram"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

func testConfig() Config {
	return Config{
		Mapping:           addr.Mapping{Cubes: 2, VaultsPerCube: 4, BanksPerVault: 4, RowBytes: 8192, InterleaveBlocks: 1},
		Timing:            dram.Timing{TCL: 55, TRCD: 55, TRP: 55, IssueGap: 2},
		LinkBytesPerCycle: 10,
		LinkLatency:       16,
		HopLatency:        8,
		TSVBytesPerCycle:  4,
		TSVLatency:        4,
		PacketHeaderBytes: 16,
	}
}

func newTestChain() (*sim.Kernel, *Chain, *stats.Registry) {
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	return k, NewChain(k, testConfig(), reg), reg
}

func TestChainGeometry(t *testing.T) {
	_, ch, _ := newTestChain()
	if len(ch.Cubes) != 2 || len(ch.Cubes[0].Vaults) != 4 {
		t.Fatal("chain geometry wrong")
	}
	if ch.Cubes[1].Vaults[2].Index != 6 {
		t.Fatalf("vault index = %d, want 6", ch.Cubes[1].Vaults[2].Index)
	}
}

func TestReadRoundTrip(t *testing.T) {
	k, ch, reg := newTestChain()
	var done sim.Cycle = -1
	ch.Read(0, func() { done = k.Now() })
	k.Run()
	if done < 0 {
		t.Fatal("read never completed")
	}
	// Request: 16 B @10 B/cyc = 2 cyc + 16 latency = arrives 18 (cube 0,
	// no hops). DRAM row miss 110 -> 128. TSV: 64 B @4 = 16 + 4 = 148.
	// Response: 80 B @10 = 8 + 16 = done at 172.
	if done != 172 {
		t.Fatalf("read completed at %d, want 172", done)
	}
	if reg.Get("offchip.req.bytes") != 16 || reg.Get("offchip.res.bytes") != 80 {
		t.Fatalf("req/res bytes = %d/%d, want 16/80",
			reg.Get("offchip.req.bytes"), reg.Get("offchip.res.bytes"))
	}
}

func TestWritePacketSizes(t *testing.T) {
	k, ch, reg := newTestChain()
	completed := false
	ch.Write(64*3, func() { completed = true })
	k.Run()
	if !completed {
		t.Fatal("write never completed")
	}
	// Footnote 7: write consumes 80 B of request bandwidth; ack is a
	// bare header.
	if reg.Get("offchip.req.bytes") != 80 || reg.Get("offchip.res.bytes") != 16 {
		t.Fatalf("req/res bytes = %d/%d, want 80/16",
			reg.Get("offchip.req.bytes"), reg.Get("offchip.res.bytes"))
	}
}

func TestSecondCubePaysHopLatency(t *testing.T) {
	k, ch, _ := newTestChain()
	var c0, c1 sim.Cycle
	// Block 0 -> cube 0; block 1 -> cube 1 (interleaved).
	ch.Read(0, func() { c0 = k.Now() })
	k.Run()
	k2 := sim.NewKernel()
	ch2 := NewChain(k2, testConfig(), stats.NewRegistry())
	ch2.Read(64, func() { c1 = k2.Now() })
	k2.Run()
	if c1 != c0+2*8 { // one hop each direction
		t.Fatalf("cube1 read at %d, cube0 at %d; want +16", c1, c0)
	}
}

func TestVaultForMatchesMapping(t *testing.T) {
	_, ch, _ := newTestChain()
	m := testConfig().Mapping
	for blk := uint64(0); blk < 64; blk++ {
		a := blk * addr.BlockBytes
		v, loc := ch.VaultFor(a)
		want := m.Locate(a)
		if loc != want {
			t.Fatalf("VaultFor loc %+v, want %+v", loc, want)
		}
		if v.Index != want.Cube*m.VaultsPerCube+want.Vault {
			t.Fatalf("vault index %d wrong for %+v", v.Index, want)
		}
	}
}

func TestDeliverCustomPayloadAndResponse(t *testing.T) {
	k, ch, reg := newTestChain()
	var respDone bool
	// PIM-style packet: 8 B input operand, 9 B output (hash probe).
	ch.Deliver(128, CmdPEI, 3, make([]byte, 8), func(v *Vault, loc addr.Location, respond Responder) {
		respond(9, func() { respDone = true })
	})
	k.Run()
	if !respDone {
		t.Fatal("response never delivered")
	}
	if reg.Get("offchip.req.bytes") != 24 || reg.Get("offchip.res.bytes") != 25 {
		t.Fatalf("req/res = %d/%d, want 24/25",
			reg.Get("offchip.req.bytes"), reg.Get("offchip.res.bytes"))
	}
}

func TestPressureCountersAccumulateAndHalve(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.DispatchWindowCyc = 1000
	ch := NewChain(k, cfg, stats.NewRegistry())
	ch.Read(0, nil) // 1 req flit, 5 res flits
	k.RunUntil(500)
	if ch.ReqPressure() != 1 || ch.ResPressure() != 5 {
		t.Fatalf("pressure = %v/%v, want 1/5", ch.ReqPressure(), ch.ResPressure())
	}
	k.RunUntil(1500)
	if ch.ReqPressure() != 0.5 || ch.ResPressure() != 2.5 {
		t.Fatalf("halved pressure = %v/%v, want 0.5/2.5", ch.ReqPressure(), ch.ResPressure())
	}
}

func TestParallelVaultReads(t *testing.T) {
	k, ch, _ := newTestChain()
	done := 0
	// 8 reads across 8 distinct vaults: completion spread should be much
	// tighter than 8x a single read's DRAM latency.
	var last sim.Cycle
	for i := 0; i < 8; i++ {
		ch.Read(uint64(i*addr.BlockBytes), func() { done++; last = k.Now() })
	}
	k.Run()
	if done != 8 {
		t.Fatalf("done = %d, want 8", done)
	}
	if last > 400 {
		t.Fatalf("parallel reads finished at %d; vault parallelism broken", last)
	}
}

func TestOffchipBytesTotal(t *testing.T) {
	k, ch, _ := newTestChain()
	ch.Read(0, nil)
	ch.Write(64, nil)
	k.Run()
	if got := ch.OffchipBytes(); got != 16+80+80+16 {
		t.Fatalf("OffchipBytes = %d, want 192", got)
	}
}
