package hmc

import (
	"testing"

	"pimsim/internal/sim"
)

// Pool lifecycle tests for the chain and vault transaction free lists:
// a recycled transaction must carry no state from its previous life
// (the wire buffer keeps only its capacity), and releasing twice must
// panic instead of corrupting the free list.

func TestChainTxnPoolReuseCarriesNoStaleState(t *testing.T) {
	ch := &Chain{}
	tx := ch.getTxn()
	tx.addr = 0xdead
	tx.cmd = CmdPEI
	tx.hop = 7
	tx.user = sim.EventArg{N: 9}
	tx.done = sim.Call(func() {})
	tx.respBytes = 80
	tx.respDone = sim.Call(func() {})
	tx.wire = append(tx.wire[:0], 1, 2, 3, 4)
	tx.pkt = Packet{Cmd: CmdPEI, Payload: tx.wire}
	ch.putTxn(tx)

	got := ch.getTxn()
	if got != tx {
		t.Fatal("pool did not recycle the released transaction")
	}
	if got.ch != ch {
		t.Fatal("recycled transaction lost its owner")
	}
	if got.addr != 0 || got.cmd != 0 || got.hop != 0 || got.user != (sim.EventArg{}) ||
		got.done.H != nil || got.respBytes != 0 || got.respDone.H != nil ||
		got.visitor != nil || got.pkt.Payload != nil {
		t.Fatalf("recycled transaction carries stale state: %+v", got)
	}
	if len(got.wire) != 0 {
		t.Fatalf("recycled wire buffer still holds %d bytes", len(got.wire))
	}
	if cap(got.wire) == 0 {
		t.Fatal("recycled wire buffer lost its capacity")
	}
}

func TestChainTxnDoubleReleasePanics(t *testing.T) {
	ch := &Chain{}
	tx := ch.getTxn()
	ch.putTxn(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	ch.putTxn(tx)
}

func TestVaultTxnDoubleReleasePanics(t *testing.T) {
	v := &Vault{}
	tx := v.getTxn()
	v.putTxn(tx)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	v.putTxn(tx)
}
