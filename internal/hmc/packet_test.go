package hmc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Cmd:     CmdPEI,
		Subcmd:  3,
		Tag:     0xBEEF,
		Addr:    0x1234_5678_9A40,
		Seq:     77,
		Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != p.WireSize() {
		t.Fatalf("wire %d bytes, WireSize %d", len(wire), p.WireSize())
	}
	if len(wire) != HeaderBytes+8+TailBytes {
		t.Fatalf("wire size %d, want 24", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != p.Cmd || got.Subcmd != p.Subcmd || got.Addr != p.Addr || got.Seq != p.Seq {
		t.Fatalf("decode mismatch: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %v vs %v", got.Payload, p.Payload)
	}
}

func TestPacketEmptyPayload(t *testing.T) {
	p := &Packet{Cmd: CmdRead, Addr: 0x40}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 16 {
		t.Fatalf("read request %d bytes, want 16 (header+tail)", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil || got.Addr != 0x40 {
		t.Fatalf("decode: %+v", got)
	}
}

func TestPacketCRCDetectsCorruption(t *testing.T) {
	p := &Packet{Cmd: CmdWrite, Addr: 0x1000, Payload: make([]byte, 64)}
	wire, _ := p.Encode()
	for _, flip := range []int{0, 5, HeaderBytes + 3, len(wire) - 3} {
		bad := append([]byte(nil), wire...)
		bad[flip] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", flip)
		}
	}
}

func TestPacketRejectsOversizePayload(t *testing.T) {
	p := &Packet{Cmd: CmdWrite, Payload: make([]byte, 300)}
	if _, err := p.Encode(); err == nil {
		t.Fatal("expected payload-size error")
	}
}

func TestPacketRejectsHugeAddress(t *testing.T) {
	p := &Packet{Cmd: CmdRead, Addr: 1 << 50}
	if _, err := p.Encode(); err == nil {
		t.Fatal("expected address-range error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestCommandStrings(t *testing.T) {
	if CmdPEI.String() != "PEI" || CmdRead.String() != "READ" {
		t.Fatal("command names wrong")
	}
	if Command(99).String() == "" {
		t.Fatal("unknown command must still format")
	}
}

// Property: encode/decode round-trips arbitrary packets.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(cmd uint8, sub uint8, tag uint16, a uint64, seq uint32, payload []byte) bool {
		if len(payload) > 255 {
			payload = payload[:255]
		}
		p := &Packet{
			Cmd: Command(cmd % 5), Subcmd: sub, Tag: tag,
			Addr: a & (1<<48 - 1), Seq: seq, Payload: payload,
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return got.Payload == nil && got.Addr == p.Addr && got.Seq == p.Seq
		}
		return bytes.Equal(got.Payload, payload) && got.Addr == p.Addr &&
			got.Cmd == p.Cmd && got.Subcmd == p.Subcmd && got.Seq == p.Seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
