package hmc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The HMC link protocol (§2.1, §4.2): communication between the host
// and cubes is packetized — an 8-byte header, an optional payload, and
// an 8-byte tail carrying a CRC and sequence number. This codec defines
// the wire format, including the PEI extension commands the paper adds
// to the protocol ("it is relatively easy to add such commands because
// communication ... is based on a packet-based abstract protocol").
// The chain encodes every request at the host and decodes it at the
// vault, so framing overhead and payload sizes on the links are real,
// not estimated.

// Command is the packet command field.
type Command uint8

const (
	// CmdRead and CmdWrite are ordinary block transfers.
	CmdRead Command = iota
	CmdWrite
	// CmdAtomic covers the HMC 2.0-style native atomics (footnote 1).
	CmdAtomic
	// CmdPEI is the paper's extension: execute a PIM operation at the
	// target vault's PCU. The PEI opcode rides in the Subcmd field and
	// the input operand in the payload.
	CmdPEI
	// CmdResponse carries read data / PEI output operands back.
	CmdResponse
)

func (c Command) String() string {
	switch c {
	case CmdRead:
		return "READ"
	case CmdWrite:
		return "WRITE"
	case CmdAtomic:
		return "ATOMIC"
	case CmdPEI:
		return "PEI"
	case CmdResponse:
		return "RESPONSE"
	default:
		//peilint:allow hotalloc diagnostic stringer for unknown commands; not on the event path
		return fmt.Sprintf("CMD(%d)", uint8(c))
	}
}

// Packet is one link packet.
type Packet struct {
	Cmd    Command
	Subcmd uint8 // PEI opcode for CmdPEI
	Tag    uint16
	Addr   uint64
	// Payload is the write data or PEI operand (nil for reads).
	Payload []byte
	Seq     uint32
}

// HeaderBytes and TailBytes give the framing overhead; a packet's wire
// size is HeaderBytes + len(Payload) + TailBytes (= the 16-byte
// PacketHeaderBytes of the machine config plus payload).
const (
	HeaderBytes = 8
	TailBytes   = 8
)

// WireSize reports the packet's size on the link.
func (p *Packet) WireSize() int { return HeaderBytes + len(p.Payload) + TailBytes }

// Encode serializes the packet into a fresh buffer. Layout:
//
//	header: cmd u8 | subcmd u8 | tag u16 | addr u48 (low 6 bytes)
//	payload bytes
//	tail:   seq u32 | crc32(header+payload) u32
func (p *Packet) Encode() ([]byte, error) {
	return p.EncodeTo(nil)
}

// EncodeTo serializes the packet into dst's storage, growing it only
// when the capacity is insufficient; hot paths pass a recycled buffer
// (sliced to zero length) so steady-state encoding allocates nothing.
func (p *Packet) EncodeTo(dst []byte) ([]byte, error) {
	if len(p.Payload) > 255 {
		//peilint:allow hotalloc malformed-packet error path; a failed encode aborts the run
		return nil, fmt.Errorf("hmc: payload %d bytes exceeds packet limit", len(p.Payload))
	}
	if p.Addr >= 1<<48 {
		//peilint:allow hotalloc malformed-packet error path; a failed encode aborts the run
		return nil, fmt.Errorf("hmc: address %#x exceeds 48-bit packet field", p.Addr)
	}
	n := HeaderBytes + len(p.Payload) + TailBytes
	var buf []byte
	if cap(dst) >= n {
		buf = dst[:n]
		for i := range buf {
			buf[i] = 0
		}
	} else {
		buf = make([]byte, n)
	}
	buf[0] = byte(p.Cmd)
	buf[1] = p.Subcmd
	binary.LittleEndian.PutUint16(buf[2:], p.Tag)
	// 48-bit address in bytes 4..9 overlaps the payload start; pack the
	// low 4 bytes in the header and the high 2 into the tag's spare
	// space — instead keep it simple: 6 address bytes at 2..8 would
	// collide with tag. Use: tag at 2..4, addr low 4 at 4..8.
	binary.LittleEndian.PutUint32(buf[4:], uint32(p.Addr))
	copy(buf[HeaderBytes:], p.Payload)
	tail := buf[HeaderBytes+len(p.Payload):]
	binary.LittleEndian.PutUint32(tail[0:], p.Seq)
	// The high 16 address bits ride in the tail alongside the sequence
	// number (real HMC splits fields across header and tail too).
	binary.LittleEndian.PutUint16(tail[4:], uint16(p.Addr>>32))
	crc := crc32.ChecksumIEEE(buf[:HeaderBytes+len(p.Payload)+6])
	binary.LittleEndian.PutUint16(tail[6:], uint16(crc))
	return buf, nil
}

// Decode parses and verifies a packet, copying the payload out of buf.
func Decode(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, buf); err != nil {
		return nil, err
	}
	if len(p.Payload) > 0 {
		p.Payload = append([]byte(nil), p.Payload...)
	}
	return p, nil
}

// DecodeInto parses and verifies a packet into p without allocating:
// p.Payload aliases buf, so the result is only valid while buf is. Hot
// paths decode into a recycled scratch Packet.
func DecodeInto(p *Packet, buf []byte) error {
	if len(buf) < HeaderBytes+TailBytes {
		//peilint:allow hotalloc corrupt-packet error path; a failed decode aborts the run
		return fmt.Errorf("hmc: packet truncated (%d bytes)", len(buf))
	}
	payloadLen := len(buf) - HeaderBytes - TailBytes
	tail := buf[HeaderBytes+payloadLen:]
	wantCRC := binary.LittleEndian.Uint16(tail[6:])
	gotCRC := uint16(crc32.ChecksumIEEE(buf[:HeaderBytes+payloadLen+6]))
	if wantCRC != gotCRC {
		//peilint:allow hotalloc corrupt-packet error path; a failed decode aborts the run
		return fmt.Errorf("hmc: CRC mismatch (%#x != %#x)", gotCRC, wantCRC)
	}
	*p = Packet{
		Cmd:    Command(buf[0]),
		Subcmd: buf[1],
		Tag:    binary.LittleEndian.Uint16(buf[2:]),
		Addr: uint64(binary.LittleEndian.Uint32(buf[4:])) |
			uint64(binary.LittleEndian.Uint16(tail[4:]))<<32,
		Seq: binary.LittleEndian.Uint32(tail[0:]),
	}
	if payloadLen > 0 {
		p.Payload = buf[HeaderBytes : HeaderBytes+payloadLen]
	}
	return nil
}
