// Package hmc models the 3D-stacked memory system: Hybrid Memory Cubes
// composed of vaults (vertical DRAM partitions with a per-vault DRAM
// controller on the logic die and a TSV bundle to the DRAM dies), and the
// daisy-chained, packetized off-chip links connecting the host to the
// cubes. Request and response directions are separate channels, which is
// what makes the paper's balanced-dispatch optimization (§7.4) possible.
package hmc

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/dram"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Vault is one vertical DRAM partition plus its logic-die controller.
type Vault struct {
	k         *sim.Kernel
	cTSVBytes stats.Handle
	Ctrl      *dram.Controller
	// TSV is the vertical link between the logic die and the DRAM dies;
	// every block moved between a vault PCU (or the link interface) and
	// DRAM crosses it.
	TSV *sim.Link
	// Index is the global vault number (cube*vaultsPerCube + vault).
	Index int
}

// ReadBlock fetches one 64-byte block from DRAM to the logic die: DRAM
// access followed by a TSV transfer.
func (v *Vault) ReadBlock(loc addr.Location, done func()) {
	v.cTSVBytes.Add(addr.BlockBytes)
	v.Ctrl.Enqueue(&dram.Request{
		Bank: loc.Bank,
		Row:  loc.Row,
		Done: func() { v.TSV.Send(addr.BlockBytes, done) },
	})
}

// WriteBlock stores one block from the logic die into DRAM: TSV transfer
// followed by the DRAM write.
func (v *Vault) WriteBlock(loc addr.Location, done func()) {
	v.cTSVBytes.Add(addr.BlockBytes)
	v.TSV.Send(addr.BlockBytes, func() {
		v.Ctrl.Enqueue(&dram.Request{
			Bank:  loc.Bank,
			Row:   loc.Row,
			Write: true,
			Done:  done,
		})
	})
}

// Cube is one HMC package.
type Cube struct {
	Index  int
	Vaults []*Vault
}

// Config carries the parameters the chain needs; it is a subset of the
// machine config to keep this package free of higher-level imports.
type Config struct {
	Mapping           addr.Mapping
	Timing            dram.Timing
	LinkBytesPerCycle float64
	LinkLatency       sim.Cycle
	HopLatency        sim.Cycle
	TSVBytesPerCycle  float64
	TSVLatency        sim.Cycle
	PacketHeaderBytes int
	// DispatchWindowCyc is the halving period for the request/response
	// pressure counters (0 disables tracking).
	DispatchWindowCyc sim.Cycle
}

// Chain is the host-side view of the daisy-chained memory system: one
// request link and one response link shared by all cubes, plus the cubes
// themselves.
type Chain struct {
	k     *sim.Kernel
	cfg   Config
	Req   *sim.Link
	Res   *sim.Link
	Cubes []*Cube

	// Per-packet byte/packet counters, resolved once at construction.
	cReqBytes, cReqPackets stats.Handle
	cResBytes, cResPackets stats.Handle

	// cReq/cRes are the paper's C_req/C_res flit counters, halved every
	// DispatchWindowCyc to form an exponential moving average. Decay is
	// applied lazily (on read and update) so an idle simulation can
	// drain its event queue.
	cReq, cRes float64
	lastDecay  sim.Cycle
	seq        uint32
}

// NewChain builds the memory system described by cfg.
func NewChain(k *sim.Kernel, cfg Config, reg *stats.Registry) *Chain {
	ch := &Chain{
		k:           k,
		cfg:         cfg,
		Req:         sim.NewLink(k, cfg.LinkBytesPerCycle, cfg.LinkLatency),
		Res:         sim.NewLink(k, cfg.LinkBytesPerCycle, cfg.LinkLatency),
		cReqBytes:   reg.Counter("offchip.req.bytes"),
		cReqPackets: reg.Counter("offchip.req.packets"),
		cResBytes:   reg.Counter("offchip.res.bytes"),
		cResPackets: reg.Counter("offchip.res.packets"),
	}
	tsvBytes := reg.Counter("tsv.bytes")
	for c := 0; c < cfg.Mapping.Cubes; c++ {
		cube := &Cube{Index: c}
		for v := 0; v < cfg.Mapping.VaultsPerCube; v++ {
			idx := c*cfg.Mapping.VaultsPerCube + v
			vault := &Vault{
				k:         k,
				cTSVBytes: tsvBytes,
				Ctrl:      dram.NewController(k, cfg.Mapping.BanksPerVault, cfg.Timing, reg, "dram."),
				TSV:       sim.NewLink(k, cfg.TSVBytesPerCycle, cfg.TSVLatency),
				Index:     idx,
			}
			cube.Vaults = append(cube.Vaults, vault)
		}
		ch.Cubes = append(ch.Cubes, cube)
	}
	return ch
}

// decayPressure applies any halvings that have elapsed since the last
// update.
func (ch *Chain) decayPressure() {
	w := ch.cfg.DispatchWindowCyc
	if w <= 0 {
		return
	}
	now := ch.k.Now()
	for ch.lastDecay+w <= now {
		ch.cReq /= 2
		ch.cRes /= 2
		ch.lastDecay += w
		if ch.cReq == 0 && ch.cRes == 0 {
			// Skip ahead; nothing left to decay.
			n := (now - ch.lastDecay) / w
			ch.lastDecay += n * w
			break
		}
	}
}

// VaultFor returns the vault owning address a.
func (ch *Chain) VaultFor(a uint64) (*Vault, addr.Location) {
	loc := ch.cfg.Mapping.Locate(a)
	return ch.Cubes[loc.Cube].Vaults[loc.Vault], loc
}

// ReqPressure and ResPressure expose the moving-average flit counters
// used by balanced dispatch.
func (ch *Chain) ReqPressure() float64 { ch.decayPressure(); return ch.cReq }
func (ch *Chain) ResPressure() float64 { ch.decayPressure(); return ch.cRes }

// Responder sends a response packet of respBytes payload (header added)
// back to the host and runs done on delivery.
type Responder func(respBytes int, done func())

// zeroBlock backs the payload field of data packets; functional values
// live in the memlayout store, so link payloads carry placeholder bytes
// of the correct size.
var zeroBlock [addr.BlockBytes]byte

// Deliver sends a request packet to the vault owning address a, then
// invokes atVault on arrival with the vault, its location, and a
// Responder for the reply. The request is genuinely encoded at the host
// and decoded (CRC-checked) at the vault, so packet framing on the link
// is the wire format's, not an estimate; per-cube hop latency applies in
// each direction. Byte counts land in the shared registry under
// offchip.req/res.
func (ch *Chain) Deliver(a uint64, cmd Command, subcmd uint8, payload []byte, atVault func(v *Vault, loc addr.Location, respond Responder)) {
	v, loc := ch.VaultFor(a)
	ch.seq++
	pkt := &Packet{Cmd: cmd, Subcmd: subcmd, Addr: a, Seq: ch.seq, Payload: payload}
	wire, err := pkt.Encode()
	if err != nil {
		panic(err)
	}
	reqBytes := len(wire)
	hop := ch.cfg.HopLatency * sim.Cycle(loc.Cube)
	ch.decayPressure()
	ch.cReq += float64((reqBytes + sim.FlitBytes - 1) / sim.FlitBytes)
	ch.cReqBytes.Add(int64(reqBytes))
	ch.cReqPackets.Inc()
	ch.Req.Send(reqBytes, func() {
		ch.k.Schedule(hop, func() {
			got, err := Decode(wire)
			if err != nil || got.Addr != a || got.Cmd != cmd {
				panic(fmt.Sprintf("hmc: packet corrupted in transit: %v (addr %#x cmd %v)", err, a, cmd))
			}
			atVault(v, loc, func(respBytes int, done func()) {
				total := ch.cfg.PacketHeaderBytes + respBytes
				ch.decayPressure()
				ch.cRes += float64((total + sim.FlitBytes - 1) / sim.FlitBytes)
				ch.cResBytes.Add(int64(total))
				ch.cResPackets.Inc()
				ch.k.Schedule(hop, func() {
					ch.Res.Send(total, done)
				})
			})
		})
	})
}

// Read performs a normal cache-block fill from memory: 16 B request,
// DRAM read, 64 B + header response.
func (ch *Chain) Read(a uint64, done func()) {
	ch.Deliver(a, CmdRead, 0, nil, func(v *Vault, loc addr.Location, respond Responder) {
		v.ReadBlock(loc, func() { respond(addr.BlockBytes, done) })
	})
}

// Write performs a block writeback to memory: header + 64 B request,
// DRAM write, header-only acknowledgement. done (which may be nil) runs
// when the write is restored in DRAM, not when the ack returns, matching
// posted-write semantics.
func (ch *Chain) Write(a uint64, done func()) {
	ch.Deliver(a, CmdWrite, 0, zeroBlock[:], func(v *Vault, loc addr.Location, respond Responder) {
		v.WriteBlock(loc, func() {
			if done != nil {
				done()
			}
			respond(0, nil)
		})
	})
}

// OffchipBytes reports total bytes moved over the chain in both
// directions, the quantity Figure 7 normalizes.
func (ch *Chain) OffchipBytes() int64 {
	return ch.cReqBytes.Get() + ch.cResBytes.Get()
}
