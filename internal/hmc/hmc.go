// Package hmc models the 3D-stacked memory system: Hybrid Memory Cubes
// composed of vaults (vertical DRAM partitions with a per-vault DRAM
// controller on the logic die and a TSV bundle to the DRAM dies), and the
// daisy-chained, packetized off-chip links connecting the host to the
// cubes. Request and response directions are separate channels, which is
// what makes the paper's balanced-dispatch optimization (§7.4) possible.
package hmc

import (
	"fmt"
	"math"

	"pimsim/internal/addr"
	"pimsim/internal/dram"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Vault is one vertical DRAM partition plus its logic-die controller.
// Under the PDES kernel each vault is its own partition: sched is the
// partition's scheduler, reqSink carries host-to-vault link deliveries
// in, and hostSink carries response-link posts back out. Under the
// sequential kernel all three are the one global kernel.
type Vault struct {
	sched     sim.Scheduler
	reqSink   sim.EventSink
	hostSink  sim.EventSink
	cTSVBytes stats.Handle
	Ctrl      *dram.Controller
	// TSV is the vertical link between the logic die and the DRAM dies;
	// every block moved between a vault PCU (or the link interface) and
	// DRAM crosses it.
	TSV *sim.Link
	// Index is the global vault number (cube*vaultsPerCube + vault).
	Index int

	// respSeq numbers this vault's responses; together with the vault
	// index it forms the canonical key that orders same-cycle response
	// arrivals at the host (see Chain.flushResponses).
	respSeq uint32

	free []*vaultTxn //peilint:allow snapcomplete pool of recycled block-transfer transactions: capacity, not state
}

// Scheduler returns the scheduler of the partition the vault lives in;
// vault-side components (the vault PCUs) must schedule on it.
func (v *Vault) Scheduler() sim.Scheduler { return v.sched }

// vaultTxn threads one block transfer through its two timed legs (DRAM
// access and TSV crossing). The vault owns the pool; the transaction is
// released inside its final stage.
type vaultTxn struct {
	v    *Vault
	bank int
	row  uint64
	done sim.Cont
}

const (
	// vaultStageTSVOut: a read's DRAM access finished; ship the block
	// across the TSVs to the logic die, then hand off to done.
	vaultStageTSVOut = iota
	// vaultStageDRAMWrite: a write's block arrived over the TSVs;
	// enqueue the DRAM write, with done riding on its completion.
	vaultStageDRAMWrite
)

func (t *vaultTxn) OnEvent(arg sim.EventArg) {
	v, done := t.v, t.done
	switch arg.N {
	case vaultStageTSVOut:
		v.putTxn(t)
		v.TSV.SendEvent(addr.BlockBytes, done.H, done.Arg)
	default:
		bank, row := t.bank, t.row
		v.putTxn(t)
		v.Ctrl.EnqueueEvent(bank, row, true, done)
	}
}

func (v *Vault) getTxn() *vaultTxn {
	if n := len(v.free); n > 0 {
		t := v.free[n-1]
		v.free = v.free[:n-1]
		t.v = v
		return t
	}
	return &vaultTxn{v: v}
}

// putTxn recycles a finished transaction; the nil v field marks it free
// so a double release panics instead of corrupting the pool.
func (v *Vault) putTxn(t *vaultTxn) {
	if t.v == nil {
		panic("hmc: vault transaction double-released")
	}
	*t = vaultTxn{}
	v.free = append(v.free, t)
}

// ReadBlock fetches one 64-byte block from DRAM to the logic die: DRAM
// access followed by a TSV transfer. Closure form of ReadBlockEvent.
func (v *Vault) ReadBlock(loc addr.Location, done func()) {
	v.ReadBlockEvent(loc, sim.Call(done))
}

// ReadBlockEvent fetches one 64-byte block from DRAM to the logic die
// (DRAM access, then a TSV transfer) and invokes done on completion.
func (v *Vault) ReadBlockEvent(loc addr.Location, done sim.Cont) {
	v.cTSVBytes.Add(addr.BlockBytes)
	t := v.getTxn()
	t.done = done
	v.Ctrl.EnqueueEvent(loc.Bank, loc.Row, false, sim.Cont{H: t, Arg: sim.EventArg{N: vaultStageTSVOut}})
}

// WriteBlock stores one block from the logic die into DRAM: TSV transfer
// followed by the DRAM write. Closure form of WriteBlockEvent.
func (v *Vault) WriteBlock(loc addr.Location, done func()) {
	v.WriteBlockEvent(loc, sim.Call(done))
}

// WriteBlockEvent stores one block from the logic die into DRAM (TSV
// transfer, then the DRAM write) and invokes done when the write has
// been restored.
func (v *Vault) WriteBlockEvent(loc addr.Location, done sim.Cont) {
	v.cTSVBytes.Add(addr.BlockBytes)
	t := v.getTxn()
	t.bank = loc.Bank
	t.row = loc.Row
	t.done = done
	v.TSV.SendEvent(addr.BlockBytes, t, sim.EventArg{N: vaultStageDRAMWrite})
}

// Cube is one HMC package.
type Cube struct {
	Index  int
	Vaults []*Vault
}

// Config carries the parameters the chain needs; it is a subset of the
// machine config to keep this package free of higher-level imports.
type Config struct {
	Mapping           addr.Mapping
	Timing            dram.Timing
	LinkBytesPerCycle float64
	LinkLatency       sim.Cycle
	HopLatency        sim.Cycle
	TSVBytesPerCycle  float64
	TSVLatency        sim.Cycle
	PacketHeaderBytes int
	// DispatchWindowCyc is the halving period for the request/response
	// pressure counters (0 disables tracking).
	DispatchWindowCyc sim.Cycle

	// Partition wiring for the PDES kernel; all nil in sequential runs,
	// in which case every vault schedules on the chain's own kernel and
	// "posts" are plain insertions into the one global queue. VaultSched
	// and VaultSink give global vault v's partition scheduler and its
	// host-to-vault mailbox; HostSink gives vault v's vault-to-host
	// mailbox; VaultReg gives the per-partition stats shard vault-side
	// counters write into (merged into the main registry after the run).
	VaultSched func(vault int) sim.Scheduler
	VaultSink  func(vault int) sim.EventSink
	HostSink   func(vault int) sim.EventSink
	VaultReg   func(vault int) *stats.Registry
}

// Chain is the host-side view of the daisy-chained memory system: one
// request link and one response link shared by all cubes, plus the cubes
// themselves.
//
// The request link is sender-arbitrated at the host; the response link
// is a shared channel with many senders (every vault), so it is
// receiver-arbitrated: responses propagate to the host end first (cube
// hops plus link latency, modeled vault-side) and serialize on arrival.
// Same-cycle arrivals are ordered by the canonical (vault, response
// sequence) key, which makes the response path deterministic under the
// PDES kernel's epoch merges and identical under the sequential one.
type Chain struct {
	k     sim.Scheduler
	cfg   Config
	Req   *sim.Link
	Cubes []*Cube

	// Per-packet byte/packet counters, resolved once at construction.
	cReqBytes, cReqPackets stats.Handle
	cResBytes, cResPackets stats.Handle

	// Response-link serialization state (host side). ResBusy accumulates
	// occupied cycles like Link.Busy does for the request direction.
	resNextFree sim.Cycle
	ResBusy     sim.Cycle

	// batch collects response packets that reached the host end on the
	// same cycle, awaiting canonical ordering; it is flushed lazily by
	// the next arrival and, failing that, by a guard event one cycle
	// later (see Chain.OnEvent).
	batch      []*Txn
	batchCycle sim.Cycle //peilint:allow snapcomplete meaningful only while batch is non-empty, which quiescence forbids on both sides

	// cReq/cRes are the paper's C_req/C_res flit counters, halved every
	// DispatchWindowCyc to form an exponential moving average. Decay is
	// applied lazily (on read and update) so an idle simulation can
	// drain its event queue.
	cReq, cRes float64
	lastDecay  sim.Cycle
	seq        uint32

	free []*Txn //peilint:allow snapcomplete pool of recycled link transactions (wire buffers ride along): capacity, not state
}

// NewChain builds the memory system described by cfg. k is the host
// partition's scheduler (the one global kernel in sequential runs).
func NewChain(k sim.Scheduler, cfg Config, reg *stats.Registry) *Chain {
	ch := &Chain{
		k:           k,
		cfg:         cfg,
		Req:         sim.NewLink(k, cfg.LinkBytesPerCycle, cfg.LinkLatency),
		cReqBytes:   reg.Counter("offchip.req.bytes"),
		cReqPackets: reg.Counter("offchip.req.packets"),
		cResBytes:   reg.Counter("offchip.res.bytes"),
		cResPackets: reg.Counter("offchip.res.packets"),
	}
	for c := 0; c < cfg.Mapping.Cubes; c++ {
		cube := &Cube{Index: c}
		for v := 0; v < cfg.Mapping.VaultsPerCube; v++ {
			idx := c*cfg.Mapping.VaultsPerCube + v
			sched := sim.Scheduler(k)
			if cfg.VaultSched != nil {
				sched = cfg.VaultSched(idx)
			}
			// Off-chip link deliveries use the early lane so their
			// order against same-cycle partition-local events is the
			// same fixed rule under both kernels (DESIGN.md §12).
			reqSink := sched.EarlySink()
			if cfg.VaultSink != nil {
				reqSink = cfg.VaultSink(idx)
			}
			hostSink := k.EarlySink()
			if cfg.HostSink != nil {
				hostSink = cfg.HostSink(idx)
			}
			vreg := reg
			if cfg.VaultReg != nil {
				vreg = cfg.VaultReg(idx)
			}
			vault := &Vault{
				sched:     sched,
				reqSink:   reqSink,
				hostSink:  hostSink,
				cTSVBytes: vreg.Counter("tsv.bytes"),
				Ctrl:      dram.NewController(sched, cfg.Mapping.BanksPerVault, cfg.Timing, vreg, "dram."),
				TSV:       sim.NewLink(sched, cfg.TSVBytesPerCycle, cfg.TSVLatency),
				Index:     idx,
			}
			cube.Vaults = append(cube.Vaults, vault)
		}
		ch.Cubes = append(ch.Cubes, cube)
	}
	return ch
}

// decayPressure applies any halvings that have elapsed since the last
// update.
func (ch *Chain) decayPressure() {
	w := ch.cfg.DispatchWindowCyc
	if w <= 0 {
		return
	}
	now := ch.k.Now()
	for ch.lastDecay+w <= now {
		ch.cReq /= 2
		ch.cRes /= 2
		ch.lastDecay += w
		if ch.cReq == 0 && ch.cRes == 0 {
			// Skip ahead; nothing left to decay.
			n := (now - ch.lastDecay) / w
			ch.lastDecay += n * w
			break
		}
	}
}

// VaultAt returns the vault with global index v.
func (ch *Chain) VaultAt(v int) *Vault {
	per := ch.cfg.Mapping.VaultsPerCube
	return ch.Cubes[v/per].Vaults[v%per]
}

// VaultFor returns the vault owning address a.
func (ch *Chain) VaultFor(a uint64) (*Vault, addr.Location) {
	loc := ch.cfg.Mapping.Locate(a)
	return ch.Cubes[loc.Cube].Vaults[loc.Vault], loc
}

// ReqPressure and ResPressure expose the moving-average flit counters
// used by balanced dispatch.
func (ch *Chain) ReqPressure() float64 { ch.decayPressure(); return ch.cReq }
func (ch *Chain) ResPressure() float64 { ch.decayPressure(); return ch.cRes }

// Responder sends a response packet of respBytes payload (header added)
// back to the host and runs done on delivery.
type Responder func(respBytes int, done func())

// VaultVisitor receives a delivered request at the target vault. The
// visitor reads the transaction (vault, location, user argument) and
// must eventually call Txn.Respond exactly once to route the reply back
// and release the transaction.
type VaultVisitor interface {
	AtVault(t *Txn)
}

// zeroBlock backs the payload field of data packets; functional values
// live in the memlayout store, so link payloads carry placeholder bytes
// of the correct size.
var zeroBlock [addr.BlockBytes]byte

// Txn is one in-flight request/response transaction on the chain: it
// carries the encoded wire image across the request link and the cube
// hops, hands itself to the visitor at the vault, and routes the reply
// over the response link. Transactions are pooled by the chain (the
// wire buffer's capacity is recycled with them); the chain releases the
// transaction when the response enters the response link.
type Txn struct {
	ch      *Chain
	v       *Vault
	loc     addr.Location
	addr    uint64
	cmd     Command
	hop     sim.Cycle
	visitor VaultVisitor
	user    sim.EventArg
	done    sim.Cont // chain-level completion for Read/Write commands

	respBytes int
	respDone  sim.Cont
	// rkey is the canonical response-arbitration key, assigned when the
	// response is issued at the vault: vault index in the high bits, the
	// vault's response sequence in the low bits. Same-cycle arrivals at
	// the host serialize in rkey order.
	rkey uint64

	wire []byte // encoded request; capacity reused across transactions
	pkt  Packet // encode/decode scratch (payload aliases wire after decode)
}

// Vault returns the target vault; Loc its DRAM location; User the
// caller-supplied argument passed to DeliverEvent.
func (t *Txn) Vault() *Vault      { return t.v }
func (t *Txn) Loc() addr.Location { return t.loc }
func (t *Txn) User() sim.EventArg { return t.user }

const (
	// chainStageHopIn: the request left the shared link; cube-hop
	// latency to the target cube comes next.
	chainStageHopIn = iota
	// chainStageAtVault: decode (CRC-check) the request and hand it to
	// the visitor or the built-in read/write handling.
	chainStageAtVault
	// chainStageHopOut: the response finished its cube hops; propagate
	// across the link to the host end (the response direction is
	// receiver-arbitrated, so serialization happens on arrival).
	chainStageHopOut
	// chainStageResArrive: the response reached the host end of the
	// link; join the current cycle's arbitration batch.
	chainStageResArrive
	// chainStageBlockRead: a CmdRead's vault access finished; respond
	// with the block.
	chainStageBlockRead
	// chainStageBlockWritten: a CmdWrite's DRAM write restored; the
	// completion notification rides the header-only ack back to the
	// host (the host cannot observe the restore any earlier).
	chainStageBlockWritten
)

func (t *Txn) OnEvent(arg sim.EventArg) {
	switch arg.N {
	case chainStageHopIn:
		t.v.sched.ScheduleEvent(t.hop, t, sim.EventArg{N: chainStageAtVault})
	case chainStageAtVault:
		err := DecodeInto(&t.pkt, t.wire)
		if err != nil || t.pkt.Addr != t.addr || t.pkt.Cmd != t.cmd {
			panic(fmt.Sprintf("hmc: packet corrupted in transit: %v (addr %#x cmd %v)", err, t.addr, t.cmd))
		}
		switch {
		case t.visitor != nil:
			t.visitor.AtVault(t)
		case t.cmd == CmdRead:
			t.v.ReadBlockEvent(t.loc, sim.Cont{H: t, Arg: sim.EventArg{N: chainStageBlockRead}})
		case t.cmd == CmdWrite:
			t.v.WriteBlockEvent(t.loc, sim.Cont{H: t, Arg: sim.EventArg{N: chainStageBlockWritten}})
		default:
			panic("hmc: request delivered with no visitor")
		}
	case chainStageHopOut:
		v := t.v
		v.hostSink.PostEvent(v.sched.Now()+t.ch.cfg.LinkLatency, t, sim.EventArg{N: chainStageResArrive})
	case chainStageResArrive:
		t.ch.resArrive(t)
	case chainStageBlockRead:
		t.Respond(addr.BlockBytes, t.done)
	default: // chainStageBlockWritten
		t.Respond(0, t.done)
	}
}

// Respond sends a response packet of respBytes payload (header added)
// back to the host, invoking done on delivery, and schedules the
// transaction's release. It must be called exactly once per delivered
// transaction. Respond runs vault-side: it assigns the canonical
// arbitration key and starts the cube hops; traffic and pressure
// accounting happen at the host when the packet arrives.
func (t *Txn) Respond(respBytes int, done sim.Cont) {
	v := t.v
	t.respBytes = t.ch.cfg.PacketHeaderBytes + respBytes
	t.respDone = done
	v.respSeq++
	t.rkey = uint64(v.Index)<<32 | uint64(v.respSeq)
	v.sched.ScheduleEvent(t.hop, t, sim.EventArg{N: chainStageHopOut})
}

// resArrive joins a response packet to the current cycle's arbitration
// batch at the host end of the response link. The first packet of a
// cycle schedules a guard flush one cycle later; a packet arriving on a
// later cycle flushes eagerly. Same-cycle arrivals therefore always
// serialize together, in canonical order, whichever path flushes them.
func (ch *Chain) resArrive(t *Txn) {
	now := ch.k.Now()
	if len(ch.batch) > 0 && ch.batchCycle != now {
		ch.flushResponses()
	}
	if len(ch.batch) == 0 {
		ch.batchCycle = now
		ch.k.AtEvent(now+1, ch, sim.EventArg{N: now})
	}
	ch.batch = append(ch.batch, t)
}

// OnEvent is the guard flush: arg.N carries the batch cycle it guards,
// so a batch already flushed by a later arrival (which reuses the batch
// slice for a new cycle) is left alone.
func (ch *Chain) OnEvent(arg sim.EventArg) {
	if len(ch.batch) > 0 && ch.batchCycle == arg.N {
		ch.flushResponses()
	}
}

// flushResponses serializes the batched same-cycle arrivals onto the
// host end of the response link in canonical (vault, sequence) order,
// accounting traffic and pressure and delivering each completion when
// its serialization slot ends. Propagation was already paid before
// arrival, so no further latency is added. The canonical sort makes the
// response path independent of event-queue tie order, which is what
// keeps the sequential and PDES kernels bit-identical.
func (ch *Chain) flushResponses() {
	batch := ch.batch
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j-1].rkey > batch[j].rkey; j-- {
			batch[j-1], batch[j] = batch[j], batch[j-1]
		}
	}
	start := ch.batchCycle
	if ch.resNextFree > start {
		start = ch.resNextFree
	}
	for _, t := range batch {
		total, done := t.respBytes, t.respDone
		occ := sim.Cycle(math.Ceil(float64(total) / ch.cfg.LinkBytesPerCycle))
		end := start + occ
		ch.resNextFree = end
		ch.ResBusy += occ
		ch.decayPressure()
		ch.cRes += float64((total + sim.FlitBytes - 1) / sim.FlitBytes)
		ch.cResBytes.Add(int64(total))
		ch.cResPackets.Inc()
		ch.putTxn(t)
		if done.H != nil {
			ch.k.AtEvent(end, done.H, done.Arg)
		}
		start = end
	}
	for i := range batch {
		batch[i] = nil
	}
	ch.batch = batch[:0]
}

func (ch *Chain) getTxn() *Txn {
	if n := len(ch.free); n > 0 {
		t := ch.free[n-1]
		ch.free = ch.free[:n-1]
		t.ch = ch
		return t
	}
	return &Txn{ch: ch}
}

// putTxn recycles a completed transaction, keeping its wire buffer's
// capacity; the nil ch field marks it free so a double release (e.g. a
// visitor calling Respond twice) panics.
func (ch *Chain) putTxn(t *Txn) {
	if t.ch == nil {
		panic("hmc: chain transaction double-released")
	}
	wire := t.wire[:0]
	*t = Txn{wire: wire}
	ch.free = append(ch.free, t)
}

// DeliverEvent sends a request packet to the vault owning address a.
// For CmdRead/CmdWrite with a nil visitor the chain performs the vault
// access itself and invokes done per Read/Write semantics; otherwise
// the visitor is invoked on arrival with the transaction (user rides
// along for its continuation state) and must call Txn.Respond. The
// request is genuinely encoded at the host and decoded (CRC-checked) at
// the vault, so packet framing on the link is the wire format's, not an
// estimate; per-cube hop latency applies in each direction. Byte counts
// land in the shared registry under offchip.req/res.
func (ch *Chain) DeliverEvent(a uint64, cmd Command, subcmd uint8, payload []byte, visitor VaultVisitor, user sim.EventArg, done sim.Cont) {
	v, loc := ch.VaultFor(a)
	ch.seq++
	t := ch.getTxn()
	t.v = v
	t.loc = loc
	t.addr = a
	t.cmd = cmd
	t.visitor = visitor
	t.user = user
	t.done = done
	t.pkt = Packet{Cmd: cmd, Subcmd: subcmd, Addr: a, Seq: ch.seq, Payload: payload}
	wire, err := t.pkt.EncodeTo(t.wire[:0])
	if err != nil {
		panic(err)
	}
	t.wire = wire
	reqBytes := len(wire)
	t.hop = ch.cfg.HopLatency * sim.Cycle(loc.Cube)
	ch.decayPressure()
	ch.cReq += float64((reqBytes + sim.FlitBytes - 1) / sim.FlitBytes)
	ch.cReqBytes.Add(int64(reqBytes))
	ch.cReqPackets.Inc()
	ch.Req.SendEventTo(v.reqSink, reqBytes, t, sim.EventArg{N: chainStageHopIn})
}

// visitFunc adapts the closure-based Deliver signature to VaultVisitor
// for cold callers and tests.
type visitFunc func(v *Vault, loc addr.Location, respond Responder)

func (f visitFunc) AtVault(t *Txn) {
	//peilint:allow hotalloc compatibility shim for closure-based Deliver; hot paths use DeliverEvent
	f(t.v, t.loc, func(respBytes int, done func()) {
		t.Respond(respBytes, sim.Call(done))
	})
}

// Deliver is the closure-based form of DeliverEvent: atVault receives
// the vault, its location, and a Responder for the reply.
func (ch *Chain) Deliver(a uint64, cmd Command, subcmd uint8, payload []byte, atVault func(v *Vault, loc addr.Location, respond Responder)) {
	ch.DeliverEvent(a, cmd, subcmd, payload, visitFunc(atVault), sim.EventArg{}, sim.Cont{})
}

// ReadEvent performs a normal cache-block fill from memory: 16 B
// request, DRAM read, 64 B + header response. done runs when the block
// arrives back at the host.
func (ch *Chain) ReadEvent(a uint64, done sim.Cont) {
	ch.DeliverEvent(a, CmdRead, 0, nil, nil, sim.EventArg{}, done)
}

// Read is the closure form of ReadEvent.
func (ch *Chain) Read(a uint64, done func()) {
	ch.ReadEvent(a, sim.Call(done))
}

// WriteEvent performs a block writeback to memory: header + 64 B
// request, DRAM write, header-only acknowledgement. done (which may be
// the zero Cont) runs when the write is restored in DRAM, not when the
// ack returns, matching posted-write semantics.
func (ch *Chain) WriteEvent(a uint64, done sim.Cont) {
	ch.DeliverEvent(a, CmdWrite, 0, zeroBlock[:], nil, sim.EventArg{}, done)
}

// Write is the closure form of WriteEvent.
func (ch *Chain) Write(a uint64, done func()) {
	ch.WriteEvent(a, sim.Call(done))
}

// OffchipBytes reports total bytes moved over the chain in both
// directions, the quantity Figure 7 normalizes.
func (ch *Chain) OffchipBytes() int64 {
	return ch.cReqBytes.Get() + ch.cResBytes.Get()
}
