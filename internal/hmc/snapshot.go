package hmc

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes one vault: its response-ordering sequence, the
// TSV link, and its DRAM controller. Transaction pools are recycling
// capacity only and are not serialized.
func (v *Vault) SnapshotTo(w *snap.Writer) {
	w.Section("VALT")
	w.U32(v.respSeq)
	v.TSV.SnapshotTo(w)
	v.Ctrl.SnapshotTo(w)
}

// RestoreFrom loads vault state saved by SnapshotTo.
func (v *Vault) RestoreFrom(r *snap.Reader) {
	r.Section("VALT")
	v.respSeq = r.U32()
	v.TSV.RestoreFrom(r)
	v.Ctrl.RestoreFrom(r)
}

// SnapshotTo serializes the chain: the request link, response-link
// serialization horizon and occupancy, the dispatch pressure averages
// with their decay anchor, the packet sequence number, and every vault.
// The response arbitration batch must be empty — a packet parked there
// means the host side has undelivered work and the machine is not
// quiescent.
func (ch *Chain) SnapshotTo(w *snap.Writer) {
	w.Section("CHN ")
	if len(ch.batch) != 0 {
		w.Fail(fmt.Errorf("%w: chain has %d responses awaiting arbitration", snap.ErrNotQuiescent, len(ch.batch)))
		return
	}
	ch.Req.SnapshotTo(w)
	w.I64(ch.resNextFree)
	w.I64(ch.ResBusy)
	w.F64(ch.cReq)
	w.F64(ch.cRes)
	w.I64(ch.lastDecay)
	w.U32(ch.seq)
	w.Int(len(ch.Cubes))
	for _, cube := range ch.Cubes {
		w.Int(len(cube.Vaults))
		for _, v := range cube.Vaults {
			v.SnapshotTo(w)
		}
	}
}

// RestoreFrom loads chain state saved by SnapshotTo into a chain of
// identical topology.
func (ch *Chain) RestoreFrom(r *snap.Reader) {
	r.Section("CHN ")
	if len(ch.batch) != 0 {
		r.Fail(fmt.Errorf("%w: restore target chain has %d responses awaiting arbitration", snap.ErrNotQuiescent, len(ch.batch)))
		return
	}
	ch.Req.RestoreFrom(r)
	ch.resNextFree = r.I64()
	ch.ResBusy = r.I64()
	ch.cReq = r.F64()
	ch.cRes = r.F64()
	ch.lastDecay = r.I64()
	ch.seq = r.U32()
	cubes := r.Int()
	if r.Err() != nil {
		return
	}
	if cubes != len(ch.Cubes) {
		r.Fail(fmt.Errorf("hmc: chain has %d cubes, snapshot has %d", len(ch.Cubes), cubes))
		return
	}
	for _, cube := range ch.Cubes {
		vaults := r.Int()
		if r.Err() != nil {
			return
		}
		if vaults != len(cube.Vaults) {
			r.Fail(fmt.Errorf("hmc: cube %d has %d vaults, snapshot has %d", cube.Index, len(cube.Vaults), vaults))
			return
		}
		for _, v := range cube.Vaults {
			v.RestoreFrom(r)
		}
	}
}
