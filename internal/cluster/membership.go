package cluster

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// memberState is a worker's lifecycle as the coordinator sees it.
type memberState string

const (
	// memberAlive: registered and answering health checks; on the ring.
	memberAlive memberState = "alive"
	// memberDraining: deregistered (graceful shutdown) or reporting
	// draining=true; off the ring so no new work routes to it, but still
	// answering reads for the jobs it already holds.
	memberDraining memberState = "draining"
	// memberDead: failed MaxFails consecutive health checks; off the
	// ring, its fill records dropped and its non-terminal jobs re-routed
	// to ring successors.
	memberDead memberState = "dead"
)

// member is one registered worker.
type member struct {
	ID   string // stable coordinator-assigned id ("w1", "w2", ...)
	Name string // the worker's advertise URL: its ring identity and base address

	state    memberState
	fails    int       // consecutive failed health checks
	lastSeen time.Time // last successful register or status poll

	// Last polled /internal/v1/status snapshot, feeding the cluster-wide
	// backpressure decision.
	queued   int
	running  int
	capacity int
	ready    bool
}

// membership is the coordinator's member table plus the ring derived
// from it. The ring is rebuilt (immutably swapped) on every state
// change, so routing reads never block on membership churn.
type membership struct {
	mu      sync.Mutex
	members map[string]*member // by Name (advertise URL)
	ring    *Ring              // over alive member names
	seq     int
}

func newMembership() *membership {
	return &membership{members: make(map[string]*member), ring: NewRing(nil)}
}

// register upserts a member by advertise URL and returns it. A dead or
// draining member that registers again is revived: registration is the
// worker's heartbeat, so a restarted worker rejoins the ring with its
// old identity (and therefore its old hash range).
func (ms *membership) register(name string, now time.Time) *member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[name]
	if !ok {
		ms.seq++
		m = &member{ID: memberID(ms.seq), Name: name}
		ms.members[name] = m
	}
	revived := m.state != memberAlive
	m.state = memberAlive
	m.fails = 0
	m.lastSeen = now
	if !ok || revived {
		ms.rebuildLocked()
	}
	return m
}

func memberID(seq int) string {
	return "w" + strconv.Itoa(seq)
}

// setState transitions a member (by name) and rebuilds the ring when
// its routability changed. Returns the member, or nil if unknown.
func (ms *membership) setState(name string, state memberState) *member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[name]
	if !ok {
		return nil
	}
	if m.state != state {
		m.state = state
		ms.rebuildLocked()
	}
	return m
}

// rebuildLocked recomputes the ring over alive members (ms.mu held).
func (ms *membership) rebuildLocked() {
	names := make([]string, 0, len(ms.members))
	for name, m := range ms.members {
		if m.state == memberAlive {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ms.ring = NewRing(names)
}

// snapshot returns the current ring and a copy of every member, for
// routing and reporting without holding the lock.
func (ms *membership) snapshot() (*Ring, []member) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return ms.ring, out
}

// get returns a copy of the named member.
func (ms *membership) get(name string) (member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[name]
	if !ok {
		return member{}, false
	}
	return *m, true
}

// recordStatus stores a successful health poll: depth gauges refresh,
// the failure streak resets, and a worker reporting draining moves off
// the ring.
func (ms *membership) recordStatus(name string, queued, running, capacity int, ready, draining bool, now time.Time) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[name]
	if !ok {
		return
	}
	m.fails = 0
	m.lastSeen = now
	m.queued, m.running, m.capacity, m.ready = queued, running, capacity, ready
	if draining && m.state == memberAlive {
		m.state = memberDraining
		ms.rebuildLocked()
	}
}

// recordFailure counts a failed health check; after maxFails in a row
// the member is marked dead and dropped from the ring. Returns true on
// the alive/draining → dead edge (the caller then re-routes its jobs).
func (ms *membership) recordFailure(name string, maxFails int) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[name]
	if !ok || m.state == memberDead {
		return false
	}
	m.fails++
	if m.fails < maxFails {
		return false
	}
	m.state = memberDead
	ms.rebuildLocked()
	return true
}

// depths sums queue load over routable (alive) members for the
// cluster-wide backpressure decision.
func (ms *membership) depths() (queued, capacity, alive int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, m := range ms.members {
		if m.state != memberAlive {
			continue
		}
		alive++
		queued += m.queued
		capacity += m.capacity
	}
	return queued, capacity, alive
}
