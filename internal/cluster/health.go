// The membership health loop and failover path: the coordinator polls
// every non-dead member's /internal/v1/status each HealthInterval,
// feeding queue depths into the global backpressure decision; MaxFails
// consecutive failures declare a member dead, drop its peer-cache fill
// records, and re-route its non-terminal jobs to their ring successors
// — the consistent-hash analogue of the paper's locality monitor
// redirecting PEIs when their operand's home changes.

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"pimsim/internal/stats"
)

// statusReport mirrors serve.StatusReport's wire shape. It is decoded
// structurally rather than by importing internal/serve, so the cluster
// control plane depends only on the HTTP protocol — serve's internal
// tests can then import this package (for the 3-node e2e) without a
// cycle.
type statusReport struct {
	Queued        int  `json:"queued"`
	Running       int  `json:"running"`
	QueueCapacity int  `json:"queueCapacity"`
	Workers       int  `json:"workers"`
	Draining      bool `json:"draining"`
	Ready         bool `json:"ready"`
}

func (c *Coordinator) healthLoop() {
	defer close(c.done)
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.checkMembers()
	}
}

// checkMembers runs one health sweep.
func (c *Coordinator) checkMembers() {
	_, members := c.mem.snapshot()
	for _, m := range members {
		if m.state == memberDead {
			continue
		}
		st, err := c.fetchStatus(m.Name)
		if err != nil {
			c.met.add("health.fails", 1)
			if c.mem.recordFailure(m.Name, c.opts.MaxFails) {
				c.onMemberDead(m)
			}
			continue
		}
		c.mem.recordStatus(m.Name, st.Queued, st.Running, st.QueueCapacity, st.Ready, st.Draining, time.Now())
		if st.Draining && m.state == memberAlive {
			c.opts.Logf("health worker=%s draining: removed from ring, reads continue", m.ID)
		}
	}
}

// fetchStatus polls one worker's status endpoint.
func (c *Coordinator) fetchStatus(baseURL string) (statusReport, error) {
	resp, err := c.healthc.Get(baseURL + "/internal/v1/status")
	if err != nil {
		return statusReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusReport{}, fmt.Errorf("status endpoint returned %d", resp.StatusCode)
	}
	var st statusReport
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st); err != nil {
		return statusReport{}, err
	}
	return st, nil
}

// onMemberDead handles the alive/draining → dead edge: the ring has
// already been rebuilt without the member (its hash range now belongs
// to its successors), so what remains is dropping its peer-cache fill
// records and re-submitting its non-terminal jobs where the ring now
// points. Results it computed but never reported are simply recomputed
// — content addressing makes re-execution safe.
func (c *Coordinator) onMemberDead(m member) {
	c.met.add("members.lost", 1)
	c.opts.Logf("health worker=%s name=%s dead after %d failed checks; failing over", m.ID, m.Name, c.opts.MaxFails)

	c.mu.Lock()
	for digest, holder := range c.fills {
		if holder == m.Name {
			delete(c.fills, digest)
		}
	}
	var orphans []*clusterJob
	for _, id := range c.order {
		job := c.jobs[id]
		job.mu.Lock()
		if job.memberName == m.Name && !job.terminal && job.failed == "" {
			orphans = append(orphans, job)
		}
		job.mu.Unlock()
	}
	c.mu.Unlock()
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ID < orphans[j].ID })

	for _, job := range orphans {
		c.rerouteJob(job, m)
	}
}

// rerouteJob re-submits one orphaned job to the digest's new ring
// owner. A duplicate execution can only produce the identical result
// (and usually doesn't run at all: if any surviving worker holds the
// digest's result, the re-submission completes as a cache or peer hit).
func (c *Coordinator) rerouteJob(job *clusterJob, dead member) {
	res, err := c.routeSpec(job.Digest, job.Spec)
	if err != nil || res.view == nil {
		detail := "no worker could take it over"
		if err != nil {
			detail = err.Error()
		} else if res.status == http.StatusTooManyRequests {
			detail = "all surviving workers are at capacity"
		}
		job.mu.Lock()
		job.failed = fmt.Sprintf("worker %s died while hosting this job; %s", dead.ID, detail)
		job.mu.Unlock()
		c.met.add("jobs.orphaned", 1)
		c.opts.Logf("failover job=%s digest=%.12s orphaned: %s", job.ID, job.Digest, detail)
		return
	}
	localID, _ := res.view["id"].(string)
	job.mu.Lock()
	job.memberName = res.member.Name
	job.memberID = res.member.ID
	job.localID = localID
	job.rerouted++
	if terminalState(res.view) {
		job.terminal = true
	}
	job.mu.Unlock()
	c.met.add("jobs.rerouted", 1)
	c.opts.Logf("failover job=%s digest=%.12s rerouted %s -> %s (local=%s status=%d)",
		job.ID, job.Digest, dead.ID, res.member.ID, localID, res.status)
}

// --- coordinator metrics ---

// cmetrics is the coordinator's counter registry, exported at /metrics
// with a "peicluster_" prefix.
//
// Counter names:
//
//	http.requests      HTTP requests served
//	jobs.routed        submissions accepted and routed to a worker
//	jobs.rejected      submissions bounced with 429 (cluster-wide or all-busy)
//	jobs.rerouted      jobs re-submitted to a successor after a worker died
//	jobs.orphaned      jobs no surviving worker could take over
//	routed.<id>        per-worker routing counts (digest-affinity visibility)
//	register           registration/heartbeat upserts
//	deregister         graceful deregistrations
//	fills              peer-cache fill reports accepted
//	peer_cache.served  peer-cache lookups answered with result bytes
//	health.fails       failed health polls
//	members.lost       members declared dead
//	proxy.errors       forwarding failures (transport-level)
type cmetrics struct {
	mu  sync.Mutex
	reg *stats.Registry
}

func newCMetrics() *cmetrics {
	return &cmetrics{reg: stats.NewRegistry()}
}

func (m *cmetrics) add(name string, delta int64) {
	m.mu.Lock()
	m.reg.Add(name, delta)
	m.mu.Unlock()
}

func (m *cmetrics) get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Get(name)
}

// write renders the Prometheus exposition after merging point-in-time
// gauges in sorted key order (interning order must not depend on map
// iteration; see serve.metrics.write for the same discipline).
func (m *cmetrics) write(w io.Writer, gauges map[string]int64) {
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	m.mu.Lock()
	for _, n := range names {
		m.reg.Set(n, gauges[n])
	}
	snap := m.reg.Snapshot()
	m.mu.Unlock()
	stats.WritePrometheus(w, "peicluster_", snap)
}
