package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAssignment pins the deterministic-routing
// guarantee: ownership is a pure function of the member-name set, so
// two independently built rings agree on every key, and the pinned
// assignments below only change if the hash function does (which would
// break rolling upgrades and must be deliberate).
func TestRingDeterministicAssignment(t *testing.T) {
	members := []string{"http://a:9001", "http://b:9002", "http://c:9003"}
	r1, r2 := NewRing(members), NewRing(members)
	if r1.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r1.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest-%d", i)
		o1, ok1 := r1.Owner(key)
		o2, ok2 := r2.Owner(key)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %q: owners diverge (%q vs %q)", key, o1, o2)
		}
	}
	// Pinned spot checks: SHA-256 placement must not drift across
	// releases.
	pinned := map[string]string{
		"digest-0": "http://a:9001",
		"digest-1": "http://a:9001",
		"digest-3": "http://c:9003",
	}
	for key, want := range pinned {
		if got, _ := r1.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want pinned %q", key, got, want)
		}
	}
}

// TestRingSuccessors: the successor list starts at the owner, contains
// each member exactly once, and never exceeds the membership.
func TestRingSuccessors(t *testing.T) {
	members := []string{"http://a:9001", "http://b:9002", "http://c:9003"}
	r := NewRing(members)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("digest-%d", i)
		succ := r.Successors(key, len(members))
		if len(succ) != len(members) {
			t.Fatalf("key %q: %d successors, want %d", key, len(succ), len(members))
		}
		owner, _ := r.Owner(key)
		if succ[0] != owner {
			t.Fatalf("key %q: successors[0] = %q, owner = %q", key, succ[0], owner)
		}
		seen := make(map[string]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q", key, s)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != 3 {
		t.Fatalf("asking for more successors than members returned %d", len(got))
	}
	if got := NewRing(nil).Successors("k", 3); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
}

// TestRingMinimalRebalance is the failover property the whole design
// leans on: removing one member moves only the keys it owned — every
// key owned by a survivor keeps its owner, so a worker crash does not
// reshuffle the other workers' cache locality.
func TestRingMinimalRebalance(t *testing.T) {
	members := []string{"http://a:9001", "http://b:9002", "http://c:9003", "http://d:9004"}
	full := NewRing(members)
	without := NewRing(members[:3]) // drop d

	const keys = 1000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("digest-%d", i)
		before, _ := full.Owner(key)
		after, _ := without.Owner(key)
		if before == members[3] {
			moved++
			if after == members[3] {
				t.Fatalf("key %q still owned by removed member", key)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q although its owner survived", key, before, after)
		}
	}
	// d owned roughly a quarter of the keyspace; any balance wildly off
	// that means the virtual-point spread broke.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("removed member owned %d/%d keys; expected near %d", moved, keys, keys/4)
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(nil).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	solo := NewRing([]string{"http://only:9001"})
	for i := 0; i < 10; i++ {
		if owner, ok := solo.Owner(fmt.Sprintf("k%d", i)); !ok || owner != "http://only:9001" {
			t.Fatalf("single-member ring returned %q, %v", owner, ok)
		}
	}
}
