// Read-side proxying: the coordinator forwards job reads, cancels, and
// SSE streams to whichever worker currently hosts the job, rewriting
// worker-local job IDs to cluster IDs so clients see one coherent
// endpoint regardless of routing and failover.

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// lookup resolves a cluster job ID, writing a 404 on miss.
func (c *Coordinator) lookup(w http.ResponseWriter, r *http.Request) *clusterJob {
	c.mu.Lock()
	job, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return nil
	}
	return job
}

// route returns the job's current host and local ID. ok is false when
// the job is coordinator-failed or its member is gone; the caller has
// then already been answered.
func (c *Coordinator) route(w http.ResponseWriter, job *clusterJob) (m member, localID string, ok bool) {
	job.mu.Lock()
	name, localID, failed := job.memberName, job.localID, job.failed
	job.mu.Unlock()
	if failed != "" {
		// The hosting worker died and no member could take the job over:
		// answer with a synthesized terminal view instead of a dead proxy.
		writeJSON(w, http.StatusOK, map[string]any{
			"id":     job.ID,
			"state":  "failed",
			"digest": job.Digest,
			"error":  failed,
		})
		return member{}, "", false
	}
	m, found := c.mem.get(name)
	if !found || m.state == memberDead {
		httpError(w, http.StatusBadGateway, fmt.Errorf("worker hosting job %s is unavailable", job.ID))
		return member{}, "", false
	}
	return m, localID, true
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	job := c.lookup(w, r)
	if job == nil {
		return
	}
	m, localID, ok := c.route(w, job)
	if !ok {
		return
	}
	resp, err := c.httpc.Get(m.Name + "/v1/jobs/" + localID)
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	var view map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&view); err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("decoding worker response: %w", err))
		return
	}
	if resp.StatusCode == http.StatusOK && terminalState(view) {
		job.mu.Lock()
		job.terminal = true
		job.mu.Unlock()
	}
	rewriteView(view, job.ID)
	w.Header().Set("X-Peicluster-Member", m.ID)
	writeJSON(w, resp.StatusCode, view)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	job := c.lookup(w, r)
	if job == nil {
		return
	}
	m, localID, ok := c.route(w, job)
	if !ok {
		return
	}
	resp, err := c.httpc.Get(m.Name + "/v1/jobs/" + localID + "/result")
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Peicluster-Member", m.ID)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := c.lookup(w, r)
	if job == nil {
		return
	}
	m, localID, ok := c.route(w, job)
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, m.Name+"/v1/jobs/"+localID, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	var view map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&view); err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("decoding worker response: %w", err))
		return
	}
	rewriteView(view, job.ID)
	w.Header().Set("X-Peicluster-Member", m.ID)
	writeJSON(w, resp.StatusCode, view)
}

// handleEvents proxies the worker's SSE stream, rewriting worker-local
// job IDs in event payloads to the cluster ID and flushing per event so
// progress stays live through the extra hop. If the worker dies
// mid-stream the stream ends; a reconnecting client is forwarded to
// wherever failover moved the job.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := c.lookup(w, r)
	if job == nil {
		return
	}
	m, localID, ok := c.route(w, job)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.Name+"/v1/jobs/"+localID+"/events", nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := c.sse.Do(req)
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Peicluster-Member", m.ID)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	idFrom, idTo := `"id":"`+localID+`"`, `"id":"`+job.ID+`"`
	urlFrom, urlTo := "/v1/jobs/"+localID+"/", "/v1/jobs/"+job.ID+"/"
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data:") {
			line = strings.ReplaceAll(line, idFrom, idTo)
			line = strings.ReplaceAll(line, urlFrom, urlTo)
		}
		fmt.Fprintln(w, line)
		if line == "" {
			flusher.Flush() // blank line = event boundary
		}
	}
	flusher.Flush()
}

// handleList reports the coordinator's routing records in submission
// order: which worker hosts each accepted job and where failover moved
// it. Authoritative job state stays with the workers; query a job by ID
// for its live view.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := make([]*clusterJob, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	views := make([]map[string]any, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		v := map[string]any{
			"id":          j.ID,
			"digest":      j.Digest,
			"worker":      j.memberID,
			"workerJobId": j.localID,
			"terminal":    j.terminal,
		}
		if j.rerouted > 0 {
			v["rerouted"] = j.rerouted
		}
		if j.failed != "" {
			v["error"] = j.failed
		}
		j.mu.Unlock()
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleExperiments forwards discovery to any live worker.
func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	_, members := c.mem.snapshot()
	for _, m := range members {
		if m.state != memberAlive {
			continue
		}
		resp, err := c.httpc.Get(m.Name + "/v1/experiments")
		if err != nil {
			c.met.add("proxy.errors", 1)
			continue
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers registered"))
}

// --- shared HTTP helpers ---

// terminalState reports whether a decoded job view is done/failed/
// cancelled (mirrors serve.JobState.terminal without importing its
// internals).
func terminalState(view map[string]any) bool {
	switch view["state"] {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// rewriteView replaces the worker-local job identity in a decoded view
// with the cluster one.
func rewriteView(view map[string]any, clusterID string) {
	view["id"] = clusterID
	if ru, ok := view["resultUrl"].(string); ok && ru != "" {
		view["resultUrl"] = "/v1/jobs/" + clusterID + "/result"
	}
}

// statusRecorder captures the response status for the request log;
// Flush is forwarded so proxied SSE streams work through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}
