package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"pimsim/pei"
)

// Options configures a Coordinator.
type Options struct {
	// HealthInterval is the cadence of the membership health loop
	// (default 1s): each tick polls every non-dead member's
	// /internal/v1/status for liveness and queue depth.
	HealthInterval time.Duration
	// HealthTimeout bounds one health poll (default 2s).
	HealthTimeout time.Duration
	// MaxFails is the number of consecutive failed health checks before
	// a member is declared dead and its jobs re-route (default 3).
	MaxFails int
	// ForwardTimeout bounds one proxied request to a worker — submits,
	// reads, cancels, peer-cache fetches; SSE streams are unbounded
	// (default 15s).
	ForwardTimeout time.Duration
	// MaxFills bounds the digest→owner map (default 65536 entries);
	// beyond it arbitrary entries are dropped — a dropped entry only
	// costs a re-simulation, never correctness.
	MaxFills int
	// Logf receives one structured line per request and membership
	// event (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.MaxFails <= 0 {
		o.MaxFails = 3
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 15 * time.Second
	}
	if o.MaxFills <= 0 {
		o.MaxFills = 1 << 16
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// clusterJob is the coordinator's routing record for one accepted job:
// enough to forward reads to wherever the job lives now and to re-submit
// it if that worker dies. The job's actual state lives on the worker.
type clusterJob struct {
	ID     string
	Digest string
	Spec   []byte // normalized JobSpec JSON, re-submitted on failover

	mu         sync.Mutex
	memberName string // advertise URL currently hosting the job
	memberID   string
	localID    string // the worker's own job id
	terminal   bool   // a terminal state was observed (stops failover)
	rerouted   int    // failover re-submissions
	failed     string // coordinator-synthesized failure (no member could take it)
}

// Coordinator is the cluster front end: one endpoint that routes jobs
// to workers by digest affinity, proxies reads and SSE streams back,
// fails over dead workers' hash ranges, and serves the peer cache map.
// Create with NewCoordinator, expose via Handler, stop with Close.
type Coordinator struct {
	opts    Options
	mux     *http.ServeMux
	mem     *membership
	met     *cmetrics
	httpc   *http.Client // bounded, for forwards and peer fetches
	healthc *http.Client // short-timeout, for health polls
	sse     *http.Client // unbounded, for event streams

	mu    sync.Mutex
	jobs  map[string]*clusterJob
	order []string // job IDs in submission order
	seq   int
	fills map[string]string // digest -> member name holding the cached result

	stop chan struct{}
	done chan struct{}
}

// NewCoordinator builds a coordinator and starts its health loop.
func NewCoordinator(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		mux:     http.NewServeMux(),
		mem:     newMembership(),
		met:     newCMetrics(),
		httpc:   &http.Client{Timeout: opts.ForwardTimeout},
		healthc: &http.Client{Timeout: opts.HealthTimeout},
		sse:     &http.Client{},
		jobs:    make(map[string]*clusterJob),
		fills:   make(map[string]string),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	c.mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	c.mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	c.mux.HandleFunc("GET /v1/experiments", c.handleExperiments)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleReady)
	c.mux.HandleFunc("GET /healthz/live", c.handleLive)
	c.mux.HandleFunc("GET /healthz/ready", c.handleReady)
	c.mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	c.mux.HandleFunc("POST /cluster/v1/deregister", c.handleDeregister)
	c.mux.HandleFunc("POST /cluster/v1/fills", c.handleFills)
	c.mux.HandleFunc("GET /cluster/v1/cache/{digest}", c.handleCacheLookup)
	c.mux.HandleFunc("GET /cluster/v1/owner", c.handleOwner)
	c.mux.HandleFunc("GET /cluster/v1/members", c.handleMembers)
	go c.healthLoop()
	return c
}

// Handler returns the coordinator's HTTP handler wrapped in request
// logging and the request counter.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		c.mux.ServeHTTP(rec, r)
		c.met.add("http.requests", 1)
		c.opts.Logf("http method=%s path=%s status=%d dur=%s",
			r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// Close stops the health loop. In-flight proxied requests finish under
// the HTTP server's own shutdown.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// --- submission and routing ---

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	var spec pei.JobSpec
	if err == nil {
		err = json.Unmarshal(body, &spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	norm, _, err := spec.Normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	digest, err := norm.Digest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Forward the normalized spec, so the worker derives the identical
	// digest and the cluster-wide cache key is exactly this one.
	specBytes, err := json.Marshal(norm)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Cluster-wide backpressure: when every queue slot in the cluster is
	// full (per the last health poll), reject here instead of bouncing
	// the request around the ring.
	queued, capacity, alive := c.mem.depths()
	if alive == 0 {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers registered"))
		return
	}
	if capacity > 0 && queued >= capacity {
		c.met.add("jobs.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(globalRetryAfterSeconds(queued, alive)))
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("cluster queues full (%d queued across %d workers)", queued, alive))
		return
	}

	res, err := c.routeSpec(digest, specBytes)
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	if res.status == http.StatusTooManyRequests {
		c.met.add("jobs.rejected", 1)
		if res.retryAfter != "" {
			w.Header().Set("Retry-After", res.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		w.Write(res.body)
		return
	}
	if res.view == nil {
		// Non-2xx pass-through (e.g. a validation disagreement).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		w.Write(res.body)
		return
	}

	localID, _ := res.view["id"].(string)
	job := c.newJob(digest, specBytes, res.member, localID)
	if terminalState(res.view) {
		job.mu.Lock()
		job.terminal = true
		job.mu.Unlock()
	}
	c.met.add("jobs.routed", 1)
	c.met.add("routed."+res.member.ID, 1)
	c.opts.Logf("route job=%s digest=%.12s worker=%s local=%s status=%d",
		job.ID, digest, res.member.ID, localID, res.status)
	rewriteView(res.view, job.ID)
	w.Header().Set("X-Peicluster-Member", res.member.ID)
	writeJSON(w, res.status, res.view)
}

// newJob registers a routing record and assigns the cluster job ID.
func (c *Coordinator) newJob(digest string, spec []byte, m member, localID string) *clusterJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	job := &clusterJob{
		ID:         fmt.Sprintf("c%06d", c.seq),
		Digest:     digest,
		Spec:       spec,
		memberName: m.Name,
		memberID:   m.ID,
		localID:    localID,
	}
	c.jobs[job.ID] = job
	c.order = append(c.order, job.ID)
	return job
}

// routeResult is one routing attempt's outcome.
type routeResult struct {
	member     member
	status     int
	view       map[string]any // decoded job view on 2xx, else nil
	body       []byte
	retryAfter string
}

// routeSpec walks the digest's successor list — owner first, ring order
// after — forwarding the submission until a worker accepts it. A worker
// whose queue is full (429) spills to the next successor: affinity is a
// locality optimization, and correctness comes from content-addressed
// caching, so serving from the "wrong" worker beats rejecting while
// capacity remains. Returns an error only when no candidate answered.
func (c *Coordinator) routeSpec(digest string, specBytes []byte) (routeResult, error) {
	ring, _ := c.mem.snapshot()
	candidates := ring.Successors(digest, ring.Len())
	if len(candidates) == 0 {
		return routeResult{}, fmt.Errorf("no live workers registered")
	}
	var last routeResult
	sawBusy := false
	for _, name := range candidates {
		m, ok := c.mem.get(name)
		if !ok || m.state != memberAlive {
			continue
		}
		resp, err := c.httpc.Post(m.Name+"/v1/jobs", "application/json", bytes.NewReader(specBytes))
		if err != nil {
			c.met.add("proxy.errors", 1)
			c.opts.Logf("route digest=%.12s worker=%s unreachable: %v", digest, m.ID, err)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		last = routeResult{member: m, status: resp.StatusCode, body: body, retryAfter: resp.Header.Get("Retry-After")}
		if resp.StatusCode == http.StatusTooManyRequests {
			sawBusy = true
			continue // spill to the next successor
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			var view map[string]any
			if err := json.Unmarshal(body, &view); err != nil {
				return routeResult{}, fmt.Errorf("worker %s returned unparseable job view: %w", m.ID, err)
			}
			last.view = view
		}
		return last, nil
	}
	if sawBusy {
		return last, nil // every reachable worker was full: propagate the 429
	}
	return routeResult{}, fmt.Errorf("no reachable worker for digest %.12s", digest)
}

// globalRetryAfterSeconds mirrors the worker-side heuristic at cluster
// scope: a second of headroom plus the global backlog amortized over
// the live workers.
func globalRetryAfterSeconds(queued, alive int) int {
	if alive < 1 {
		alive = 1
	}
	sec := 1 + queued/alive
	if sec > 60 {
		sec = 60
	}
	return sec
}

// --- cluster-internal endpoints (workers talk to these) ---

// registerRequest is the worker→coordinator registration/heartbeat body.
type registerRequest struct {
	Name string `json:"name"` // the worker's advertise URL
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing registration: %w", err))
		return
	}
	u, err := url.Parse(req.Name)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("advertise URL %q must be absolute http(s)", req.Name))
		return
	}
	m := c.mem.register(req.Name, time.Now())
	c.met.add("register", 1)
	c.opts.Logf("register worker=%s name=%s", m.ID, m.Name)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":               m.ID,
		"healthIntervalMs": c.opts.HealthInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing deregistration: %w", err))
		return
	}
	m := c.mem.setState(req.Name, memberDraining)
	if m == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown member %q", req.Name))
		return
	}
	c.met.add("deregister", 1)
	c.opts.Logf("deregister worker=%s name=%s (draining)", m.ID, m.Name)
	writeJSON(w, http.StatusOK, map[string]any{"id": m.ID, "state": string(memberDraining)})
}

// fillRequest announces that a worker holds a digest's result.
type fillRequest struct {
	Digest string `json:"digest"`
	Name   string `json:"name"`
}

func (c *Coordinator) handleFills(w http.ResponseWriter, r *http.Request) {
	var req fillRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing fill report: %w", err))
		return
	}
	m, ok := c.mem.get(req.Name)
	if !ok || m.state == memberDead {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown or dead member %q", req.Name))
		return
	}
	c.mu.Lock()
	if len(c.fills) >= c.opts.MaxFills {
		// Bound the map: drop one arbitrary entry. The fill map is an
		// optimization — losing an entry re-simulates at most once.
		for k := range c.fills {
			delete(c.fills, k)
			break
		}
	}
	c.fills[req.Digest] = req.Name
	c.mu.Unlock()
	c.met.add("fills", 1)
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheLookup is the peer cache read path: the coordinator maps
// digest → holding member and proxies the bytes, so workers only ever
// talk to the coordinator. A stale map entry (evicted result, dead
// member) is dropped and reported as a miss.
func (c *Coordinator) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	c.mu.Lock()
	name, ok := c.fills[digest]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no known holder for digest %.12s", digest))
		return
	}
	m, found := c.mem.get(name)
	if !found || m.state == memberDead {
		c.dropFill(digest, name)
		httpError(w, http.StatusNotFound, fmt.Errorf("holder of digest %.12s is gone", digest))
		return
	}
	resp, err := c.httpc.Get(m.Name + "/internal/v1/cache/" + digest)
	if err != nil {
		c.met.add("proxy.errors", 1)
		httpError(w, http.StatusNotFound, fmt.Errorf("holder unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.dropFill(digest, name)
		httpError(w, http.StatusNotFound, fmt.Errorf("holder no longer caches digest %.12s", digest))
		return
	}
	c.met.add("peer_cache.served", 1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Peicluster-Member", m.ID)
	io.Copy(w, resp.Body)
}

// dropFill removes a digest→member entry if it still points at name.
func (c *Coordinator) dropFill(digest, name string) {
	c.mu.Lock()
	if c.fills[digest] == name {
		delete(c.fills, digest)
	}
	c.mu.Unlock()
}

// handleOwner reports the ring owner for a digest — routing
// introspection for tests, ops, and the README walkthrough.
func (c *Coordinator) handleOwner(w http.ResponseWriter, r *http.Request) {
	digest := r.URL.Query().Get("digest")
	if digest == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing digest query parameter"))
		return
	}
	ring, _ := c.mem.snapshot()
	name, ok := ring.Owner(digest)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers registered"))
		return
	}
	m, _ := c.mem.get(name)
	writeJSON(w, http.StatusOK, map[string]any{"id": m.ID, "name": m.Name})
}

func (c *Coordinator) handleMembers(w http.ResponseWriter, r *http.Request) {
	_, members := c.mem.snapshot()
	views := make([]map[string]any, 0, len(members))
	for _, m := range members {
		views = append(views, map[string]any{
			"id":       m.ID,
			"name":     m.Name,
			"state":    string(m.state),
			"queued":   m.queued,
			"running":  m.running,
			"capacity": m.capacity,
			"ready":    m.ready,
			"fails":    m.fails,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"members": views})
}

// --- health endpoints and metrics ---

func (c *Coordinator) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReady: the coordinator is ready once it can route somewhere.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	if _, _, alive := c.mem.depths(); alive == 0 {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers registered"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, members := c.mem.snapshot()
	var alive, draining, dead, queued, capacity int64
	for _, m := range members {
		switch m.state {
		case memberAlive:
			alive++
			queued += int64(m.queued)
			capacity += int64(m.capacity)
		case memberDraining:
			draining++
		case memberDead:
			dead++
		}
	}
	c.mu.Lock()
	tracked, fills := int64(len(c.jobs)), int64(len(c.fills))
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.write(w, map[string]int64{
		"members.alive":    alive,
		"members.draining": draining,
		"members.dead":     dead,
		"queue.global":     queued,
		"queue.capacity":   capacity,
		"jobs.tracked":     tracked,
		"fills.entries":    fills,
	})
}
