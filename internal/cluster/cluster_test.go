package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimsim/internal/serve"
	"pimsim/pei"
)

func discardLogf(string, ...any) {}

// fakeWorker is a scripted stand-in for a peiserved worker: it records
// submissions and serves the status/cache endpoints the coordinator
// polls, without running any simulation.
type fakeWorker struct {
	ts *httptest.Server

	mu         sync.Mutex
	submits    [][]byte
	submitCode int // response to POST /v1/jobs (default 202)
	jobState   string
	status     serve.StatusReport
	cached     map[string][]byte
	seq        int
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{
		submitCode: http.StatusAccepted,
		jobState:   "queued",
		status:     serve.StatusReport{QueueCapacity: 8, Workers: 2, Ready: true},
		cached:     make(map[string][]byte),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.submits = append(f.submits, body)
		f.seq++
		id := fmt.Sprintf("j%06d", f.seq)
		code, state := f.submitCode, f.jobState
		f.mu.Unlock()
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(code)
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{"id": id, "state": state})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		state := f.jobState
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"id": r.PathValue("id"), "state": state,
			"resultUrl": "/v1/jobs/" + r.PathValue("id") + "/result",
		})
	})
	mux.HandleFunc("GET /internal/v1/status", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		st := f.status
		f.mu.Unlock()
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /internal/v1/cache/{digest}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		out, ok := f.cached[r.PathValue("digest")]
		f.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write(out)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeWorker) submitCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.submits)
}

func (f *fakeWorker) set(fn func(*fakeWorker)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

// newTestCoordinator starts a coordinator whose timer-driven health
// loop is effectively disabled (interval one hour): tests drive sweeps
// deterministically by calling checkMembers directly.
func newTestCoordinator(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = discardLogf
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Hour
	}
	c := NewCoordinator(opts)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// registerWorker registers a fake worker and returns its assigned ID.
func registerWorker(t *testing.T, coordURL string, f *fakeWorker) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"name": f.ts.URL})
	resp, err := http.Post(coordURL+"/cluster/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var reply struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply.ID
}

func testSpec(seed int64) pei.JobSpec {
	return pei.JobSpec{Workload: "bfs", Size: "small", Scale: 4096, OpBudget: 2000, Seed: seed}
}

// submitSpec posts a spec to the coordinator and decodes the view.
func submitSpec(t *testing.T, coordURL string, spec pei.JobSpec) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(coordURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view map[string]any
	json.NewDecoder(resp.Body).Decode(&view)
	return resp, view
}

// digestOf mirrors the coordinator's digest derivation for routing
// assertions.
func digestOf(t *testing.T, spec pei.JobSpec) string {
	t.Helper()
	norm, _, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	d, err := norm.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCoordinatorRegisterOwnerMembers covers the membership endpoints:
// registration assigns stable IDs, the owner endpoint agrees with an
// independently built ring, and deregistration moves the member to
// draining and off the ring.
func TestCoordinatorRegisterOwnerMembers(t *testing.T) {
	_, ts := newTestCoordinator(t, Options{})
	a, b := newFakeWorker(t), newFakeWorker(t)
	idA := registerWorker(t, ts.URL, a)
	idB := registerWorker(t, ts.URL, b)
	if idA == idB {
		t.Fatalf("both workers got id %s", idA)
	}
	// Registration is idempotent: same name, same ID.
	if again := registerWorker(t, ts.URL, a); again != idA {
		t.Fatalf("re-register changed id %s -> %s", idA, again)
	}

	digest := digestOf(t, testSpec(1))
	wantOwner, _ := NewRing([]string{a.ts.URL, b.ts.URL}).Owner(digest)
	resp, err := http.Get(ts.URL + "/cluster/v1/owner?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	var owner struct{ ID, Name string }
	json.NewDecoder(resp.Body).Decode(&owner)
	resp.Body.Close()
	if owner.Name != wantOwner {
		t.Fatalf("owner endpoint says %q, ring says %q", owner.Name, wantOwner)
	}

	// Deregister the owner: the other worker now owns everything.
	body, _ := json.Marshal(map[string]string{"name": wantOwner})
	dresp, err := http.Post(ts.URL+"/cluster/v1/deregister", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	resp2, err := http.Get(ts.URL + "/cluster/v1/owner?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp2.Body).Decode(&owner)
	resp2.Body.Close()
	if owner.Name == wantOwner {
		t.Fatal("draining member still owns its range")
	}

	mresp, err := http.Get(ts.URL + "/cluster/v1/members")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `"draining"`) || !strings.Contains(string(mb), `"alive"`) {
		t.Fatalf("members missing states:\n%s", mb)
	}
}

// TestCoordinatorRoutesByDigestAffinity: a submission lands on the
// digest's ring owner, gets a cluster ID, and the view's identity is
// rewritten so the worker-local ID never leaks.
func TestCoordinatorRoutesByDigestAffinity(t *testing.T) {
	_, ts := newTestCoordinator(t, Options{})
	a, b := newFakeWorker(t), newFakeWorker(t)
	registerWorker(t, ts.URL, a)
	registerWorker(t, ts.URL, b)

	spec := testSpec(1)
	digest := digestOf(t, spec)
	wantOwner, _ := NewRing([]string{a.ts.URL, b.ts.URL}).Owner(digest)
	owner, other := a, b
	if wantOwner == b.ts.URL {
		owner, other = b, a
	}

	resp, view := submitSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if view["id"] != "c000001" {
		t.Fatalf("cluster id %v, want c000001", view["id"])
	}
	if owner.submitCount() != 1 || other.submitCount() != 0 {
		t.Fatalf("routing split: owner %d submits, other %d", owner.submitCount(), other.submitCount())
	}
	// The forwarded body is the normalized spec: the worker must derive
	// the identical digest.
	owner.mu.Lock()
	forwarded := owner.submits[0]
	owner.mu.Unlock()
	var fspec pei.JobSpec
	if err := json.Unmarshal(forwarded, &fspec); err != nil {
		t.Fatal(err)
	}
	if digestOf(t, fspec) != digest {
		t.Fatal("forwarded spec digest differs from routing digest")
	}

	// Reads proxy to the owner with the ID rewritten back.
	gresp, err := http.Get(ts.URL + "/v1/jobs/c000001")
	if err != nil {
		t.Fatal(err)
	}
	var gview map[string]any
	json.NewDecoder(gresp.Body).Decode(&gview)
	gresp.Body.Close()
	if gview["id"] != "c000001" {
		t.Fatalf("proxied view id %v", gview["id"])
	}
	if ru, _ := gview["resultUrl"].(string); ru != "/v1/jobs/c000001/result" {
		t.Fatalf("proxied resultUrl %q not rewritten", ru)
	}
}

// TestCoordinatorSpillsOn429: when the owner's queue is full, the
// submission spills to the ring successor instead of bouncing — and
// when every worker is full, the 429 (with Retry-After) propagates.
func TestCoordinatorSpillsOn429(t *testing.T) {
	_, ts := newTestCoordinator(t, Options{})
	a, b := newFakeWorker(t), newFakeWorker(t)
	registerWorker(t, ts.URL, a)
	registerWorker(t, ts.URL, b)

	spec := testSpec(1)
	wantOwner, _ := NewRing([]string{a.ts.URL, b.ts.URL}).Owner(digestOf(t, spec))
	owner, other := a, b
	if wantOwner == b.ts.URL {
		owner, other = b, a
	}
	owner.set(func(f *fakeWorker) { f.submitCode = http.StatusTooManyRequests })

	resp, _ := submitSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spill submit status %d, want 202", resp.StatusCode)
	}
	if other.submitCount() != 1 {
		t.Fatalf("successor got %d submits, want 1", other.submitCount())
	}

	other.set(func(f *fakeWorker) { f.submitCode = http.StatusTooManyRequests })
	resp2, _ := submitSpec(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-busy submit status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("propagated 429 missing Retry-After")
	}
}

// TestCoordinatorGlobalBackpressure: once a health sweep has learned
// that every queue slot in the cluster is full, submissions are
// rejected at the coordinator with a global Retry-After — no worker is
// even asked.
func TestCoordinatorGlobalBackpressure(t *testing.T) {
	c, ts := newTestCoordinator(t, Options{})
	a, b := newFakeWorker(t), newFakeWorker(t)
	full := serve.StatusReport{Queued: 8, QueueCapacity: 8, Workers: 2, Ready: true}
	a.set(func(f *fakeWorker) { f.status = full })
	b.set(func(f *fakeWorker) { f.status = full })
	registerWorker(t, ts.URL, a)
	registerWorker(t, ts.URL, b)
	c.checkMembers()

	resp, _ := submitSpec(t, ts.URL, testSpec(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit status %d, want 429", resp.StatusCode)
	}
	// 1 + 16 queued / 2 workers = 9 seconds.
	if got := resp.Header.Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After %q, want 9", got)
	}
	if a.submitCount()+b.submitCount() != 0 {
		t.Fatal("backpressured submit still reached a worker")
	}

	// Queues drain; the next sweep reopens the cluster.
	a.set(func(f *fakeWorker) { f.status.Queued = 0 })
	b.set(func(f *fakeWorker) { f.status.Queued = 0 })
	c.checkMembers()
	resp2, _ := submitSpec(t, ts.URL, testSpec(1))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit status %d, want 202", resp2.StatusCode)
	}
}

// TestCoordinatorFailoverReroutes: after MaxFails failed health sweeps
// the hosting worker is declared dead and its non-terminal job is
// re-submitted to the ring successor; reads keep working through the
// new host and the routing table records the reroute.
func TestCoordinatorFailoverReroutes(t *testing.T) {
	c, ts := newTestCoordinator(t, Options{MaxFails: 2})
	a, b := newFakeWorker(t), newFakeWorker(t)
	registerWorker(t, ts.URL, a)
	registerWorker(t, ts.URL, b)

	spec := testSpec(1)
	wantOwner, _ := NewRing([]string{a.ts.URL, b.ts.URL}).Owner(digestOf(t, spec))
	owner, survivor := a, b
	if wantOwner == b.ts.URL {
		owner, survivor = b, a
	}
	resp, _ := submitSpec(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if owner.submitCount() != 1 {
		t.Fatal("job did not land on the ring owner")
	}

	owner.ts.Close() // crash, not drain
	survivor.set(func(f *fakeWorker) { f.jobState = "done" })
	c.checkMembers()
	if survivor.submitCount() != 0 {
		t.Fatal("rerouted after only one failed sweep (MaxFails=2)")
	}
	c.checkMembers()
	if survivor.submitCount() != 1 {
		t.Fatalf("survivor got %d submits after death, want the rerouted job", survivor.submitCount())
	}

	gresp, err := http.Get(ts.URL + "/v1/jobs/c000001")
	if err != nil {
		t.Fatal(err)
	}
	var view map[string]any
	json.NewDecoder(gresp.Body).Decode(&view)
	gresp.Body.Close()
	if view["id"] != "c000001" || view["state"] != "done" {
		t.Fatalf("post-failover view %v", view)
	}

	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if !strings.Contains(string(lb), `"rerouted": 1`) {
		t.Fatalf("job list missing reroute record:\n%s", lb)
	}
	if got := c.met.get("jobs.rerouted"); got != 1 {
		t.Fatalf("jobs.rerouted = %d, want 1", got)
	}

	// New submissions keep flowing to the survivor.
	resp2, _ := submitSpec(t, ts.URL, testSpec(2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-failover submit status %d", resp2.StatusCode)
	}
}

// TestCoordinatorPeerCacheProxy: a fill report makes the digest
// fetchable through the coordinator from any node; a stale record (the
// holder evicted the entry) is dropped on first miss.
func TestCoordinatorPeerCacheProxy(t *testing.T) {
	c, ts := newTestCoordinator(t, Options{})
	a, b := newFakeWorker(t), newFakeWorker(t)
	registerWorker(t, ts.URL, a)
	registerWorker(t, ts.URL, b)

	a.set(func(f *fakeWorker) { f.cached["d1"] = []byte("result bytes\n") })
	for _, fill := range []map[string]string{
		{"digest": "d1", "name": a.ts.URL},
		{"digest": "d2", "name": b.ts.URL}, // b does NOT actually hold d2
	} {
		body, _ := json.Marshal(fill)
		resp, err := http.Post(ts.URL+"/cluster/v1/fills", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("fill status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/cluster/v1/cache/d1")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != "result bytes\n" {
		t.Fatalf("cache lookup: status %d body %q", resp.StatusCode, got)
	}

	// Stale fill: holder answers 404, the coordinator reports a miss and
	// forgets the record.
	resp2, err := http.Get(ts.URL + "/cluster/v1/cache/d2")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("stale lookup status %d, want 404", resp2.StatusCode)
	}
	c.mu.Lock()
	_, still := c.fills["d2"]
	c.mu.Unlock()
	if still {
		t.Fatal("stale fill record not dropped")
	}

	// Unknown digest is a plain miss.
	resp3, err := http.Get(ts.URL + "/cluster/v1/cache/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest status %d", resp3.StatusCode)
	}
}

// TestRetryAfterHeuristics pins both Retry-After formulas.
func TestRetryAfterHeuristics(t *testing.T) {
	cases := []struct {
		queued, alive, want int
	}{
		{0, 2, 1},
		{16, 2, 9},
		{1000, 2, 60}, // capped
		{4, 0, 5},     // degenerate divisor clamps to 1
	}
	for _, c := range cases {
		if got := globalRetryAfterSeconds(c.queued, c.alive); got != c.want {
			t.Errorf("globalRetryAfterSeconds(%d, %d) = %d, want %d", c.queued, c.alive, got, c.want)
		}
	}
}
