// The worker-side cluster agent: registers (and keeps re-registering,
// as a heartbeat) with the coordinator, flips the serve layer's
// readiness gate, and implements serve.PeerCache against the
// coordinator's digest→owner map. cmd/peiserved creates one per worker
// when -join is set.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"
)

// ClientOptions configures a worker's cluster agent.
type ClientOptions struct {
	// HeartbeatInterval is the registration refresh cadence (default
	// 2s). Registration is idempotent, so the heartbeat doubles as
	// crash-recovery: a coordinator restart re-learns the worker within
	// one interval.
	HeartbeatInterval time.Duration
	// RequestTimeout bounds each coordinator call (default 5s).
	RequestTimeout time.Duration
	// Logf receives agent lifecycle lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Client joins one worker to a cluster. It satisfies serve.PeerCache.
type Client struct {
	coordinator string // coordinator base URL
	advertise   string // this worker's base URL, as peers reach it
	opts        ClientOptions
	httpc       *http.Client

	mu         sync.Mutex
	registered bool
	memberID   string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	fills    sync.WaitGroup // in-flight ReportFill goroutines, joined by Stop
}

// NewClient creates an agent for the worker at advertiseURL, joining
// the coordinator at coordinatorURL. Call Start to begin registering.
func NewClient(coordinatorURL, advertiseURL string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{
		coordinator: coordinatorURL,
		advertise:   advertiseURL,
		opts:        opts,
		httpc:       &http.Client{Timeout: opts.RequestTimeout},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// Start launches the registration/heartbeat loop. onRegistered (may be
// nil) is invoked with true after the first successful registration —
// wire it to serve.Server.SetRegistered so readiness flips once the
// coordinator can route to this worker.
func (c *Client) Start(onRegistered func(bool)) {
	go func() {
		defer close(c.done)
		// First attempt immediately, so startup readiness doesn't wait a
		// full interval.
		c.registerOnce(onRegistered)
		t := time.NewTicker(c.opts.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.registerOnce(onRegistered)
			}
		}
	}()
}

// Stop ends the heartbeat loop and best-effort deregisters, moving the
// worker to draining on the coordinator so no new work routes here
// while in-flight jobs finish.
func (c *Client) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.fills.Wait()
		body, _ := json.Marshal(registerRequest{Name: c.advertise})
		resp, err := c.httpc.Post(c.coordinator+"/cluster/v1/deregister", "application/json", bytes.NewReader(body))
		if err != nil {
			c.opts.Logf("cluster deregister failed (coordinator will health-check us out): %v", err)
			return
		}
		resp.Body.Close()
		c.opts.Logf("cluster deregistered from %s", c.coordinator)
	})
}

// registerOnce performs one registration (or heartbeat refresh).
func (c *Client) registerOnce(onRegistered func(bool)) {
	body, _ := json.Marshal(registerRequest{Name: c.advertise})
	resp, err := c.httpc.Post(c.coordinator+"/cluster/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		c.opts.Logf("cluster register: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.opts.Logf("cluster register: coordinator returned %d", resp.StatusCode)
		return
	}
	var reply struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply); err != nil {
		c.opts.Logf("cluster register: decoding reply: %v", err)
		return
	}
	c.mu.Lock()
	first := !c.registered
	c.registered = true
	c.memberID = reply.ID
	c.mu.Unlock()
	if first {
		c.opts.Logf("cluster registered with %s as %s (advertising %s)", c.coordinator, reply.ID, c.advertise)
		if onRegistered != nil {
			onRegistered(true)
		}
	}
}

// MemberID returns the coordinator-assigned worker ID ("" before the
// first successful registration).
func (c *Client) MemberID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberID
}

// Lookup implements serve.PeerCache: fetch the digest's result through
// the coordinator's peer-cache proxy. Any failure is a miss — the
// worker then simulates, which is always correct.
func (c *Client) Lookup(ctx context.Context, digest string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.coordinator+"/cluster/v1/cache/"+digest, nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false
	}
	return out, true
}

// ReportFill implements serve.PeerCache: announce asynchronously that
// this worker now caches the digest's result. Fire-and-forget — a lost
// report only costs a future peer miss.
func (c *Client) ReportFill(digest string) {
	c.fills.Add(1)
	go func() {
		defer c.fills.Done()
		body, err := json.Marshal(fillRequest{Digest: digest, Name: c.advertise})
		if err != nil {
			return
		}
		resp, err := c.httpc.Post(c.coordinator+"/cluster/v1/fills", "application/json", bytes.NewReader(body))
		if err != nil {
			c.opts.Logf("cluster fill report for %.12s: %v", digest, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			c.opts.Logf("cluster fill report for %.12s: coordinator returned %d", digest, resp.StatusCode)
		}
	}()
}

// String identifies the agent in logs.
func (c *Client) String() string {
	return fmt.Sprintf("cluster.Client(coordinator=%s advertise=%s)", c.coordinator, c.advertise)
}
