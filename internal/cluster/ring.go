// Package cluster turns peiserved into a sharded multi-node service:
// a coordinator consistent-hashes pei.JobSpec digests across registered
// workers (digest-affinity routing, so result-cache and warm-start
// snapshot locality follow the job), health-checks the members,
// re-routes a failed worker's hash range to its ring successor, serves
// peer-aware cache lookups so a result computed anywhere is a hit
// everywhere, and aggregates per-worker queue depth into cluster-wide
// backpressure. cmd/peiserved wires both sides: `-coordinator` runs the
// Coordinator, `-join`/`-advertise` run a worker with a Client.
//
// The package is deliberately decoupled from the simulator: it may not
// import internal/sim or internal/machine (enforced by the clustersafe
// peilint analyzer) — serving topology knows about digests and HTTP,
// never about events or partitions.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringReplicas is the number of virtual points each member contributes
// to the ring. 64 keeps the per-member load spread within a few percent
// for small clusters while keeping rebuilds trivially cheap.
const ringReplicas = 64

// Ring is an immutable consistent-hash ring over member names. Keys
// (job digests) map to the first ring point clockwise from the key's
// hash; removing a member moves only the keys it owned (to their
// successors), which is exactly the failover property digest-affinity
// routing needs: a worker crash re-routes its hash range without
// reshuffling everyone else's cache locality.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given member names. Membership changes
// rebuild the ring; assignment is a pure function of the member-name
// set, so every node (and every test) computes the same owner for a
// digest.
func NewRing(members []string) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(members)*ringReplicas)}
	for _, m := range members {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash collisions between distinct members are vanishingly rare
		// but must still order deterministically.
		return a.member < b.member
	})
	return r
}

// ringHash is the ring's stable hash: the first 8 bytes of SHA-256,
// big-endian. SHA-256 keeps point placement uniform and — unlike
// maphash — identical across processes and releases, which the
// deterministic-assignment guarantee depends on.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len returns the number of members on the ring.
func (r *Ring) Len() int { return len(r.points) / ringReplicas }

// Owner returns the member owning key: the first point at or clockwise
// after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring's first point succeeds the last hash
	}
	return r.points[i].member, true
}

// Successors returns up to n distinct members in ring order starting at
// key's owner. Index 0 is the owner; the rest are the failover order a
// coordinator walks when the owner rejects or dies mid-submit.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
