package config

// Baseline reproduces Table 2 of the paper: 16 four-issue OoO cores at
// 4 GHz, a three-level inclusive hierarchy (32 KB L1D, 256 KB L2,
// 16 MB 16-way L3), a 2 GHz crossbar with 144-bit links, and 8
// daisy-chained HMCs of 16 vaults x 16 banks each.
//
// Clock conversions (CPU clock = 4 GHz):
//   - DRAM tCL = tRCD = tRP = 13.75 ns = 55 cycles.
//   - Crossbar: 144-bit links at 2 GHz = 36 B/2GHz-cycle = 9 B/CPU-cycle.
//   - Off-chip chain: 80 GB/s full duplex = 40 GB/s per direction
//     = 10 B/CPU-cycle per direction.
//   - Vault TSVs: 64 TSVs x 2 Gb/s = 16 GB/s = 4 B/CPU-cycle.
func Baseline() *Config {
	return &Config{
		Cores:      16,
		IssueWidth: 4,
		WindowSize: 64,

		L1:      CacheConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 4, MSHRs: 16},
		L2:      CacheConfig{SizeBytes: 256 << 10, Ways: 8, LatencyCycles: 12, MSHRs: 16},
		L3:      CacheConfig{SizeBytes: 16 << 20, Ways: 16, LatencyCycles: 30, MSHRs: 64},
		L3Banks: 16,

		NoCBytesPerCycle: 9,
		NoCLatency:       8,

		Cubes:            8,
		VaultsPerCube:    16,
		BanksPerVault:    16,
		RowBytes:         8 << 10,
		InterleaveBlocks: 1,

		TCL: 55, TRCD: 55, TRP: 55,
		TREFI: 31200, TRFC: 1400, // 7.8 us / 350 ns at 4 GHz

		LinkBytesPerCycle: 10,
		LinkLatency:       16,
		HopLatency:        8,

		TSVBytesPerCycle: 4,
		TSVLatency:       4,

		PacketHeaderBytes: 16,

		OperandBufferEntries: 4,
		PCUExecWidth:         1,
		MemPCUClockDiv:       2,

		TLBEntries:     64,
		TLBMissLatency: 80,

		DirectoryEntries:  2048,
		DirectoryLatency:  2,
		MonitorLatency:    3,
		PartialTagBits:    10,
		UseIgnoreBit:      true,
		DispatchWindowCyc: 40000, // 10 µs at 4 GHz

		MaxOps: 0,
	}
}

// Scaled returns a shrunken machine for unit tests and quick benchmarks:
// 4 cores, a 256 KB L3, and a single cube of 8 vaults. Cache-capacity
// effects appear at ~100 KB working sets instead of ~16 MB, so tests can
// exercise locality crossovers with tiny inputs.
func Scaled() *Config {
	c := Baseline()
	c.Cores = 4
	c.WindowSize = 32
	c.L1 = CacheConfig{SizeBytes: 4 << 10, Ways: 4, LatencyCycles: 4, MSHRs: 8}
	c.L2 = CacheConfig{SizeBytes: 16 << 10, Ways: 8, LatencyCycles: 12, MSHRs: 8}
	c.L3 = CacheConfig{SizeBytes: 256 << 10, Ways: 16, LatencyCycles: 30, MSHRs: 32}
	c.L3Banks = 4
	c.Cubes = 1
	// Keep the paper's 8:1 vault-to-core ratio (128 vaults / 16 cores)
	// so memory-side bandwidth scales with the rest of the machine.
	c.VaultsPerCube = 32
	c.BanksPerVault = 8
	c.DirectoryEntries = 256
	return c
}
