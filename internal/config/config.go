// Package config defines the machine description consumed by the machine
// builder: core counts, cache geometry, interconnect and HMC parameters,
// and the PEI hardware knobs (PCU operand buffers, PMU directory and
// locality monitor sizes). Presets reproduce Table 2 of the paper and a
// scaled-down variant for fast tests.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"pimsim/internal/addr"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is total capacity; Ways the associativity. The number of
	// sets is derived and must come out a power of two.
	SizeBytes int
	Ways      int
	// LatencyCycles is the access (hit) latency in CPU cycles.
	LatencyCycles int64
	// MSHRs bounds outstanding misses.
	MSHRs int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (addr.BlockBytes * c.Ways) }

func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.MSHRs <= 0 || c.LatencyCycles < 0 {
		return fmt.Errorf("config: %s has non-positive parameter: %+v", name, c)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*addr.BlockBytes != c.SizeBytes {
		return fmt.Errorf("config: %s size %d not divisible into %d-way sets of %d-byte blocks",
			name, c.SizeBytes, c.Ways, addr.BlockBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("config: %s set count %d is not a power of two", name, sets)
	}
	return nil
}

// Config is the complete machine description.
type Config struct {
	// Cores is the number of host processors; IssueWidth is ops issued
	// per core per cycle; WindowSize bounds in-flight memory operations
	// per core (the OoO instruction-window abstraction).
	Cores      int
	IssueWidth int
	WindowSize int

	L1 CacheConfig
	L2 CacheConfig
	L3 CacheConfig
	// L3Banks splits the shared L3 into independently-ported banks.
	L3Banks int

	// NoC models the 2 GHz crossbar: per-port bandwidth in bytes per CPU
	// cycle and one-way latency in CPU cycles.
	NoCBytesPerCycle float64
	NoCLatency       int64

	// Memory geometry.
	Cubes         int
	VaultsPerCube int
	BanksPerVault int
	RowBytes      int
	// InterleaveBlocks: consecutive blocks per cube before rotating.
	InterleaveBlocks int

	// DRAM timing in CPU cycles (13.75 ns at 4 GHz = 55). TREFI/TRFC
	// model refresh (zero TREFI disables it).
	TCL, TRCD, TRP int64
	TREFI, TRFC    int64

	// Off-chip HMC chain: bandwidth per direction in bytes/CPU-cycle and
	// per-hop latency; the chain adds HopLatency per cube index.
	LinkBytesPerCycle float64
	LinkLatency       int64
	HopLatency        int64

	// TSV vertical links per vault.
	TSVBytesPerCycle float64
	TSVLatency       int64

	// Packet framing (HMC-style): header+tail bytes added to every
	// request and response packet.
	PacketHeaderBytes int

	// PCU parameters. MemPCUClockDiv is the clock divisor of memory-side
	// PCUs relative to the CPU clock (2 GHz => 2).
	OperandBufferEntries int
	PCUExecWidth         int
	MemPCUClockDiv       int64

	// PMU parameters.
	DirectoryEntries  int
	DirectoryLatency  int64
	MonitorLatency    int64
	PartialTagBits    uint
	UseIgnoreBit      bool
	IdealDirectory    bool  // infinite entries, zero latency (Ideal-Host, §7.6)
	IdealMonitor      bool  // full tags, zero latency (§7.6)
	BalancedDispatch  bool  // §7.4
	DispatchWindowCyc int64 // halving period of C_req/C_res (10 µs = 40000 cyc)

	// HMC2AtomicsMode models HMC 2.0-style native in-memory atomics
	// (paper footnote 1) as a comparison point: PEIs execute in memory
	// with no PIM directory locking and no host-side coherence actions —
	// the semantics prior PIM work gets by operating on non-cacheable
	// regions. Only meaningful with PIM-Only steering.
	HMC2AtomicsMode bool

	// PrefetchDepth enables a next-N-line prefetcher at each core's L2:
	// every demand L2 miss prefetches the next N blocks. Zero disables.
	// The paper's baseline has no prefetcher; the ablation quantifies how
	// much a prefetching host narrows the PIM advantage on streams.
	PrefetchDepth int

	// Virtual memory (§4.4): when enabled, every core access and every
	// PEI issue translates through a per-core TLB (one translation per
	// PEI, as the single-cache-block restriction guarantees). TLB hits
	// are folded into the L1 pipeline; misses pay TLBMissLatency for the
	// page-table walk.
	EnableVM       bool
	TLBEntries     int
	TLBMissLatency int64

	// MaxOps bounds the number of workload operations each core executes
	// (the stand-in for the paper's 2 B-instruction budget). Zero means
	// run streams to completion.
	MaxOps int64
}

// Mapping derives the address mapping from the memory geometry.
func (c *Config) Mapping() addr.Mapping {
	return addr.Mapping{
		Cubes:            c.Cubes,
		VaultsPerCube:    c.VaultsPerCube,
		BanksPerVault:    c.BanksPerVault,
		RowBytes:         c.RowBytes,
		InterleaveBlocks: c.InterleaveBlocks,
	}
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.IssueWidth <= 0 || c.WindowSize <= 0 {
		return fmt.Errorf("config: core parameters must be positive: cores=%d issue=%d window=%d",
			c.Cores, c.IssueWidth, c.WindowSize)
	}
	if err := c.L1.validate("L1"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if err := c.L3.validate("L3"); err != nil {
		return err
	}
	if c.L3Banks <= 0 || c.L3.Sets()%c.L3Banks != 0 {
		return fmt.Errorf("config: L3Banks = %d must divide L3 sets %d", c.L3Banks, c.L3.Sets())
	}
	if err := c.Mapping().Validate(); err != nil {
		return err
	}
	if c.NoCBytesPerCycle <= 0 || c.LinkBytesPerCycle <= 0 || c.TSVBytesPerCycle <= 0 {
		return fmt.Errorf("config: link bandwidths must be positive")
	}
	if c.TCL < 0 || c.TRCD < 0 || c.TRP < 0 {
		return fmt.Errorf("config: DRAM timings must be non-negative")
	}
	if c.OperandBufferEntries <= 0 || c.PCUExecWidth <= 0 || c.MemPCUClockDiv <= 0 {
		return fmt.Errorf("config: PCU parameters must be positive")
	}
	if !c.IdealDirectory && c.DirectoryEntries <= 0 {
		return fmt.Errorf("config: DirectoryEntries must be positive (or IdealDirectory)")
	}
	if c.PartialTagBits == 0 || c.PartialTagBits > 32 {
		return fmt.Errorf("config: PartialTagBits = %d out of range", c.PartialTagBits)
	}
	if c.BalancedDispatch && c.DispatchWindowCyc <= 0 {
		return fmt.Errorf("config: DispatchWindowCyc must be positive with BalancedDispatch")
	}
	if c.EnableVM && (c.TLBEntries <= 0 || c.TLBMissLatency < 0) {
		return fmt.Errorf("config: EnableVM requires positive TLBEntries and non-negative TLBMissLatency")
	}
	return nil
}

// Clone returns a deep copy (Config contains no reference types).
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}

// LoadJSON reads a configuration from a JSON file, layered over the
// baseline preset so files only need to state overrides.
func LoadJSON(path string) (*Config, error) {
	c := Baseline()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
