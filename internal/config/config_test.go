package config

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineValid(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 2 spot checks.
	if c.Cores != 16 || c.IssueWidth != 4 {
		t.Fatalf("cores/issue = %d/%d, want 16/4", c.Cores, c.IssueWidth)
	}
	if got := c.L3.Sets(); got != 16384 {
		t.Fatalf("L3 sets = %d, want 16384", got)
	}
	if got := c.Mapping().VaultsTotal(); got != 128 {
		t.Fatalf("total vaults = %d, want 128", got)
	}
	if c.TCL != 55 {
		t.Fatalf("tCL = %d cycles, want 55 (13.75 ns at 4 GHz)", c.TCL)
	}
}

func TestScaledValid(t *testing.T) {
	if err := Scaled().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadCache(t *testing.T) {
	c := Baseline()
	c.L1.SizeBytes = 1000 // not divisible into 64 B blocks x ways
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for odd L1 size")
	}
}

func TestValidateCatchesNonPowerOfTwoSets(t *testing.T) {
	c := Baseline()
	c.L2 = CacheConfig{SizeBytes: 192 << 10, Ways: 8, LatencyCycles: 12, MSHRs: 16} // 384 sets
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-power-of-two set count")
	}
}

func TestValidateCatchesBankMismatch(t *testing.T) {
	c := Baseline()
	c.L3Banks = 7
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for L3Banks not dividing sets")
	}
}

func TestValidateCatchesZeroDirectory(t *testing.T) {
	c := Baseline()
	c.DirectoryEntries = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for zero directory entries")
	}
	c.IdealDirectory = true
	if err := c.Validate(); err != nil {
		t.Fatalf("ideal directory should allow zero entries: %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := Baseline()
	cp := c.Clone()
	cp.Cores = 1
	if c.Cores != 16 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestLoadJSONOverlaysBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"Cores": 8, "BalancedDispatch": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores != 8 {
		t.Fatalf("Cores = %d, want 8", c.Cores)
	}
	if !c.BalancedDispatch {
		t.Fatal("BalancedDispatch not set")
	}
	if c.L3.SizeBytes != 16<<20 {
		t.Fatal("baseline fields not preserved under overlay")
	}
}

func TestLoadJSONRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"Cores": -1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(path); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON("/nonexistent/cfg.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
