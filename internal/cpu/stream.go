package cpu

import "pimsim/internal/pim"

// SliceStream is a Stream over a fixed op slice (tests, tiny examples).
type SliceStream struct {
	Ops []Op
	pos int
}

// Next implements Stream.
func (s *SliceStream) Next() (Op, bool) {
	if s.pos >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// FuncStream adapts a pull function to a Stream.
type FuncStream func() (Op, bool)

// Next implements Stream.
func (f FuncStream) Next() (Op, bool) { return f() }

// Queue is a refillable op buffer for writing workload generators as
// batch producers: Fill is called whenever the buffer runs dry and
// should Push the next batch (one outer-loop iteration's worth of ops),
// returning false when the program is over. Using a Queue keeps workload
// code a natural loop body instead of a hand-written state machine.
type Queue struct {
	// Fill produces the next batch. May be nil for a pre-filled queue.
	Fill func(q *Queue) bool

	buf  []Op
	head int
}

// Push appends an op to the buffer.
func (q *Queue) Push(op Op) { q.buf = append(q.buf, op) }

// PushCompute, PushLoad, PushStore, PushPEI, PushFence are convenience
// emitters.
func (q *Queue) PushCompute(cycles int64) { q.Push(Op{Kind: OpCompute, Cycles: cycles}) }
func (q *Queue) PushLoad(a uint64)        { q.Push(Op{Kind: OpLoad, Addr: a}) }
func (q *Queue) PushStore(a uint64)       { q.Push(Op{Kind: OpStore, Addr: a}) }

// PushPEI emits a PIM-enabled instruction.
func (q *Queue) PushPEI(p *pim.PEI) { q.Push(Op{Kind: OpPEI, PEI: p}) }

// PushFence emits a pfence.
func (q *Queue) PushFence() { q.Push(Op{Kind: OpFence}) }

// Len reports buffered ops not yet consumed.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Next implements Stream.
func (q *Queue) Next() (Op, bool) {
	for q.head >= len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
		if q.Fill == nil || !q.Fill(q) {
			return Op{}, false
		}
	}
	op := q.buf[q.head]
	q.head++
	return op, true
}
