package cpu

import (
	"testing"

	"pimsim/internal/pim"
	"pimsim/internal/sim"
)

// fakeMem completes accesses after a fixed latency and records order.
type fakeMem struct {
	k       *sim.Kernel
	latency sim.Cycle
	addrs   []uint64
	active  int
	maxConc int
}

func (m *fakeMem) AccessEvent(core int, a uint64, write bool, done sim.Cont) {
	m.addrs = append(m.addrs, a)
	m.active++
	if m.active > m.maxConc {
		m.maxConc = m.active
	}
	m.k.Schedule(m.latency, func() {
		m.active--
		done.Invoke()
	})
}

type fakePMU struct {
	k      *sim.Kernel
	issued int
	fences int
}

func (p *fakePMU) Issue(pei *pim.PEI) {
	p.issued++
	p.k.Schedule(50, func() {
		if pei.Issuer != nil {
			pei.Issuer.PEIRetired(pei)
		} else if pei.Done != nil {
			pei.Done()
		}
	})
}

func (p *fakePMU) FenceEvent(done sim.Cont) {
	p.fences++
	p.k.ScheduleEvent(10, done.H, done.Arg)
}

func newTestCore(k *sim.Kernel, width, window int, maxOps int64) (*Core, *fakeMem, *fakePMU) {
	m := &fakeMem{k: k, latency: 100}
	p := &fakePMU{k: k}
	return NewCore(0, k, width, window, maxOps, m, p), m, p
}

func loads(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpLoad, Addr: uint64(i * 64)}
	}
	return ops
}

func TestWindowBoundsMLP(t *testing.T) {
	k := sim.NewKernel()
	c, m, _ := newTestCore(k, 4, 8, 0)
	c.Run(&SliceStream{Ops: loads(64)})
	k.Run()
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Retired != 64 {
		t.Fatalf("retired %d, want 64", c.Retired)
	}
	if m.maxConc > 8 {
		t.Fatalf("max concurrency %d exceeds window 8", m.maxConc)
	}
	if m.maxConc < 8 {
		t.Fatalf("max concurrency %d; window underutilized", m.maxConc)
	}
}

func TestIssueWidthBoundsPerCycleIssue(t *testing.T) {
	k := sim.NewKernel()
	c, m, _ := newTestCore(k, 2, 64, 0)
	c.Run(&SliceStream{Ops: loads(10)})
	// After the first cycle only 2 ops may have issued.
	k.RunUntil(0)
	if len(m.addrs) > 2 {
		t.Fatalf("issued %d ops in cycle 0, width is 2", len(m.addrs))
	}
	k.Run()
	if c.Retired != 10 {
		t.Fatalf("retired %d", c.Retired)
	}
}

func TestComputeBlocksIssue(t *testing.T) {
	k := sim.NewKernel()
	c, m, _ := newTestCore(k, 4, 64, 0)
	c.Run(&SliceStream{Ops: []Op{
		{Kind: OpCompute, Cycles: 500},
		{Kind: OpLoad, Addr: 0},
	}})
	k.RunUntil(499)
	if len(m.addrs) != 0 {
		t.Fatal("load issued during compute block")
	}
	k.Run()
	if c.Retired != 2 {
		t.Fatalf("retired %d, want 2", c.Retired)
	}
}

func TestMaxOpsBudget(t *testing.T) {
	k := sim.NewKernel()
	c, _, _ := newTestCore(k, 4, 8, 20)
	c.Run(&SliceStream{Ops: loads(1000)})
	k.Run()
	if c.Retired != 20 {
		t.Fatalf("retired %d, want 20 (budget)", c.Retired)
	}
	if !c.Done() {
		t.Fatal("core not done after budget")
	}
}

func TestPEIIssueAndRetire(t *testing.T) {
	k := sim.NewKernel()
	c, _, p := newTestCore(k, 4, 8, 0)
	userDone := 0
	ops := []Op{
		{Kind: OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: 64, Done: func() { userDone++ }}},
		{Kind: OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: 128}},
	}
	c.Run(&SliceStream{Ops: ops})
	k.Run()
	if p.issued != 2 || c.RetiredPEIs != 2 {
		t.Fatalf("issued/retired PEIs = %d/%d", p.issued, c.RetiredPEIs)
	}
	if userDone != 1 {
		t.Fatal("user Done callback not preserved")
	}
	if ops[0].PEI.Core != 0 {
		t.Fatal("core ID not stamped on PEI")
	}
}

func TestFenceStallsIssue(t *testing.T) {
	k := sim.NewKernel()
	c, m, p := newTestCore(k, 4, 8, 0)
	c.Run(&SliceStream{Ops: []Op{
		{Kind: OpFence},
		{Kind: OpLoad, Addr: 64},
	}})
	k.RunUntil(5)
	if len(m.addrs) != 0 {
		t.Fatal("load issued before fence completed")
	}
	k.Run()
	if p.fences != 1 || c.Retired != 2 {
		t.Fatalf("fences=%d retired=%d", p.fences, c.Retired)
	}
}

func TestOnFinishedFiresOnce(t *testing.T) {
	k := sim.NewKernel()
	c, _, _ := newTestCore(k, 4, 8, 0)
	n := 0
	c.OnFinished = func() { n++ }
	c.Run(&SliceStream{Ops: loads(5)})
	k.Run()
	if n != 1 {
		t.Fatalf("OnFinished fired %d times", n)
	}
}

func TestEmptyStream(t *testing.T) {
	k := sim.NewKernel()
	c, _, _ := newTestCore(k, 4, 8, 0)
	fired := false
	c.OnFinished = func() { fired = true }
	c.Run(&SliceStream{})
	k.Run()
	if !fired || !c.Done() {
		t.Fatal("empty stream should finish immediately")
	}
}

func TestQueueRefill(t *testing.T) {
	batch := 0
	q := &Queue{Fill: func(q *Queue) bool {
		if batch >= 3 {
			return false
		}
		for i := 0; i < 4; i++ {
			q.PushLoad(uint64(batch*4+i) * 64)
		}
		batch++
		return true
	}}
	var seen []uint64
	for {
		op, ok := q.Next()
		if !ok {
			break
		}
		seen = append(seen, op.Addr)
	}
	if len(seen) != 12 {
		t.Fatalf("saw %d ops, want 12", len(seen))
	}
	for i, a := range seen {
		if a != uint64(i)*64 {
			t.Fatalf("op %d addr %d, want %d", i, a, i*64)
		}
	}
}

func TestQueueEmitters(t *testing.T) {
	q := &Queue{}
	q.PushCompute(5)
	q.PushStore(64)
	q.PushPEI(&pim.PEI{Op: pim.OpInc64, Target: 64})
	q.PushFence()
	kinds := []OpKind{OpCompute, OpStore, OpPEI, OpFence}
	for i, want := range kinds {
		op, ok := q.Next()
		if !ok || op.Kind != want {
			t.Fatalf("op %d kind %v, want %v", i, op.Kind, want)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("queue should be exhausted")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Op, bool) {
		if n >= 2 {
			return Op{}, false
		}
		n++
		return Op{Kind: OpCompute}, true
	})
	k := sim.NewKernel()
	c, _, _ := newTestCore(k, 4, 8, 0)
	c.Run(s)
	k.Run()
	if c.Retired != 2 {
		t.Fatalf("retired %d", c.Retired)
	}
}
