// Package cpu models the host processors: 4-issue out-of-order cores
// abstracted as an issue-width- and window-limited consumer of workload
// op streams. This is the substitution for the paper's Pin-based x86
// frontend — the core does not decode x86, it executes a stream of
// {compute, load, store, PEI, pfence} operations whose addresses come
// from the real workload data structures, preserving the memory-system
// behaviour the paper's results depend on.
package cpu

import (
	"pimsim/internal/pim"
	"pimsim/internal/sim"
)

// OpKind classifies a stream operation.
type OpKind uint8

const (
	// OpCompute occupies the issue stage for Cycles cycles (a run of
	// non-memory instructions).
	OpCompute OpKind = iota
	// OpLoad and OpStore access the cache hierarchy at Addr.
	OpLoad
	OpStore
	// OpPEI issues a PIM-enabled instruction.
	OpPEI
	// OpFence is a pfence: issue stalls until all prior writer PEIs
	// (system-wide) complete.
	OpFence
	// OpBarrier stalls issue until all participants of Op.Barrier have
	// arrived (software thread barrier between supersteps).
	OpBarrier
	// OpDrain stalls issue until all of this core's in-flight operations
	// complete — a data-dependence stall on outstanding PEI outputs
	// (e.g. a histogram phase whose results the next phase consumes).
	OpDrain
)

// Op is one element of a workload stream.
type Op struct {
	Kind    OpKind
	Addr    uint64
	Cycles  int64
	PEI     *pim.PEI
	Barrier *Barrier
}

// Stream supplies the ops a hardware context executes, in program order.
type Stream interface {
	// Next returns the next op, or ok=false at the end of the program.
	Next() (op Op, ok bool)
}

// MemPort is the hierarchy interface the core needs (satisfied by
// *cache.Hierarchy).
type MemPort interface {
	AccessEvent(core int, a uint64, write bool, done sim.Cont)
}

// PEIPort is the PMU interface the core needs (satisfied by *pim.PMU).
type PEIPort interface {
	Issue(p *pim.PEI)
	FenceEvent(done sim.Cont)
}

// Core executes one Stream against the memory system.
type Core struct {
	ID int

	k          sim.Scheduler
	issueWidth int
	window     int
	maxOps     int64

	mem MemPort
	pmu PEIPort

	stream   Stream //peilint:allow snapcomplete re-armed by Run with the rebuilt workload's stream; the generator's position restores via the workload snapshot
	inflight int
	finished bool //peilint:allow snapcomplete cleared by Run and re-derived as the restored stream drains
	// blocked marks the issue stage stalled on a fence, barrier, or
	// multi-cycle compute op; completions must not resume issue early.
	blocked bool
	// draining marks an OpDrain waiting for in-flight ops to retire.
	draining bool

	curCycle        sim.Cycle
	issuedThisCycle int
	pumpScheduled   bool

	// Retired counts completed ops; RetiredPEIs the PEI subset.
	Retired     int64
	RetiredPEIs int64
	issued      int64

	// OnFinished, if set, runs once when the stream is exhausted and
	// all in-flight operations have drained.
	OnFinished func()
	notified   bool //peilint:allow snapcomplete re-derived with finished when the restored stream drains
}

// NewCore creates a core. maxOps of zero means unlimited.
func NewCore(id int, k sim.Scheduler, issueWidth, window int, maxOps int64, mem MemPort, pmu PEIPort) *Core {
	if issueWidth <= 0 || window <= 0 {
		panic("cpu: bad core parameters")
	}
	return &Core{ID: id, k: k, issueWidth: issueWidth, window: window, maxOps: maxOps, mem: mem, pmu: pmu}
}

// Core event stages: the core itself is the handler for every per-op
// completion, so issuing a load, store, compute stall, or fence costs no
// allocation.
const (
	coreEvPump      = iota // scheduled pump (issue-width or barrier resume)
	coreEvUnblock          // multi-cycle compute retired; resume issue
	coreEvFenceDone        // pfence drained; retire it and resume issue
	coreEvMemDone          // a load/store completed
)

// OnEvent implements sim.Handler.
func (c *Core) OnEvent(arg sim.EventArg) {
	switch arg.N {
	case coreEvPump:
		c.pumpScheduled = false
		c.pump()
	case coreEvUnblock:
		c.blocked = false
		c.pump()
	case coreEvFenceDone:
		c.blocked = false
		c.Retired++
		c.pump()
	default: // coreEvMemDone
		c.inflight--
		c.Retired++
		c.pump()
		c.maybeFinish()
	}
}

// PEIRetired implements pim.Retiree: the PMU notifies the issuing core
// directly at retire, replacing the per-PEI Done wrapper closure.
func (c *Core) PEIRetired(p *pim.PEI) {
	c.inflight--
	c.Retired++
	c.RetiredPEIs++
	if p.Done != nil {
		p.Done()
	}
	c.pump()
	c.maybeFinish()
}

// Run starts executing the stream; the caller then drives the kernel.
func (c *Core) Run(s Stream) {
	c.stream = s
	c.finished = false
	c.notified = false
	c.pump()
}

// Done reports whether the core has retired everything.
func (c *Core) Done() bool { return c.finished && c.inflight == 0 }

func (c *Core) schedulePump(delay sim.Cycle) {
	if c.pumpScheduled {
		return
	}
	c.pumpScheduled = true
	c.k.ScheduleEvent(delay, c, sim.EventArg{N: coreEvPump})
}

func (c *Core) maybeFinish() {
	if c.Done() && !c.notified {
		c.notified = true
		if c.OnFinished != nil {
			c.OnFinished()
		}
	}
}

// pump issues ops until the window fills, the cycle's issue budget is
// spent, or the stream blocks/ends.
func (c *Core) pump() {
	if c.stream == nil || c.finished {
		c.maybeFinish()
		return
	}
	if c.blocked {
		return
	}
	if c.draining {
		if c.inflight > 0 {
			return
		}
		c.draining = false
		c.Retired++
	}
	for {
		if c.inflight >= c.window {
			return // resumed by a completion
		}
		now := c.k.Now()
		if now != c.curCycle {
			c.curCycle = now
			c.issuedThisCycle = 0
		}
		if c.issuedThisCycle >= c.issueWidth {
			c.schedulePump(1)
			return
		}
		if c.maxOps > 0 && c.issued >= c.maxOps {
			c.finished = true
			c.maybeFinish()
			return
		}
		op, ok := c.stream.Next()
		if !ok {
			c.finished = true
			c.maybeFinish()
			return
		}
		c.issued++
		c.issuedThisCycle++
		switch op.Kind {
		case OpCompute:
			c.Retired++
			if op.Cycles > 0 {
				c.blocked = true
				c.k.ScheduleEvent(sim.Cycle(op.Cycles), c, sim.EventArg{N: coreEvUnblock})
				return
			}
		case OpLoad, OpStore:
			c.inflight++
			write := op.Kind == OpStore
			c.mem.AccessEvent(c.ID, op.Addr, write, sim.Cont{H: c, Arg: sim.EventArg{N: coreEvMemDone}})
		case OpPEI:
			c.inflight++
			p := op.PEI
			p.Core = c.ID
			p.Issuer = c
			c.pmu.Issue(p)
		case OpFence:
			// pfence blocks the issue stage; in-flight ops may drain
			// meanwhile.
			c.blocked = true
			c.pmu.FenceEvent(sim.Cont{H: c, Arg: sim.EventArg{N: coreEvFenceDone}})
			return
		case OpDrain:
			if c.inflight == 0 {
				c.Retired++
				continue
			}
			c.draining = true
			return
		case OpBarrier:
			c.blocked = true
			op.Barrier.Arrive(func() {
				c.blocked = false
				c.Retired++
				c.schedulePump(0)
			})
			return
		}
	}
}
