package cpu

// Barrier synchronizes the issue stages of a workload's threads: a core
// consuming an OpBarrier stalls until all N participants have arrived.
// Iterative workloads place a barrier (all ops issued) followed by a
// pfence (all PEIs complete) between supersteps.
type Barrier struct {
	n       int
	arrived int
	waiters []func()
	// Generations counts completed barrier episodes (for tests).
	Generations int64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cpu: barrier needs at least one participant")
	}
	return &Barrier{n: n}
}

// Arrive registers one participant; resume runs when all have arrived.
// The last arrival releases everyone synchronously.
func (b *Barrier) Arrive(resume func()) {
	b.arrived++
	if b.arrived < b.n {
		b.waiters = append(b.waiters, resume)
		return
	}
	// Episode complete: release all.
	waiters := b.waiters
	b.waiters = nil
	b.arrived = 0
	b.Generations++
	for _, w := range waiters {
		w()
	}
	resume()
}
