package cpu

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes the core's retirement counters and issue-stage
// clock state. At a quiescent phase boundary the core has finished its
// (round-limited) stream and drained: no in-flight ops, no stalls, no
// scheduled pump — all of which is asserted rather than serialized, so
// a snapshot attempt mid-flight fails loudly.
func (c *Core) SnapshotTo(w *snap.Writer) {
	w.Section("CORE")
	if c.inflight != 0 || c.blocked || c.draining || c.pumpScheduled {
		w.Fail(fmt.Errorf("%w: core %d not idle (inflight=%d blocked=%v draining=%v pump=%v)",
			snap.ErrNotQuiescent, c.ID, c.inflight, c.blocked, c.draining, c.pumpScheduled))
		return
	}
	w.I64(c.curCycle)
	w.Int(c.issuedThisCycle)
	w.I64(c.Retired)
	w.I64(c.RetiredPEIs)
	w.I64(c.issued)
}

// RestoreFrom loads core state saved by SnapshotTo. The core must be
// freshly built (or idle); the stream is re-armed separately via Run.
func (c *Core) RestoreFrom(r *snap.Reader) {
	r.Section("CORE")
	if c.inflight != 0 || c.blocked || c.draining || c.pumpScheduled {
		r.Fail(fmt.Errorf("%w: restore target core %d not idle", snap.ErrNotQuiescent, c.ID))
		return
	}
	c.curCycle = r.I64()
	c.issuedThisCycle = r.Int()
	c.Retired = r.I64()
	c.RetiredPEIs = r.I64()
	c.issued = r.I64()
}

// SnapshotTo serializes the barrier's episode count. At a phase
// boundary no participant is parked at the barrier (every core drained
// past it), which is asserted.
func (b *Barrier) SnapshotTo(w *snap.Writer) {
	w.Section("BARR")
	if b.arrived != 0 || len(b.waiters) != 0 {
		w.Fail(fmt.Errorf("%w: barrier has %d arrivals and %d waiters", snap.ErrNotQuiescent, b.arrived, len(b.waiters)))
		return
	}
	w.I64(b.Generations)
}

// RestoreFrom loads barrier state saved by SnapshotTo. The target
// barrier must have no parked participants — a waiter resumed into
// restored state would double-arrive.
func (b *Barrier) RestoreFrom(r *snap.Reader) {
	r.Section("BARR")
	if b.arrived != 0 || len(b.waiters) != 0 {
		r.Fail(fmt.Errorf("%w: restore target barrier has %d arrivals and %d waiters", snap.ErrNotQuiescent, b.arrived, len(b.waiters)))
		return
	}
	b.Generations = r.I64()
}
