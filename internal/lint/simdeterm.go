// The simdeterm analyzer: simulator code must be a pure function of its
// configuration and seeds. Wall-clock time, the seedless global RNG,
// and order-sensitive map iteration are the three ways nondeterminism
// has historically crept into discrete-event simulators, and any one of
// them breaks the byte-identical golden tables the harness pins.

package lint

import (
	"go/ast"
	"go/types"
)

// simPackages is the determinism perimeter: every package whose code
// runs inside (or feeds) a simulation, plus the serve layer, whose only
// legitimate wall-clock read is the injectable Options.now default.
var simPackages = []string{
	"internal/sim",
	"internal/cache",
	"internal/dram",
	"internal/hmc",
	"internal/pim",
	"internal/cpu",
	"internal/vm",
	"internal/machine",
	"internal/memlayout",
	"internal/stats",
	"internal/workloads",
	"internal/serve",
}

// SimDeterm forbids nondeterminism sources in simulator packages.
var SimDeterm = &Analyzer{
	Name: "simdeterm",
	Doc: "forbid wall-clock time, the seedless global math/rand RNG, and " +
		"order-sensitive map iteration in simulator packages — directly or " +
		"through any chain of calls into helper packages; simulated time " +
		"comes from sim.Kernel cycles and every RNG must be rand.New with a " +
		"recorded seed so runs are reproducible bit for bit",
	Packages:  simPackages,
	FactTypes: []Fact{(*NondetFact)(nil)},
	Run:       runSimDeterm,
}

// NondetFact marks a function that transitively reaches a wall-clock or
// seedless-RNG source. Exported on every module function so that a
// simulator package calling a helper two imports away is caught at the
// call site, with the witness chain in the message.
type NondetFact struct {
	Source string // the forbidden operation, e.g. "time.Now"
	Path   string // witness call chain down to Source
}

// AFact marks NondetFact as a fact type.
func (*NondetFact) AFact() {}

// globalRandAllowed lists math/rand package-level functions that do not
// touch the global RNG: constructors for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand; seeding is the caller's
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSimDeterm(pass *Pass) error {
	gatherNondetFacts(pass)
	for _, file := range pass.Files {
		// A call's Fun selector is handled by checkNondetCall; remember
		// those nodes so checkNondetRef only sees true value references
		// (callbacks, injectable seams) — a call would otherwise report
		// twice.
		calleePos := make(map[ast.Expr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenRef(pass, n)
				if !calleePos[n] {
					checkNondetRef(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			case *ast.CallExpr:
				calleePos[ast.Unparen(n.Fun)] = true
				checkNondetCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// nondetSource classifies a function as a direct nondeterminism source:
// wall-clock reads and the seedless global RNG.
func nondetSource(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			return "time." + f.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if isPkgFunc(f, f.Pkg().Path()) && !globalRandAllowed[f.Name()] {
			return f.Pkg().Name() + "." + f.Name(), true
		}
	}
	return "", false
}

// gatherNondetFacts computes, for every function declared in the
// package, whether it transitively reaches a nondeterminism source —
// directly, through package-local calls, or through calls into
// already-analyzed module packages (their NondetFacts) — and exports a
// NondetFact for each one that does.
func gatherNondetFacts(pass *Pass) {
	decls := localFuncs(pass)
	edges := localEdges(pass, decls)
	seeds := make(map[*types.Func]reach)
	for f, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, seeded := seeds[f]; seeded {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if callee, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
					if src, bad := nondetSource(callee); bad {
						seeds[f] = reach{Source: src, Path: src}
					}
				}
			case *ast.CallExpr:
				callee := funcFor(pass.Info, n.Fun)
				if callee == nil || callee.Pkg() == pass.Pkg {
					return true
				}
				var fact NondetFact
				if pass.ImportObjectFact(callee, &fact) {
					seeds[f] = reach{Source: fact.Source, Path: chainTo(callee, reach{fact.Source, fact.Path})}
				}
			}
			return true
		})
	}
	for f, r := range propagateReach(decls, edges, seeds) {
		pass.ExportObjectFact(f, &NondetFact{Source: r.Source, Path: r.Path})
	}
}

// checkNondetCall flags calls from simulator code into module functions
// outside the determinism perimeter that transitively reach a
// nondeterminism source. Calls within the perimeter are not re-flagged
// here: the source itself already gets a direct diagnostic in its own
// package.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	callee := funcFor(pass.Info, call.Fun)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg || pass.InScope(callee.Pkg()) {
		return
	}
	var fact NondetFact
	if !pass.ImportObjectFact(callee, &fact) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s reaches %s (%s): simulator code must stay deterministic through every helper package it calls",
		qualName(callee), fact.Source, chainTo(callee, reach{fact.Source, fact.Path}))
}

// checkNondetRef flags value references (not calls) to out-of-scope
// module functions that transitively reach a nondeterminism source:
// storing such a function in a callback field smuggles the wall clock
// into the perimeter just as surely as calling it, and func-valued
// seams are otherwise invisible to the call-graph checks.
func checkNondetRef(pass *Pass, sel *ast.SelectorExpr) {
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg() == pass.Pkg || pass.InScope(f.Pkg()) {
		return
	}
	// No module-locality gate needed: facts are only ever exported on
	// module-local declarations, so stdlib references never match here
	// (checkForbiddenRef covers the direct stdlib sources).
	var fact NondetFact
	if !pass.ImportObjectFact(f, &fact) {
		return
	}
	pass.Reportf(sel.Pos(),
		"reference to %s reaches %s (%s): storing it as a callback pulls nondeterminism inside the simulator perimeter — inject a deterministic implementation or waive with a reason",
		qualName(f), fact.Source, chainTo(f, reach{fact.Source, fact.Path}))
}

// checkForbiddenRef flags any reference (call or value use, so the
// injectable `o.now = time.Now` pattern is caught too) to wall-clock
// time or the global math/rand RNG.
func checkForbiddenRef(pass *Pass, sel *ast.SelectorExpr) {
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			pass.Reportf(sel.Pos(),
				"time.%s in simulator code: simulated time must come from sim.Kernel cycles, not the wall clock",
				f.Name())
		}
	case "math/rand", "math/rand/v2":
		if isPkgFunc(f, f.Pkg().Path()) && !globalRandAllowed[f.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s uses the seedless global RNG: use rand.New(rand.NewSource(seed)) with a recorded seed",
				f.Pkg().Name(), f.Name())
		}
	}
}

// checkMapRange flags `range` over a map unless the loop body is
// provably order-insensitive: every statement either appends to a slice
// that is sorted later in the same block, assigns through a map index
// (commutative build), or accumulates with ++/--/+= (commutative fold).
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if mapRangeIsBenign(pass, file, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		"iteration over a map has nondeterministic order: collect and sort the keys first (or waive with //peilint:allow simdeterm <reason> if order provably cannot reach scheduling, stats, or output)")
}

func mapRangeIsBenign(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	// Objects of slices appended to inside the body; each must be
	// sorted after the loop for the pattern to count as benign.
	var appendTargets []types.Object
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// Commutative counter.
		case *ast.AssignStmt:
			if !benignAssign(pass, s, &appendTargets) {
				return false
			}
		default:
			return false
		}
	}
	if len(appendTargets) == 0 {
		return true
	}
	rest := stmtsAfter(file, rs)
	if rest == nil {
		return false
	}
	for _, target := range appendTargets {
		if !sortedLater(pass, rest, target) {
			return false
		}
	}
	return true
}

// benignAssign accepts `s = append(s, ...)` (recording s), assignments
// whose targets are all map index expressions, and `x += v` / `x -= v`
// on numeric or slice-free commutative accumulators.
func benignAssign(pass *Pass, s *ast.AssignStmt, appendTargets *[]types.Object) bool {
	switch s.Tok.String() {
	case "+=", "-=", "|=", "&=", "^=":
		// Commutative-fold accumulation (strings are caught separately
		// by hotalloc where it matters; += on a string is still
		// order-sensitive, so only numeric types pass).
		t := pass.Info.TypeOf(s.Lhs[0])
		if t == nil {
			return false
		}
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsNumeric != 0
	case "=", ":=":
	default:
		return false
	}
	// append-to-slice form: single `s = append(s, ...)`.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if lhs, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(lhs); obj != nil {
							*appendTargets = append(*appendTargets, obj)
							return true
						}
					}
				}
			}
		}
	}
	// Map-build form: every target is an index into a map.
	for _, lhs := range s.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := pass.Info.TypeOf(idx.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
	}
	return true
}

// stmtsAfter returns the statements following stmt in its directly
// enclosing block, or nil if the block cannot be found.
func stmtsAfter(file *ast.File, stmt ast.Stmt) []ast.Stmt {
	var rest []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			if s == stmt {
				rest = block.List[i+1:]
				return false
			}
		}
		return true
	})
	return rest
}

// sortedLater reports whether a sort.* or slices.Sort* call taking
// target as its first argument appears in stmts.
func sortedLater(pass *Pass, stmts []ast.Stmt, target types.Object) bool {
	found := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found || len(call.Args) == 0 {
				return true
			}
			f := funcFor(pass.Info, call.Fun)
			if f == nil || f.Pkg() == nil {
				return true
			}
			pkg := f.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if pass.Info.ObjectOf(id) == target {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
