// An analysistest-style golden runner: testdata packages annotate the
// lines an analyzer must flag with trailing `// want "regexp"` comments
// (several per line allowed), and AnalyzerTest fails on any missing or
// unexpected diagnostic. Lines carrying a valid //peilint:allow
// directive have no want comment — the test passes only if suppression
// actually works, which is what pins the waiver mechanism itself.

package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted patterns of a want comment; both
// double-quoted and backtick-quoted forms are accepted, backticks being
// the friendlier choice for patterns containing escapes.
var wantRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// AnalyzerTest loads the package in testdata/src/<pkgdir> (relative to
// the caller's directory), runs the analyzer on it through the driver —
// with fact propagation across its import closure, so golden packages
// may import sibling testdata packages under the "peilinttest" root —
// and checks its diagnostics against the `// want` expectations in the
// source.
func AnalyzerTest(t *testing.T, a *Analyzer, pkgdir string) {
	t.Helper()
	loader := testdataLoader(t)
	dir := filepath.Join("testdata", "src", pkgdir)
	pkg, err := loader.LoadDir(dir, "peilinttest/"+pkgdir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analyzeSingle(loader, pkg, a)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgdir, err)
	}

	expects, err := parseExpectations(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

// testdataLoader builds a loader for the enclosing module with the
// "peilinttest" import root mapped to this package's testdata/src, so
// golden packages can import one another.
func testdataLoader(t *testing.T) *Loader {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoots = map[string]string{"peilinttest": src}
	return loader
}

// moduleRoot finds the enclosing module root from the test's working
// directory (the package directory under `go test`).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}

func parseExpectations(pkg *Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					pat := q[1]
					if pat == "" {
						pat = q[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return expects, nil
}
