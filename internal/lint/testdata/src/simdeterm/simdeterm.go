// Seeded violations and accepted patterns for the simdeterm analyzer.
package simdeterm

import (
	"math/rand"
	"sort"
	"time"
)

// Clock exercises the wall-clock checks.
type Clock struct {
	now func() time.Time
}

func wallClock() int64 {
	t := time.Now()    // want `time.Now in simulator code`
	d := time.Since(t) // want `time.Since in simulator code`
	return t.UnixNano() + int64(d)
}

func injectClock(c *Clock) {
	// A value reference (not a call) must be caught too.
	c.now = time.Now // want `time.Now in simulator code`
}

func waivedClock(c *Clock) {
	c.now = time.Now //peilint:allow simdeterm injectable clock default; tests override
}

func globalRNG(n int) int {
	return rand.Intn(n) // want `seedless global RNG`
}

func globalPerm(n int) []int {
	//peilint:allow simdeterm demo of a waived global draw
	p := rand.Perm(n)
	return p
}

func seededRNG(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return rng.Intn(n)
}

func mapOrderLeaks(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over a map has nondeterministic order`
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // append-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapBuild(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src { // commutative map build: allowed
		dst[k] = v
	}
	return dst
}

func commutativeSum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative fold: allowed
		total += v
	}
	return total
}

func waivedMapRange(m map[string]func()) {
	//peilint:allow simdeterm callbacks are order-independent by contract
	for _, fn := range m {
		fn()
	}
}

func stackedWaivers(c *Clock) {
	// Directives stack: a contiguous block above the statement waives
	// several analyzers at once.
	//peilint:allow simdeterm reached through the directive below it
	//peilint:allow hotalloc exercise for the stacked-directive block
	c.now = time.Now
}
