// Seeded violations and accepted patterns for the clustersafe analyzer.
package clustersafe

import (
	"sort"

	_ "pimsim/internal/machine" // want `import "pimsim/internal/machine" in cluster control-plane code`
	_ "pimsim/internal/sim"     // want `import "pimsim/internal/sim" in cluster control-plane code`
	"pimsim/internal/stats"     // serving-layer dependencies are allowed
)

// Router stands in for coordinator routing state: plain data plus
// metrics, no simulator types.
type Router struct {
	members []string
	reg     *stats.Registry
}

// Pick is ordinary control-plane code: accepted.
func (r *Router) Pick() string {
	sort.Strings(r.members)
	if len(r.members) == 0 {
		return ""
	}
	return r.members[0]
}
