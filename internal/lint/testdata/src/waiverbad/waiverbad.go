// Malformed //peilint:allow directives the waiver analyzer must report,
// plus a valid one it must accept.
package waiverbad

import "time"

func clock() time.Time {
	return time.Now() //peilint:allow simdeterm injectable clock used by tests only
}

func badAnalyzer() time.Time {
	return time.Now() //peilint:allow simdetrem typo'd analyzer name // want `peilint:allow names unknown analyzer "simdetrem"`
}

func missingReason() time.Time {
	return time.Now() //peilint:allow simdeterm // want `peilint:allow simdeterm is missing a reason`
}

func emptyDirective() time.Time {
	return time.Now() //peilint:allow // want `peilint:allow needs an analyzer name and a reason`
}
