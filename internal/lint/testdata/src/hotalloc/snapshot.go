// Phase-boundary serialization: the whole file is exempt from hotalloc
// (none of the calls below carry a want comment), pinning the
// snapshot.go carve-out.
package hotalloc

import "fmt"

// SnapshotTo formats freely: it runs once per quiescent boundary, never
// inside the event loop.
func (q *Queue) SnapshotTo() error {
	return fmt.Errorf("snapshot of %s", q.name)
}

func (q *Queue) snapshotLabel(part int) string {
	return q.name + fmt.Sprintf("-%d", part)
}
