// Seeded violations and accepted patterns for the hotalloc analyzer.
package hotalloc

import "fmt"

// Queue is a mock event kernel.
type Queue struct {
	name string
	fns  []func()
}

// NewQueue is construction time: formatting is allowed here.
func NewQueue(id int) *Queue {
	return &Queue{name: fmt.Sprintf("queue-%d", id)}
}

func (q *Queue) label(event int) string {
	return fmt.Sprintf("%s/%d", q.name, event) // want `fmt.Sprintf allocates a string per event`
}

func (q *Queue) concat(suffix string) string {
	return q.name + suffix // want `string concatenation allocates per event`
}

func (q *Queue) accumulate(suffix string) {
	q.name += suffix // want `string \+= allocates per event`
}

func (q *Queue) constConcat() string {
	const a, b = "queue", "-static"
	return a + b // compile-time constant: allowed
}

func (q *Queue) push(event int) {
	q.fns = append(q.fns, func() { // want `closure captures event, q and therefore allocates per event`
		q.consume(event)
	})
}

func (q *Queue) pushStatic() {
	q.fns = append(q.fns, func() {}) // capture-free literal: allowed
}

func (q *Queue) guard(delay int) {
	if delay < 0 {
		// Panic arguments only allocate on the way down: allowed.
		panic(fmt.Sprintf("hotalloc: negative delay %d", delay))
	}
}

func (q *Queue) waived(event int) string {
	return fmt.Sprintf("%s/%d", q.name, event) //peilint:allow hotalloc debug-only path behind verbose flag
}

func (q *Queue) consume(event int) {
	q.guard(event)
}
