// Seeded violations and accepted patterns for the hotalloc analyzer.
package hotalloc

import "fmt"

// Queue is a mock event kernel.
type Queue struct {
	name string
	fns  []func()
}

// NewQueue is construction time: formatting is allowed here.
func NewQueue(id int) *Queue {
	return &Queue{name: fmt.Sprintf("queue-%d", id)}
}

func (q *Queue) label(event int) string {
	return fmt.Sprintf("%s/%d", q.name, event) // want `fmt.Sprintf allocates a string per event`
}

func (q *Queue) concat(suffix string) string {
	return q.name + suffix // want `string concatenation allocates per event`
}

func (q *Queue) accumulate(suffix string) {
	q.name += suffix // want `string \+= allocates per event`
}

func (q *Queue) constConcat() string {
	const a, b = "queue", "-static"
	return a + b // compile-time constant: allowed
}

func (q *Queue) push(event int) {
	q.fns = append(q.fns, func() { // want `closure captures event, q and therefore allocates per event`
		q.consume(event)
	})
}

func (q *Queue) pushStatic() {
	q.fns = append(q.fns, func() {}) // capture-free literal: allowed
}

func (q *Queue) guard(delay int) {
	if delay < 0 {
		// Panic arguments only allocate on the way down: allowed.
		panic(fmt.Sprintf("hotalloc: negative delay %d", delay))
	}
}

func (q *Queue) waived(event int) string {
	return fmt.Sprintf("%s/%d", q.name, event) //peilint:allow hotalloc debug-only path behind verbose flag
}

func (q *Queue) consume(event int) {
	q.guard(event)
}

// txn mimics a pooled transaction handler from the component packages
// the analyzer's widened scope covers (cache, dram, hmc, pim).
type txn struct {
	q     *Queue
	stage int
}

// OnEvent dispatches on stored state instead of capturing it: allowed.
func (t *txn) OnEvent(arg int) {
	t.stage = arg
	t.q.consume(arg)
}

func (t *txn) validate() error {
	if t.stage < 0 {
		return fmt.Errorf("hotalloc: bad stage %d", t.stage) // want `fmt.Errorf allocates a string per event`
	}
	return nil
}

func (t *txn) validateWaived() error {
	if t.stage < 0 {
		//peilint:allow hotalloc error path only reached on a malformed transaction
		return fmt.Errorf("hotalloc: bad stage %d", t.stage)
	}
	return nil
}
