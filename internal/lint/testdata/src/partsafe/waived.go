// Waived exceptions: a generation-time cache that legitimately lives
// outside the partition discipline. No want comments here — the test
// passes only if the directives actually suppress the diagnostics.
package partsafe

import (
	"sync" //peilint:allow partsafe generation-time cache only; immutable values, never touched by event handlers
)

// cache memoizes expensive generated inputs across harness cells.
var cache sync.Map

// Memo returns the cached value for k, computing it once.
func Memo(k string, v int) int {
	if got, ok := cache.Load(k); ok {
		return got.(int)
	}
	cache.Store(k, v)
	return v
}

// Warm prefetches the cache on a background goroutine before any
// simulation starts; waived because no partition exists yet.
func Warm(keys []string) {
	//peilint:allow partsafe pre-simulation warmup; runs before any partition is created
	go func() {
		for _, k := range keys {
			Memo(k, len(k))
		}
	}()
}
