// Seeded violations and accepted patterns for the partsafe analyzer.
package partsafe

import (
	"sort"
	"sync"        // want `import "sync" in partition-resident code`
	"sync/atomic" // want `import "sync/atomic" in partition-resident code`
)

// Controller stands in for a partition-resident component.
type Controller struct {
	pending []int
	count   atomic.Int64
	mu      sync.Mutex
}

// Tick is an event handler; spawning work from it is flagged.
func (c *Controller) Tick() {
	go c.drain() // want `go statement in partition-resident code`
}

// drain shows the remaining forbidden shapes.
func (c *Controller) drain() {
	done := make(chan struct{}) // want `make\(chan\) in partition-resident code`
	done <- struct{}{}          // want `channel send in partition-resident code`
	select {                    // want `select in partition-resident code`
	case <-done:
	default:
	}
}

// Sort is plain single-threaded component code: accepted.
func (c *Controller) Sort() {
	sort.Ints(c.pending)
}
