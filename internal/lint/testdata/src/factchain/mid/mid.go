// The middle of the fact-propagation chain: wraps the leaf package
// without touching time itself, so only fact propagation can see that
// Wrap is nondeterministic.
package mid

import "peilinttest/factchain/leaf"

// Wrap hides leaf.Stamp behind an innocent-looking signature.
func Wrap() int64 { return leaf.Stamp() }

// Double stays deterministic through the same leaf package.
func Double(x int64) int64 { return leaf.Pure(x) }
