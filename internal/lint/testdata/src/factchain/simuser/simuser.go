// The top of the fact-propagation chain: simulator-style code calling
// a helper whose nondeterminism is two packages away. The diagnostic
// must name the full witness chain.
package simuser

import "peilinttest/factchain/mid"

// Tick calls a wrapper whose wall-clock read is two packages down.
func Tick() int64 {
	return mid.Wrap() // want `reaches time\.Now \(mid\.Wrap → leaf\.Stamp → time\.Now\)`
}

// Calc follows an equally deep but deterministic chain: no diagnostic.
func Calc() int64 {
	return mid.Double(21)
}

// hook is the injectable-seam pattern: storing the wrapper as a
// callback smuggles the wall clock in without any call expression.
var hook func() int64

func Install() {
	hook = mid.Wrap // want `reference to mid\.Wrap reaches time\.Now`
}

// Installing the deterministic wrapper is fine.
var calc func(int64) int64

func InstallCalc() {
	calc = mid.Double
}
