// The bottom of the fact-propagation chain: a helper package, outside
// every analyzer's scope, that reads the wall clock. Nothing reports
// here — the NondetFact exported on Stamp is what travels upward.
package leaf

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Pure is deterministic; callers must not be flagged.
func Pure(x int64) int64 { return x * 2 }
