// Driver-level stale-waiver suite (no want comments — the driver test
// asserts on Analyze's output directly): the scratch waiver suppresses
// real snapcomplete findings and must NOT be reported; the directive
// above RestoreFrom excuses nothing, and the hotalloc directive names
// an analyzer that reports nothing in this package — both are stale.
package stalewaiver

type W struct{ out []int64 }

func (w *W) I64(v int64) { w.out = append(w.out, v) }

type R struct{ in []int64 }

func (r *R) I64() int64 { v := r.in[0]; r.in = r.in[1:]; return v }

type Box struct {
	clock   int64
	scratch []int64 //peilint:allow snapcomplete derived scratch space, rebuilt on demand
}

func (b *Box) Step() { b.clock++; b.scratch = b.scratch[:0] }

func (b *Box) SnapshotTo(w *W) { w.I64(b.clock) }

//peilint:allow snapcomplete stale by construction: the restore below is complete
func (b *Box) RestoreFrom(r *R) { b.clock = r.I64() }

//peilint:allow hotalloc stale by construction: hotalloc reports nothing here
func (b *Box) Format() { _ = b.clock }
