// Golden suite for the snapcomplete analyzer: complete pairs pass,
// the seeded missing-field regression fires both ways, a field
// serialized but not restored fires once, waived pool fields are
// suppressed, and orphaned half-pairs are reported.
package snapcomplete

// W and R stand in for snap.Writer / snap.Reader.
type W struct{ out []int64 }

func (w *W) I64(v int64) { w.out = append(w.out, v) }

type R struct{ in []int64 }

func (r *R) I64() int64 { v := r.in[0]; r.in = r.in[1:]; return v }

// Complete serializes and restores every mutable field; the never-
// assigned cfg field is immutable and imposes no obligation.
type Complete struct {
	cfg   int64
	clock int64
	hits  int64
}

func (c *Complete) Step() { c.clock++; c.hits++ }

func (c *Complete) SnapshotTo(w *W) { w.I64(c.clock); w.I64(c.hits) }

func (c *Complete) RestoreFrom(r *R) { c.clock = r.I64(); c.hits = r.I64() }

// Missing is the seeded regression: cursor is advanced by Step but
// absent from both snapshot methods — the exact bug class that
// corrupts warm starts silently.
type Missing struct {
	clock  int64
	cursor int64 // want `cursor.*not written by SnapshotTo` `cursor.*not restored by RestoreFrom`
}

func (m *Missing) Step() { m.clock++; m.cursor++ }

func (m *Missing) SnapshotTo(w *W) { w.I64(m.clock) }

func (m *Missing) RestoreFrom(r *R) { m.clock = r.I64() }

// HalfRestored serializes seq but forgets to put it back.
type HalfRestored struct {
	clock int64
	seq   int64 // want `seq.*not restored by RestoreFrom`
}

func (h *HalfRestored) Step() { h.clock++; h.seq++ }

func (h *HalfRestored) SnapshotTo(w *W) { w.I64(h.clock); w.I64(h.seq) }

func (h *HalfRestored) RestoreFrom(r *R) { h.clock = r.I64(); _ = r.I64() }

// Pooled waives its free list: pools recycle capacity, not state.
type Pooled struct {
	clock int64
	free  []int64 //peilint:allow snapcomplete pool of recycled slots, rebuilt empty on restore
}

func (p *Pooled) Step() { p.clock++; p.free = append(p.free, p.clock) }

func (p *Pooled) SnapshotTo(w *W) { w.I64(p.clock) }

func (p *Pooled) RestoreFrom(r *R) { p.clock = r.I64() }

// Orphan writes a snapshot nobody can load.
type Orphan struct{ clock int64 }

func (o *Orphan) SnapshotTo(w *W) { w.I64(o.clock) } // want `Orphan has SnapshotTo but no RestoreFrom`

// Loner restores from a snapshot nobody writes.
type Loner struct{ clock int64 }

func (l *Loner) RestoreFrom(r *R) { l.clock = r.I64() } // want `Loner has RestoreFrom but no SnapshotTo`
