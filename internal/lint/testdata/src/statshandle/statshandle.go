// Seeded violations and accepted patterns for the statshandle analyzer.
package statshandle

import "pimsim/internal/stats"

// Core is a mock per-event component.
type Core struct {
	reg  *stats.Registry
	hits stats.Handle
}

// New resolves handles at construction time — the pattern the analyzer
// steers authors toward.
func New(reg *stats.Registry) *Core {
	return &Core{reg: reg, hits: reg.Counter("core.hits")}
}

// Tick is a hot root: direct string-keyed calls are flagged.
func (c *Core) Tick() {
	c.hits.Inc()            // handle update: allowed
	c.reg.Inc("core.ticks") // want `string-keyed stats.Registry.Inc in Tick's call tree`
	c.bump()
}

// bump is reachable from Tick, so the string-keyed call inside it is
// flagged transitively.
func (c *Core) bump() {
	c.reg.Add("core.bumps", 1) // want `string-keyed stats.Registry.Add in Tick's call tree \(via bump\)`
}

// Step is a hot root too; reads are as banned as writes.
func (c *Core) Step() int64 {
	return c.reg.Get("core.hits") // want `string-keyed stats.Registry.Get in Step's call tree`
}

// Schedule with a deliberate, documented exception.
func (c *Core) Schedule(delay int64) {
	c.reg.Set("core.last_delay", delay) //peilint:allow statshandle one write per schedule tracepoint, measured irrelevant
}

// Summary is a cold path: string-keyed reads are fine here.
func (c *Core) Summary() int64 {
	return c.reg.Get("core.hits") + c.reg.Get("core.bumps")
}
