// Golden suite for the leaksafe analyzer: response bodies must be
// closed or handed off, goroutines need a lifecycle, and no mutex may
// be held across an HTTP round trip — directly or through a helper
// carrying an HTTPFact.
package leaksafe

import (
	"context"
	"net/http"
	"sync"
)

type svc struct {
	mu     sync.Mutex
	client *http.Client
	peers  []string
	stop   chan struct{}
	wg     sync.WaitGroup
}

// fetchOK closes its response: clean (and carries an HTTPFact).
func (s *svc) fetchOK(url string) error {
	resp, err := s.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}

// fetchLeak drops the response without closing its body.
func (s *svc) fetchLeak(url string) (int, error) {
	resp, err := s.client.Get(url) // want `body is never closed`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// fetchHandoff returns the response: the caller owns the close.
func (s *svc) fetchHandoff(url string) (*http.Response, error) {
	resp, err := s.client.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// probe leaks through the package-level http.Get as well.
func probe(url string) error {
	resp, err := http.Get(url) // want `body is never closed`
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}

// fireAndForget launches a goroutine nothing can stop or wait for.
func (s *svc) fireAndForget(url string) {
	go func() { // want `goroutine launched without a lifecycle`
		_ = s.fetchOK(url)
	}()
}

// withCtx observes a context: clean.
func (s *svc) withCtx(ctx context.Context, url string) {
	go func() {
		<-ctx.Done()
		_ = url
	}()
}

// withWait participates in a WaitGroup: clean.
func (s *svc) withWait(url string) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.fetchOK(url)
	}()
}

// withStop blocks on a stop channel: clean.
func (s *svc) withStop() {
	go func() {
		<-s.stop
	}()
}

// startHeartbeat's lifecycle lives in the named callee: clean.
func (s *svc) startHeartbeat() {
	go s.heartbeatLoop()
}

func (s *svc) heartbeatLoop() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// startWorker hands the goroutine a context: clean.
func (s *svc) startWorker(ctx context.Context) {
	go s.work(ctx)
}

func (s *svc) work(ctx context.Context) { <-ctx.Done() }

// pollLocked performs the round trip with the mutex held.
func (s *svc) pollLocked(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.client.Get(url) // want `HTTP round trip \(http\.Client\.Get\) while holding s\.mu`
}

// refreshLocked hides the round trip behind a same-package helper; the
// HTTPFact carries it into the held span anyway.
func (s *svc) refreshLocked(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.fetchOK(url) // want `while holding s\.mu`
}

// pollUnlocked releases the lock before blocking: clean.
func (s *svc) pollUnlocked() error {
	s.mu.Lock()
	target := s.peers[0]
	s.mu.Unlock()
	return s.fetchOK(target)
}
