// Seeded violations and accepted patterns for the ctxfirst analyzer.
package ctxfirst

import "context"

// Sim is an exported type with Run entry points.
type Sim struct{}

// RunAll lacks a context: flagged.
func RunAll(n int) int { // want `exported RunAll does not take a context.Context first parameter`
	return n
}

// RunAllContext is the compliant variant.
func RunAllContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Run on an exported receiver without a context: flagged.
func (s *Sim) Run() error { // want `exported Run does not take a context.Context first parameter`
	return nil
}

// RunContext is compliant.
func (s *Sim) RunContext(ctx context.Context) error {
	return ctx.Err()
}

// RunLegacy is a documented compat wrapper: waived.
//
//peilint:allow ctxfirst compat wrapper; delegates to RunAllContext
func RunLegacy(n int) int {
	return RunAllContext(context.Background(), n)
}

// runHelper is unexported: out of scope.
func runHelper(n int) int { return n }

// sim is unexported; its Run method is not a public entry point.
type sim struct{}

func (s *sim) Run() error { return nil }

// Runtime does not have a context but also is not long-running; the
// Run* prefix still catches it — the analyzer is deliberately blunt, a
// waiver documents the exception.
//
//peilint:allow ctxfirst accessor, returns immediately
func (s *Sim) Runtime() int { return runHelper(0) }
