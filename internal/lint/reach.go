// Shared transitive-reachability machinery for the fact-based
// analyzers. simdeterm, hotalloc, statshandle, and leaksafe all answer
// the same question — "does this function, through any chain of calls,
// reach a forbidden operation?" — so they share one representation (a
// reach: the operation plus a witness call chain) and one propagation
// algorithm: seed functions with direct uses and with facts imported
// from already-analyzed dependency packages, then run the seeds to a
// fixpoint over the package-local static call graph.

package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// A reach records that a function transitively performs some operation:
// Source names the operation ("time.Now", "fmt.Sprintf", ...), Path is
// the witness call chain from the function's first callee down to the
// source ("graph.jitter → time.Now"; just "time.Now" for a direct use).
type reach struct {
	Source string
	Path   string
}

// localFuncs maps every function and method declared in the package to
// its declaration.
func localFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[f] = fd
			}
		}
	}
	return decls
}

// localEdges returns the static package-local call graph over decls:
// for each declared function, the declared functions it calls directly.
func localEdges(pass *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]*types.Func {
	edges := make(map[*types.Func][]*types.Func)
	for f, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := funcFor(pass.Info, call.Fun); callee != nil {
				if _, local := decls[callee]; local {
					edges[f] = append(edges[f], callee)
				}
			}
			return true
		})
	}
	return edges
}

// propagateReach runs seeds to a fixpoint over the local call graph: a
// function with no reach of its own inherits its first reaching
// callee's, with the callee prepended to the witness path. Iteration is
// position-ordered so the resulting witness chains (and therefore
// diagnostics) are deterministic.
func propagateReach(decls map[*types.Func]*ast.FuncDecl, edges map[*types.Func][]*types.Func, seeds map[*types.Func]reach) map[*types.Func]reach {
	funcs := make([]*types.Func, 0, len(decls))
	for f := range decls {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Pos() < funcs[j].Pos() })

	out := make(map[*types.Func]reach, len(seeds))
	for f, r := range seeds {
		out[f] = r
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if _, done := out[f]; done {
				continue
			}
			for _, callee := range edges[f] {
				if r, ok := out[callee]; ok {
					out[f] = reach{Source: r.Source, Path: qualName(callee) + " → " + r.Path}
					changed = true
					break
				}
			}
		}
	}
	return out
}

// qualName renders a function for witness chains: pkg.Func, or
// pkg.Type.Method for methods.
func qualName(f *types.Func) string {
	name := f.Name()
	if recv := methodRecvNamed(f); recv != nil && recv.Obj() != nil {
		name = recv.Obj().Name() + "." + name
	}
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}

// chainTo renders the full witness for a diagnostic about a call to
// callee: the callee followed by its stored path.
func chainTo(callee *types.Func, r reach) string {
	return qualName(callee) + " → " + r.Path
}
