// The ctxfirst analyzer: PR 1 made cancellation first-class — every
// long-running public entry point threads a context.Context from the
// API surface down into the event loop. This analyzer keeps new Run*
// entry points from regressing to uncancellable signatures.

package lint

import (
	"go/ast"
	"strings"
)

// CtxFirst requires exported Run* entry points in the public API and
// long-running subsystems to take a context.Context as their first
// parameter. Documented compatibility wrappers that delegate to a
// Context-taking variant carry //peilint:allow ctxfirst waivers.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "exported Run* entry points must take a context.Context first " +
		"parameter so callers can cancel long simulations; compat wrappers " +
		"that delegate to a Context variant are waived explicitly",
	Packages: []string{
		"pei",
		"internal/harness",
		"internal/machine",
		"internal/serve",
	},
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "Run") {
				continue
			}
			// Methods on unexported types are not public entry points.
			if fd.Recv != nil && !receiverExported(fd) {
				continue
			}
			params := fd.Type.Params
			if params != nil && len(params.List) > 0 {
				first := params.List[0]
				if t := pass.Info.TypeOf(first.Type); t != nil && isContextContext(t) {
					// A grouped first field like (ctx, other context.Context)
					// still puts a Context first; fine either way.
					continue
				}
			}
			pass.Reportf(fd.Name.Pos(),
				"exported %s does not take a context.Context first parameter: long-running entry points must be cancellable (add ctx, or waive as a compat wrapper delegating to a Context variant)",
				fd.Name.Name)
		}
	}
	return nil
}

// receiverExported reports whether the method's receiver base type name
// is exported.
func receiverExported(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip type parameters on generic receivers.
	switch e := t.(type) {
	case *ast.IndexExpr:
		t = e.X
	case *ast.IndexListExpr:
		t = e.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}
