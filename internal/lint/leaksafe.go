// The leaksafe analyzer: the serving and cluster layers hold the
// process's long-lived resources — HTTP response bodies, goroutines,
// mutexes guarding routing state — and each has a leak mode that no
// test reliably catches. An unclosed response body pins a connection
// until the transport times out; a goroutine with no stop signal
// outlives Drain and trips the race detector only when unlucky; a
// mutex held across a proxied round trip turns one slow worker into a
// coordinator-wide stall. This analyzer makes the three disciplines
// machine-checked in internal/serve and internal/cluster:
//
//  1. every *http.Response obtained in a function is either closed
//     there (resp.Body.Close(), deferred or not) or handed off — passed
//     to a call, returned, stored — for someone else to close;
//  2. every goroutine is launched with a lifecycle: its body (or named
//     callee) observes a context.Context, participates in a
//     sync.WaitGroup, or blocks on a channel (select / receive /
//     range), so something can end it and something can wait for it;
//  3. no mutex is held across an HTTP round trip — directly or through
//     any helper that carries an HTTPFact (a function that transitively
//     performs one).
//
// The HTTPFact is gathered module-wide, so a wrapper two packages away
// that hides an http.Client.Do is still visible at the locked call
// site.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LeakSafe enforces resource-lifecycle discipline in the serving and
// cluster control-plane layers.
var LeakSafe = &Analyzer{
	Name: "leaksafe",
	Doc: "in internal/serve and internal/cluster: close every " +
		"http.Response body or hand it off, launch goroutines only with a " +
		"ctx/WaitGroup/channel lifecycle, and never hold a mutex across an " +
		"HTTP round trip (including through helpers, via HTTPFacts)",
	Packages: []string{
		"internal/serve",
		"internal/cluster",
	},
	FactTypes: []Fact{(*HTTPFact)(nil)},
	Run:       runLeakSafe,
}

// HTTPFact marks a function that transitively performs an HTTP round
// trip — blocking network I/O wherever it is called from.
type HTTPFact struct {
	Source string // the blocking operation, e.g. "http.Client.Do"
	Path   string // witness call chain down to Source
}

// AFact marks HTTPFact as a fact type.
func (*HTTPFact) AFact() {}

// httpDirect classifies a callee as a direct HTTP round trip.
func httpDirect(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	switch named := methodRecvNamed(f); {
	case named != nil:
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		if obj.Pkg().Path() == "net/http" && obj.Name() == "Client" {
			switch f.Name() {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http.Client." + f.Name(), true
			}
		}
		if obj.Pkg().Path() == "net/http/httputil" && obj.Name() == "ReverseProxy" && f.Name() == "ServeHTTP" {
			return "httputil.ReverseProxy.ServeHTTP", true
		}
	case isPkgFunc(f, "net/http"):
		switch f.Name() {
		case "Get", "Post", "PostForm", "Head":
			return "http." + f.Name(), true
		}
	}
	return "", false
}

// gatherHTTPFacts exports an HTTPFact for every declared function that
// transitively performs an HTTP round trip.
func gatherHTTPFacts(pass *Pass, decls map[*types.Func]*ast.FuncDecl, edges map[*types.Func][]*types.Func) {
	seeds := make(map[*types.Func]reach)
	for f, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, seeded := seeds[f]; seeded {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcFor(pass.Info, call.Fun)
			if callee == nil {
				return true
			}
			if src, ok := httpDirect(callee); ok {
				seeds[f] = reach{Source: src, Path: src}
				return true
			}
			if callee.Pkg() != pass.Pkg {
				var fact HTTPFact
				if pass.ImportObjectFact(callee, &fact) {
					seeds[f] = reach{Source: fact.Source, Path: chainTo(callee, reach{fact.Source, fact.Path})}
				}
			}
			return true
		})
	}
	for f, r := range propagateReach(decls, edges, seeds) {
		pass.ExportObjectFact(f, &HTTPFact{Source: r.Source, Path: r.Path})
	}
}

func runLeakSafe(pass *Pass) error {
	decls := localFuncs(pass)
	edges := localEdges(pass, decls)
	gatherHTTPFacts(pass, decls, edges)
	if !pass.report {
		return nil // fact-gathering pass outside serve/cluster
	}
	funcs := make([]*types.Func, 0, len(decls))
	for f := range decls {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Pos() < funcs[j].Pos() })
	for _, f := range funcs {
		fd := decls[f]
		checkRespBodies(pass, fd)
		checkGoStmts(pass, fd, decls)
		checkLockedScope(pass, fd.Body, fd.End())
	}
	return nil
}

// --- check 1: response bodies ---

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// checkRespBodies flags *http.Response variables that are neither
// closed in the function nor handed off (returned, passed to a call,
// reassigned, stored) for someone else to close.
func checkRespBodies(pass *Pass, fd *ast.FuncDecl) {
	type respUse struct {
		pos             token.Pos
		closed, escaped bool
	}
	vars := make(map[*types.Var]*respUse)
	order := []*types.Var{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.Info.ObjectOf(id).(*types.Var)
			if !ok || !isHTTPResponsePtr(v.Type()) {
				continue
			}
			if _, seen := vars[v]; !seen {
				vars[v] = &respUse{pos: as.Pos()}
				order = append(order, v)
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	safeMark := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
			if u, tracked := vars[v]; tracked {
				u.escaped = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if body, ok := sel.X.(*ast.SelectorExpr); ok && body.Sel.Name == "Body" {
					if id, ok := ast.Unparen(body.X).(*ast.Ident); ok {
						if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
							if u, tracked := vars[v]; tracked {
								u.closed = true
							}
						}
					}
				}
			}
			for _, arg := range n.Args {
				safeMark(arg)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				safeMark(res)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				safeMark(rhs)
			}
		case *ast.SendStmt:
			safeMark(n.Value)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					safeMark(kv.Value)
				} else {
					safeMark(el)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				safeMark(n.X)
			}
		}
		return true
	})
	for _, v := range order {
		u := vars[v]
		if !u.closed && !u.escaped {
			pass.Reportf(u.pos,
				"http.Response body is never closed in %s: defer %s.Body.Close() after the error check (or hand the response off to a closer) so the connection returns to the pool",
				fd.Name.Name, v.Name())
		}
	}
}

// --- check 2: goroutine lifecycles ---

// checkGoStmts flags `go` statements whose goroutine has no lifecycle:
// nothing can stop it and nothing can wait for it.
func checkGoStmts(pass *Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goroutineHasLifecycle(pass, gs.Call, decls) {
			return true
		}
		pass.Reportf(gs.Pos(),
			"goroutine launched without a lifecycle: give it a ctx, a WaitGroup, or a stop channel so Drain/Close can end it and tests can wait for it")
		return true
	})
}

func goroutineHasLifecycle(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) bool {
	// ctx passed as an argument counts regardless of the callee.
	for _, arg := range call.Args {
		if t := pass.Info.TypeOf(arg); t != nil && isContextContext(t) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return scopeHasLifecycle(pass, fun.Body)
	default:
		f := funcFor(pass.Info, fun)
		if f == nil {
			return true // unresolvable (func-typed field etc.): give the benefit of the doubt
		}
		if sig, ok := f.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextContext(sig.Params().At(i).Type()) {
					return true
				}
			}
		}
		if fd, ok := decls[f]; ok {
			return scopeHasLifecycle(pass, fd.Body)
		}
		return false
	}
}

// scopeHasLifecycle reports whether a goroutine body observes a
// context, a WaitGroup, or a channel.
func scopeHasLifecycle(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if f := funcFor(pass.Info, n.Fun); f != nil {
				if named := methodRecvNamed(f); named != nil {
					obj := named.Obj()
					if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" &&
						(f.Name() == "Done" || f.Name() == "Wait") {
						found = true
					}
				}
			}
		case *ast.Ident:
			if v, ok := pass.Info.Uses[n].(*types.Var); ok && isContextContext(v.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- check 3: mutex held across HTTP ---

// mutexEvent is one Lock/Unlock call at function scope.
type mutexEvent struct {
	pos      token.Pos
	key      string // identity of the locked expression ("s.mu")
	text     string
	lock     bool
	deferred bool
}

// lockSpan is a source range during which a mutex is held.
type lockSpan struct {
	lo, hi token.Pos
	text   string
}

// checkLockedScope analyzes one function-level scope: computes the
// spans during which a mutex is held and flags any HTTP round trip
// (direct or via HTTPFact) inside one. Function literals are separate
// scopes — they execute under their own locks — and goroutine bodies
// do not inherit the launcher's lock, so both are walked independently.
func checkLockedScope(pass *Pass, body *ast.BlockStmt, end token.Pos) {
	spans := mutexSpans(pass, body, end)
	if len(spans) > 0 {
		walkSameScope(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := funcFor(pass.Info, call.Fun)
			desc := ""
			if src, ok := httpDirect(callee); ok {
				desc = src
			} else if callee != nil && callee.Pkg() != nil {
				var fact HTTPFact
				if pass.ImportObjectFact(callee, &fact) {
					desc = fmt.Sprintf("%s via %s", fact.Source, chainTo(callee, reach{fact.Source, fact.Path}))
				}
			}
			if desc == "" {
				return
			}
			for _, s := range spans {
				if call.Pos() > s.lo && call.Pos() < s.hi {
					pass.Reportf(call.Pos(),
						"HTTP round trip (%s) while holding %s: a slow peer stalls every caller of this lock — release it before blocking on the network",
						desc, s.text)
					break
				}
			}
		})
	}
	// Recurse into nested function literals as their own scopes.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			checkLockedScope(pass, lit.Body, lit.End())
			return false
		}
		return true
	})
}

// walkSameScope visits nodes of one function scope, skipping function
// literals and goroutine statements (their bodies run under different
// locking contexts).
func walkSameScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		fn(n)
		return true
	})
}

// mutexSpans pairs Lock/Unlock events on the same expression, in source
// order, into held spans. A deferred Unlock — or a Lock with no Unlock
// in this scope — holds to the end of the function.
func mutexSpans(pass *Pass, body *ast.BlockStmt, end token.Pos) []lockSpan {
	var events []mutexEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if ev, ok := mutexEventFor(pass, n.Call); ok {
				ev.deferred = true
				events = append(events, ev)
				return false
			}
			return true
		case *ast.CallExpr:
			if ev, ok := mutexEventFor(pass, n); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	open := make(map[string][]mutexEvent) // key -> open Lock stack
	var spans []lockSpan
	for _, ev := range events {
		if ev.lock {
			open[ev.key] = append(open[ev.key], ev)
			continue
		}
		stack := open[ev.key]
		if len(stack) == 0 {
			continue // unlock of a lock taken elsewhere (helper-locked); nothing to span here
		}
		lock := stack[len(stack)-1]
		open[ev.key] = stack[:len(stack)-1]
		hi := ev.pos
		if ev.deferred {
			hi = end
		}
		spans = append(spans, lockSpan{lo: lock.pos, hi: hi, text: lock.text})
	}
	for _, stack := range open {
		for _, lock := range stack {
			spans = append(spans, lockSpan{lo: lock.pos, hi: end, text: lock.text})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	return spans
}

// mutexEventFor classifies a call as Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex and computes the locked expression's
// identity key.
func mutexEventFor(pass *Pass, call *ast.CallExpr) (mutexEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexEvent{}, false
	}
	var lock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return mutexEvent{}, false
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return mutexEvent{}, false
	}
	named := methodRecvNamed(f)
	if named == nil {
		return mutexEvent{}, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return mutexEvent{}, false
	}
	key, text := exprIdentity(pass, sel.X)
	return mutexEvent{pos: call.Pos(), key: key, text: text, lock: lock}, true
}

// exprIdentity renders a selector chain ("s.mu") as both a
// semantic identity key (resolved object chain, so aliasing through
// renamed receivers still matches within a function) and a display
// string. Unresolvable links get position-unique keys so they never
// falsely match.
func exprIdentity(pass *Pass, expr ast.Expr) (key, text string) {
	var keys, names []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			keys = append(keys, objKey(pass, e.Sel))
			names = append(names, e.Sel.Name)
			expr = e.X
		case *ast.Ident:
			keys = append(keys, objKey(pass, e))
			names = append(names, e.Name)
			reverse(keys)
			reverse(names)
			return strings.Join(keys, "."), strings.Join(names, ".")
		default:
			keys = append(keys, fmt.Sprintf("pos%d", expr.Pos()))
			names = append(names, "…")
			reverse(keys)
			reverse(names)
			return strings.Join(keys, "."), strings.Join(names, ".")
		}
	}
}

func objKey(pass *Pass, id *ast.Ident) string {
	if obj := pass.Info.ObjectOf(id); obj != nil {
		return fmt.Sprintf("%p", obj)
	}
	return fmt.Sprintf("pos%d", id.Pos())
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
