// The waiver analyzer: //peilint:allow is how deliberate exceptions are
// documented, so a malformed directive must itself be an error — a
// typo'd analyzer name or a missing reason would otherwise either
// silently fail to waive (noise) or silently waive forever (worse).

package lint

import (
	"strings"
)

// Waiver validates //peilint:allow directives in every package. It is
// not itself waivable.
var Waiver = &Analyzer{
	Name: "waiver",
	Doc: "every //peilint:allow directive must name a known analyzer and " +
		"give a non-empty reason",
	Packages: nil, // all packages
	Run:      runWaiver,
}

func runWaiver(pass *Pass) error {
	known := analyzerNames()
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	for _, lines := range parseWaivers(pass.Fset, pass.Files) {
		for _, w := range lines {
			switch {
			case w.analyzer == "":
				pass.Reportf(w.pos,
					"peilint:allow needs an analyzer name and a reason: //peilint:allow <%s> <reason>",
					strings.Join(known, "|"))
			case !knownSet[w.analyzer]:
				pass.Reportf(w.pos,
					"peilint:allow names unknown analyzer %q (known: %s)",
					w.analyzer, strings.Join(known, ", "))
			case w.reason == "":
				pass.Reportf(w.pos,
					"peilint:allow %s is missing a reason: a waiver must say why the invariant does not apply",
					w.analyzer)
			}
		}
	}
	return nil
}
