// Package lint is the project's static-analysis suite: eight analyzers
// that turn the simulator's determinism and hot-path invariants (byte-
// identical tables at any parallelism, zero-allocation event kernel,
// context-first public entry points, single-threaded partition code,
// a simulator-free cluster control plane, complete snapshot pairs,
// leak-free serving-layer resources) into machine-checked law, plus
// the waiver directive that documents every deliberate exception.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape — Analyzer, Pass, Diagnostic, Facts, and an
// analysistest-style golden runner — but is built on the standard
// library alone: the build environment vendors no third-party modules,
// so the module stays dependency-free and `go run ./cmd/peilint ./...`
// works offline. Porting an analyzer here to a real go/analysis
// multichecker is a mechanical rename.
//
// Analysis is module-wide, not per package: the driver (driver.go)
// analyzes packages in import topological order, analyzers with
// FactTypes export Facts (fact.go) on functions they have analyzed,
// and downstream passes import those facts — so a helper two packages
// away that reads the wall clock, hashes a counter name, or performs
// an HTTP round trip is caught at the call site in checked code, with
// the witness chain in the message.
//
// # Waivers
//
//	//peilint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the directive's own line
// (trailing-comment form) and on the statement below a standalone
// directive; a contiguous block of standalone directives stacks, so one
// statement can waive several analyzers. The analyzer name must be one
// of the registered analyzers and the reason must be non-empty; the
// `waiver` meta-analyzer reports malformed directives so a typo cannot
// silently disable enforcement.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //peilint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// Packages lists module-relative import paths ("internal/sim",
	// "pei") the analyzer applies to; a nil slice means every package.
	// The driver consults this — Run itself analyzes whatever package
	// it is handed, which is what lets analysistest feed it testdata
	// packages outside the production scope.
	Packages []string
	// FactTypes lists the fact types the analyzer exports (fact.go). A
	// non-empty list makes the driver run the analyzer on every module
	// package in import topological order — facts must be gathered even
	// where diagnostics are out of scope — with reporting suppressed
	// outside Packages.
	FactTypes []Fact
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer's package scope covers the
// given module-relative package path (exact match or subdirectory).
func (a *Analyzer) AppliesTo(relPath string) bool {
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// A Diagnostic is a single finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the path of the module under analysis ("pimsim");
	// analyzers use it to classify a callee's package as module-local
	// and to test whether it falls inside their own scope.
	ModulePath string

	// report is false when the driver runs the pass for fact gathering
	// only (the package is outside the analyzer's scope): facts are
	// exported, diagnostics are discarded before waiver consultation so
	// a waiver suppressing nothing visible still reads as stale.
	report  bool
	facts   *factStore
	waivers waiverSet
	diags   []Diagnostic
}

// InScope reports whether pkg (any package in the current types
// universe) falls inside this pass's analyzer scope. Analyzers use it
// to report a cross-package call only at the outermost entry into
// unchecked territory: a callee whose own package is in scope already
// gets a direct diagnostic there.
func (p *Pass) InScope(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path(), p.ModulePath), "/")
	return p.Analyzer.AppliesTo(rel)
}

// Reportf records a diagnostic at pos unless a matching
// //peilint:allow directive waives it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if !p.report {
		return
	}
	position := p.Fset.Position(pos)
	// The waiver validator is not itself waivable — otherwise
	// `//peilint:allow waiver ...` could suppress its own diagnostic.
	if p.Analyzer.Name != waiverAnalyzerName {
		if w := p.waivers.covering(p.Analyzer.Name, position); w != nil {
			w.used = true
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiver is one parsed //peilint:allow directive.
type waiver struct {
	pos      token.Pos
	analyzer string // "" when the directive is malformed
	reason   string
	// used records that the waiver suppressed at least one diagnostic
	// in a reporting pass; the driver turns unused well-formed waivers
	// into stale-waiver findings so dead exceptions cannot accumulate.
	used bool
}

// waiverSet indexes waivers by file and line.
type waiverSet map[string]map[int]*waiver

// covering returns the well-formed waiver for the named analyzer that
// covers the position — as a trailing comment on the flagged line, or
// anywhere in the contiguous block of directive lines directly above it
// (so several analyzers can be waived for one statement by stacking
// directives) — or nil. Malformed waivers never suppress anything.
func (ws waiverSet) covering(analyzer string, pos token.Position) *waiver {
	lines := ws[pos.Filename]
	match := func(w *waiver) bool {
		return w != nil && w.analyzer == analyzer && w.reason != ""
	}
	if w := lines[pos.Line]; match(w) {
		return w
	}
	for line := pos.Line - 1; ; line-- {
		w, ok := lines[line]
		if !ok {
			return nil
		}
		if match(w) {
			return w
		}
	}
}

const waiverPrefix = "//peilint:allow"

// parseWaivers extracts every //peilint:allow directive from the files,
// keeping malformed ones (with analyzer/reason left empty) so the
// waiver analyzer can report them.
func parseWaivers(fset *token.FileSet, files []*ast.File) waiverSet {
	ws := make(waiverSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				// Require a separator so "//peilint:allowx" is not a directive.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				// A line comment swallows everything to end of line, so an
				// analysistest `// want` expectation sharing the line would
				// otherwise read as part of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				w := &waiver{pos: c.Pos()}
				if fields := strings.Fields(rest); len(fields) > 0 {
					w.analyzer = fields[0]
					w.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				if ws[pos.Filename] == nil {
					ws[pos.Filename] = make(map[int]*waiver)
				}
				ws[pos.Filename][pos.Line] = w
			}
		}
	}
	return ws
}

// RunAnalyzer applies one analyzer to a loaded package in isolation —
// no facts flow in from dependencies — and returns its diagnostics
// sorted by position. Whole-module runs with fact propagation go
// through Analyze (driver.go).
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   true,
		facts:    newFactStore(),
		waivers:  parseWaivers(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzers returns the full suite in a stable order: the eight
// invariant analyzers plus the waiver validator.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterm,
		StatsHandle,
		CtxFirst,
		HotAlloc,
		PartSafe,
		ClusterSafe,
		SnapComplete,
		LeakSafe,
		Waiver,
	}
}

// waiverAnalyzerName is the waiver validator's name, used where
// referring to the Waiver variable itself would create an
// initialization cycle through Reportf.
const waiverAnalyzerName = "waiver"

// analyzerNames returns the names waivable by //peilint:allow (every
// analyzer except the waiver validator itself, which is deliberately
// omitted — and not referenced via Analyzers() to avoid an
// initialization cycle back into the Waiver variable).
func analyzerNames() []string {
	return []string{SimDeterm.Name, StatsHandle.Name, CtxFirst.Name, HotAlloc.Name, PartSafe.Name, ClusterSafe.Name, SnapComplete.Name, LeakSafe.Name}
}
