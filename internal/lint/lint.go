// Package lint is the project's static-analysis suite: six analyzers
// that turn the simulator's determinism and hot-path invariants (byte-
// identical tables at any parallelism, zero-allocation event kernel,
// context-first public entry points, single-threaded partition code,
// a simulator-free cluster control plane) into machine-checked law,
// plus the waiver directive that documents every deliberate exception.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape — Analyzer, Pass, Diagnostic, and an analysistest-style
// golden runner — but is built on the standard library alone: the build
// environment vendors no third-party modules, so the module stays
// dependency-free and `go run ./cmd/peilint ./...` works offline.
// Porting an analyzer here to a real go/analysis multichecker is a
// mechanical rename.
//
// # Waivers
//
//	//peilint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the directive's own line
// (trailing-comment form) and on the statement below a standalone
// directive; a contiguous block of standalone directives stacks, so one
// statement can waive several analyzers. The analyzer name must be one
// of the registered analyzers and the reason must be non-empty; the
// `waiver` meta-analyzer reports malformed directives so a typo cannot
// silently disable enforcement.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //peilint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// Packages lists module-relative import paths ("internal/sim",
	// "pei") the analyzer applies to; a nil slice means every package.
	// The driver consults this — Run itself analyzes whatever package
	// it is handed, which is what lets analysistest feed it testdata
	// packages outside the production scope.
	Packages []string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer's package scope covers the
// given module-relative package path (exact match or subdirectory).
func (a *Analyzer) AppliesTo(relPath string) bool {
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// A Diagnostic is a single finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	waivers waiverSet
	diags   []Diagnostic
}

// Reportf records a diagnostic at pos unless a matching
// //peilint:allow directive waives it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	// The waiver validator is not itself waivable — otherwise
	// `//peilint:allow waiver ...` could suppress its own diagnostic.
	if p.Analyzer.Name != waiverAnalyzerName && p.waivers.covers(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiver is one parsed //peilint:allow directive.
type waiver struct {
	pos      token.Pos
	analyzer string // "" when the directive is malformed
	reason   string
}

// waiverSet indexes waivers by file and line.
type waiverSet map[string]map[int]waiver

// covers reports whether a well-formed waiver for the named analyzer
// covers the position: as a trailing comment on the flagged line, or
// anywhere in the contiguous block of directive lines directly above it
// (so several analyzers can be waived for one statement by stacking
// directives). Malformed waivers never suppress anything.
func (ws waiverSet) covers(analyzer string, pos token.Position) bool {
	lines := ws[pos.Filename]
	match := func(w waiver, ok bool) bool {
		return ok && w.analyzer == analyzer && w.reason != ""
	}
	if w, ok := lines[pos.Line]; match(w, ok) {
		return true
	}
	for line := pos.Line - 1; ; line-- {
		w, ok := lines[line]
		if !ok {
			return false
		}
		if match(w, ok) {
			return true
		}
	}
}

const waiverPrefix = "//peilint:allow"

// parseWaivers extracts every //peilint:allow directive from the files,
// keeping malformed ones (with analyzer/reason left empty) so the
// waiver analyzer can report them.
func parseWaivers(fset *token.FileSet, files []*ast.File) waiverSet {
	ws := make(waiverSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				// Require a separator so "//peilint:allowx" is not a directive.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				// A line comment swallows everything to end of line, so an
				// analysistest `// want` expectation sharing the line would
				// otherwise read as part of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				w := waiver{pos: c.Pos()}
				if fields := strings.Fields(rest); len(fields) > 0 {
					w.analyzer = fields[0]
					w.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				if ws[pos.Filename] == nil {
					ws[pos.Filename] = make(map[int]waiver)
				}
				ws[pos.Filename][pos.Line] = w
			}
		}
	}
	return ws
}

// RunAnalyzer applies one analyzer to a loaded package and returns its
// diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		waivers:  parseWaivers(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Analyzers returns the full suite in a stable order: the six
// invariant analyzers plus the waiver validator.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterm,
		StatsHandle,
		CtxFirst,
		HotAlloc,
		PartSafe,
		ClusterSafe,
		Waiver,
	}
}

// waiverAnalyzerName is the waiver validator's name, used where
// referring to the Waiver variable itself would create an
// initialization cycle through Reportf.
const waiverAnalyzerName = "waiver"

// analyzerNames returns the names waivable by //peilint:allow (every
// analyzer except the waiver validator itself, which is deliberately
// omitted — and not referenced via Analyzers() to avoid an
// initialization cycle back into the Waiver variable).
func analyzerNames() []string {
	return []string{SimDeterm.Name, StatsHandle.Name, CtxFirst.Name, HotAlloc.Name, PartSafe.Name, ClusterSafe.Name}
}
