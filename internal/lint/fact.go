// The fact layer: analyzers export typed facts on objects and packages
// while analyzing one package, and downstream packages (in import-graph
// topological order) import them — the same shape as
// golang.org/x/tools/go/analysis.Fact, built on the standard library
// alone. Facts are what turn the per-package analyzers into
// whole-module inter-procedural checks: simdeterm learns that a helper
// two packages away transitively calls time.Now, hotalloc that it
// allocates a string per call, leaksafe that it performs an HTTP round
// trip.
//
// Facts are keyed by (analyzer, object): an analyzer only ever sees its
// own facts, so two analyzers can attach different fact types to the
// same function without interference. The driver (driver.go) guarantees
// that by the time a package is analyzed, every module-local package it
// imports has already been analyzed and its facts recorded.

package lint

import (
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a typed datum attached to a types.Object or a package by
// one analyzer and visible to later passes of the same analyzer on
// downstream packages. Implementations must be pointers to structs.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// objFactKey identifies one analyzer's fact slot on one object.
type objFactKey struct {
	analyzer string
	obj      types.Object
}

// pkgFactKey identifies one analyzer's fact slot on one package.
type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
}

// A factStore holds every exported fact for one driver run. All
// packages of a run share a loader (and therefore a types universe), so
// object identity is stable: the *types.Func a downstream package
// resolves through Info.Uses is the same object the defining package
// exported a fact on.
type factStore struct {
	obj map[objFactKey][]Fact
	pkg map[pkgFactKey][]Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[objFactKey][]Fact),
		pkg: make(map[pkgFactKey][]Fact),
	}
}

// set records fact for (analyzer, obj), replacing an existing fact of
// the same concrete type (re-exporting is an update, not an append).
func (s *factStore) set(analyzer string, obj types.Object, fact Fact) {
	key := objFactKey{analyzer, obj}
	t := reflect.TypeOf(fact)
	for i, f := range s.obj[key] {
		if reflect.TypeOf(f) == t {
			s.obj[key][i] = fact
			return
		}
	}
	s.obj[key] = append(s.obj[key], fact)
}

// get copies the stored fact of ptr's concrete type into ptr and
// reports whether one was found.
func (s *factStore) get(analyzer string, obj types.Object, ptr Fact) bool {
	t := reflect.TypeOf(ptr)
	for _, f := range s.obj[objFactKey{analyzer, obj}] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) setPkg(analyzer string, pkg *types.Package, fact Fact) {
	key := pkgFactKey{analyzer, pkg}
	t := reflect.TypeOf(fact)
	for i, f := range s.pkg[key] {
		if reflect.TypeOf(f) == t {
			s.pkg[key][i] = fact
			return
		}
	}
	s.pkg[key] = append(s.pkg[key], fact)
}

func (s *factStore) getPkg(analyzer string, pkg *types.Package, ptr Fact) bool {
	t := reflect.TypeOf(ptr)
	for _, f := range s.pkg[pkgFactKey{analyzer, pkg}] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// validateFact panics unless fact is a non-nil pointer to a struct —
// the contract reflect copying relies on. Called on export and import
// so a malformed fact type fails at the first use, in the analyzer's
// own tests.
func validateFact(fact Fact) {
	v := reflect.ValueOf(fact)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("lint: fact %T must be a non-nil pointer to a struct", fact))
	}
}

// ExportObjectFact attaches fact to obj for this pass's analyzer.
// Downstream packages that can reference obj can import it with
// ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	validateFact(fact)
	if obj == nil {
		panic("lint: ExportObjectFact on nil object")
	}
	p.facts.set(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type previously
// exported on obj by this pass's analyzer into ptr, reporting whether
// one exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	validateFact(ptr)
	if obj == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, obj, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	validateFact(fact)
	p.facts.setPkg(p.Analyzer.Name, p.Pkg, fact)
}

// ImportPackageFact copies the fact of ptr's concrete type exported on
// pkg by this pass's analyzer into ptr, reporting whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	validateFact(ptr)
	if pkg == nil {
		return false
	}
	return p.facts.getPkg(p.Analyzer.Name, pkg, ptr)
}
