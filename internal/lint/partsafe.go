// The partsafe analyzer: the PDES kernel runs each partition's events on
// whichever worker goroutine claims it, so component state is touched
// from multiple OS threads across epochs. That is only safe because
// component code is single-threaded *within* an epoch and every
// cross-partition interaction goes through sim.Link into a mailbox. The
// analyzer enforces the discipline that makes this hold: simulator
// component packages may not spawn goroutines, select, send on
// channels, create channels, or import sync/sync/atomic — concurrency
// lives exclusively in internal/sim's PDES engine. Generation-time
// exceptions (e.g. a cross-run dataset cache) carry explicit
// //peilint:allow partsafe waivers with a reason.

package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// partPackages is the partition-residency perimeter: every package whose
// code can execute inside a PDES partition (event handlers and the state
// they touch), plus the machine layer that wires partitions together.
// internal/sim is deliberately absent — it is the one sanctioned home
// for goroutines and synchronization.
var partPackages = []string{
	"internal/cache",
	"internal/cpu",
	"internal/dram",
	"internal/hmc",
	"internal/pim",
	"internal/vm",
	"internal/machine",
	"internal/memlayout",
	"internal/stats",
	"internal/workloads",
}

// PartSafe forbids concurrency primitives in partition-resident code.
var PartSafe = &Analyzer{
	Name: "partsafe",
	Doc: "simulator component packages must stay single-threaded: no go " +
		"statements, select, channel sends, channel construction, or " +
		"sync/sync-atomic imports outside internal/sim's PDES engine, so " +
		"partitions never share mutable state except through sim.Link " +
		"mailboxes; generation-time exceptions are waived explicitly",
	Packages: partPackages,
	Run:      runPartSafe,
}

func runPartSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				pass.Reportf(imp.Pos(),
					"import %q in partition-resident code: component state must not be shared across goroutines; synchronization lives only in internal/sim's PDES engine",
					path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in partition-resident code: partitions are single-threaded, and cross-partition events go through sim.Link mailboxes; goroutines live only in internal/sim's PDES engine")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select in partition-resident code: event ordering comes from the kernel's calendar queue, not channels; concurrency lives only in internal/sim's PDES engine")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send in partition-resident code: cross-partition communication goes through sim.Link mailboxes, not channels")
			case *ast.CallExpr:
				checkChanMake(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkChanMake flags make(chan ...) — creating a channel in component
// code is the first step of every forbidden pattern above.
func checkChanMake(pass *Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if _, isChan := call.Args[0].(*ast.ChanType); isChan {
		pass.Reportf(call.Pos(),
			"make(chan) in partition-resident code: channels belong to internal/sim's PDES engine, not simulator components")
	}
}
