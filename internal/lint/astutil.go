// Shared AST/type helpers for the analyzers.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcFor resolves the *types.Func a call or selector expression refers
// to, or nil. It sees through parenthesization and handles both plain
// identifiers (pkg-local calls, dot imports) and selector expressions
// (pkg.Fn, recv.Method).
func funcFor(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is a package-level function (not a
// method) of the package with the given import path.
func isPkgFunc(f *types.Func, pkgPath string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodRecvNamed returns the named type of f's receiver (through a
// pointer), or nil if f is not a method.
func methodRecvNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isContextContext reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isPanicCall reports whether the call is to the predeclared panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// panicArgSpans collects the source ranges of every argument to a
// panic() call in the file. Allocations whose only evaluation happens
// while constructing a panic value are off the hot path by definition
// (the simulation is already dead), so analyzers exempt these spans.
type panicArgSpans []span

type span struct{ lo, hi token.Pos }

func collectPanicArgSpans(info *types.Info, file *ast.File) panicArgSpans {
	var spans panicArgSpans
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPanicCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			spans = append(spans, span{arg.Pos(), arg.End()})
		}
		return true
	})
	return spans
}

func (ps panicArgSpans) contains(n ast.Node) bool {
	for _, s := range ps {
		if n.Pos() >= s.lo && n.End() <= s.hi {
			return true
		}
	}
	return false
}
