package lint

import (
	"strings"
	"testing"
)

// The golden suites: each analyzer must catch its seeded violations and
// accept its waived lines (the testdata has no want comment on waived
// lines, so these tests fail unless suppression works).

func TestSimDeterm(t *testing.T)    { AnalyzerTest(t, SimDeterm, "simdeterm") }
func TestStatsHandle(t *testing.T)  { AnalyzerTest(t, StatsHandle, "statshandle") }
func TestCtxFirst(t *testing.T)     { AnalyzerTest(t, CtxFirst, "ctxfirst") }
func TestHotAlloc(t *testing.T)     { AnalyzerTest(t, HotAlloc, "hotalloc") }
func TestPartSafe(t *testing.T)     { AnalyzerTest(t, PartSafe, "partsafe") }
func TestClusterSafe(t *testing.T)  { AnalyzerTest(t, ClusterSafe, "clustersafe") }
func TestSnapComplete(t *testing.T) { AnalyzerTest(t, SnapComplete, "snapcomplete") }
func TestLeakSafe(t *testing.T)     { AnalyzerTest(t, LeakSafe, "leaksafe") }

// TestFactChain pins inter-procedural fact propagation: the
// wall-clock read sits two packages below the checked code
// (simuser → mid → leaf → time.Now), so only facts flowing through the
// driver's topological analysis can surface it — and the diagnostic
// must carry the full witness chain.
func TestFactChain(t *testing.T) { AnalyzerTest(t, SimDeterm, "factchain/simuser") }

// TestStaleWaivers pins the driver's stale-waiver pass: a directive
// that suppresses real findings survives; a directive whose analyzer
// reports nothing on its lines — including one naming an analyzer that
// does not even apply to the package — is itself a finding.
func TestStaleWaivers(t *testing.T) {
	loader := testdataLoader(t)
	pkg, err := loader.LoadDir("testdata/src/stalewaiver", "peilinttest/stalewaiver")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Analyze(loader, []*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want exactly the 2 stale waivers:\n%v", len(diags), diags)
	}
	wantSubstrings := []string{"stale waiver: snapcomplete", "stale waiver: hotalloc"}
	for i, d := range diags {
		if d.Analyzer != "waiver" {
			t.Errorf("diagnostic %d from %q, want the waiver analyzer: %s", i, d.Analyzer, d)
		}
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in:\n%v", want, diags)
		}
	}
}

// TestWaiverValidation covers the waiver mechanism itself: a directive
// with a typo'd analyzer name, a missing reason, or no arguments at all
// is reported, while a well-formed directive is accepted.
func TestWaiverValidation(t *testing.T) { AnalyzerTest(t, Waiver, "waiverbad") }

// TestMalformedWaiverDoesNotSuppress pins the fail-closed property: the
// malformed directives in the waiverbad package must NOT suppress the
// simdeterm findings on their lines.
func TestMalformedWaiverDoesNotSuppress(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/waiverbad", "peilinttest/waiverbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzer(SimDeterm, pkg)
	if err != nil {
		t.Fatal(err)
	}
	// Four time.Now sites; exactly one (the valid directive) is waived.
	if len(diags) != 3 {
		t.Fatalf("got %d simdeterm diagnostics, want 3 (malformed waivers must not suppress):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzerScope pins each analyzer's package perimeter: the driver
// must apply simdeterm to every simulator package (including the serve
// layer) and must apply hotalloc to the event kernel plus the per-event
// component packages (cache, dram, hmc, pim) — but not to the
// generation-time layers above them.
func TestAnalyzerScope(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		rel      string
		want     bool
	}{
		{SimDeterm, "internal/sim", true},
		{SimDeterm, "internal/workloads", true},
		{SimDeterm, "internal/serve", true},
		{SimDeterm, "internal/harness", false},
		{SimDeterm, "cmd/peibench", false},
		{StatsHandle, "internal/cache", true},
		{StatsHandle, "internal/stats", false}, // the registry itself
		{StatsHandle, "internal/serve", false}, // mutex-bound service metrics
		{CtxFirst, "pei", true},
		{CtxFirst, "internal/serve", true},
		{CtxFirst, "internal/workloads", false},
		{HotAlloc, "internal/sim", true},
		{HotAlloc, "internal/cache", true},
		{HotAlloc, "internal/dram", true},
		{HotAlloc, "internal/hmc", true},
		{HotAlloc, "internal/pim", true},
		{HotAlloc, "internal/cpu", false},
		{HotAlloc, "internal/workloads", false},
		{PartSafe, "internal/hmc", true},
		{PartSafe, "internal/machine", true},
		{PartSafe, "internal/workloads", true},
		{PartSafe, "internal/sim", false},     // the sanctioned home for concurrency
		{PartSafe, "internal/serve", false},   // concurrent by design, outside the simulator
		{PartSafe, "internal/cluster", false}, // control plane, free to use channels/sync
		{ClusterSafe, "internal/cluster", true},
		{ClusterSafe, "internal/serve", false}, // serve legitimately imports the simulator
		{ClusterSafe, "internal/sim", false},
		{SnapComplete, "internal/sim", true}, // any package that snapshots
		{SnapComplete, "internal/cluster", true},
		{SnapComplete, "internal/graph", true},
		{LeakSafe, "internal/serve", true},
		{LeakSafe, "internal/cluster", true},
		{LeakSafe, "internal/sim", false}, // no HTTP or goroutines inside the simulator (partsafe's job)
		{Waiver, "internal/graph", true},  // waiver validates everywhere
		{Waiver, "cmd/peilint", true},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.rel); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.rel, got, c.want)
		}
	}
}

// TestSuiteCleanOnTree runs the full suite over the repository's own
// simulator packages and requires zero findings — the same gate CI
// enforces via `go run ./cmd/peilint ./...`, pinned here so `go test`
// alone catches a regression.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; expected the whole module", len(pkgs))
	}
	diags, err := Analyze(loader, pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
