// Package loading for the lint suite: a small module-aware loader that
// parses and type-checks packages using only the standard library.
// Imports within this module are resolved from source on disk; standard
// library imports go through go/importer's source importer, so the
// loader needs neither a module cache nor network access.

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path ("pimsim/internal/sim").
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RelPath returns the package path relative to the loader's module
// ("internal/sim" for "pimsim/internal/sim", "" for the module root).
func (p *Package) RelPath(modulePath string) string {
	if p.ImportPath == modulePath {
		return ""
	}
	return strings.TrimPrefix(p.ImportPath, modulePath+"/")
}

// A Loader parses and type-checks packages of one module. It memoizes
// packages by import path, so a dependency type-checked for one analyzed
// package is reused by every later one.
type Loader struct {
	ModulePath string
	ModuleDir  string

	// ExtraRoots maps additional import-path prefixes to source
	// directories, resolved before the standard library. The
	// analysistest harness registers "peilinttest" → testdata/src here
	// so golden packages can import each other — which is what the
	// fact-propagation suites need.
	ExtraRoots map[string]string

	fset *token.FileSet
	src  types.ImporterFrom
	pkgs map[string]*Package
}

// Loaded returns the package previously loaded under the given import
// path, or nil. The driver uses it to map a types.Package in the import
// graph back to its syntax for fact gathering.
func (l *Loader) Loaded(importPath string) *Package {
	return l.pkgs[importPath]
}

// NewLoader creates a loader for the module rooted at dir, reading the
// module path from its go.mod.
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context; with cgo
	// disabled the pure-Go variants of std packages (net, etc.) are
	// selected, which is exactly what an offline lint run wants.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  dir,
		fset:       fset,
		src:        src,
		pkgs:       make(map[string]*Package),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load
// from source under the module directory, everything else (the standard
// library) goes through the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	for prefix, root := range l.ExtraRoots {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			rel := strings.TrimPrefix(strings.TrimPrefix(path, prefix), "/")
			p, err := l.LoadDir(filepath.Join(root, filepath.FromSlash(rel)), path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return l.src.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Test files (_test.go) are excluded: the analyzers police
// simulator and service code, and skipping them keeps external test
// packages out of the type-checker. Results are memoized by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadAll walks the module tree and loads every package directory,
// skipping testdata, hidden directories, and directories without Go
// files. Packages come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadUnder(l.ModuleDir)
}

// LoadUnder loads every package rooted at dir (itself inside the
// loader's module).
func (l *Loader) LoadUnder(dir string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(path, importPath)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
