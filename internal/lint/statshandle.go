// The statshandle analyzer: per-event code must not pay a string hash
// per counter update. PR 2 introduced stats.Handle — an interned index
// into the registry's flat value array — precisely so Tick/Step/
// Schedule trees bump integers, not map entries. This analyzer keeps
// the string-keyed convenience methods out of those trees, including
// through wrappers defined in other packages: a helper that calls
// Registry.Add by name carries a StringStatsFact, and calling it from a
// hot tree is the same hash per event.

package lint

import (
	"go/ast"
	"go/types"
)

// hotRoots are the method/function names whose call trees are per-event
// hot paths.
var hotRoots = map[string]bool{
	"Tick":     true,
	"Step":     true,
	"Schedule": true,
}

// stringKeyedRegistryMethods are the stats.Registry methods that take a
// counter name and hash it per call.
var stringKeyedRegistryMethods = map[string]bool{
	"Add": true,
	"Inc": true,
	"Get": true,
	"Set": true,
}

// StatsHandle flags string-keyed stats.Registry calls inside hot call
// trees. Scope excludes internal/stats itself (the registry's own
// implementation) and internal/serve (service metrics are mutex-bound,
// not per-event).
var StatsHandle = &Analyzer{
	Name: "statshandle",
	Doc: "inside Tick/Step/Schedule call trees, stats must go through " +
		"pre-resolved stats.Handle counters (Registry.Counter at construction " +
		"time), not string-keyed Registry.Add/Inc/Get/Set — whether called " +
		"directly or through a wrapper in another package",
	Packages: []string{
		"internal/sim",
		"internal/cache",
		"internal/dram",
		"internal/hmc",
		"internal/pim",
		"internal/cpu",
		"internal/vm",
		"internal/machine",
		"internal/memlayout",
		"internal/workloads",
	},
	FactTypes: []Fact{(*StringStatsFact)(nil)},
	Run:       runStatsHandle,
}

// StringStatsFact marks a function that calls a string-keyed
// stats.Registry method on every invocation, directly or transitively —
// a per-call string hash wherever it is called from.
type StringStatsFact struct {
	Source string // the string-keyed method, e.g. "Registry.Add"
	Path   string // witness call chain down to Source
}

// AFact marks StringStatsFact as a fact type.
func (*StringStatsFact) AFact() {}

// isStringKeyedRegistryMethod reports whether f is one of the
// string-keyed stats.Registry methods.
func isStringKeyedRegistryMethod(f *types.Func) bool {
	if f == nil || !stringKeyedRegistryMethods[f.Name()] {
		return false
	}
	named := methodRecvNamed(f)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "stats"
}

func runStatsHandle(pass *Pass) error {
	decls := localFuncs(pass)
	edges := localEdges(pass, decls)

	gatherStatsFacts(pass, decls, edges)

	// BFS from the hot roots through package-local edges.
	hot := make(map[*types.Func]string) // func -> root that reaches it
	var queue []*types.Func
	for f := range decls {
		if hotRoots[f.Name()] {
			hot[f] = f.Name()
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, callee := range edges[f] {
			if _, seen := hot[callee]; !seen {
				hot[callee] = hot[f]
				queue = append(queue, callee)
			}
		}
	}

	for f, root := range hot {
		fd := decls[f]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcFor(pass.Info, call.Fun)
			if callee == nil {
				return true
			}
			if isStringKeyedRegistryMethod(callee) {
				pass.Reportf(call.Pos(),
					"string-keyed stats.Registry.%s in %s's call tree (via %s): resolve a stats.Handle with Registry.Counter at construction time and update through it",
					callee.Name(), root, f.Name())
				return true
			}
			// A wrapper in another, unchecked package that hashes a
			// counter name per call is the same cost in disguise.
			if callee.Pkg() == nil || callee.Pkg() == pass.Pkg || pass.InScope(callee.Pkg()) {
				return true
			}
			var fact StringStatsFact
			if pass.ImportObjectFact(callee, &fact) {
				pass.Reportf(call.Pos(),
					"call to %s in %s's call tree hashes a counter name per event (%s): resolve a stats.Handle at construction time instead",
					qualName(callee), root, chainTo(callee, reach{fact.Source, fact.Path}))
			}
			return true
		})
	}
	return nil
}

// gatherStatsFacts exports a StringStatsFact for every declared
// function that reaches a string-keyed Registry call — except the
// Registry methods themselves, which the direct check already names.
func gatherStatsFacts(pass *Pass, decls map[*types.Func]*ast.FuncDecl, edges map[*types.Func][]*types.Func) {
	seeds := make(map[*types.Func]reach)
	for f, fd := range decls {
		if isStringKeyedRegistryMethod(f) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, seeded := seeds[f]; seeded {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcFor(pass.Info, call.Fun)
			if callee == nil {
				return true
			}
			if isStringKeyedRegistryMethod(callee) {
				src := "Registry." + callee.Name()
				seeds[f] = reach{Source: src, Path: src}
				return true
			}
			if callee.Pkg() != pass.Pkg {
				var fact StringStatsFact
				if pass.ImportObjectFact(callee, &fact) {
					seeds[f] = reach{Source: fact.Source, Path: chainTo(callee, reach{fact.Source, fact.Path})}
				}
			}
			return true
		})
	}
	for f, r := range propagateReach(decls, edges, seeds) {
		if isStringKeyedRegistryMethod(f) {
			continue
		}
		pass.ExportObjectFact(f, &StringStatsFact{Source: r.Source, Path: r.Path})
	}
}
