// The statshandle analyzer: per-event code must not pay a string hash
// per counter update. PR 2 introduced stats.Handle — an interned index
// into the registry's flat value array — precisely so Tick/Step/
// Schedule trees bump integers, not map entries. This analyzer keeps
// the string-keyed convenience methods out of those trees.

package lint

import (
	"go/ast"
	"go/types"
)

// hotRoots are the method/function names whose call trees are per-event
// hot paths.
var hotRoots = map[string]bool{
	"Tick":     true,
	"Step":     true,
	"Schedule": true,
}

// stringKeyedRegistryMethods are the stats.Registry methods that take a
// counter name and hash it per call.
var stringKeyedRegistryMethods = map[string]bool{
	"Add": true,
	"Inc": true,
	"Get": true,
	"Set": true,
}

// StatsHandle flags string-keyed stats.Registry calls inside hot call
// trees. Scope excludes internal/stats itself (the registry's own
// implementation) and internal/serve (service metrics are mutex-bound,
// not per-event).
var StatsHandle = &Analyzer{
	Name: "statshandle",
	Doc: "inside Tick/Step/Schedule call trees, stats must go through " +
		"pre-resolved stats.Handle counters (Registry.Counter at construction " +
		"time), not string-keyed Registry.Add/Inc/Get/Set",
	Packages: []string{
		"internal/sim",
		"internal/cache",
		"internal/dram",
		"internal/hmc",
		"internal/pim",
		"internal/cpu",
		"internal/vm",
		"internal/machine",
		"internal/memlayout",
		"internal/workloads",
	},
	Run: runStatsHandle,
}

func runStatsHandle(pass *Pass) error {
	// Map every package-local function/method to its declaration.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[f] = fd
			}
		}
	}

	// Static package-local call graph.
	callees := make(map[*types.Func][]*types.Func)
	for f, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := funcFor(pass.Info, call.Fun); callee != nil {
				if _, local := decls[callee]; local {
					callees[f] = append(callees[f], callee)
				}
			}
			return true
		})
	}

	// BFS from the hot roots through package-local edges.
	hot := make(map[*types.Func]string) // func -> root that reaches it
	var queue []*types.Func
	for f := range decls {
		if hotRoots[f.Name()] {
			hot[f] = f.Name()
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, callee := range callees[f] {
			if _, seen := hot[callee]; !seen {
				hot[callee] = hot[f]
				queue = append(queue, callee)
			}
		}
	}

	for f, root := range hot {
		fd := decls[f]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcFor(pass.Info, call.Fun)
			if callee == nil || !stringKeyedRegistryMethods[callee.Name()] {
				return true
			}
			named := methodRecvNamed(callee)
			if named == nil {
				return true
			}
			obj := named.Obj()
			if obj == nil || obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Name() != "stats" {
				return true
			}
			pass.Reportf(call.Pos(),
				"string-keyed stats.Registry.%s in %s's call tree (via %s): resolve a stats.Handle with Registry.Counter at construction time and update through it",
				callee.Name(), root, f.Name())
			return true
		})
	}
	return nil
}
