// The clustersafe analyzer: internal/cluster is control plane, not
// simulator. The coordinator routes job digests to workers and proxies
// results; it must never reach into the simulation layers directly —
// all simulation happens on workers behind the serving API, so the
// cluster layer stays deployable (and testable) without dragging the
// event kernel's determinism perimeter along. The analyzer enforces the
// boundary at the import graph: internal/cluster may not import
// internal/sim or internal/machine (directly or any subpackage).

package lint

import (
	"strconv"
	"strings"
)

// clusterForbidden lists the module packages the cluster control plane
// must not import: the event kernel and the machine layer it drives.
// internal/serve and pei are deliberately allowed — they are the
// sanctioned API surface workers expose.
var clusterForbidden = []string{
	"pimsim/internal/sim",
	"pimsim/internal/machine",
}

// ClusterSafe forbids simulator imports in the cluster control plane.
var ClusterSafe = &Analyzer{
	Name: "clustersafe",
	Doc: "the cluster control plane (coordinator, membership, routing, " +
		"peer-cache proxy) must not import internal/sim or " +
		"internal/machine: simulation happens only on workers behind the " +
		"serving API, keeping routing logic independent of the event " +
		"kernel's determinism perimeter",
	Packages: []string{"internal/cluster"},
	Run:      runClusterSafe,
}

func runClusterSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, forbidden := range clusterForbidden {
				if path == forbidden || strings.HasPrefix(path, forbidden+"/") {
					pass.Reportf(imp.Pos(),
						"import %q in cluster control-plane code: the coordinator routes and proxies jobs but never simulates; simulation stays on workers behind the serving API",
						path)
				}
			}
		}
	}
	return nil
}
