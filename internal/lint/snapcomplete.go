// The snapcomplete analyzer: checkpoint/warm-start correctness
// (DESIGN.md §13) rests on hand-written SnapshotTo/RestoreFrom pairs,
// and the failure mode is silent — a field added to a component struct
// but missed in its snapshot methods corrupts warm starts and any
// rollback built on them (the LazyPIM plan in ROADMAP.md) without
// failing a single test, because the format's section tags only catch
// *misaligned* layouts, not *incomplete* ones.
//
// The analyzer closes that gap structurally: for every type with a
// SnapshotTo method, every mutable field — one assigned anywhere in the
// package outside construction (New*/init) and outside RestoreFrom
// itself — must be referenced by SnapshotTo, and restored (referenced)
// by RestoreFrom. Fields that are deliberately not serialized — pools
// (recycling capacity, not state), derived caches rebuilt on first use,
// queues that quiescence guarantees empty — carry
// `//peilint:allow snapcomplete <reason>` on their declaration line, so
// every exemption is written down next to the field it exempts.
//
// Known imprecision, chosen deliberately: mutations through aliases
// (p := &v.f; p.x = 1) and through methods on the field's type are not
// seen, so such fields are only checked if also assigned directly.
// Fields can be over-matched too — a reference to the field on *any*
// instance counts — but SnapshotTo methods read their own receiver in
// practice, so this has not produced false negatives in the tree.

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapComplete enforces snapshot coverage for every type with a
// SnapshotTo method.
var SnapComplete = &Analyzer{
	Name: "snapcomplete",
	Doc: "every type with a SnapshotTo method must restore from a " +
		"RestoreFrom, and every mutable field (assigned outside New*/init) " +
		"must be written in SnapshotTo and restored in RestoreFrom; " +
		"deliberately unserialized fields (pools, derived caches, " +
		"quiescence-empty queues) carry //peilint:allow snapcomplete on " +
		"their declaration",
	Packages: nil, // any package that snapshots is covered
	Run:      runSnapComplete,
}

// snapPair collects the snapshot methods of one named type.
type snapPair struct {
	named   *types.Named
	snap    *ast.FuncDecl
	restore *ast.FuncDecl
}

func runSnapComplete(pass *Pass) error {
	pairs := collectSnapPairs(pass)
	if len(pairs) == 0 {
		return nil
	}
	mutations := collectFieldMutations(pass)
	decls := localFuncs(pass)
	edges := localEdges(pass, decls)

	// Deterministic order: by type position.
	named := make([]*types.Named, 0, len(pairs))
	for n := range pairs {
		named = append(named, n)
	}
	sort.Slice(named, func(i, j int) bool { return named[i].Obj().Pos() < named[j].Obj().Pos() })

	for _, n := range named {
		p := pairs[n]
		typeName := n.Obj().Name()
		if p.snap == nil {
			// RestoreFrom without SnapshotTo: a half of the pair exists,
			// so the author meant this type to checkpoint.
			pass.Reportf(p.restore.Pos(),
				"%s has RestoreFrom but no SnapshotTo: snapshot pairs must be written together", typeName)
			continue
		}
		if p.restore == nil {
			pass.Reportf(p.snap.Pos(),
				"%s has SnapshotTo but no RestoreFrom: a snapshot nobody can load is dead weight, and a restore path added later will drift", typeName)
			continue
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		inSnap := fieldsReferenced(pass, p.snap, st, decls, edges)
		inRestore := fieldsReferenced(pass, p.restore, st, decls, edges)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			mutator, mutable := mutations[field]
			if !mutable {
				continue
			}
			if !inSnap[field] {
				pass.Reportf(field.Pos(),
					"mutable field %s.%s (assigned in %s) is not written by SnapshotTo: a warm start would silently lose it — serialize it or waive with //peilint:allow snapcomplete <reason>",
					typeName, field.Name(), mutator)
			}
			if !inRestore[field] {
				pass.Reportf(field.Pos(),
					"mutable field %s.%s (assigned in %s) is not restored by RestoreFrom: a warm start would silently lose it — restore it or waive with //peilint:allow snapcomplete <reason>",
					typeName, field.Name(), mutator)
			}
		}
	}
	return nil
}

// collectSnapPairs finds every named type in the package with a
// SnapshotTo or RestoreFrom method (single-parameter, so unrelated
// same-named methods don't trigger).
func collectSnapPairs(pass *Pass) map[*types.Named]*snapPair {
	pairs := make(map[*types.Named]*snapPair)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "SnapshotTo" && fd.Name.Name != "RestoreFrom" {
				continue
			}
			if fd.Type.Params == nil || len(fd.Type.Params.List) != 1 {
				continue
			}
			f, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := methodRecvNamed(f)
			if named == nil || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			p := pairs[named]
			if p == nil {
				p = &snapPair{named: named}
				pairs[named] = p
			}
			if fd.Name.Name == "SnapshotTo" {
				p.snap = fd
			} else {
				p.restore = fd
			}
		}
	}
	return pairs
}

// collectFieldMutations maps every struct field assigned anywhere in
// the package — outside construction (New*, init) and outside
// RestoreFrom — to the name of one function that assigns it. Assigning
// through an index or a nested selector marks the outer field too:
// v.lines[i].lru = x mutates the contents of lines.
func collectFieldMutations(pass *Pass) map[*types.Var]string {
	mutations := make(map[*types.Var]string)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(strings.ToLower(name), "new") || name == "init" || name == "RestoreFrom" {
				continue
			}
			label := name
			if fd.Recv != nil {
				if f, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					label = qualName(f)
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						markFieldChain(pass, lhs, label, mutations)
					}
				case *ast.IncDecStmt:
					markFieldChain(pass, n.X, label, mutations)
				}
				return true
			})
		}
	}
	return mutations
}

// markFieldChain records every struct field along an lvalue's selector
// chain as mutated by label.
func markFieldChain(pass *Pass, expr ast.Expr, label string, mutations map[*types.Var]string) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				if _, seen := mutations[v]; !seen {
					mutations[v] = label
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return
		}
	}
}

// fieldsReferenced returns the fields of st that the method references
// — reads for SnapshotTo, writes for RestoreFrom; either direction
// counts, since quiescence checks legitimately read a field without
// serializing it (those fields are waived, not invisible). References
// propagate through package-local callees: a RestoreFrom that rebuilds
// counters via Set → intern, or asserts quiescence via Pending(), has
// genuinely consulted the fields those helpers touch.
func fieldsReferenced(pass *Pass, fd *ast.FuncDecl, st *types.Struct, decls map[*types.Func]*ast.FuncDecl, edges map[*types.Func][]*types.Func) map[*types.Var]bool {
	own := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		own[st.Field(i)] = true
	}
	// BFS over the local call graph from the snapshot method itself.
	bodies := []*ast.FuncDecl{fd}
	if root, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		seen := map[*types.Func]bool{root: true}
		queue := []*types.Func{root}
		for len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			for _, callee := range edges[f] {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
					if cd, ok := decls[callee]; ok {
						bodies = append(bodies, cd)
					}
				}
			}
		}
	}
	refs := make(map[*types.Var]bool)
	for _, body := range bodies {
		ast.Inspect(body.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() && own[v] {
				refs[v] = true
			}
			return true
		})
	}
	return refs
}
