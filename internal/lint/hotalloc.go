// The hotalloc analyzer: the calendar-queue kernel is zero-allocation
// in steady state (pinned by testing.AllocsPerRun in the sim package's
// tests), and every simulator event funnels through it. This analyzer
// rejects the three easy ways to reintroduce a per-event allocation:
// formatted strings, string concatenation, and capturing closures.
//
// Panic arguments are exempt — a formatted panic message allocates only
// on the way down, when the simulation is already dead — and so are
// New* constructors, which run once at machine-build time rather than
// per event, and snapshot.go files, whose checkpoint serialization runs
// once per quiescent phase boundary, never inside the event loop.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// allocatingFmtFuncs are fmt package functions that build and return a
// string (or error) — one heap allocation each.
var allocatingFmtFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
}

// HotAlloc flags per-event allocations inside the event kernel and the
// per-event component packages that feed it (caches, DRAM, HMC, PIM).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "inside the simulator's per-event packages, forbid fmt string " +
		"building, non-constant string concatenation, and closures that " +
		"capture variables — directly or via calls into helper packages " +
		"that build strings per call; panic arguments, New* constructors, " +
		"and snapshot.go files (phase-boundary serialization, not per-event " +
		"code) are exempt",
	Packages: []string{
		"internal/sim",
		"internal/cache",
		"internal/dram",
		"internal/hmc",
		"internal/pim",
	},
	FactTypes: []Fact{(*AllocFact)(nil)},
	Run:       runHotAlloc,
}

// AllocFact marks a function that allocates a string on every call:
// fmt string building (Errorf excluded — error construction is
// cold-path by project convention, aborting or poisoning the run) or
// non-constant concatenation, directly or transitively. Hot-path code
// calling such a helper in another package pays the allocation per
// event even though the helper's own package is outside the hot
// perimeter.
type AllocFact struct {
	Source string // the allocating operation, e.g. "fmt.Sprintf"
	Path   string // witness call chain down to Source
}

// AFact marks AllocFact as a fact type.
func (*AllocFact) AFact() {}

// factFmtFuncs are the fmt string builders that seed AllocFacts.
// Errorf is deliberately absent: in this codebase error construction
// aborts or poisons a run, so it never recurs per event.
var factFmtFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Appendf":  true,
}

func runHotAlloc(pass *Pass) error {
	gatherAllocFacts(pass)
	for _, file := range pass.Files {
		// Snapshot/restore code runs once per quiescent phase boundary —
		// by definition outside the event loop — so a whole snapshot.go
		// file is exempt, the same way New* constructors are.
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "snapshot.go" {
			continue
		}
		panicSpans := collectPanicArgSpans(pass.Info, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "New") {
				continue // construction time, not per event
			}
			checkHotFunc(pass, fd, panicSpans)
		}
	}
	return nil
}

// gatherAllocFacts computes, for every function declared in the
// package, whether it builds a string on every call — directly or
// through package-local calls or calls into already-analyzed module
// packages — and exports an AllocFact for each one that does. Panic
// arguments stay exempt: a message built on the way down allocates only
// once, when the run is already dead.
func gatherAllocFacts(pass *Pass) {
	decls := localFuncs(pass)
	edges := localEdges(pass, decls)
	seeds := make(map[*types.Func]reach)
	for f, fd := range decls {
		file := fileOf(pass, fd)
		if file == nil {
			continue
		}
		panicSpans := collectPanicArgSpans(pass.Info, file)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if _, seeded := seeds[f]; seeded {
				return false
			}
			if panicSpans.contains(n) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := funcFor(pass.Info, n.Fun)
				if callee == nil {
					return true
				}
				if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" && factFmtFuncs[callee.Name()] {
					src := "fmt." + callee.Name()
					seeds[f] = reach{Source: src, Path: src}
					return true
				}
				if callee.Pkg() != pass.Pkg {
					var fact AllocFact
					if pass.ImportObjectFact(callee, &fact) {
						seeds[f] = reach{Source: fact.Source, Path: chainTo(callee, reach{fact.Source, fact.Path})}
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isNonConstantString(pass, n) {
					seeds[f] = reach{Source: "string concatenation", Path: "string concatenation"}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					if t := pass.Info.TypeOf(n.Lhs[0]); t != nil && isStringType(t) {
						seeds[f] = reach{Source: "string +=", Path: "string +="}
					}
				}
			}
			return true
		})
	}
	for f, r := range propagateReach(decls, edges, seeds) {
		pass.ExportObjectFact(f, &AllocFact{Source: r.Source, Path: r.Path})
	}
}

// fileOf returns the *ast.File containing the declaration.
func fileOf(pass *Pass, fd *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if fd.Pos() >= f.Pos() && fd.Pos() <= f.End() {
			return f
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, panicSpans panicArgSpans) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if panicSpans.contains(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			f := funcFor(pass.Info, n.Fun)
			if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" && allocatingFmtFuncs[f.Name()] {
				pass.Reportf(n.Pos(),
					"fmt.%s allocates a string per event: precompute the message or move formatting off the hot path",
					f.Name())
			}
			checkAllocCall(pass, n, f)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstantString(pass, n) {
				pass.Reportf(n.Pos(),
					"string concatenation allocates per event: intern the string at construction time")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := pass.Info.TypeOf(n.Lhs[0]); t != nil && isStringType(t) {
					pass.Reportf(n.Pos(),
						"string += allocates per event: intern the string at construction time")
				}
			}
		case *ast.FuncLit:
			if captured := capturedVars(pass, n); len(captured) > 0 {
				pass.Reportf(n.Pos(),
					"closure captures %s and therefore allocates per event: hoist the closure to construction time or pass state explicitly",
					strings.Join(captured, ", "))
				return false // don't re-report nested literals' shared captures
			}
		}
		return true
	})
}

// checkAllocCall flags calls from hot-path code into module functions
// outside the hot perimeter that allocate a string on every call.
// Callees inside the perimeter are not re-flagged: the allocation
// itself gets a direct diagnostic in its own package.
func checkAllocCall(pass *Pass, call *ast.CallExpr, callee *types.Func) {
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg || pass.InScope(callee.Pkg()) {
		return
	}
	var fact AllocFact
	if !pass.ImportObjectFact(callee, &fact) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s allocates per event via %s (%s): precompute the string or move the helper call off the hot path",
		qualName(callee), fact.Source, chainTo(callee, reach{fact.Source, fact.Path}))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isNonConstantString reports whether the expression is a string
// concatenation the compiler cannot fold (at least one operand is not
// a constant).
func isNonConstantString(pass *Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || !isStringType(tv.Type) {
		return false
	}
	return tv.Value == nil // constant-folded concatenations carry a value
}

// capturedVars returns the sorted names of variables the function
// literal references but does not declare — the captures that force the
// closure onto the heap.
func capturedVars(pass *Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared inside the literal (params, results, locals)?
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}
