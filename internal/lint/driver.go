// The module-wide driver: analyzes packages in import-graph topological
// order so that facts exported by a dependency are visible when its
// importers are analyzed, then post-processes the result set —
// deduplicating diagnostics, sorting them stably, and reporting stale
// waivers. This is what `go run ./cmd/peilint ./...` and the
// whole-tree test run; single-package runs without facts stay on
// RunAnalyzer.

package lint

import (
	"fmt"
	"sort"
)

// Analyze runs the analyzers over the target packages with whole-module
// fact propagation. The analysis set is the targets plus every
// module-local package they transitively import (the loader has already
// type-checked those to build the targets at all); fact-exporting
// analyzers run over the whole set in topological order, while
// diagnostics are kept only for target packages inside each analyzer's
// scope. A well-formed //peilint:allow directive in a target package
// that suppressed nothing is itself reported (analyzer "waiver"):
// stale waivers cannot accumulate. Diagnostics come back deduplicated
// and sorted by file, line, column, analyzer.
func Analyze(loader *Loader, targets []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, waivers, err := analyze(loader, targets, analyzers, nil)
	if err != nil {
		return nil, err
	}
	diags = append(diags, staleWaivers(loader, targets, waivers, analyzers)...)
	return finishDiagnostics(diags), nil
}

// analyzeSingle runs one analyzer with fact propagation through the
// target's import closure, reporting on the target package regardless
// of the analyzer's scope — the analysistest entry point, where the
// testdata package is deliberately outside every production perimeter.
// No stale-waiver pass: golden packages carry waivers for analyzers
// that are not running.
func analyzeSingle(loader *Loader, target *Package, a *Analyzer) ([]Diagnostic, error) {
	diags, _, err := analyze(loader, nil, []*Analyzer{a}, target)
	if err != nil {
		return nil, err
	}
	return finishDiagnostics(diags), nil
}

// analyze is the shared driver core. When forced is non-nil it is the
// sole reporting package (scope ignored); otherwise targets report
// subject to scope.
func analyze(loader *Loader, targets []*Package, analyzers []*Analyzer, forced *Package) ([]Diagnostic, map[*Package]waiverSet, error) {
	roots := targets
	if forced != nil {
		roots = []*Package{forced}
	}
	order := topoClosure(loader, roots)
	targetSet := make(map[*Package]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}

	facts := newFactStore()
	waivers := make(map[*Package]waiverSet)
	var diags []Diagnostic
	for _, pkg := range order {
		rel := pkg.RelPath(loader.ModulePath)
		ws := parseWaivers(pkg.Fset, pkg.Files)
		waivers[pkg] = ws
		for _, a := range analyzers {
			reporting := pkg == forced || (targetSet[pkg] && a.AppliesTo(rel))
			if !reporting && len(a.FactTypes) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ModulePath: loader.ModulePath,
				report:     reporting,
				facts:      facts,
				waivers:    ws,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.diags...)
		}
	}
	return diags, waivers, nil
}

// topoClosure returns the roots plus every loader-known package they
// transitively import, dependencies before dependents. Standard-library
// imports resolve through the source importer, not the loader, so they
// are naturally excluded.
func topoClosure(loader *Loader, roots []*Package) []*Package {
	sorted := make([]*Package, len(roots))
	copy(sorted, roots)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	var order []*Package
	seen := make(map[*Package]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Types.Imports() {
			if dep := loader.Loaded(imp.Path()); dep != nil {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, r := range sorted {
		visit(r)
	}
	return order
}

// staleWaivers reports every well-formed waiver in a target package
// that names an analyzer in this run yet suppressed nothing: either the
// code it excused has been fixed, or the waiver never matched — both
// mean it must go, so the waiver inventory stays an honest list of live
// exceptions.
func staleWaivers(loader *Loader, targets []*Package, waivers map[*Package]waiverSet, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, lines := range waivers[pkg] {
			for _, w := range lines {
				if w.analyzer == "" || w.reason == "" || !ran[w.analyzer] || w.used {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(w.pos),
					Analyzer: waiverAnalyzerName,
					Message: fmt.Sprintf("stale waiver: %s reports nothing here; delete this //peilint:allow %s directive",
						w.analyzer, w.analyzer),
				})
			}
		}
	}
	return diags
}

// finishDiagnostics deduplicates identical findings (the same position,
// analyzer, and message can surface twice when a package is analyzed
// under overlapping patterns) and sorts the result stably.
func finishDiagnostics(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}
