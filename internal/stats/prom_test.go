package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"l2.hits":     "l2_hits",
		"pmu.to-mem":  "pmu_to_mem",
		"plain":       "plain",
		"0weird":      "_0weird",
		"a b/c":       "a_b_c",
		"UPPER.Case9": "UPPER_Case9",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusDeterministicSorted(t *testing.T) {
	snap := map[string]int64{"b.two": 2, "a.one": 1, "c-three": 3}
	var first bytes.Buffer
	WritePrometheus(&first, "pei_", snap)
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		WritePrometheus(&again, "pei_", snap)
		if again.String() != first.String() {
			t.Fatal("output not deterministic across calls")
		}
	}
	out := first.String()
	wantLines := []string{
		"# TYPE pei_a_one gauge",
		"pei_a_one 1",
		"pei_b_two 2",
		"pei_c_three 3",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l) {
			t.Fatalf("missing line %q in:\n%s", l, out)
		}
	}
	if strings.Index(out, "pei_a_one") > strings.Index(out, "pei_b_two") {
		t.Fatal("metrics not in sorted order")
	}
}

func TestHistogramWritePrometheus(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []int64{5, 7, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	h.WritePrometheus(&buf, "wait_ms")
	out := buf.String()
	for _, l := range []string{
		"# TYPE wait_ms histogram",
		`wait_ms_bucket{le="10"} 2`,
		`wait_ms_bucket{le="100"} 3`, // cumulative
		`wait_ms_bucket{le="+Inf"} 4`,
		"wait_ms_sum 562",
		"wait_ms_count 4",
	} {
		if !strings.Contains(out, l) {
			t.Fatalf("missing %q in:\n%s", l, out)
		}
	}
}
