package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 4)
	r.Add("b", -2)
	if got := r.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := r.Get("b"); got != -2 {
		t.Fatalf("b = %d, want -2", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("zeta")
	r.Inc("alpha")
	r.Inc("mid")
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 10)
	s := r.Snapshot()
	r.Add("x", 5)
	if s["x"] != 10 {
		t.Fatalf("snapshot mutated: %d", s["x"])
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 3)
	r.Reset()
	if r.Get("x") != 0 {
		t.Fatal("Reset did not zero counter")
	}
	if len(r.Names()) != 1 {
		t.Fatal("Reset dropped counter name")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Add("cache.l1.hits", 7)
	var buf bytes.Buffer
	r.Dump(&buf)
	if !strings.Contains(buf.String(), "cache.l1.hits") || !strings.Contains(buf.String(), "7") {
		t.Fatalf("Dump output %q missing counter", buf.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	h.Observe(5)
	h.Observe(10)
	h.Observe(11)
	h.Observe(5000)
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 0 || h.Overflow != 1 {
		t.Fatalf("buckets = %v overflow %d", h.Counts, h.Overflow)
	}
	if h.Max != 5000 || h.N != 4 {
		t.Fatalf("Max=%d N=%d", h.Max, h.N)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing bounds")
		}
	}()
	NewHistogram(10, 10)
}

// Property: mean*N == sum of samples, and total bucket population == N.
func TestHistogramConservation(t *testing.T) {
	f := func(samples []int16) bool {
		h := NewHistogram(16, 256, 4096)
		var sum int64
		for _, s := range samples {
			v := int64(s)
			if v < 0 {
				v = -v
			}
			sum += v
			h.Observe(v)
		}
		var pop int64
		for _, c := range h.Counts {
			pop += c
		}
		pop += h.Overflow
		return pop == int64(len(samples)) && h.Sum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
