package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 4)
	r.Add("b", -2)
	if got := r.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := r.Get("b"); got != -2 {
		t.Fatalf("b = %d, want -2", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("zeta")
	r.Inc("alpha")
	r.Inc("mid")
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 10)
	s := r.Snapshot()
	r.Add("x", 5)
	if s["x"] != 10 {
		t.Fatalf("snapshot mutated: %d", s["x"])
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 3)
	r.Reset()
	if r.Get("x") != 0 {
		t.Fatal("Reset did not zero counter")
	}
	if len(r.Names()) != 1 {
		t.Fatal("Reset dropped counter name")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Add("cache.l1.hits", 7)
	var buf bytes.Buffer
	r.Dump(&buf)
	if !strings.Contains(buf.String(), "cache.l1.hits") || !strings.Contains(buf.String(), "7") {
		t.Fatalf("Dump output %q missing counter", buf.String())
	}
}

func TestRegistryHandle(t *testing.T) {
	r := NewRegistry()
	h := r.Counter("hits")
	h.Inc()
	h.Add(4)
	if got := h.Get(); got != 5 {
		t.Fatalf("handle Get = %d, want 5", got)
	}
	if got := r.Get("hits"); got != 5 {
		t.Fatalf("string Get = %d, want 5", got)
	}
	if h.Name() != "hits" {
		t.Fatalf("Name = %q", h.Name())
	}
	// String-keyed and handle updates hit the same cell.
	r.Add("hits", 10)
	if h.Get() != 15 {
		t.Fatalf("after string Add, handle Get = %d, want 15", h.Get())
	}
	h.Set(3)
	if r.Get("hits") != 3 {
		t.Fatalf("after handle Set, string Get = %d, want 3", r.Get("hits"))
	}
}

// TestRegistryHandleSurvivesGrowth pins the reason Handle stores an
// index rather than a pointer: interning more counters grows the backing
// slice, and previously issued handles must keep working.
func TestRegistryHandleSurvivesGrowth(t *testing.T) {
	r := NewRegistry()
	h := r.Counter("first")
	for i := 0; i < 1000; i++ {
		r.Counter("c" + strings.Repeat("x", i%7) + string(rune('a'+i%26)))
		r.Inc("other" + string(rune('a'+i%26)))
	}
	h.Add(42)
	if got := r.Get("first"); got != 42 {
		t.Fatalf("handle stale after growth: Get = %d, want 42", got)
	}
}

// TestRegistryCounterIdempotent checks that re-resolving a name returns
// a handle to the same cell.
func TestRegistryCounterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	a.Inc()
	b.Inc()
	if a.Get() != 2 || b.Get() != 2 {
		t.Fatalf("handles diverged: %d vs %d", a.Get(), b.Get())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	h.Observe(5)
	h.Observe(10)
	h.Observe(11)
	h.Observe(5000)
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 0 || h.Overflow != 1 {
		t.Fatalf("buckets = %v overflow %d", h.Counts, h.Overflow)
	}
	if h.Max != 5000 || h.N != 4 {
		t.Fatalf("Max=%d N=%d", h.Max, h.N)
	}
}

// TestHistogramBucketEdges table-tests the binary-search bucket
// selection at every boundary: a sample equal to a bound lands in that
// bound's bucket (bucket i holds v <= Bounds[i]).
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int // index into Counts, or -1 for overflow
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0},
		{11, 1}, {99, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, -1}, {1 << 40, -1},
	}
	for _, c := range cases {
		h := NewHistogram(10, 100, 1000)
		h.Observe(c.v)
		want := make([]int64, len(h.Counts))
		var wantOverflow int64
		if c.bucket >= 0 {
			want[c.bucket] = 1
		} else {
			wantOverflow = 1
		}
		for i := range h.Counts {
			if h.Counts[i] != want[i] {
				t.Fatalf("Observe(%d): Counts = %v, want %v", c.v, h.Counts, want)
			}
		}
		if h.Overflow != wantOverflow {
			t.Fatalf("Observe(%d): Overflow = %d, want %d", c.v, h.Overflow, wantOverflow)
		}
	}
}

// TestHistogramMaxAllNegative pins the fixed Max seeding: for a stream
// of all-negative samples, Max must be the (negative) maximum rather
// than a stale zero.
func TestHistogramMaxAllNegative(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(-50)
	h.Observe(-3)
	h.Observe(-999)
	if h.Max != -3 {
		t.Fatalf("Max = %d, want -3", h.Max)
	}
	if h.Sum != -1052 || h.N != 3 {
		t.Fatalf("Sum=%d N=%d", h.Sum, h.N)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing bounds")
		}
	}()
	NewHistogram(10, 10)
}

// Property: mean*N == sum of samples, and total bucket population == N.
func TestHistogramConservation(t *testing.T) {
	f := func(samples []int16) bool {
		h := NewHistogram(16, 256, 4096)
		var sum int64
		for _, s := range samples {
			v := int64(s)
			if v < 0 {
				v = -v
			}
			sum += v
			h.Observe(v)
		}
		var pop int64
		for _, c := range h.Counts {
			pop += c
		}
		pop += h.Overflow
		return pop == int64(len(samples)) && h.Sum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
