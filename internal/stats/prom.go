package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromName converts a registry counter name ("l2.hits", "pmu.to-mem")
// into a valid Prometheus metric name: every character outside
// [a-zA-Z0-9_] becomes '_', and a leading digit gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders a Registry snapshot in Prometheus text
// exposition format, one untyped metric per counter, each name prefixed
// with prefix (itself expected to be a valid metric-name prefix).
// Output is deterministic: metrics appear in sorted name order.
func WritePrometheus(w io.Writer, prefix string, snapshot map[string]int64) {
	names := make([]string, 0, len(snapshot))
	for n := range snapshot {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		metric := prefix + PromName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", metric, metric, snapshot[n])
	}
}

// WritePrometheus renders the histogram in Prometheus histogram text
// format under the given metric name: one cumulative _bucket series per
// bound plus the +Inf bucket, then _sum and _count.
func (h *Histogram) WritePrometheus(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.N)
}
