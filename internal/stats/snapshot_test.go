package stats

import (
	"bytes"
	"reflect"
	"testing"

	"pimsim/internal/snap"
)

// snapshotOf serializes a component into a fresh snap stream and hands
// back a reader positioned after the header.
func snapshotOf(t *testing.T, write func(*snap.Writer)) *snap.Reader {
	t.Helper()
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	write(w)
	if err := w.Err(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := snap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRegistrySnapshotRestoreRoundTrip pins the registry's restore
// semantics: values travel by name, not by interning index, so a target
// registry that interned a different subset in a different order — what
// every freshly built machine is relative to the snapshotted one — ends
// up with the snapshot's values while Handles its components already
// hold keep addressing the right counters.
func TestRegistrySnapshotRestoreRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Add("zeta.ops", 7)
	src.Add("alpha.hits", 42)
	src.Add("vault.0.accesses", -3)

	rd := snapshotOf(t, src.SnapshotTo)

	// The target interns in a different order, holds a pre-restore
	// Handle, carries a stale value, and owns a counter the snapshot
	// does not mention.
	dst := NewRegistry()
	h := dst.Counter("vault.0.accesses")
	dst.Add("alpha.hits", 999) // stale; restore must overwrite
	dst.Add("dst.only", 5)     // absent from the stream; must survive

	dst.RestoreFrom(rd)
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]int64{
		"zeta.ops":         7,
		"alpha.hits":       42,
		"vault.0.accesses": -3,
		"dst.only":         5,
	} {
		if got := dst.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// The pre-restore Handle still addresses its counter: interning
	// indices were not disturbed by the by-name restore.
	if h.Name() != "vault.0.accesses" || h.Get() != -3 {
		t.Fatalf("handle destabilized: name %q value %d", h.Name(), h.Get())
	}
	h.Add(1)
	if got := dst.Get("vault.0.accesses"); got != -2 {
		t.Fatalf("handle write went to the wrong counter: %d", got)
	}
}

// TestRegistrySnapshotKernelAgnosticBytes pins that two registries with
// identical counters but different interning orders serialize to the
// same bytes — the property that keeps snapshot blobs identical across
// the sequential and PDES kernels, whose vault shards intern in
// different orders.
func TestRegistrySnapshotKernelAgnosticBytes(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("x", 1)
	a.Add("y", 2)
	b.Add("y", 2)
	b.Add("x", 1)

	dump := func(r *Registry) []byte {
		var buf bytes.Buffer
		w := snap.NewWriter(&buf)
		r.SnapshotTo(w)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(dump(a), dump(b)) {
		t.Fatal("interning order leaked into the snapshot bytes")
	}
}

// TestHistogramSnapshotRoundTrip: full observation state survives, and
// a bounds mismatch (a histogram built from a different configuration)
// fails loudly instead of loading garbage.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	src := NewHistogram(1, 10, 100)
	for _, v := range []int64{0, 5, 5, 42, 1000, -7} {
		src.Observe(v)
	}
	rd := snapshotOf(t, src.SnapshotTo)
	dst := NewHistogram(1, 10, 100)
	dst.Observe(3) // pre-existing state; restore must replace it
	dst.RestoreFrom(rd)
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("histogram round trip diverged:\nsrc %+v\ndst %+v", src, dst)
	}

	rd2 := snapshotOf(t, src.SnapshotTo)
	other := NewHistogram(1, 10, 100, 1000)
	other.RestoreFrom(rd2)
	if rd2.Err() == nil {
		t.Fatal("bounds mismatch restored without error")
	}
}
