// Package stats provides the named counters and simple distributions that
// simulator components report into and that the experiment harness reads
// out of. A Registry is plain data: no locking is needed because the
// simulator is single-threaded.
//
// Counters live in a flat []int64. Names are interned once — at component
// construction time via Counter, or lazily by the string-keyed methods —
// and every per-event update goes through a Handle, which is a plain
// index into the value array. The string-keyed Get/Set/Snapshot/Dump
// methods remain for the read side (harness, energy model, tests), where
// a map lookup per run is irrelevant.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// Registry holds named counters. Counters are created on first use.
type Registry struct {
	index map[string]int
	names []string // interning order; parallel to vals
	vals  []int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Handle is a pre-resolved counter: the name has been interned and the
// handle holds its slot in the registry's flat value array. Updating
// through a Handle touches no map and allocates nothing, which is what
// the simulated hot path (every cache hit, DRAM access, link flit, PMU
// decision) needs. The zero Handle is not usable; obtain one from
// Registry.Counter.
type Handle struct {
	r   *Registry
	idx int32
}

// Counter interns name (idempotently) and returns its handle. Call at
// component construction time, not per event.
func (r *Registry) Counter(name string) Handle {
	return Handle{r: r, idx: int32(r.intern(name))}
}

func (r *Registry) intern(name string) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	i := len(r.vals)
	r.index[name] = i
	r.names = append(r.names, name)
	r.vals = append(r.vals, 0)
	return i
}

// Inc increments the counter by one.
func (h Handle) Inc() { h.r.vals[h.idx]++ }

// Add increments the counter by delta.
func (h Handle) Add(delta int64) { h.r.vals[h.idx] += delta }

// Get returns the counter's current value.
func (h Handle) Get() int64 { return h.r.vals[h.idx] }

// Set overwrites the counter.
func (h Handle) Set(v int64) { h.r.vals[h.idx] = v }

// Name returns the counter's interned name.
func (h Handle) Name() string { return h.r.names[h.idx] }

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.vals[r.intern(name)] += delta
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
// A missing name is not interned, so probing never grows the registry.
func (r *Registry) Get(name string) int64 {
	if i, ok := r.index[name]; ok {
		return r.vals[i]
	}
	return 0
}

// Set overwrites the named counter.
func (r *Registry) Set(name string, v int64) { r.vals[r.intern(name)] = v }

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(r.names))
	for i, n := range r.names {
		m[n] = r.vals[i]
	}
	return m
}

// AddAll folds every counter of o into r, summing by name. The PDES
// machine uses it to merge per-partition registry shards after a run;
// addition commutes, so the merge order never affects the result.
func (r *Registry) AddAll(o *Registry) {
	for i, n := range o.names {
		r.Add(n, o.vals[i])
	}
}

// Reset zeroes every counter but keeps the names registered (and every
// outstanding Handle valid).
func (r *Registry) Reset() {
	for i := range r.vals {
		r.vals[i] = 0
	}
}

// Dump writes "name value" lines in sorted order.
func (r *Registry) Dump(w io.Writer) {
	for _, n := range r.Names() {
		fmt.Fprintf(w, "%-40s %d\n", n, r.vals[r.index[n]])
	}
}

// Histogram is a fixed-bucket histogram for latency-style distributions.
type Histogram struct {
	// Bounds are the inclusive upper bounds of each bucket; values above
	// the last bound land in the overflow bucket.
	Bounds []int64
	Counts []int64
	// Overflow counts samples above the last bound.
	Overflow int64
	// N, Sum, Max summarize all observed samples. Max is seeded from the
	// first sample, so all-negative streams report a real maximum.
	N   int64
	Sum int64
	Max int64
}

// NewHistogram creates a histogram with the given bucket upper bounds,
// which must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds))}
}

// Observe records one sample. The bucket is found by binary search, so
// wide histograms cost O(log buckets) per sample.
func (h *Histogram) Observe(v int64) {
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	// First bucket whose upper bound admits v (bounds strictly increase).
	lo, hi := 0, len(h.Bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.Bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.Bounds) {
		h.Overflow++
		return
	}
	h.Counts[lo]++
}

// Mean returns the mean of all samples, or zero if none were observed.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}
