// Package stats provides the named counters and simple distributions that
// simulator components report into and that the experiment harness reads
// out of. A Registry is plain data: no locking is needed because the
// simulator is single-threaded.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// Registry holds named counters. Counters are created on first use.
type Registry struct {
	counters map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64)}
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.counters[name] += delta
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (r *Registry) Get(name string) int64 { return r.counters[name] }

// Set overwrites the named counter.
func (r *Registry) Set(name string, v int64) { r.counters[name] = v }

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		m[k] = v
	}
	return m
}

// Reset zeroes every counter but keeps the names registered.
func (r *Registry) Reset() {
	for k := range r.counters {
		r.counters[k] = 0
	}
}

// Dump writes "name value" lines in sorted order.
func (r *Registry) Dump(w io.Writer) {
	for _, n := range r.Names() {
		fmt.Fprintf(w, "%-40s %d\n", n, r.counters[n])
	}
}

// Histogram is a fixed-bucket histogram for latency-style distributions.
type Histogram struct {
	// Bounds are the inclusive upper bounds of each bucket; values above
	// the last bound land in the overflow bucket.
	Bounds []int64
	Counts []int64
	// Overflow counts samples above the last bound.
	Overflow int64
	// N, Sum, Max summarize all observed samples.
	N   int64
	Sum int64
	Max int64
}

// NewHistogram creates a histogram with the given bucket upper bounds,
// which must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Overflow++
}

// Mean returns the mean of all samples, or zero if none were observed.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}
