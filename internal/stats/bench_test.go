package stats

import "testing"

// BenchmarkRegistryHandle vs BenchmarkRegistryString measure the two
// counter-update paths: a pre-resolved Handle (what every component now
// uses on the simulated hot path) against the legacy string-keyed map
// access (kept for the read side).
func BenchmarkRegistryHandle(b *testing.B) {
	r := NewRegistry()
	h := r.Counter("l1.hits")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
	if h.Get() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

func BenchmarkRegistryString(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Inc("l1.hits")
	}
	if r.Get("l1.hits") != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(4, 16, 64, 256, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 8191))
	}
}
