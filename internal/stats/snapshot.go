package stats

import (
	"fmt"
	"sort"

	"pimsim/internal/snap"
)

// SnapshotTo serializes every counter as (name, value) pairs in sorted
// name order — not interning order, which differs between the
// sequential and PDES builds of the same machine (vault counters intern
// into per-partition shards under PDES). Sorting is what keeps the byte
// stream, and therefore the content-addressed blob, kernel-agnostic.
func (r *Registry) SnapshotTo(w *snap.Writer) {
	w.Section("SREG")
	sorted := make([]string, len(r.names))
	copy(sorted, r.names)
	sort.Strings(sorted)
	w.Int(len(sorted))
	for _, n := range sorted {
		w.String(n)
		w.I64(r.vals[r.index[n]])
	}
}

// RestoreFrom sets counters by name from a SnapshotTo stream. Names are
// matched against the existing interning table, so Handles held by
// already-constructed components keep their indices; a name the current
// registry has not interned is added at the end (harmless — it can only
// happen when the snapshot holds late-interned names the fresh machine
// has not reached yet). Counters present in the registry but absent
// from the stream are left untouched.
func (r *Registry) RestoreFrom(rd *snap.Reader) {
	rd.Section("SREG")
	n := rd.Int()
	for i := 0; i < n; i++ {
		name := rd.String()
		val := rd.I64()
		if rd.Err() != nil {
			return
		}
		r.Set(name, val)
	}
}

// SnapshotTo serializes the histogram's bounds and all observation
// state.
func (h *Histogram) SnapshotTo(w *snap.Writer) {
	w.Section("HIST")
	w.I64s(h.Bounds)
	w.I64s(h.Counts)
	w.I64(h.Overflow)
	w.I64(h.N)
	w.I64(h.Sum)
	w.I64(h.Max)
}

// RestoreFrom loads observation state into h. The bucket bounds must
// match the snapshot's exactly — differing bounds mean the machine was
// built from a different configuration.
func (h *Histogram) RestoreFrom(r *snap.Reader) {
	r.Section("HIST")
	bounds := r.I64s()
	if r.Err() != nil {
		return
	}
	if len(bounds) != len(h.Bounds) {
		r.Fail(fmt.Errorf("stats: histogram has %d bounds, snapshot has %d", len(h.Bounds), len(bounds)))
		return
	}
	for i, b := range bounds {
		if b != h.Bounds[i] {
			r.Fail(fmt.Errorf("stats: histogram bound %d is %d, snapshot has %d", i, h.Bounds[i], b))
			return
		}
	}
	r.I64sInto(h.Counts)
	h.Overflow = r.I64()
	h.N = r.I64()
	h.Sum = r.I64()
	h.Max = r.I64()
}
