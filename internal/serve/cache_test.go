package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissAndLRU(t *testing.T) {
	c := newResultCache(30)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("0123456789")) // 10 bytes
	c.Put("b", []byte("0123456789"))
	c.Put("c", []byte("0123456789"))
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("0123456789")) {
		t.Fatal("a should be cached")
	}
	// a is now MRU; inserting d (10 bytes) must evict b, the LRU.
	c.Put("d", []byte("0123456789"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("stats entries=%d bytes=%d, want 3/30", st.Entries, st.Bytes)
	}
	if st.Evicted != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evicted)
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	c := newResultCache(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a rather longer value"))
	v, ok := c.Get("k")
	if !ok || string(v) != "a rather longer value" {
		t.Fatalf("got %q", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("a rather longer value")) {
		t.Fatalf("stats after refresh: %+v", st)
	}
}

func TestCacheValueLargerThanBudget(t *testing.T) {
	c := newResultCache(10)
	c.Put("big", make([]byte, 100))
	if _, ok := c.Get("big"); ok {
		t.Fatal("over-budget value should not be retained")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheManyKeysStaysWithinBudget(t *testing.T) {
	c := newResultCache(1000)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 100))
	}
	st := c.Stats()
	if st.Bytes > 1000 {
		t.Fatalf("cache over budget: %d bytes", st.Bytes)
	}
	if st.Entries != 10 {
		t.Fatalf("entries = %d, want 10", st.Entries)
	}
}
