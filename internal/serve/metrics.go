package serve

import (
	"io"
	"sort"
	"sync"

	"pimsim/internal/stats"
)

// metrics is the service's observability state: a stats.Registry of
// service counters (the same counter machinery the simulator itself
// uses) plus a queue-latency histogram, both guarded by one mutex
// because HTTP handlers and workers touch them concurrently.
//
// Counter names (exported at /metrics with a "peiserved_" prefix,
// dots becoming underscores):
//
//	jobs.submitted   accepted submissions (incl. cache hits + coalesced)
//	jobs.completed   jobs finished successfully
//	jobs.failed      jobs whose run returned an error
//	jobs.cancelled   jobs cancelled via DELETE
//	jobs.coalesced   submissions attached to an identical in-flight job
//	jobs.rejected    submissions bounced with 429 (queue full)
//	sim.cells        simulations started on behalf of jobs
//	sim.cycles       total simulated cycles across completed cells
//	http.requests    HTTP requests served
//	cache.peer_hits  jobs completed from another worker's cache (cluster)
//	cache.peer_served  cached results served to peers via /internal/v1/cache
type metrics struct {
	mu        sync.Mutex
	reg       *stats.Registry
	queueWait *stats.Histogram // milliseconds from enqueue to worker pickup
}

func newMetrics() *metrics {
	return &metrics{
		reg:       stats.NewRegistry(),
		queueWait: stats.NewHistogram(1, 5, 10, 50, 100, 500, 1000, 5000, 15000, 60000),
	}
}

func (m *metrics) add(name string, delta int64) {
	m.mu.Lock()
	m.reg.Add(name, delta)
	m.mu.Unlock()
}

func (m *metrics) get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Get(name)
}

func (m *metrics) observeQueueWait(ms int64) {
	m.mu.Lock()
	m.queueWait.Observe(ms)
	m.mu.Unlock()
}

// write renders the full Prometheus exposition: the registry snapshot
// (after merging in the caller-supplied point-in-time gauges) plus the
// queue-wait histogram.
func (m *metrics) write(w io.Writer, gauges map[string]int64) {
	// Merge gauges in sorted key order: Registry.Set interns names on
	// first use, so iterating the map directly would make the registry's
	// intern order (and therefore Names()/Handle indices) depend on map
	// iteration order and differ between runs.
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	m.mu.Lock()
	for _, n := range names {
		m.reg.Set(n, gauges[n])
	}
	snap := m.reg.Snapshot()
	hist := *m.queueWait
	hist.Bounds = append([]int64(nil), m.queueWait.Bounds...)
	hist.Counts = append([]int64(nil), m.queueWait.Counts...)
	m.mu.Unlock()

	stats.WritePrometheus(w, "peiserved_", snap)
	hist.WritePrometheus(w, "peiserved_queue_wait_ms")
}
