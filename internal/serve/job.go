// Package serve turns the PEI simulator into a long-running service:
// an HTTP job API (submit / poll / stream / cancel), a bounded queue
// feeding a worker pool built on pei.RunJob, a content-addressed LRU
// result cache keyed on pei.JobSpec digests, and a Prometheus /metrics
// surface. cmd/peiserved is the binary front-end.
package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"pimsim/pei"
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker (or for an identical
	// in-flight job it coalesced onto).
	StateQueued JobState = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning JobState = "running"
	// StateDone: finished successfully; Result holds the rendered output.
	StateDone JobState = "done"
	// StateFailed: the run returned an error.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled via DELETE before completing.
	StateCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submission. All mutable fields are guarded by mu; the
// events log and done channel have their own synchronization.
type Job struct {
	ID     string
	Spec   pei.JobSpec
	Digest string

	mu        sync.Mutex
	state     JobState
	output    []byte
	errMsg    string
	cacheHit  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	cancelled bool               // cancel requested (any state)
	followers []*Job             // coalesced duplicates (leader only)

	events *eventLog
	done   chan struct{} // closed on terminal transition
}

// jobView is the API representation of a Job.
type jobView struct {
	ID        string      `json:"id"`
	State     JobState    `json:"state"`
	Digest    string      `json:"digest"`
	Spec      pei.JobSpec `json:"spec"`
	CacheHit  bool        `json:"cacheHit"`
	Created   time.Time   `json:"created"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Error     string      `json:"error,omitempty"`
	ResultURL string      `json:"resultUrl,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:       j.ID,
		State:    j.state,
		Digest:   j.Digest,
		Spec:     j.Spec,
		CacheHit: j.cacheHit,
		Created:  j.created,
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.state == StateDone {
		v.ResultURL = "/v1/jobs/" + j.ID + "/result"
	}
	return v
}

// setState transitions the job and appends a state event; terminal
// transitions close done and the event stream. Returns false if the job
// was already terminal.
func (j *Job) setState(state JobState, now time.Time) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	switch state {
	case StateRunning:
		j.started = now
	case StateDone, StateFailed, StateCancelled:
		j.finished = now
	}
	j.mu.Unlock()
	j.events.append("state", map[string]any{"state": state})
	if state.terminal() {
		j.events.close()
		close(j.done)
	}
	return true
}

// event is one server-sent event: a name and a JSON payload.
type event struct {
	name string
	data []byte
}

// eventLog is an append-only broadcast log. Writers append; any number
// of readers replay from an index and block for more via the wake
// channel. Closing marks the log complete, waking all readers.
type eventLog struct {
	mu     sync.Mutex
	events []event
	closed bool
	wake   chan struct{}
}

func newEventLog() *eventLog { return &eventLog{wake: make(chan struct{})} }

func (l *eventLog) append(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, event{name: name, data: data})
	close(l.wake)
	l.wake = make(chan struct{})
}

func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// next returns the events at and after index i, whether the log is
// complete, and a channel that is closed on the next append or close —
// wait on it when events is empty and closed is false.
func (l *eventLog) next(i int) (evs []event, closed bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < len(l.events) {
		evs = l.events[i:]
	}
	return evs, l.closed, l.wake
}
