package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"pimsim/pei"
)

// TestRetryAfterOnBackpressure is the satellite Retry-After test: a 429
// carries a queue-depth-derived hint (1s headroom + backlog amortized
// over the worker pool).
func TestRetryAfterOnBackpressure(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueDepth: 2}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
		return nil
	}
	_, ts := newTestServer(t, opts)
	defer close(release)

	if status, _ := submit(t, ts, workloadSpec(1)); status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	<-started // worker busy; both queue slots free
	for seed := int64(2); seed <= 3; seed++ {
		if status, _ := submit(t, ts, workloadSpec(seed)); status != http.StatusAccepted {
			t.Fatalf("queued submit seed %d: %d", seed, status)
		}
	}
	body, _ := json.Marshal(workloadSpec(4))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	// queued=2, workers=1: 1 + 2/1 = 3 seconds.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want 3", got)
	}
}

// TestRetryAfterSeconds pins the formula's edges.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct{ queued, workers, want int }{
		{0, 2, 1},
		{8, 2, 5},
		{1000, 1, 60}, // capped
		{4, 0, 5},     // degenerate pool clamps to 1
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.workers); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", c.queued, c.workers, got, c.want)
		}
	}
}

// TestLivenessReadinessSplit is the satellite health-split test:
// liveness stays 200 through drain, readiness (and its /healthz alias)
// flips 503; in cluster mode readiness additionally waits for
// registration.
func TestLivenessReadinessSplit(t *testing.T) {
	opts := Options{Workers: 1, QueueDepth: 2, Logf: discardLogf, ClusterMode: true}
	s := New(opts)
	ts := newHandlerServer(t, s)

	// Cluster mode, not yet registered: live but not ready.
	if code, _ := getBody(t, ts.URL+"/healthz/live"); code != http.StatusOK {
		t.Fatalf("live before registration: %d", code)
	}
	for _, path := range []string{"/healthz/ready", "/healthz"} {
		if code, body := getBody(t, ts.URL+path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s before registration: %d (%s)", path, code, body)
		}
	}

	s.SetRegistered(true)
	for _, path := range []string{"/healthz/live", "/healthz/ready", "/healthz"} {
		if code, _ := getBody(t, ts.URL+path); code != http.StatusOK {
			t.Fatalf("%s after registration: %d", path, code)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain returns immediately; the flag still flips
	s.Drain(ctx)
	if code, _ := getBody(t, ts.URL+"/healthz/live"); code != http.StatusOK {
		t.Fatalf("live while draining: %d, want 200", code)
	}
	if code, _ := getBody(t, ts.URL+"/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("ready while draining: %d, want 503", code)
	}
}

// newHandlerServer wires a Server into httptest without the drain-at-
// cleanup behavior of newTestServer (for tests that drain themselves).
func newHandlerServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestStatusEndpoint: /internal/v1/status reports queue-slot usage (not
// job-state counts — coalesced followers hold no slot), capacity, and
// readiness.
func TestStatusEndpoint(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
		return nil
	}
	_, ts := newTestServer(t, opts)
	defer close(release)

	submit(t, ts, workloadSpec(1))
	<-started
	submit(t, ts, workloadSpec(2)) // occupies a queue slot
	submit(t, ts, workloadSpec(1)) // coalesces: no slot

	code, body := getBody(t, ts.URL+"/internal/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	var st StatusReport
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queued != 1 || st.Running != 1 || st.QueueCapacity != 4 || st.Workers != 1 {
		t.Fatalf("status %+v, want queued=1 running=1 capacity=4 workers=1", st)
	}
	if st.Draining || !st.Ready {
		t.Fatalf("status %+v, want ready and not draining", st)
	}
}

// fakePeers is a scripted PeerCache.
type fakePeers struct {
	mu      sync.Mutex
	results map[string][]byte
	lookups int
	fills   []string
}

func (p *fakePeers) Lookup(ctx context.Context, digest string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lookups++
	out, ok := p.results[digest]
	return out, ok
}

func (p *fakePeers) ReportFill(digest string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fills = append(p.fills, digest)
}

// TestPeerCacheHit: a worker that dequeues a job asks the cluster
// first; on a peer hit the job completes without simulating and counts
// a peer hit, and no fill is re-announced (the peer already holds it).
func TestPeerCacheHit(t *testing.T) {
	spec := workloadSpec(1)
	norm, _, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := norm.Digest()
	if err != nil {
		t.Fatal(err)
	}
	peers := &fakePeers{results: map[string][]byte{digest: []byte("peer result\n")}}
	var runs atomic.Int64
	opts := Options{Workers: 1, QueueDepth: 4, Peers: peers}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		runs.Add(1)
		fmt.Fprintln(w, "local result")
		return nil
	}
	_, ts := newTestServer(t, opts)

	_, v := submit(t, ts, spec)
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone || !final.CacheHit {
		t.Fatalf("peer-hit job ended state=%s cacheHit=%v", final.State, final.CacheHit)
	}
	if _, body := getBody(t, ts.URL+"/v1/jobs/"+v.ID+"/result"); body != "peer result\n" {
		t.Fatalf("result %q, want the peer's bytes", body)
	}
	if got := runs.Load(); got != 0 {
		t.Fatalf("simulated %d times despite a peer hit", got)
	}
	if got := metricValue(t, ts, "peiserved_cache_peer_hits"); got != 1 {
		t.Fatalf("peiserved_cache_peer_hits = %d, want 1", got)
	}
}

// TestPeerCacheMissRunsAndFills: a peer miss simulates locally and then
// announces the fill so the result becomes a hit everywhere.
func TestPeerCacheMissRunsAndFills(t *testing.T) {
	peers := &fakePeers{results: map[string][]byte{}}
	var runs atomic.Int64
	opts := Options{Workers: 1, QueueDepth: 4, Peers: peers}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		runs.Add(1)
		fmt.Fprintln(w, "local result")
		return nil
	}
	_, ts := newTestServer(t, opts)

	_, v := submit(t, ts, workloadSpec(1))
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateDone || final.CacheHit {
		t.Fatalf("peer-miss job ended state=%s cacheHit=%v", final.State, final.CacheHit)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("simulated %d times, want 1", got)
	}
	peers.mu.Lock()
	lookups, fills := peers.lookups, append([]string(nil), peers.fills...)
	peers.mu.Unlock()
	if lookups != 1 {
		t.Fatalf("peer lookups = %d, want 1", lookups)
	}
	if len(fills) != 1 || fills[0] != final.Digest {
		t.Fatalf("fills = %v, want the job digest", fills)
	}
}

// TestCacheFetchEndpoint: peers read raw cached bytes via the internal
// endpoint; serving them counts peer_served, not a local hit.
func TestCacheFetchEndpoint(t *testing.T) {
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		fmt.Fprintln(w, "cached payload")
		return nil
	}
	_, ts := newTestServer(t, opts)

	_, v := submit(t, ts, workloadSpec(1))
	final := waitTerminal(t, ts, v.ID)
	hitsBefore := metricValue(t, ts, "peiserved_cache_hits")

	code, body := getBody(t, ts.URL+"/internal/v1/cache/"+final.Digest)
	if code != http.StatusOK || body != "cached payload\n" {
		t.Fatalf("cache fetch: status %d body %q", code, body)
	}
	if got := metricValue(t, ts, "peiserved_cache_peer_served"); got != 1 {
		t.Fatalf("peiserved_cache_peer_served = %d, want 1", got)
	}
	if got := metricValue(t, ts, "peiserved_cache_hits"); got != hitsBefore {
		t.Fatalf("peer fetch distorted local hit count (%d -> %d)", hitsBefore, got)
	}
	if code, _ := getBody(t, ts.URL+"/internal/v1/cache/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("missing digest fetch: %d, want 404", code)
	}
}
