package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// TestMetricsWriteDeterministic pins the sorted-key gauge merge in
// metrics.write: the exposition must be byte-identical across fresh
// instances and repeated calls, and — the part map iteration used to
// leave to chance — the registry's intern order must not depend on the
// gauges map's iteration order. peilint's simdeterm analyzer flags the
// direct map range this replaced; this test keeps the fix honest.
func TestMetricsWriteDeterministic(t *testing.T) {
	gauges := make(map[string]int64)
	for i := 0; i < 32; i++ {
		gauges[fmt.Sprintf("g.%02d", i)] = int64(i * 7)
	}

	var want []byte
	for trial := 0; trial < 50; trial++ {
		m := newMetrics()
		m.add("jobs.completed", 3)
		m.observeQueueWait(42)
		var buf bytes.Buffer
		m.write(&buf, gauges)

		if got := m.reg.Get("g.05"); got != 35 {
			t.Fatalf("trial %d: gauge g.05 = %d, want 35 (merge lost a key)", trial, got)
		}

		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("trial %d: /metrics exposition differs between identical fresh instances:\n--- first\n%s\n--- now\n%s",
				trial, want, buf.Bytes())
		}
	}

	// Repeated writes on one instance must be stable too (gauges are
	// Set, not accumulated).
	m := newMetrics()
	var first, second bytes.Buffer
	m.write(&first, gauges)
	m.write(&second, gauges)
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("repeated write on one instance differs:\n--- first\n%s\n--- second\n%s", &first, &second)
	}
}
