// The in-process 3-node cluster e2e suite: one cluster.Coordinator and
// two real serve.Servers (simulation stubbed through the runJob seam)
// wired over httptest, exercising the acceptance criteria end to end —
// N identical submissions simulate exactly once cluster-wide, routing
// is deterministic, a killed worker loses no accepted jobs, and SSE
// streams proxy through the coordinator with cluster IDs.
//
// The tests live in package serve (not cluster) so they can reach the
// unexported runJob test seam; serve never imports cluster, so the
// test-only dependency on pimsim/internal/cluster creates no cycle.

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pimsim/internal/cluster"
	"pimsim/pei"
)

// e2eNode is one worker in the in-process cluster.
type e2eNode struct {
	srv   *Server
	ts    *httptest.Server
	agent *cluster.Client
	runs  atomic.Int64
}

type runJobFunc func(ctx context.Context, spec pei.JobSpec, w io.Writer, opts pei.RunJobOptions) error

// startE2ECluster brings up a coordinator plus n workers. With agents,
// each worker runs a real cluster.Client (heartbeat registration + peer
// cache); without, workers are registered by one direct POST — the
// crash-test shape, where no heartbeat revives a killed node. makeRun
// supplies each node's simulation stub; every invocation is counted in
// e2eNode.runs. Blocks until every worker is on the ring.
func startE2ECluster(t *testing.T, n int, agents bool, makeRun func(i int) runJobFunc) (*httptest.Server, []*e2eNode) {
	t.Helper()
	coord := cluster.NewCoordinator(cluster.Options{
		HealthInterval: 10 * time.Millisecond,
		MaxFails:       2,
		Logf:           discardLogf,
	})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		coordTS.Close()
		coord.Close()
	})

	nodes := make([]*e2eNode, n)
	for i := 0; i < n; i++ {
		node := &e2eNode{}
		run := makeRun(i)
		var handler atomic.Value // http.Handler; the httptest URL must exist before New
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		opts := Options{Workers: 1, QueueDepth: 8, Logf: discardLogf}
		opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
			node.runs.Add(1)
			return run(ctx, spec, w, ro)
		}
		if agents {
			node.agent = cluster.NewClient(coordTS.URL, node.ts.URL, cluster.ClientOptions{
				HeartbeatInterval: 25 * time.Millisecond,
				Logf:              discardLogf,
			})
			opts.Peers = node.agent
			opts.ClusterMode = true
		}
		node.srv = New(opts)
		handler.Store(node.srv.Handler())
		if agents {
			node.agent.Start(node.srv.SetRegistered)
		} else {
			body, _ := json.Marshal(map[string]string{"name": node.ts.URL})
			resp, err := http.Post(coordTS.URL+"/cluster/v1/register", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		t.Cleanup(func() {
			if node.agent != nil {
				node.agent.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := node.srv.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			node.ts.Close()
		})
		nodes[i] = node
	}

	waitForAliveMembers(t, coordTS, n)
	if agents {
		for _, node := range nodes {
			waitFor200(t, node.ts.URL+"/healthz/ready", "worker readiness")
		}
	}
	waitFor200(t, coordTS.URL+"/healthz/ready", "coordinator readiness")
	return coordTS, nodes
}

func waitForAliveMembers(t *testing.T, coordTS *httptest.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getBody(t, coordTS.URL+"/cluster/v1/members")
		if strings.Count(body, `"alive"`) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d alive members", n)
}

func waitFor200(t *testing.T, url, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := getBody(t, url); code == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached 200 (%s)", what, url)
}

// submitRaw posts a spec and returns the raw response plus decoded view.
func submitRaw(t *testing.T, baseURL string, spec pei.JobSpec) (*http.Response, jobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, v
}

func totalRuns(nodes []*e2eNode) int64 {
	var sum int64
	for _, n := range nodes {
		sum += n.runs.Load()
	}
	return sum
}

// specDigest computes the digest a spec will route under.
func specDigest(t *testing.T, spec pei.JobSpec) string {
	t.Helper()
	norm, _, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	d, err := norm.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// ringOwnerURL asks the coordinator which worker owns a digest.
func ringOwnerURL(t *testing.T, coordTS *httptest.Server, digest string) string {
	t.Helper()
	resp, err := http.Get(coordTS.URL + "/cluster/v1/owner?digest=" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var owner struct{ Name string }
	if err := json.NewDecoder(resp.Body).Decode(&owner); err != nil {
		t.Fatal(err)
	}
	return owner.Name
}

// TestClusterNMinus1CacheHits is the acceptance-criterion e2e: N
// identical submissions through the coordinator simulate exactly once
// cluster-wide; the other N-1 are cache hits; and every submission
// routes to the same worker (deterministic digest affinity).
func TestClusterNMinus1CacheHits(t *testing.T) {
	coordTS, nodes := startE2ECluster(t, 2, true, func(i int) runJobFunc {
		return func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
			fmt.Fprintf(w, "deterministic result for seed %d\n", spec.Seed)
			return nil
		}
	})

	const n = 5
	spec := workloadSpec(7)
	resp, v := submitRaw(t, coordTS.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	if v.ID != "c000001" {
		t.Fatalf("cluster job id %q, want c000001", v.ID)
	}
	firstMember := resp.Header.Get("X-Peicluster-Member")
	if firstMember == "" {
		t.Fatal("submit response missing X-Peicluster-Member")
	}
	final := waitTerminal(t, coordTS, v.ID)
	if final.State != StateDone {
		t.Fatalf("first job ended %s (%s)", final.State, final.Error)
	}

	hits := 0
	for i := 1; i < n; i++ {
		resp, v := submitRaw(t, coordTS.URL, spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d status %d, want 200 (cache hit)", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Peicluster-Member"); got != firstMember {
			t.Fatalf("submit %d routed to %s, first went to %s (routing not deterministic)", i, got, firstMember)
		}
		if v.State == StateDone && v.CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Fatalf("%d cluster-wide cache hits, want %d", hits, n-1)
	}
	if got := totalRuns(nodes); got != 1 {
		t.Fatalf("cluster simulated %d times for %d identical submissions, want exactly 1", got, n)
	}

	// The result reads back through the coordinator.
	code, body := getBody(t, coordTS.URL+"/v1/jobs/c000001/result")
	if code != http.StatusOK || !strings.Contains(body, "seed 7") {
		t.Fatalf("proxied result: status %d body %q", code, body)
	}
}

// TestClusterPeerCacheAcrossNodes pins "computed anywhere is a hit
// everywhere": a result computed on a NON-owner worker (submitted to it
// directly, bypassing routing) is served as a peer hit when the same
// spec arrives at the ring owner — the owner never simulates.
func TestClusterPeerCacheAcrossNodes(t *testing.T) {
	coordTS, nodes := startE2ECluster(t, 2, true, func(i int) runJobFunc {
		return func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
			fmt.Fprintf(w, "computed for seed %d\n", spec.Seed)
			return nil
		}
	})

	spec := workloadSpec(3)
	digest := specDigest(t, spec)
	ownerURL := ringOwnerURL(t, coordTS, digest)
	var owner, nonOwner *e2eNode
	for _, node := range nodes {
		if node.ts.URL == ownerURL {
			owner = node
		} else {
			nonOwner = node
		}
	}
	if owner == nil || nonOwner == nil {
		t.Fatalf("owner %q not among the workers", ownerURL)
	}

	// Compute on the wrong node on purpose.
	resp, v := submitRaw(t, nonOwner.ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("direct submit status %d", resp.StatusCode)
	}
	if final := waitTerminal(t, nonOwner.ts, v.ID); final.State != StateDone {
		t.Fatalf("direct job ended %s (%s)", final.State, final.Error)
	}
	// ReportFill is asynchronous; wait until the coordinator can serve
	// the digest before routing the next submission.
	waitFor200(t, coordTS.URL+"/cluster/v1/cache/"+digest, "peer-cache fill")

	// Same spec through the coordinator: digest affinity routes it to
	// the owner, which peer-hits instead of simulating.
	resp2, v2 := submitRaw(t, coordTS.URL, spec)
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		t.Fatalf("routed submit status %d", resp2.StatusCode)
	}
	final := waitTerminal(t, coordTS, v2.ID)
	if final.State != StateDone || !final.CacheHit {
		t.Fatalf("routed job state=%s cacheHit=%v, want a done cache hit", final.State, final.CacheHit)
	}
	if owner.runs.Load() != 0 {
		t.Fatalf("owner simulated %d times despite the peer cache", owner.runs.Load())
	}
	if got := totalRuns(nodes); got != 1 {
		t.Fatalf("cluster simulated %d times, want 1", got)
	}
	if got := metricValue(t, owner.ts, "peiserved_cache_peer_hits"); got != 1 {
		t.Fatalf("owner peiserved_cache_peer_hits = %d, want 1", got)
	}
	// Both results byte-identical through either path.
	_, out1 := getBody(t, nonOwner.ts.URL+"/v1/jobs/"+v.ID+"/result")
	_, out2 := getBody(t, coordTS.URL+"/v1/jobs/"+v2.ID+"/result")
	if out1 != out2 {
		t.Fatalf("results differ:\n--- direct\n%s\n--- routed\n%s", out1, out2)
	}
}

// TestClusterFailoverReroutesAcceptedJob kills the worker hosting a
// running job: the coordinator declares it dead after MaxFails health
// checks, re-submits the job to the ring survivor, and the client —
// polling the same cluster ID the whole time — sees it complete. No
// accepted job is lost and the cluster keeps serving.
func TestClusterFailoverReroutesAcceptedJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // unblock node 0's worker so drain can finish
	coordTS, nodes := startE2ECluster(t, 2, false, func(i int) runJobFunc {
		if i == 0 {
			return func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
				select {
				case <-release:
				case <-ctx.Done():
					return ctx.Err()
				}
				fmt.Fprintln(w, "slow result")
				return nil
			}
		}
		return func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
			fmt.Fprintf(w, "survivor result for seed %d\n", spec.Seed)
			return nil
		}
	})

	// Find a spec whose digest the doomed node owns.
	var spec pei.JobSpec
	found := false
	for seed := int64(1); seed <= 64; seed++ {
		spec = workloadSpec(seed)
		if ringOwnerURL(t, coordTS, specDigest(t, spec)) == nodes[0].ts.URL {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed in 1..64 routed to node 0; ring balance is broken")
	}

	resp, v := submitRaw(t, coordTS.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if nodes[0].runs.Load() == 0 {
		// The stub blocks, so the run may not have started yet; wait for
		// the dequeue so the job is genuinely in flight when we kill it.
		deadline := time.Now().Add(10 * time.Second)
		for nodes[0].runs.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if nodes[0].runs.Load() == 0 {
			t.Fatal("job never started on the owner")
		}
	}

	// Crash the owner (no deregistration — this is the failure path, not
	// the graceful one).
	nodes[0].ts.CloseClientConnections()
	nodes[0].ts.Close()

	// The same cluster ID completes on the survivor.
	final := waitTerminal(t, coordTS, v.ID)
	if final.State != StateDone {
		t.Fatalf("failed-over job ended %s (%s)", final.State, final.Error)
	}
	if nodes[1].runs.Load() != 1 {
		t.Fatalf("survivor ran %d jobs, want the rerouted one", nodes[1].runs.Load())
	}
	code, body := getBody(t, coordTS.URL+"/v1/jobs/"+v.ID+"/result")
	if code != http.StatusOK || !strings.Contains(body, "survivor result") {
		t.Fatalf("post-failover result: status %d body %q", code, body)
	}
	_, list := getBody(t, coordTS.URL+"/v1/jobs")
	if !strings.Contains(list, `"rerouted": 1`) {
		t.Fatalf("job list missing reroute record:\n%s", list)
	}

	// The cluster still accepts and completes new work.
	resp2, v2 := submitRaw(t, coordTS.URL, workloadSpec(999))
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-failover submit status %d", resp2.StatusCode)
	}
	if final := waitTerminal(t, coordTS, v2.ID); final.State != StateDone {
		t.Fatalf("post-failover job ended %s (%s)", final.State, final.Error)
	}
}

// TestClusterSSEProxy streams a job's events through the coordinator:
// progress arrives live, and every identity in the stream is the
// cluster ID — the worker-local job ID never leaks.
func TestClusterSSEProxy(t *testing.T) {
	release := make(chan struct{})
	coordTS, _ := startE2ECluster(t, 2, true, func(i int) runJobFunc {
		return func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
			<-release
			if ro.Progress != nil {
				ro.Progress(pei.JobProgress{Cell: "bfs/small/locality", Simulations: 1})
				ro.Progress(pei.JobProgress{Cell: "bfs/small/locality", Done: true, Cycles: 4242, Simulations: 1})
			}
			fmt.Fprintln(w, "ok")
			return nil
		}
	})

	_, v := submitRaw(t, coordTS.URL, workloadSpec(5))
	resp, err := http.Get(coordTS.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	deadline := time.After(30 * time.Second)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var all []string
	for done := false; !done; {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended before end event; saw: %q", all)
			}
			all = append(all, l)
			if strings.HasPrefix(l, "event: end") {
				// The end event's data line follows immediately.
				all = append(all, <-lines)
				done = true
			}
		case <-deadline:
			t.Fatalf("timed out; saw: %q", all)
		}
	}
	joined := strings.Join(all, "\n")
	for _, want := range []string{"event: progress", `"cycles":4242`, `"id":"` + v.ID + `"`} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stream missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, `"id":"j0`) {
		t.Fatalf("worker-local job ID leaked through the proxy:\n%s", joined)
	}
}
