// The server's cluster-facing surface: the PeerCache hook a worker uses
// to consult the rest of the cluster before simulating, the liveness/
// readiness split the coordinator's health loop gates on, and the
// internal endpoints (/internal/v1/status, /internal/v1/cache/{digest})
// the coordinator polls and proxies. internal/cluster implements
// PeerCache and consumes StatusReport; this package stays importable
// without it.

package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// PeerCache lets a worker treat the whole cluster's result caches as
// one: a cache hit anywhere is a hit here. cluster.Client implements it
// against the coordinator's digest→owner map.
type PeerCache interface {
	// Lookup fetches the rendered result for digest from whichever peer
	// holds it, bounded by ctx. A miss (or any error) returns ok=false;
	// the worker then simulates as usual.
	Lookup(ctx context.Context, digest string) (out []byte, ok bool)
	// ReportFill announces that this worker now holds digest's result,
	// so later lookups from peers can be served from here. It must not
	// block: implementations send asynchronously.
	ReportFill(digest string)
}

// StatusReport is the JSON body of GET /internal/v1/status: the
// worker-side half of the cluster's health and backpressure protocol.
// The coordinator sums Queued/QueueCapacity across workers into the
// global 429 decision and treats Draining as "leave the ring".
type StatusReport struct {
	// Queued is the number of jobs waiting in the bounded queue (queue
	// slots in use, not the queued-state job count — coalesced followers
	// hold no slot and add no load).
	Queued int `json:"queued"`
	// Running is the number of jobs workers are simulating right now.
	Running int `json:"running"`
	// QueueCapacity is the queue bound (Options.QueueDepth).
	QueueCapacity int `json:"queueCapacity"`
	// Workers is the worker-pool width (Options.Workers).
	Workers int `json:"workers"`
	// Draining reports an in-progress graceful shutdown.
	Draining bool `json:"draining"`
	// Ready mirrors /healthz/ready.
	Ready bool `json:"ready"`
}

// SetRegistered records whether this worker currently holds a cluster
// registration. In cluster mode readiness requires it, so a worker
// serves traffic only after the coordinator knows about it. Safe for
// concurrent use (the cluster client's heartbeat loop calls it).
func (s *Server) SetRegistered(ok bool) {
	s.mu.Lock()
	s.registered = ok
	s.mu.Unlock()
}

// ready reports readiness: not draining, and — in cluster mode —
// registered with the coordinator.
func (s *Server) ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && (!s.opts.ClusterMode || s.registered)
}

// handleLive is liveness: the process is up and serving HTTP. It stays
// 200 through drain so an orchestrator doesn't kill a draining worker.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReady is readiness; /healthz is an alias of it, so existing
// health checks keep their drain-aware semantics.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, registered := s.draining, s.registered
	s.mu.Unlock()
	switch {
	case draining:
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
	case s.opts.ClusterMode && !registered:
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("not yet registered with coordinator"))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	}
}

// handleStatus serves the coordinator's health/backpressure poll.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ready := s.ready()
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	s.mu.Unlock()
	_, running := s.countJobStates()
	writeJSON(w, http.StatusOK, StatusReport{
		Queued:        queued,
		Running:       int(running),
		QueueCapacity: s.opts.QueueDepth,
		Workers:       s.opts.Workers,
		Draining:      draining,
		Ready:         ready,
	})
}

// handleCacheFetch serves a raw cached result to a peer (via the
// coordinator's proxy). Peek keeps the node's own hit/miss counters
// honest — a cross-node fetch is the cluster's hit, not this node's.
func (s *Server) handleCacheFetch(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	out, ok := s.cache.Peek(digest)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for digest %.12s", digest))
		return
	}
	s.met.add("cache.peer_served", 1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// retryAfterSeconds derives the Retry-After hint from queue load: one
// second of headroom plus the queue's depth amortized over the worker
// pool, capped so a deep backlog never advertises an absurd wait.
func retryAfterSeconds(queued, workers int) int {
	if workers < 1 {
		workers = 1
	}
	sec := 1 + queued/workers
	if sec > 60 {
		sec = 60
	}
	return sec
}
