package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimsim/pei"
)

// discardLogf silences request logging in tests (t.Logf is unsafe once
// worker goroutines outlive the test body).
func discardLogf(string, ...any) {}

// newTestServer starts a Server plus an httptest front end and tears
// both down (drain first, then listener) at cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = discardLogf
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// workloadSpec returns a tiny workload job; distinct seeds give
// distinct digests.
func workloadSpec(seed int64) pei.JobSpec {
	return pei.JobSpec{Workload: "bfs", Size: "small", Scale: 4096, OpBudget: 2000, Seed: seed}
}

func submit(t *testing.T, ts *httptest.Server, spec pei.JobSpec) (int, jobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State.terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return jobView{}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	_, body := getBody(t, ts.URL+"/metrics")
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestWorkerPoolCacheExactlyNMinus1Hits is the satellite determinism
// test: one spec submitted N times while the first submission is still
// running simulates exactly once and serves the other N-1 from the
// cache.
func TestWorkerPoolCacheExactlyNMinus1Hits(t *testing.T) {
	const n = 5
	var runs atomic.Int64
	started := make(chan struct{}, n)
	release := make(chan struct{})
	opts := Options{Workers: 2, QueueDepth: 16}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		runs.Add(1)
		started <- struct{}{}
		<-release
		fmt.Fprintf(w, "deterministic result for seed %d\n", spec.Seed)
		return nil
	}
	_, ts := newTestServer(t, opts)

	spec := workloadSpec(7)
	status, leader := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("leader submit status %d", status)
	}
	<-started // the leader is running; everyone else must coalesce

	ids := []string{leader.ID}
	var wg sync.WaitGroup
	idCh := make(chan string, n-1)
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, v := submit(t, ts, spec)
			if status != http.StatusAccepted {
				t.Errorf("follower submit status %d", status)
			}
			idCh <- v.ID
		}()
	}
	wg.Wait()
	close(idCh)
	for id := range idCh {
		ids = append(ids, id)
	}

	close(release)
	outs := make(map[string]bool)
	hits := 0
	for _, id := range ids {
		v := waitTerminal(t, ts, id)
		if v.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, v.State, v.Error)
		}
		if v.CacheHit {
			hits++
		}
		_, body := getBody(t, ts.URL+"/v1/jobs/"+id+"/result")
		outs[body] = true
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("simulated %d times, want exactly 1", got)
	}
	if hits != n-1 {
		t.Fatalf("%d cache-hit jobs, want %d", hits, n-1)
	}
	if len(outs) != 1 {
		t.Fatalf("results not byte-identical: %d distinct payloads", len(outs))
	}
	if v := metricValue(t, ts, "peiserved_cache_hits"); v != n-1 {
		t.Fatalf("peiserved_cache_hits = %d, want %d", v, n-1)
	}

	// A later resubmission is a plain cache hit: 200, complete at once.
	status, v := submit(t, ts, spec)
	if status != http.StatusOK || v.State != StateDone || !v.CacheHit {
		t.Fatalf("resubmit: status %d state %s cacheHit %v", status, v.State, v.CacheHit)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("resubmit re-simulated (runs %d)", got)
	}
}

// TestBackpressure429 is the satellite backpressure test: with one
// worker and a depth-1 queue, the third concurrent submission bounces.
func TestBackpressure429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueDepth: 1}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
		return nil
	}
	_, ts := newTestServer(t, opts)

	if status, _ := submit(t, ts, workloadSpec(1)); status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	<-started // worker busy; the queue slot is free again
	if status, _ := submit(t, ts, workloadSpec(2)); status != http.StatusAccepted {
		t.Fatalf("second submit: %d", status)
	}
	status, _ := submit(t, ts, workloadSpec(3))
	if status != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", status)
	}
	if v := metricValue(t, ts, "peiserved_jobs_rejected"); v != 1 {
		t.Fatalf("peiserved_jobs_rejected = %d, want 1", v)
	}
	close(release)
}

// TestSSEStream is the satellite SSE test: a client attached to a
// running job sees queued/running state events, per-simulation progress
// events, the done state, and a final end event.
func TestSSEStream(t *testing.T) {
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		<-release
		if ro.Progress != nil {
			ro.Progress(pei.JobProgress{Cell: "bfs/small/locality", Simulations: 1})
			ro.Progress(pei.JobProgress{Cell: "bfs/small/locality", Done: true, Cycles: 1234, Simulations: 1})
		}
		fmt.Fprintln(w, "ok")
		return nil
	}
	_, ts := newTestServer(t, opts)

	_, v := submit(t, ts, workloadSpec(1))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	readUntil := func(prefix string) []string {
		t.Helper()
		var seen []string
		timeout := time.After(30 * time.Second)
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					t.Fatalf("stream ended before %q; saw: %q", prefix, seen)
				}
				seen = append(seen, l)
				if strings.HasPrefix(l, prefix) {
					return seen
				}
			case <-timeout:
				t.Fatalf("timed out waiting for %q; saw: %q", prefix, seen)
			}
		}
	}

	readUntil("event: state") // queued, streamed live before the job runs
	close(release)
	all := readUntil("event: end")
	joined := strings.Join(all, "\n")
	for _, want := range []string{
		`"state":"running"`,
		"event: progress",
		`"cycles":1234`,
		`"state":"done"`,
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stream missing %q:\n%s", want, joined)
		}
	}
}

// TestCancelRunningJob exercises DELETE on an in-flight job: the run's
// context is cancelled and the job ends cancelled.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		started <- struct{}{}
		<-ctx.Done() // a real run notices within one event-loop check
		return ctx.Err()
	}
	_, ts := newTestServer(t, opts)

	_, v := submit(t, ts, workloadSpec(1))
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, v.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if n := metricValue(t, ts, "peiserved_jobs_cancelled"); n != 1 {
		t.Fatalf("peiserved_jobs_cancelled = %d", n)
	}
	// Cancelling again conflicts.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status %d, want 409", resp2.StatusCode)
	}
}

// TestCancelQueuedJob: DELETE before a worker picks the job up makes it
// terminal immediately and the worker skips it.
func TestCancelQueuedJob(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var runs atomic.Int64
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		runs.Add(1)
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
		return nil
	}
	_, ts := newTestServer(t, opts)

	_, blocker := submit(t, ts, workloadSpec(1))
	<-started
	_, queued := submit(t, ts, workloadSpec(2))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := getJob(t, ts, queued.ID); v.State != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled immediately", v.State)
	}
	close(release)
	if v := waitTerminal(t, ts, blocker.ID); v.State != StateDone {
		t.Fatalf("blocker ended %s", v.State)
	}
	waitTerminal(t, ts, queued.ID)
	if got := runs.Load(); got != 1 {
		t.Fatalf("cancelled job still simulated (runs %d)", got)
	}
}

// TestDrainRefusesNewWork: during/after drain, healthz flips unhealthy
// and submissions bounce with 503, while in-flight jobs finish.
func TestDrainRefusesNewWork(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueDepth: 4, Logf: discardLogf}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "ok")
		return nil
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, running := submit(t, ts, workloadSpec(1))
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain flag flips synchronously; wait for it to take effect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := getBody(t, ts.URL+"/healthz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if status, _ := submit(t, ts, workloadSpec(9)); status != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", status)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := getJob(t, ts, running.ID); v.State != StateDone {
		t.Fatalf("in-flight job ended %s, want done (drained)", v.State)
	}
}

// TestEndToEndRealJob runs a real (tiny) simulation through the full
// stack twice: identical payloads, the second served from cache — the
// acceptance criterion in miniature.
func TestEndToEndRealJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	spec := workloadSpec(0)
	status, v1 := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	if final := waitTerminal(t, ts, v1.ID); final.State != StateDone {
		t.Fatalf("first job ended %s (%s)", final.State, final.Error)
	}
	_, out1 := getBody(t, ts.URL+"/v1/jobs/"+v1.ID+"/result")
	if !strings.Contains(out1, "cycles") {
		t.Fatalf("result missing report:\n%s", out1)
	}

	status, v2 := submit(t, ts, spec)
	if status != http.StatusOK || v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("resubmit: status %d state %s cacheHit %v", status, v2.State, v2.CacheHit)
	}
	_, out2 := getBody(t, ts.URL+"/v1/jobs/"+v2.ID+"/result")
	if out1 != out2 {
		t.Fatalf("payloads differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if hits := metricValue(t, ts, "peiserved_cache_hits"); hits != 1 {
		t.Fatalf("peiserved_cache_hits = %d, want 1", hits)
	}
	if cells := metricValue(t, ts, "peiserved_sim_cells"); cells != 1 {
		t.Fatalf("peiserved_sim_cells = %d, want 1", cells)
	}
}

// TestWarmStartAcrossRestart is the serve-level warm-start acceptance
// test: two servers sharing one snapshot store (a daemon restart in
// miniature — the result cache is per-process, the snapshot dir is
// not). The first run is cold and writes checkpoints; the second
// server's result cache is empty, so it re-simulates — but resumes
// from the stored checkpoints, and its rendered result is
// byte-identical to the cold run's.
func TestWarmStartAcrossRestart(t *testing.T) {
	snaps, err := pei.OpenSnapshotStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := workloadSpec(0)

	run := func() (string, *httptest.Server) {
		_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Snapshots: snaps})
		status, v := submit(t, ts, spec)
		if status != http.StatusAccepted {
			t.Fatalf("submit status %d", status)
		}
		if final := waitTerminal(t, ts, v.ID); final.State != StateDone {
			t.Fatalf("job ended %s (%s)", final.State, final.Error)
		}
		_, out := getBody(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
		return out, ts
	}

	coldOut, coldTS := run()
	if misses := metricValue(t, coldTS, "peiserved_snapshot_misses"); misses == 0 {
		t.Fatal("cold run recorded no snapshot misses")
	}
	if written := metricValue(t, coldTS, "peiserved_snapshot_bytes_written"); written == 0 {
		t.Fatal("cold run wrote no snapshot bytes")
	}

	warmOut, warmTS := run()
	if warmOut != coldOut {
		t.Fatalf("warm result diverged from cold:\n--- cold\n%s\n--- warm\n%s", coldOut, warmOut)
	}
	if hits := metricValue(t, warmTS, "peiserved_snapshot_hits"); hits == 0 {
		t.Fatal("warm run had no snapshot hits")
	}
}

// TestExperimentsEndpointAndBadSpecs covers the discovery endpoint and
// submission validation.
func TestExperimentsEndpointAndBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	code, body := getBody(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("experiments status %d", code)
	}
	for _, want := range []string{"fig2", "ablations", "\"bfs\"", "locality"} {
		if !strings.Contains(body, want) {
			t.Fatalf("experiments missing %q:\n%s", want, body)
		}
	}

	if status, _ := submit(t, ts, pei.JobSpec{Workload: "nope"}); status != http.StatusBadRequest {
		t.Fatalf("bad workload: %d, want 400", status)
	}
	if status, _ := submit(t, ts, pei.JobSpec{Experiment: "fig99"}); status != http.StatusBadRequest {
		t.Fatalf("bad experiment: %d, want 400", status)
	}
	if status, _ := submit(t, ts, pei.JobSpec{}); status != http.StatusBadRequest {
		t.Fatalf("empty spec: %d, want 400", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", resp.StatusCode)
	}
}

// TestKernelChoiceCoalescesInCache pins the JobSpec.Digest exclusion of
// the execution-engine knobs: a sequential-kernel submission and a
// PDES-kernel submission of the same job are the same job (both kernels
// produce byte-identical output), so the second is a pure cache hit and
// the simulation runs exactly once.
func TestKernelChoiceCoalescesInCache(t *testing.T) {
	var runs atomic.Int64
	opts := Options{Workers: 1, QueueDepth: 4}
	opts.runJob = func(ctx context.Context, spec pei.JobSpec, w io.Writer, ro pei.RunJobOptions) error {
		runs.Add(1)
		fmt.Fprintln(w, "kernel-independent result")
		return nil
	}
	_, ts := newTestServer(t, opts)

	seq := workloadSpec(11)
	seq.Kernel = "seq"
	status, leader := submit(t, ts, seq)
	if status != http.StatusAccepted {
		t.Fatalf("seq submit status %d", status)
	}
	if v := waitTerminal(t, ts, leader.ID); v.State != StateDone {
		t.Fatalf("seq job ended %s (%s)", v.State, v.Error)
	}

	pdes := workloadSpec(11)
	pdes.Kernel = "pdes"
	pdes.KernelWorkers = 4
	status, v := submit(t, ts, pdes)
	if status != http.StatusOK || v.State != StateDone || !v.CacheHit {
		t.Fatalf("pdes resubmit: status %d state %s cacheHit %v (kernel choice split the cache)",
			status, v.State, v.CacheHit)
	}
	if v.Digest != leader.Digest {
		t.Fatalf("digests differ: seq %s pdes %s", leader.Digest, v.Digest)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("simulated %d times, want exactly 1", got)
	}

	// An invalid kernel name is rejected at admission, not at run time.
	bad := workloadSpec(11)
	bad.Kernel = "warp-drive"
	if status, _ := submit(t, ts, bad); status != http.StatusBadRequest {
		t.Fatalf("bad kernel: %d, want 400", status)
	}
}
