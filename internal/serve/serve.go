package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"pimsim/pei"
)

// Options configures a Server.
type Options struct {
	// Workers is the worker-pool width: how many jobs simulate
	// concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheBytes is the result cache's LRU byte budget (default 64 MiB).
	CacheBytes int64
	// Parallelism is the per-job simulation-cell concurrency handed to
	// pei.RunJob (default GOMAXPROCS / Workers, min 1, so a full worker
	// pool roughly saturates the machine).
	Parallelism int
	// Snapshots, if non-nil, enables simulation warm starts: every job
	// resumes its cells from phase-boundary checkpoints in this store
	// and writes new ones back (open one with pei.OpenSnapshotStore,
	// typically rooted beside the daemon's working data with an LRU
	// byte budget). Store activity is exported at /metrics as
	// snapshot.* counters.
	Snapshots *pei.SnapshotStore
	// Logf receives one structured line per HTTP request and per job
	// transition (default log.Printf).
	Logf func(format string, args ...any)

	// Peers, if non-nil, is the cluster's distributed result cache: a
	// worker that dequeues a locally-missed job asks Peers.Lookup before
	// simulating, and reports its own completions via Peers.ReportFill
	// so the result is a hit everywhere (see internal/cluster).
	Peers PeerCache
	// ClusterMode gates readiness on cluster registration: until
	// SetRegistered(true), /healthz/ready (and /healthz) report 503 so
	// load balancers and e2e tests can wait for the worker to join.
	ClusterMode bool

	// now and runJob are test seams.
	now    func() time.Time
	runJob func(ctx context.Context, spec pei.JobSpec, w io.Writer, opts pei.RunJobOptions) error
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0) / o.Workers
		if o.Parallelism < 1 {
			o.Parallelism = 1
		}
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.now == nil {
		o.now = time.Now //peilint:allow simdeterm injectable wall clock for job timestamps; tests override Options.now
	}
	if o.runJob == nil {
		o.runJob = pei.RunJob //peilint:allow simdeterm injectable job runner; RunJob's only wall-clock read touches snapshot-store LRU mtimes, job output stays deterministic
	}
	return o
}

// Server is the simulation-as-a-service front end. Create with New,
// expose via Handler, stop with Drain.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *resultCache
	met   *metrics

	mu         sync.Mutex
	jobs       map[string]*Job
	inflight   map[string]*Job // digest -> queued/running leader
	seq        int
	draining   bool
	registered bool // cluster registration held (see SetRegistered)

	queue chan *Job
	wg    sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		cache:    newResultCache(opts.CacheBytes),
		met:      newMetrics(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		queue:    make(chan *Job, opts.QueueDepth),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleReady) // back-compat alias for readiness
	s.mux.HandleFunc("GET /healthz/live", s.handleLive)
	s.mux.HandleFunc("GET /healthz/ready", s.handleReady)
	s.mux.HandleFunc("GET /internal/v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /internal/v1/cache/{digest}", s.handleCacheFetch)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler: the API mux wrapped in
// request logging and the request counter.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.opts.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		s.met.add("http.requests", 1)
		s.opts.Logf("http method=%s path=%s status=%d dur=%s",
			r.Method, r.URL.Path, rec.status, s.opts.now().Sub(start).Round(time.Microsecond))
	})
}

// statusRecorder captures the response status for the request log.
// Flush is forwarded so SSE streaming works through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Drain stops accepting jobs, lets queued and running jobs finish, and
// waits for the worker pool to exit (bounded by ctx).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- submission and the worker pool ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec pei.JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, &spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	norm, _, err := spec.Normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	digest, err := norm.Digest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	now := s.opts.now()
	job := s.newJobLocked(norm, digest, now)

	// Content-addressed fast path: an identical completed job is served
	// straight from the cache.
	if out, ok := s.cache.Get(digest); ok {
		s.mu.Unlock()
		s.met.add("jobs.submitted", 1)
		s.completeFromCache(job, out, now)
		s.opts.Logf("job id=%s digest=%.12s state=done cache=hit", job.ID, digest)
		writeJSON(w, http.StatusOK, job.view())
		return
	}

	// Coalesce onto an identical queued/running job: no queue slot, no
	// second simulation; the follower completes from the cache when the
	// leader finishes.
	if leader, ok := s.inflight[digest]; ok {
		leader.mu.Lock()
		attached := !leader.state.terminal()
		if attached {
			leader.followers = append(leader.followers, job)
		}
		leader.mu.Unlock()
		if attached {
			s.mu.Unlock()
			s.met.add("jobs.submitted", 1)
			s.met.add("jobs.coalesced", 1)
			job.events.append("state", map[string]any{"state": StateQueued, "coalescedWith": leader.ID})
			s.opts.Logf("job id=%s digest=%.12s state=queued coalesced=%s", job.ID, digest, leader.ID)
			writeJSON(w, http.StatusAccepted, job.view())
			return
		}
		// The leader went terminal between the cache probe and here;
		// fall through to enqueue a fresh run.
	}

	select {
	case s.queue <- job:
		s.inflight[digest] = job
		s.mu.Unlock()
	default:
		delete(s.jobs, job.ID)
		queued := len(s.queue)
		s.mu.Unlock()
		s.met.add("jobs.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(queued, s.opts.Workers)))
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("job queue full (depth %d)", s.opts.QueueDepth))
		return
	}
	s.met.add("jobs.submitted", 1)
	job.events.append("state", map[string]any{"state": StateQueued})
	s.opts.Logf("job id=%s digest=%.12s state=queued", job.ID, digest)
	writeJSON(w, http.StatusAccepted, job.view())
}

// newJobLocked allocates and registers a Job (s.mu held).
func (s *Server) newJobLocked(spec pei.JobSpec, digest string, now time.Time) *Job {
	s.seq++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Spec:    spec,
		Digest:  digest,
		state:   StateQueued,
		created: now,
		events:  newEventLog(),
		done:    make(chan struct{}),
	}
	s.jobs[job.ID] = job
	return job
}

// completeFromCache finishes a job instantly with cached output.
func (s *Server) completeFromCache(job *Job, out []byte, now time.Time) {
	job.mu.Lock()
	job.output = out
	job.cacheHit = true
	job.mu.Unlock()
	if job.setState(StateDone, now) {
		s.met.add("jobs.completed", 1)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runOne(job)
	}
}

func (s *Server) runOne(job *Job) {
	start := s.opts.now()
	s.met.observeQueueWait(start.Sub(job.created).Milliseconds())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job.mu.Lock()
	if job.state.terminal() {
		// Cancelled while queued; handleCancel already finished it.
		job.mu.Unlock()
		return
	}
	if job.cancelled {
		// Cancel raced with dequeue; finish it here (terminate is
		// idempotent, so overlapping with handleCancel is safe).
		job.mu.Unlock()
		s.terminate(job, StateCancelled, nil, nil)
		return
	}
	job.cancel = cancel
	job.mu.Unlock()

	// Peer-aware cache: before paying for a simulation, ask the cluster
	// whether an identical job already completed on another worker.
	// Normally digest-affinity routing makes this redundant (identical
	// jobs land where the cache lives), so the lookup only pays off after
	// ring changes — failover moved the digest's range here, or a client
	// submitted to a worker directly — which is exactly when it matters.
	if s.opts.Peers != nil {
		if out, ok := s.opts.Peers.Lookup(ctx, job.Digest); ok {
			s.met.add("cache.peer_hits", 1)
			job.mu.Lock()
			job.cacheHit = true
			job.mu.Unlock()
			s.opts.Logf("job id=%s digest=%.12s state=done cache=peer", job.ID, job.Digest)
			s.terminate(job, StateDone, out, nil)
			return
		}
	}

	if !job.setState(StateRunning, start) {
		return
	}
	s.opts.Logf("job id=%s digest=%.12s state=running", job.ID, job.Digest)

	var out bytes.Buffer
	err := s.opts.runJob(ctx, job.Spec, &out, pei.RunJobOptions{
		Parallelism: s.opts.Parallelism,
		Snapshots:   s.opts.Snapshots,
		Progress: func(p pei.JobProgress) {
			if p.Done {
				s.met.add("sim.cycles", p.Cycles)
			} else {
				s.met.add("sim.cells", 1)
			}
			job.events.append("progress", p)
		},
	})
	state := StateDone
	if err != nil {
		job.mu.Lock()
		cancelled := job.cancelled
		job.mu.Unlock()
		if cancelled || errors.Is(err, context.Canceled) {
			state = StateCancelled
		} else {
			state = StateFailed
		}
	}
	s.terminate(job, state, out.Bytes(), err)
}

// terminate moves a job to a terminal state: removes it from the
// in-flight index, populates the result cache on success, completes or
// fails any coalesced followers, and updates the service counters.
// Safe to call from both the worker and the cancel handler; only the
// first terminal transition counts.
func (s *Server) terminate(job *Job, state JobState, out []byte, err error) {
	now := s.opts.now()

	s.mu.Lock()
	if s.inflight[job.Digest] == job {
		delete(s.inflight, job.Digest)
	}
	s.mu.Unlock()

	job.mu.Lock()
	followers := job.followers
	job.followers = nil
	if state == StateDone {
		job.output = out
	} else if state == StateFailed && err != nil {
		job.errMsg = err.Error()
	}
	job.mu.Unlock()

	if state == StateDone {
		s.cache.Put(job.Digest, out)
		if s.opts.Peers != nil {
			// Tell the cluster this worker now holds the result, so an
			// identical job landing anywhere else becomes a peer hit.
			s.opts.Peers.ReportFill(job.Digest)
		}
	}
	if job.setState(state, now) {
		switch state {
		case StateDone:
			s.met.add("jobs.completed", 1)
		case StateCancelled:
			s.met.add("jobs.cancelled", 1)
		case StateFailed:
			s.met.add("jobs.failed", 1)
		}
		s.opts.Logf("job id=%s digest=%.12s state=%s dur=%s",
			job.ID, job.Digest, state, now.Sub(job.created).Round(time.Millisecond))
	}

	// Followers complete through the cache — each one is a real cache
	// hit — or inherit the leader's fate.
	for _, f := range followers {
		if state == StateDone {
			if cached, ok := s.cache.Get(f.Digest); ok {
				s.completeFromCache(f, cached, now)
				continue
			}
		}
		f.mu.Lock()
		f.errMsg = fmt.Sprintf("coalesced onto job %s, which ended %s", job.ID, state)
		f.mu.Unlock()
		if f.setState(StateFailed, now) {
			s.met.add("jobs.failed", 1)
		}
	}
}

// --- read-side handlers ---

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return nil
	}
	return job
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.view())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// Job IDs are zero-padded sequence numbers: lexicographic order is
	// submission order.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	state, out := job.state, job.output
	job.mu.Unlock()
	if state != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", job.ID, state))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	if job.state.terminal() {
		state := job.state
		job.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Errorf("job %s already %s", job.ID, state))
		return
	}
	job.cancelled = true
	cancel := job.cancel
	job.mu.Unlock()

	if cancel != nil {
		// A worker owns the job: cancelling the context aborts the
		// simulation within one event-loop check, and the worker
		// finishes the job as cancelled.
		cancel()
	} else {
		// Still queued (or a coalesced follower): terminal immediately;
		// a worker that later dequeues it skips it.
		s.terminate(job, StateCancelled, nil, nil)
	}
	s.opts.Logf("job id=%s cancel requested", job.ID)
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	idx := 0
	for {
		evs, closed, wake := job.events.next(idx)
		for _, ev := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		}
		if len(evs) > 0 {
			idx += len(evs)
			flusher.Flush()
		}
		if closed && len(evs) == 0 {
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", mustJSON(job.view()))
			flusher.Flush()
			return
		}
		if len(evs) == 0 {
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": pei.Experiments(),
		"workloads":   pei.WorkloadNames,
		"sizes":       []string{"small", "medium", "large"},
		"modes":       []string{"host", "pim", "locality", "ideal"},
	})
}

// countJobStates tallies jobs by lifecycle state for the metrics and
// cluster-status surfaces.
func (s *Server) countJobStates() (queued, running int64) {
	s.mu.Lock()
	//peilint:allow simdeterm commutative count of job states; no iteration order escapes
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return queued, running
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, running := s.countJobStates()
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauges := map[string]int64{
		"jobs.queued":     queued,
		"jobs.running":    running,
		"cache.hits":      cs.Hits,
		"cache.misses":    cs.Misses,
		"cache.evictions": cs.Evicted,
		"cache.entries":   int64(cs.Entries),
		"cache.bytes":     cs.Bytes,
		"cache.budget":    s.opts.CacheBytes,
		"workers":         int64(s.opts.Workers),
		"queue.depth":     int64(s.opts.QueueDepth),
	}
	if s.opts.Snapshots != nil {
		ss := s.opts.Snapshots.Stats()
		gauges["snapshot.hits"] = ss.Hits
		gauges["snapshot.misses"] = ss.Misses
		gauges["snapshot.bytes_written"] = ss.BytesWritten
		gauges["snapshot.evictions"] = ss.Evictions
		gauges["snapshot.entries"] = int64(ss.Entries)
		gauges["snapshot.bytes"] = ss.Bytes
	}
	s.met.write(w, gauges)
}

// --- small helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return b
}
