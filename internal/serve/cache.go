package serve

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU byte cache for rendered job
// results. Keys are JobSpec digests, so two submissions that resolve to
// the same simulation share one entry. Eviction is by total byte
// budget, least-recently-used first; a single value larger than the
// whole budget is simply not retained.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // of *cacheEntry; front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	val []byte
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key and marks it most recently used.
// Callers must not mutate the returned slice.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Peek returns the cached bytes for key without touching the hit/miss
// counters (recency is still refreshed). The peer-serving path uses it
// so cross-node fetches don't distort this node's own hit-rate signal.
func (c *resultCache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) key and evicts LRU entries beyond the byte
// budget.
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.used += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
		c.used += int64(len(val))
	}
	for c.used > c.budget && c.order.Len() > 0 {
		el := c.order.Back()
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.items, e.key)
		c.used -= int64(len(e.val))
		c.evictions++
	}
}

// cacheStats is a consistent snapshot of the cache counters.
type cacheStats struct {
	Entries               int
	Bytes                 int64
	Hits, Misses, Evicted int64
}

func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries: c.order.Len(),
		Bytes:   c.used,
		Hits:    c.hits,
		Misses:  c.misses,
		Evicted: c.evictions,
	}
}
