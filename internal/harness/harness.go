// Package harness regenerates every table and figure of the paper's
// evaluation (§7): it builds machines in the four system configurations,
// runs the ten workloads over the Table 3 input sizes, and renders the
// comparisons the paper plots. Each experiment has a Fig*/Sec* entry
// point returning a renderable Table; cmd/peibench drives them from the
// command line and bench_test.go drives scaled-down versions.
//
// Cells execute on a worker pool (Options.Parallelism, default
// GOMAXPROCS): every simulated machine is fully self-contained, so
// independent (workload, size, mode) cells run concurrently while table
// rows are always assembled in declared order — output is byte-identical
// at any parallelism level. Every entry point takes a context.Context;
// cancelling it aborts in-flight simulations promptly.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pimsim/internal/config"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
	"pimsim/internal/workloads"
)

// Options configures a reproduction run. The defaults (see Default)
// pair the scaled machine with scale-64 inputs so every figure runs on a
// laptop in minutes; Scale=1 with the Baseline config reproduces the
// paper's full sizes.
type Options struct {
	// Cfg is the machine description (cloned per run).
	Cfg *config.Config
	// Scale divides the Table 3 input sizes.
	Scale int
	// OpBudget bounds per-thread generated ops (0 = run to completion).
	OpBudget int64
	// Workloads to include (defaults to all ten).
	Workloads []string
	// Pairs is the multiprogrammed-workload count for Figure 9.
	Pairs int
	// MixSeed seeds the RNG that draws Figure 9's workload mixes
	// (<= 0 means DefaultMixSeed). Recording the seed in the run
	// configuration — rather than burying a literal at the draw site —
	// is what makes the mix list reproducible across processes.
	MixSeed int64
	// Parallelism is the number of cells simulated concurrently
	// (<= 0 means runtime.GOMAXPROCS(0)). Tables are identical at every
	// level: cells are isolated machines and rows are assembled in
	// declared order regardless of completion order.
	Parallelism int
	// Verbose, if non-nil, receives progress lines (goroutine-safe).
	Verbose io.Writer
	// Progress, if non-nil, receives one event when each simulation
	// starts and one when it finishes. With Parallelism > 1 it is called
	// from multiple goroutines concurrently; the callback must be
	// goroutine-safe and fast (it runs on the simulation worker).
	Progress func(Progress)
	// Kernel selects the event-execution engine per cell: "" or "seq"
	// for the sequential kernel, "pdes" for the conservative parallel
	// kernel with KernelWorkers epoch workers. Tables are byte-identical
	// either way (the cross-kernel golden test pins this); pdes helps
	// when a few large cells dominate, seq when many small cells already
	// saturate Parallelism.
	Kernel        string
	KernelWorkers int
	// SnapshotDir, when non-empty, enables checkpoint/warm-start: cells
	// run phased, every interior superstep boundary is serialized into a
	// content-addressed blob store rooted here, and reruns of a cell
	// resume from the deepest stored boundary. Results are bit-identical
	// to cold runs (pinned by the resume-equivalence tests).
	SnapshotDir string
	// SnapshotBudget caps the snapshot directory's size in bytes;
	// least-recently-used blobs are evicted beyond it (<= 0: unlimited).
	SnapshotBudget int64
	// SnapshotStore injects an already-open blob store instead of
	// SnapshotDir/SnapshotBudget — peiserved shares one store (and its
	// hit/miss counters) across every job it runs.
	SnapshotStore *snap.Store
}

// Progress is one simulation-lifecycle event delivered to
// Options.Progress (live experiment feedback: peiserved streams these
// over SSE).
type Progress struct {
	// Cell names the run as "workload/size/mode".
	Cell string `json:"cell"`
	// Done is false when the simulation starts, true when it finishes.
	Done bool `json:"done"`
	// Cycles is the simulated cycle count (Done events only; zero for
	// failed or cancelled runs).
	Cycles int64 `json:"cycles,omitempty"`
	// Simulations is the runner's machine count so far, including this
	// one.
	Simulations int64 `json:"simulations"`
}

// DefaultMixSeed is the historical Figure 9 mix seed; every golden
// table was generated from this draw sequence.
const DefaultMixSeed = 12345

// Default returns laptop-scale options.
func Default() Options {
	return Options{
		Cfg:       config.Scaled(),
		Scale:     64,
		OpBudget:  60_000,
		Workloads: workloads.Names,
		Pairs:     40,
		MixSeed:   DefaultMixSeed,
	}
}

func (o Options) withDefaults() Options {
	if o.Cfg == nil {
		o.Cfg = config.Scaled()
	}
	if o.Scale <= 0 {
		o.Scale = 64
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workloads.Names
	}
	if o.Pairs <= 0 {
		o.Pairs = 40
	}
	if o.MixSeed <= 0 {
		o.MixSeed = DefaultMixSeed
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// BarColumn, when >= 1, renders an ASCII bar chart of that numeric
	// column next to each row (the "series" view of the paper's bar
	// figures).
	BarColumn int
}

// MarshalRow is one machine-readable row of a table.
type MarshalRow map[string]string

// jsonKeys returns one unique JSON key per column: the header string
// where present, "col<j>" otherwise, with a positional "#<col>" suffix
// appended to later duplicates so colliding headers never drop data.
func (t *Table) jsonKeys(cols int) []string {
	keys := make([]string, cols)
	seen := make(map[string]bool, cols)
	for j := 0; j < cols; j++ {
		key := fmt.Sprintf("col%d", j)
		if j < len(t.Header) {
			key = t.Header[j]
		}
		for seen[key] {
			key = fmt.Sprintf("%s#%d", key, j)
		}
		seen[key] = true
		keys[j] = key
	}
	return keys
}

// JSON serializes the table as {title, notes, rows:[{header:cell}]} for
// downstream plotting tools.
func (t *Table) JSON() ([]byte, error) {
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	keys := t.jsonKeys(cols)
	rows := make([]MarshalRow, len(t.Rows))
	for i, row := range t.Rows {
		m := make(MarshalRow, len(row))
		for j, cell := range row {
			m[keys[j]] = cell
		}
		rows[i] = m
	}
	return json.MarshalIndent(struct {
		Title string       `json:"title"`
		Notes []string     `json:"notes,omitempty"`
		Rows  []MarshalRow `json:"rows"`
	}{t.Title, t.Notes, rows}, "", "  ")
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	bars := t.bars()
	line(t.Header)
	for i, row := range t.Rows {
		if bars != nil {
			row = append(append([]string(nil), row...), bars[i])
		}
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// bars renders the BarColumn as proportional hash bars (nil when
// disabled or non-numeric).
func (t *Table) bars() []string {
	if t.BarColumn < 1 {
		return nil
	}
	const width = 30
	vals := make([]float64, len(t.Rows))
	max := 0.0
	for i, row := range t.Rows {
		if t.BarColumn >= len(row) {
			return nil
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[t.BarColumn], "%"), 64)
		if err != nil || v < 0 {
			v = 0
		}
		vals[i] = v
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return nil
	}
	out := make([]string, len(t.Rows))
	for i, v := range vals {
		n := int(v / max * width)
		out[i] = strings.Repeat("#", n)
	}
	return out
}

// Cell identifies one (workload, size, mode) run.
type Cell struct {
	Workload string
	Size     workloads.Size
	Mode     pim.Mode
}

func (c Cell) key() string {
	return fmt.Sprintf("%s/%s/%s", c.Workload, c.Size, c.Mode)
}

// cellRun is one in-flight or completed cached simulation. Waiters block
// on done; res/err are immutable once done is closed.
type cellRun struct {
	done chan struct{}
	res  machine.Result
	err  error
}

// Runner executes and caches cells so figures sharing runs (6, 7, 12)
// pay for each simulation once. It is safe for concurrent use: the cell
// cache is singleflight — a cell requested while already simulating is
// not re-run, the second requester blocks on the in-flight run.
type Runner struct {
	Opts Options

	mu    sync.Mutex
	cache map[string]*cellRun

	logMu sync.Mutex

	// simulations counts machines built and run (tests, effort reports).
	simulations atomic.Int64

	// Warm-start state (Options.SnapshotDir): the shared blob store and
	// the cycle ledger behind SnapshotReport.
	snapMu          sync.Mutex
	store           *snap.Store
	storeErr        error
	cyclesSimulated atomic.Int64
	cyclesSkipped   atomic.Int64

	// PDES protocol ledger (SnapshotReport.PDES): engine counters folded
	// in from every machine this runner completed under -kernel pdes.
	pdesEpochs      atomic.Int64
	pdesSprints     atomic.Int64
	pdesSkipped     atomic.Int64
	pdesSlotsMerged atomic.Int64
	pdesPostsMerged atomic.Int64
}

// NewRunner creates a runner with normalized options.
func NewRunner(opts Options) *Runner {
	return &Runner{Opts: opts.withDefaults(), cache: make(map[string]*cellRun)}
}

// Simulations reports how many machine simulations this runner has
// started (cache hits excluded).
func (r *Runner) Simulations() int64 { return r.simulations.Load() }

// logf emits one progress line to Options.Verbose (goroutine-safe).
func (r *Runner) logf(format string, args ...interface{}) {
	if r.Opts.Verbose == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Opts.Verbose, format+"\n", args...)
}

func (r *Runner) params(size workloads.Size) workloads.Params {
	return workloads.Params{
		Threads:  r.Opts.Cfg.Cores,
		Size:     size,
		Scale:    r.Opts.Scale,
		OpBudget: r.Opts.OpBudget,
	}
}

// RunCell simulates one cell (cached, singleflight). Concurrent requests
// for the same cell simulate exactly once; the waiters return the leader's
// result, or ctx.Err() if their own context ends first.
func (r *Runner) RunCell(ctx context.Context, c Cell) (machine.Result, error) {
	key := c.key()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return machine.Result{}, ctx.Err()
		}
	}
	e := &cellRun{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	res, err := r.runWorkload(ctx, c.Workload, r.params(c.Size), c.Mode, nil)
	if err != nil {
		// Failed (often: cancelled) runs are evicted so a later request
		// re-simulates instead of replaying the error.
		err = fmt.Errorf("harness: %s: %w", key, err)
		r.mu.Lock()
		delete(r.cache, key)
		r.mu.Unlock()
	}
	e.res, e.err = res, err
	close(e.done)
	if err == nil {
		r.logf("  %-18s %12d cycles  %5.1f%% PIM", key, res.Cycles, 100*res.PIMFraction())
	}
	return res, err
}

// runWorkload builds a fresh machine and runs one workload on it.
// mutate optionally adjusts the cloned config before building.
func (r *Runner) runWorkload(ctx context.Context, name string, p workloads.Params, mode pim.Mode, mutate func(*config.Config)) (machine.Result, error) {
	if err := ctx.Err(); err != nil {
		return machine.Result{}, err
	}
	n := r.simulations.Add(1)
	var cycles int64
	if r.Opts.Progress != nil {
		cell := fmt.Sprintf("%s/%s/%s", name, p.Size, mode)
		r.Opts.Progress(Progress{Cell: cell, Simulations: n})
		defer func() {
			r.Opts.Progress(Progress{Cell: cell, Done: true, Cycles: cycles, Simulations: n})
		}()
	}
	cfg := r.Opts.Cfg.Clone()
	cfg.MaxOps = 0 // budgeting happens in the generators (barrier-safe)
	if mutate != nil {
		mutate(cfg)
	}
	km, err := machine.ParseKernelMode(r.Opts.Kernel)
	if err != nil {
		return machine.Result{}, err
	}
	if r.snapshotsEnabled() {
		res, simulated, err := r.runPhased(ctx, cfg, name, p, mode, km, false)
		if err == nil {
			cycles = simulated
		}
		return res, err
	}
	w, err := workloads.New(name, p)
	if err != nil {
		return machine.Result{}, err
	}
	m, err := machine.New(cfg, mode, machine.WithKernel(km, r.Opts.KernelWorkers))
	if err != nil {
		return machine.Result{}, err
	}
	res, err := m.RunContext(ctx, w.Streams(m))
	if err == nil {
		cycles = int64(res.Cycles)
		r.recordProto(m)
	}
	m.Release()
	return res, err
}

// recordProto folds a finished machine's PDES protocol counters into the
// runner's ledger (no-op under the sequential kernel).
func (r *Runner) recordProto(m *machine.Machine) {
	ps, ok := m.KernelProtoStats()
	if !ok {
		return
	}
	r.pdesEpochs.Add(int64(ps.Epochs))
	r.pdesSprints.Add(int64(ps.SoloSprints))
	r.pdesSkipped.Add(int64(ps.PartsSkipped))
	r.pdesSlotsMerged.Add(int64(ps.MailSlotsMerged))
	r.pdesPostsMerged.Add(int64(ps.MailPostsMerged))
}

// runGraphWorkload runs a graph workload on a specific named dataset.
func (r *Runner) runGraphWorkload(ctx context.Context, name string, spec graph.DatasetSpec, mode pim.Mode) (machine.Result, error) {
	p := r.params(workloads.Large)
	p.Graph = &spec
	return r.runWorkload(ctx, name, p, mode, nil)
}

// forEach runs fn(ctx, i) for every i in [0, n) on the runner's worker
// pool (Options.Parallelism goroutines). fn must write its result into
// index-addressed storage so the caller can assemble output in declared
// order. On the first fn error (lowest index wins) or on ctx
// cancellation the remaining work is abandoned and that error returned.
func (r *Runner) forEach(ctx context.Context, n int, fn func(context.Context, int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := r.Opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// speedup formats a/b as a speedup of b over a.
func speedup(base, x machine.Result) float64 {
	if x.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(x.Cycles)
}

func fmtF(v float64) string   { return fmt.Sprintf("%.3f", v) }
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// geomean of positive values (GM bars of Figure 6/7).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
