package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// ctx is the background context shared by tests that don't exercise
// cancellation.
var ctx = context.Background()

// tinyOptions keeps harness unit tests fast: two workloads, heavy
// scaling, small budgets.
func tinyOptions() Options {
	o := Default()
	o.Scale = 512
	o.OpBudget = 5_000
	o.Workloads = []string{"atf", "hg"}
	o.Pairs = 3
	return o
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCellCaches(t *testing.T) {
	r := NewRunner(tinyOptions())
	c := Cell{"atf", workloads.Small, pim.HostOnly}
	a, err := r.RunCell(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunCell(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("cache returned a different result")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(r.cache))
	}
}

func TestFig6ProducesAllRows(t *testing.T) {
	r := NewRunner(tinyOptions())
	tb, err := r.Fig6(ctx, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 { // two workloads + GM
		t.Fatalf("fig6 rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows[:2] {
		for col := 1; col <= 3; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad speedup %q in row %v", row[col], row)
			}
		}
	}
}

func TestFig7SharesRunsWithFig6(t *testing.T) {
	r := NewRunner(tinyOptions())
	if _, err := r.Fig6(ctx, workloads.Small); err != nil {
		t.Fatal(err)
	}
	before := len(r.cache)
	if _, err := r.Fig7(ctx, workloads.Small); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Fatalf("fig7 re-ran cells: cache %d -> %d", before, len(r.cache))
	}
}

func TestFig9PairsRun(t *testing.T) {
	r := NewRunner(tinyOptions())
	tb, err := r.Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("fig9 rows = %d, want 3", len(tb.Rows))
	}
	// Sorted ascending by Locality-Aware speedup.
	var prev float64
	for i, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && v < prev {
			t.Fatal("fig9 rows not sorted")
		}
		prev = v
	}
}

func TestFig10BalancedDispatch(t *testing.T) {
	o := tinyOptions()
	o.Workloads = []string{"sc"}
	r := NewRunner(o)
	tb, err := r.Fig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig11Sweeps(t *testing.T) {
	o := tinyOptions()
	o.Workloads = []string{"atf"}
	r := NewRunner(o)
	ta, err := r.Fig11a(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 5 {
		t.Fatalf("fig11a rows = %d", len(ta.Rows))
	}
	// The 4-entry default row must have speedup exactly 1.
	if ta.Rows[2][0] != "4" || ta.Rows[2][1] != "1.000" {
		t.Fatalf("default row wrong: %v", ta.Rows[2])
	}
	tbl, err := r.Fig11b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig11b rows = %d", len(tbl.Rows))
	}
}

func TestSec76(t *testing.T) {
	o := tinyOptions()
	o.Workloads = []string{"atf"}
	r := NewRunner(o)
	tb, err := r.Sec76(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Idealizing the PMU must not make things dramatically faster (the
	// paper's point: the real PMU is near-free).
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v > 1.5 || v < 0.7 {
			t.Fatalf("PMU idealization changed performance by %vx — too much", v)
		}
	}
}

func TestFig12Energy(t *testing.T) {
	r := NewRunner(tinyOptions())
	tb, err := r.Fig12(ctx, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for col := 1; col <= 3; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad energy ratio %q", row[col])
			}
		}
	}
}

func TestFig2AndFig8GraphSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("graph sweep is slow")
	}
	o := tinyOptions()
	o.Scale = 2048 // shrink the nine graphs hard
	o.OpBudget = 3_000
	r := NewRunner(o)
	t2, err := r.Fig2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 9 {
		t.Fatalf("fig2 rows = %d, want 9", len(t2.Rows))
	}
	t8, err := r.Fig8(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 9 {
		t.Fatalf("fig8 rows = %d, want 9", len(t8.Rows))
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o = o.withDefaults()
	if o.Cfg == nil || o.Scale <= 0 || len(o.Workloads) != 10 || o.Pairs <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
}

func TestTableBars(t *testing.T) {
	tb := &Table{
		Title:     "bars",
		Header:    []string{"k", "v"},
		Rows:      [][]string{{"a", "2.0"}, {"b", "1.0"}, {"c", "4.0"}},
		BarColumn: 1,
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "##############################") {
		t.Fatalf("missing full-width bar for the max row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bars := map[string]int{}
	for _, l := range lines {
		for _, k := range []string{"a", "b", "c"} {
			if strings.HasPrefix(l, k) {
				bars[k] = strings.Count(l, "#")
			}
		}
	}
	if bars["c"] != 30 || bars["a"] <= bars["b"] || bars["b"] == 0 {
		t.Fatalf("bar proportions wrong: %v", bars)
	}
}

func TestTableBarsDisabledByDefault(t *testing.T) {
	tb := &Table{Header: []string{"k", "v"}, Rows: [][]string{{"a", "1"}}}
	var buf bytes.Buffer
	tb.Render(&buf)
	if strings.Contains(buf.String(), "#") {
		t.Fatal("bars rendered without BarColumn")
	}
}

func TestTableJSON(t *testing.T) {
	tb := &Table{
		Title:  "j",
		Header: []string{"workload", "speedup"},
		Rows:   [][]string{{"pr", "1.25"}},
		Notes:  []string{"n"},
	}
	data, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Title != "j" || len(parsed.Rows) != 1 || parsed.Rows[0]["speedup"] != "1.25" {
		t.Fatalf("bad JSON: %s", data)
	}
}
