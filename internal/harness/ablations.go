package harness

import (
	"context"
	"fmt"

	"pimsim/internal/config"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// The ablations extend §7.6's sensitivity study to the design choices
// the paper fixes by fiat: the locality monitor's ignore bit and partial
// tag width, the PIM directory size, and the balanced-dispatch averaging
// window. Each reports geometric-mean speedup over the default design
// across the configured workloads (medium inputs, Locality-Aware).

// ablate runs every workload under mutate (in parallel, through the
// pool) and reports GM speedup vs the unmutated design.
func (r *Runner) ablate(ctx context.Context, size workloads.Size, mutate func(*config.Config)) (float64, error) {
	names := r.Opts.Workloads
	sps := make([]float64, len(names))
	err := r.forEach(ctx, len(names), func(ctx context.Context, i int) error {
		name := names[i]
		base, err := r.RunCell(ctx, Cell{name, size, pim.LocalityAware})
		if err != nil {
			return err
		}
		res, err := r.runWorkload(ctx, name, r.params(size), pim.LocalityAware, mutate)
		if err != nil {
			return err
		}
		sps[i] = speedup(base, res)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return geomean(sps), nil
}

// AblationIgnoreBit measures the locality monitor's ignore flag (§4.3):
// disabling it makes the monitor too eager to call a once-reused block
// "high locality".
func (r *Runner) AblationIgnoreBit(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: locality-monitor ignore bit (GM speedup vs default, medium inputs)",
		Header: []string{"variant", "GM_speedup"},
		Notes:  []string{"the paper adds the bit after observing first-hit promotions are too aggressive"},
	}
	g, err := r.ablate(ctx, workloads.Medium, func(c *config.Config) { c.UseIgnoreBit = false })
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"ignore bit on (default)", "1.000"},
		[]string{"ignore bit off", fmtF(g)})
	return t, nil
}

// AblationPartialTagWidth sweeps the monitor's partial tag width. The
// paper picks 10 bits; narrower tags alias more blocks together (false
// "high locality" hits).
func (r *Runner) AblationPartialTagWidth(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: locality-monitor partial tag width (GM speedup vs 10-bit default)",
		Header: []string{"tag_bits", "GM_speedup"},
		Notes:  []string{"paper §7.6: 10-bit partial tags cost only 0.31% vs a full-tag monitor"},
	}
	for _, bits := range []uint{2, 4, 6, 10, 16} {
		bits := bits
		g, err := r.ablate(ctx, workloads.Medium, func(c *config.Config) { c.PartialTagBits = bits })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(bits), fmtF(g)})
	}
	return t, nil
}

// AblationDirectorySize sweeps the PIM directory entry count (default
// 2048 in the paper's machine). Small directories over-serialize
// distinct blocks that XOR-fold to the same entry.
func (r *Runner) AblationDirectorySize(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: PIM directory entries (GM speedup vs default)",
		Header: []string{"entries", "GM_speedup"},
		Notes:  []string{"false positives only serialize — atomicity never breaks (§4.3)"},
	}
	def := r.Opts.Cfg.DirectoryEntries
	for _, n := range []int{8, 32, 128, def, 4 * def} {
		n := n
		g, err := r.ablate(ctx, workloads.Medium, func(c *config.Config) { c.DirectoryEntries = n })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmtF(g)})
	}
	return t, nil
}

// AblationDispatchWindow sweeps balanced dispatch's halving period
// (paper: 10 µs). Too short forgets traffic history; too long reacts
// slowly to phase changes.
func (r *Runner) AblationDispatchWindow(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: balanced-dispatch averaging window (GM speedup vs no balanced dispatch, large inputs)",
		Header: []string{"window_cycles", "GM_speedup"},
	}
	for _, win := range []int64{400, 4000, 40000, 400000} {
		win := win
		g, err := r.ablate(ctx, workloads.Large, func(c *config.Config) {
			c.BalancedDispatch = true
			c.DispatchWindowCyc = win
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(win), fmtF(g)})
	}
	return t, nil
}

// AblationInterleave sweeps the block-to-cube interleave granularity:
// coarser interleaving trades vault parallelism for DRAM row locality.
func (r *Runner) AblationInterleave(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: cube interleave granularity (GM speedup vs per-block default)",
		Header: []string{"blocks_per_cube", "GM_speedup"},
	}
	for _, ilv := range []int{1, 4, 16, 64} {
		ilv := ilv
		g, err := r.ablate(ctx, workloads.Large, func(c *config.Config) { c.InterleaveBlocks = ilv })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(ilv), fmtF(g)})
	}
	return t, nil
}

// AblationPrefetcher gives the host a next-N-line L2 prefetcher and
// measures how much it narrows the PIM advantage (large inputs,
// Locality-Aware; the PEI hardware is unchanged).
func (r *Runner) AblationPrefetcher(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Ablation: host L2 next-N-line prefetcher (GM speedup vs no prefetcher, large inputs)",
		Header: []string{"depth", "GM_speedup"},
	}
	for _, depth := range []int{0, 1, 2, 4} {
		depth := depth
		g, err := r.ablate(ctx, workloads.Large, func(c *config.Config) { c.PrefetchDepth = depth })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(depth), fmtF(g)})
	}
	return t, nil
}

// ComparisonHMC2 compares the paper's locality-aware PEIs against
// HMC 2.0-style native atomics (footnote 1): always-in-memory execution
// with no PIM directory and no cache interoperability. The delta is the
// paper's contribution isolated from the raw in-memory-compute benefit.
func (r *Runner) ComparisonHMC2(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Comparison: HMC 2.0-style atomics vs PEI (speedup over Host-Only, large inputs)",
		Header: []string{"workload", "HMC2-atomics", "PIM-Only(PEI)", "Locality-Aware(PEI)"},
		Notes:  []string{"HMC2 atomics skip the directory and coherence: fast but fence-less and uncacheable"},
	}
	names := r.Opts.Workloads
	type res struct{ host, h2, mem, la machine.Result }
	out := make([]res, len(names))
	err := r.forEach(ctx, len(names), func(ctx context.Context, i int) error {
		name := names[i]
		host, err := r.RunCell(ctx, Cell{name, workloads.Large, pim.HostOnly})
		if err != nil {
			return err
		}
		h2, err := r.runWorkload(ctx, name, r.params(workloads.Large), pim.PIMOnly,
			func(c *config.Config) { c.HMC2AtomicsMode = true })
		if err != nil {
			return err
		}
		p, err := r.RunCell(ctx, Cell{name, workloads.Large, pim.PIMOnly})
		if err != nil {
			return err
		}
		l, err := r.RunCell(ctx, Cell{name, workloads.Large, pim.LocalityAware})
		if err != nil {
			return err
		}
		out[i] = res{host, h2, p, l}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var h2s, ps, ls []float64
	for i, name := range names {
		c := out[i]
		s2, sp, sl := speedup(c.host, c.h2), speedup(c.host, c.mem), speedup(c.host, c.la)
		h2s, ps, ls = append(h2s, s2), append(ps, sp), append(ls, sl)
		t.Rows = append(t.Rows, []string{name, fmtF(s2), fmtF(sp), fmtF(sl)})
	}
	t.Rows = append(t.Rows, []string{"GM", fmtF(geomean(h2s)), fmtF(geomean(ps)), fmtF(geomean(ls))})
	return t, nil
}
