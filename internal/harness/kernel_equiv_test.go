package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pimsim/internal/workloads"
)

// renderFig6Small runs the Figure 6 (small inputs) experiment under the
// given kernel selection and returns the rendered table bytes.
func renderFig6Small(t *testing.T, kernel string, workers int) []byte {
	t.Helper()
	o := goldenOptions()
	o.Kernel = kernel
	o.KernelWorkers = workers
	r := NewRunner(o)
	tb, err := r.Fig6(context.Background(), workloads.Small)
	if err != nil {
		t.Fatalf("kernel=%s workers=%d: %v", kernel, workers, err)
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	return buf.Bytes()
}

// TestFig6SmallKernelEquivalence is the cross-kernel acceptance test:
// the PDES kernel must reproduce the sequential kernel's rendered
// Figure 6 table byte for byte at every worker count, including against
// the checked-in golden file. Any divergence is a determinism bug in
// the parallel kernel (merge order, lookahead, or shared state), never
// an acceptable drift.
func TestFig6SmallKernelEquivalence(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fig6_small.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	seq := renderFig6Small(t, "seq", 0)
	if !bytes.Equal(seq, want) {
		t.Fatalf("sequential table drifted from golden\n--- got ---\n%s", seq)
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("pdes-w%d", workers), func(t *testing.T) {
			got := renderFig6Small(t, "pdes", workers)
			if !bytes.Equal(got, want) {
				t.Errorf("pdes table (workers=%d) diverged from sequential\n--- pdes ---\n%s--- seq ---\n%s",
					workers, got, want)
			}
		})
	}
}

// TestFig2KernelEquivalence repeats the byte-identity check on the
// Figure 2 graph sweep, which exercises different access patterns (and
// therefore different PEI/response interleavings) than Figure 6.
func TestFig2KernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("graph sweep is slow")
	}
	render := func(kernel string, workers int) []byte {
		o := tinyOptions()
		o.Scale = 2048
		o.OpBudget = 3_000
		o.Kernel = kernel
		o.KernelWorkers = workers
		r := NewRunner(o)
		tb, err := r.Fig2(context.Background())
		if err != nil {
			t.Fatalf("kernel=%s workers=%d: %v", kernel, workers, err)
		}
		var buf bytes.Buffer
		tb.Render(&buf)
		return buf.Bytes()
	}
	want := render("seq", 0)
	for _, workers := range []int{1, 4, 8} {
		got := render("pdes", workers)
		if !bytes.Equal(got, want) {
			t.Errorf("fig2 pdes table (workers=%d) diverged from sequential\n--- pdes ---\n%s--- seq ---\n%s",
				workers, got, want)
		}
	}
}
