package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// renderFigures runs a representative figure set and returns the
// rendered bytes — the comparison unit of the determinism test.
func renderFigures(t *testing.T, o Options) string {
	t.Helper()
	r := NewRunner(o)
	var buf bytes.Buffer
	for _, f := range []func() (*Table, error){
		func() (*Table, error) { return r.Fig6(ctx, workloads.Small) },
		func() (*Table, error) { return r.Fig7(ctx, workloads.Small) },
		func() (*Table, error) { return r.Fig12(ctx, workloads.Small) },
		func() (*Table, error) { return r.Fig9(ctx) },
	} {
		tb, err := f()
		if err != nil {
			t.Fatal(err)
		}
		tb.Render(&buf)
	}
	return buf.String()
}

// TestParallelDeterminism: the same options must render byte-identical
// tables at Parallelism 1 and 8 — rows are assembled in declared order
// regardless of completion order, and every cell is an isolated machine.
func TestParallelDeterminism(t *testing.T) {
	serial := tinyOptions()
	serial.Parallelism = 1
	parallel := tinyOptions()
	parallel.Parallelism = 8
	a := renderFigures(t, serial)
	b := renderFigures(t, parallel)
	if a != b {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "Figure 6") {
		t.Fatalf("unexpected output: %s", a)
	}
}

// TestRunCellSingleflight: many concurrent requests for the same cell
// must simulate exactly once, and every requester sees the same result.
func TestRunCellSingleflight(t *testing.T) {
	r := NewRunner(tinyOptions())
	c := Cell{"atf", workloads.Small, pim.HostOnly}
	const requesters = 8
	results := make([]int64, requesters)
	var wg sync.WaitGroup
	for i := 0; i < requesters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.RunCell(ctx, c)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Cycles
		}()
	}
	wg.Wait()
	if n := r.Simulations(); n != 1 {
		t.Fatalf("cell simulated %d times, want 1", n)
	}
	for i := 1; i < requesters; i++ {
		if results[i] != results[0] {
			t.Fatalf("requester %d saw %d cycles, requester 0 saw %d", i, results[i], results[0])
		}
	}
}

// TestCancellationMidRun: cancelling the context during a Fig6 sweep
// must abort the run promptly with context.Canceled.
func TestCancellationMidRun(t *testing.T) {
	o := tinyOptions()
	o.Parallelism = 4
	r := NewRunner(o)
	cctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.Fig6(cctx, workloads.Large)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			// The sweep beat the cancellation; that is legal but the test
			// then proves nothing, so verify a pre-cancelled run errors.
			if _, err := r.Fig7(cctx, workloads.Large); err == nil {
				t.Fatal("cancelled context did not abort the sweep")
			}
			return
		}
		if !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return within the deadline")
	}
}

// TestCancelledCellNotCached: a cancelled cell must be evicted so a
// later request re-simulates instead of replaying the error.
func TestCancelledCellNotCached(t *testing.T) {
	r := NewRunner(tinyOptions())
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Cell{"atf", workloads.Small, pim.HostOnly}
	if _, err := r.RunCell(cctx, c); err == nil {
		t.Fatal("expected cancellation error")
	}
	res, err := r.RunCell(ctx, c)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("retry produced empty result: %+v", res)
	}
}

// TestForEachFirstErrorByIndex: forEach must report the lowest-index
// error even when a higher-index task fails first.
func TestForEachFirstErrorByIndex(t *testing.T) {
	o := tinyOptions()
	o.Parallelism = 4
	r := NewRunner(o)
	errA := context.DeadlineExceeded
	err := r.forEach(ctx, 4, func(_ context.Context, i int) error {
		if i == 1 {
			time.Sleep(5 * time.Millisecond)
			return errA
		}
		if i == 3 {
			return context.Canceled
		}
		return nil
	})
	if err != errA && err != context.Canceled {
		t.Fatalf("unexpected error %v", err)
	}
	// Index 1's error must win whenever both are recorded; since index 3
	// may cancel the pool before index 1 records, accept either, but a
	// nil error is always wrong.
	if err == nil {
		t.Fatal("forEach swallowed the error")
	}
}

// TestTableJSONDuplicateHeaders: colliding headers must not silently
// drop columns (the pre-fix behavior kept only the last duplicate).
func TestTableJSONDuplicateHeaders(t *testing.T) {
	tb := &Table{
		Title:  "dup",
		Header: []string{"speedup", "speedup", "x"},
		Rows:   [][]string{{"1.0", "2.0", "3.0"}},
	}
	data, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	row := parsed.Rows[0]
	if len(row) != 3 {
		t.Fatalf("row has %d keys, want 3: %v", len(row), row)
	}
	if row["speedup"] != "1.0" || row["speedup#1"] != "2.0" || row["x"] != "3.0" {
		t.Fatalf("bad dedup: %v", row)
	}
}

// TestTableJSONRowWiderThanHeader: extra columns get positional keys.
func TestTableJSONRowWiderThanHeader(t *testing.T) {
	tb := &Table{
		Header: []string{"a"},
		Rows:   [][]string{{"1", "2"}},
	}
	data, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Rows []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Rows[0]["a"] != "1" || parsed.Rows[0]["col1"] != "2" {
		t.Fatalf("bad keys: %v", parsed.Rows[0])
	}
}
