package harness

import (
	"strconv"
	"testing"
)

func ablationRunner() *Runner {
	o := tinyOptions()
	o.Workloads = []string{"atf"}
	return NewRunner(o)
}

func TestAblationIgnoreBit(t *testing.T) {
	tb, err := ablationRunner().AblationIgnoreBit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	v, err := strconv.ParseFloat(tb.Rows[1][1], 64)
	if err != nil || v <= 0 {
		t.Fatalf("bad speedup %q", tb.Rows[1][1])
	}
}

func TestAblationPartialTagWidth(t *testing.T) {
	tb, err := ablationRunner().AblationPartialTagWidth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The default width must be a near-noop relative to itself.
	for _, row := range tb.Rows {
		if row[0] == "10" {
			if row[1] != "1.000" {
				t.Fatalf("10-bit row should be exactly 1.000, got %s", row[1])
			}
		}
	}
}

func TestAblationDirectorySize(t *testing.T) {
	tb, err := ablationRunner().AblationDirectorySize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// A tiny 8-entry directory must not beat the default by much, and
	// typically loses (extra serialization).
	v, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	if v > 1.2 {
		t.Fatalf("8-entry directory speedup %v looks wrong", v)
	}
}

func TestAblationDispatchWindow(t *testing.T) {
	tb, err := ablationRunner().AblationDispatchWindow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationInterleave(t *testing.T) {
	tb, err := ablationRunner().AblationInterleave(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestComparisonHMC2(t *testing.T) {
	tb, err := ablationRunner().ComparisonHMC2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // one workload + GM
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}
