package harness

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenOptions mirrors the scaled-down bench configuration so the run
// finishes in about a second while still exercising every mode.
func goldenOptions() Options {
	o := Default()
	o.Scale = 512
	o.OpBudget = 8_000
	o.Pairs = 4
	cfg := config.Scaled()
	cfg.L1 = config.CacheConfig{SizeBytes: 2 << 10, Ways: 4, LatencyCycles: 4, MSHRs: 8}
	cfg.L2 = config.CacheConfig{SizeBytes: 8 << 10, Ways: 8, LatencyCycles: 12, MSHRs: 8}
	cfg.L3 = config.CacheConfig{SizeBytes: 64 << 10, Ways: 16, LatencyCycles: 30, MSHRs: 32}
	cfg.L3Banks = 4
	o.Cfg = cfg
	return o
}

// TestFig6SmallGolden pins the rendered Figure 6 (small inputs) table.
// The golden file was captured before the calendar-queue scheduler and
// counter-handle refactor; simulated timing must stay byte-identical
// across internal scheduler changes. Regenerate deliberately with
// `go test ./internal/harness -run Fig6SmallGolden -update` after a
// change that is *supposed* to alter simulated behavior.
func TestFig6SmallGolden(t *testing.T) {
	r := NewRunner(goldenOptions())
	tb, err := r.Fig6(context.Background(), workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tb.Render(&buf)

	golden := filepath.Join("testdata", "fig6_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fig6 small table drifted from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
