package harness

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
	"pimsim/internal/workloads"
)

// This file is the harness's warm-start path. With Options.SnapshotDir
// set, every cell runs phased: the workload's supersteps are cut at
// quiescent boundaries, each interior boundary is serialized into the
// content-addressed blob store, and a later run of the same cell resumes
// from the deepest stored boundary instead of simulating from cycle 0.
// Blobs are kernel-agnostic, so a sweep under the sequential kernel warms
// a PDES rerun and vice versa.

// snapshotDigest content-addresses a cell: everything that determines
// the simulated trajectory — final machine config, workload identity and
// parameters, PEI mode — plus the snapshot format version. The kernel
// and its worker count are deliberately excluded: they change how events
// execute, not what state they produce (the cross-kernel golden test
// pins this), so both kernels share one blob lineage.
func snapshotDigest(cfg *config.Config, name string, p workloads.Params, mode pim.Mode) string {
	blob, err := json.Marshal(struct {
		Version  uint32
		Cfg      *config.Config
		Workload string
		Params   workloads.Params
		Mode     string
	}{snap.Version, cfg, name, p, mode.String()})
	if err != nil {
		// Params and Config are plain data; marshal cannot fail.
		panic(fmt.Sprintf("harness: snapshot digest: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

// SnapshotReport summarizes the runner's warm-start activity: the blob
// store's counters plus the cycle ledger (simulated this run vs skipped
// by resuming from snapshots).
type SnapshotReport struct {
	Store snap.StoreStats
	// CyclesSimulated is the total cycles actually driven this run.
	CyclesSimulated int64
	// CyclesSkipped is the total cycles warm starts did not re-simulate
	// (each resumed cell contributes its restore cycle).
	CyclesSkipped int64
	// PDES aggregates the parallel kernel's protocol counters across
	// every simulation this runner completed (all zero under -kernel
	// seq). Unlike the rest of the report it is populated whether or not
	// snapshots are enabled.
	PDES PDESReport
}

// PDESReport is the runner-wide sum of sim.ProtoStats: how much
// protocol work (epochs, solo sprints, partition skips, mailbox merges)
// the conservative-PDES kernel did across all simulations.
type PDESReport struct {
	Epochs          int64
	SoloSprints     int64
	PartsSkipped    int64
	MailSlotsMerged int64
	MailPostsMerged int64
}

// SnapshotReport returns the warm-start summary (zero value when
// snapshots are disabled).
func (r *Runner) SnapshotReport() SnapshotReport {
	rep := SnapshotReport{
		CyclesSimulated: r.cyclesSimulated.Load(),
		CyclesSkipped:   r.cyclesSkipped.Load(),
		PDES: PDESReport{
			Epochs:          r.pdesEpochs.Load(),
			SoloSprints:     r.pdesSprints.Load(),
			PartsSkipped:    r.pdesSkipped.Load(),
			MailSlotsMerged: r.pdesSlotsMerged.Load(),
			MailPostsMerged: r.pdesPostsMerged.Load(),
		},
	}
	r.snapMu.Lock()
	if r.store != nil {
		rep.Store = r.store.Stats()
	}
	r.snapMu.Unlock()
	return rep
}

// snapshotsEnabled reports whether this runner checkpoints (a snapshot
// dir or an injected store).
func (r *Runner) snapshotsEnabled() bool {
	return r.Opts.SnapshotDir != "" || r.Opts.SnapshotStore != nil
}

// snapStore lazily opens the runner's shared blob store (or returns the
// injected one).
func (r *Runner) snapStore() (*snap.Store, error) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if r.store == nil && r.storeErr == nil {
		if r.Opts.SnapshotStore != nil {
			r.store = r.Opts.SnapshotStore
		} else {
			r.store, r.storeErr = snap.NewStore(r.Opts.SnapshotDir, r.Opts.SnapshotBudget)
		}
	}
	return r.store, r.storeErr
}

// RunPhasedWorkload runs a single workload with explicit params through
// the warm-start path (serve's workload jobs ride through here so they
// share the daemon's snapshot store). verify checks functional results
// against the workload's golden implementation after the run.
func (r *Runner) RunPhasedWorkload(ctx context.Context, name string, p workloads.Params, mode pim.Mode, verify bool) (machine.Result, error) {
	cfg := r.Opts.Cfg.Clone()
	cfg.MaxOps = 0
	km, err := machine.ParseKernelMode(r.Opts.Kernel)
	if err != nil {
		return machine.Result{}, err
	}
	res, _, err := r.runPhased(ctx, cfg, name, p, mode, km, verify)
	return res, err
}

// runPhased runs one cell in phases, resuming from the deepest stored
// snapshot and writing a snapshot at every interior superstep boundary.
// Warm results are bit-identical to a cold phased run of the same cell.
func (r *Runner) runPhased(ctx context.Context, cfg *config.Config, name string, p workloads.Params, mode pim.Mode, km machine.KernelMode, verify bool) (machine.Result, int64, error) {
	st, err := r.snapStore()
	if err != nil {
		return machine.Result{}, 0, err
	}
	digest := snapshotDigest(cfg, name, p, mode)

	build := func() (*machine.Machine, workloads.Phased, []cpu.Stream, error) {
		w, err := workloads.New(name, p)
		if err != nil {
			return nil, nil, nil, err
		}
		m, err := machine.New(cfg, mode, machine.WithKernel(km, r.Opts.KernelWorkers))
		if err != nil {
			return nil, nil, nil, err
		}
		pw := w.(workloads.Phased) // every workload embeds phaseCtl
		return m, pw, pw.Streams(m), nil
	}
	m, pw, streams, err := build()
	if err != nil {
		return machine.Result{}, 0, err
	}

	rounds := pw.Rounds()
	phase := 0
	if blob, ok := st.Best(digest); ok {
		err := func() error {
			f, err := os.Open(blob.Path)
			if err != nil {
				return err
			}
			defer f.Close()
			return m.RestoreFrom(f, pw.RestoreFrom)
		}()
		if err != nil {
			// A torn or stale blob must not poison the run: drop it and
			// rebuild cold (restore may have half-mutated the machine).
			r.logf("  snapshot %s unusable (%v), running cold", blob.Path, err)
			os.Remove(blob.Path)
			if m, pw, streams, err = build(); err != nil {
				return machine.Result{}, 0, err
			}
		} else {
			phase = blob.Phase
		}
	}

	startCycle := int64(m.Now())
	for ; phase < rounds; phase++ {
		if phase+1 >= rounds {
			pw.SetRoundLimit(0) // final phase runs to completion, tail included
		} else {
			pw.SetRoundLimit(phase + 1)
		}
		if err := m.Start(streams); err != nil {
			return machine.Result{}, 0, err
		}
		if err := m.Drive(ctx); err != nil {
			return machine.Result{}, 0, err
		}
		if phase+1 >= rounds {
			break
		}
		var buf bytes.Buffer
		if err := m.SnapshotTo(&buf, pw.SnapshotTo); err != nil {
			return machine.Result{}, 0, err
		}
		if err := st.Put(digest, phase+1, int64(m.Now()), buf.Bytes()); err != nil {
			return machine.Result{}, 0, err
		}
	}
	if err := m.CheckDone(streams); err != nil {
		return machine.Result{}, 0, err
	}
	res := m.Finish()
	r.recordProto(m)
	r.cyclesSimulated.Add(int64(res.Cycles) - startCycle)
	r.cyclesSkipped.Add(startCycle)
	if verify {
		if err := pw.Verify(m); err != nil {
			return res, 0, err
		}
	}
	m.Release()
	return res, int64(res.Cycles) - startCycle, nil
}
