package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"pimsim/internal/config"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// Every figure fans its independent simulations out through the runner's
// worker pool (forEach) and collects them into index-addressed slices,
// then assembles rows serially in declared order — so rendered tables
// are byte-identical at any Options.Parallelism.

// graphSweep lists the nine Figure 2/8 graphs, scaled by the runner's
// scale factor.
func (r *Runner) graphSweep() []graph.DatasetSpec {
	return graph.Figure2Graphs
}

// Fig2 reproduces Figure 2: PageRank speedup of always-in-memory atomic
// add (PIM-Only) over the idealized host, across the nine graphs.
func (r *Runner) Fig2(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Figure 2: PageRank with in-memory atomic add (speedup over Ideal-Host)",
		Header: []string{"graph", "host_cycles", "pim_cycles", "speedup"},
		Notes: []string{
			"paper: up to +53% on large graphs, up to -20% on cache-resident graphs",
			fmt.Sprintf("graphs are R-MAT stand-ins scaled 1/%d (DESIGN.md §3)", r.Opts.Scale),
		},
	}
	specs := r.graphSweep()
	type pair struct{ host, mem machine.Result }
	out := make([]pair, len(specs))
	err := r.forEach(ctx, len(specs), func(ctx context.Context, i int) error {
		spec := specs[i]
		r.logf("fig2: %s", spec.Name)
		host, err := r.runGraphWorkload(ctx, "pr", spec, pim.IdealHost)
		if err != nil {
			return err
		}
		mem, err := r.runGraphWorkload(ctx, "pr", spec, pim.PIMOnly)
		if err != nil {
			return err
		}
		out[i] = pair{host, mem}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprint(out[i].host.Cycles),
			fmt.Sprint(out[i].mem.Cycles),
			fmtF(speedup(out[i].host, out[i].mem)),
		})
	}
	return t, nil
}

// fourModes holds one workload's results under the four system
// configurations of §7.
type fourModes struct {
	ideal, host, mem, la machine.Result
}

// runFourModes simulates every configured workload under all four modes
// at the given size, fanning out through the pool. Figures 6, 7, and 12
// share these cells via the runner's cache.
func (r *Runner) runFourModes(ctx context.Context, tag string, size workloads.Size) ([]fourModes, error) {
	out := make([]fourModes, len(r.Opts.Workloads))
	err := r.forEach(ctx, len(out), func(ctx context.Context, i int) error {
		name := r.Opts.Workloads[i]
		r.logf("%s/%s: %s", tag, size, name)
		ideal, err := r.RunCell(ctx, Cell{name, size, pim.IdealHost})
		if err != nil {
			return err
		}
		h, err := r.RunCell(ctx, Cell{name, size, pim.HostOnly})
		if err != nil {
			return err
		}
		p, err := r.RunCell(ctx, Cell{name, size, pim.PIMOnly})
		if err != nil {
			return err
		}
		l, err := r.RunCell(ctx, Cell{name, size, pim.LocalityAware})
		if err != nil {
			return err
		}
		out[i] = fourModes{ideal, h, p, l}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig6 reproduces Figure 6: speedups of Host-Only, PIM-Only, and
// Locality-Aware over Ideal-Host for the ten workloads under one input
// size. The paper's sub-figures (a/b/c) are the three sizes.
func (r *Runner) Fig6(ctx context.Context, size workloads.Size) (*Table, error) {
	t := &Table{
		Title:     fmt.Sprintf("Figure 6 (%s inputs): speedup over Ideal-Host", size),
		Header:    []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware", "PIM%"},
		BarColumn: 3,
	}
	cells, err := r.runFourModes(ctx, "fig6", size)
	if err != nil {
		return nil, err
	}
	var host, mem, la []float64
	for i, name := range r.Opts.Workloads {
		c := cells[i]
		sh, sp, sl := speedup(c.ideal, c.host), speedup(c.ideal, c.mem), speedup(c.ideal, c.la)
		host = append(host, sh)
		mem = append(mem, sp)
		la = append(la, sl)
		t.Rows = append(t.Rows, []string{name, fmtF(sh), fmtF(sp), fmtF(sl), fmtPct(c.la.PIMFraction())})
	}
	t.Rows = append(t.Rows, []string{"GM", fmtF(geomean(host)), fmtF(geomean(mem)), fmtF(geomean(la)), ""})
	return t, nil
}

// Fig7 reproduces Figure 7: total off-chip transfer of Host-Only and
// PIM-Only normalized to Ideal-Host.
func (r *Runner) Fig7(ctx context.Context, size workloads.Size) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 (%s inputs): off-chip transfer normalized to Ideal-Host", size),
		Header: []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: PIM-Only ≪ 1 on large inputs, up to 502x on small (SC)"},
	}
	norm := func(base, x machine.Result) float64 {
		if base.OffchipBytes == 0 {
			return 0
		}
		return float64(x.OffchipBytes) / float64(base.OffchipBytes)
	}
	cells, err := r.runFourModes(ctx, "fig7", size)
	if err != nil {
		return nil, err
	}
	for i, name := range r.Opts.Workloads {
		c := cells[i]
		t.Rows = append(t.Rows, []string{name, fmtF(norm(c.ideal, c.host)), fmtF(norm(c.ideal, c.mem)), fmtF(norm(c.ideal, c.la))})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: PageRank across the nine graphs under
// Host-Only, PIM-Only, and Locality-Aware (normalized to Host-Only),
// with the fraction of PEIs executed memory-side.
func (r *Runner) Fig8(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:     "Figure 8: PageRank vs graph size (speedup over Host-Only)",
		Header:    []string{"graph", "PIM-Only", "Locality-Aware", "PIM%"},
		BarColumn: 3,
		Notes: []string{
			"paper: PIM% grows from 0.3% (soc-Slashdot0811) to 87% (cit-Patents)",
		},
	}
	specs := r.graphSweep()
	type triple struct{ host, mem, la machine.Result }
	out := make([]triple, len(specs))
	err := r.forEach(ctx, len(specs), func(ctx context.Context, i int) error {
		spec := specs[i]
		r.logf("fig8: %s", spec.Name)
		host, err := r.runGraphWorkload(ctx, "pr", spec, pim.HostOnly)
		if err != nil {
			return err
		}
		mem, err := r.runGraphWorkload(ctx, "pr", spec, pim.PIMOnly)
		if err != nil {
			return err
		}
		la, err := r.runGraphWorkload(ctx, "pr", spec, pim.LocalityAware)
		if err != nil {
			return err
		}
		out[i] = triple{host, mem, la}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmtF(speedup(out[i].host, out[i].mem)),
			fmtF(speedup(out[i].host, out[i].la)),
			fmtPct(out[i].la.PIMFraction()),
		})
	}
	return t, nil
}

// Fig9 reproduces Figure 9: randomly mixed multiprogrammed pairs, each
// application on half the cores, measuring IPC-sum speedup of
// Locality-Aware and PIM-Only over Host-Only. Rows are sorted by
// Locality-Aware speedup, matching the paper's sorted curves.
func (r *Runner) Fig9(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 9: %d multiprogrammed pairs (IPC sum over Host-Only, sorted)", r.Opts.Pairs),
		Header: []string{"pair", "mix", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: Locality-Aware beats both baselines for the overwhelming majority"},
	}
	sizes := []workloads.Size{workloads.Small, workloads.Medium, workloads.Large}
	// The mixes are drawn serially before fan-out so the RNG sequence —
	// and therefore the mix list — is identical at any parallelism. The
	// seed lives in the run configuration (Options.MixSeed), not here.
	rng := rand.New(rand.NewSource(r.Opts.MixSeed))
	type mixSpec struct {
		w1, w2 string
		s1, s2 workloads.Size
		mix    string
	}
	mixes := make([]mixSpec, r.Opts.Pairs)
	for p := range mixes {
		m := mixSpec{
			w1: r.Opts.Workloads[rng.Intn(len(r.Opts.Workloads))],
			w2: r.Opts.Workloads[rng.Intn(len(r.Opts.Workloads))],
		}
		// Preserve the seed's historical draw order: w1, w2, s1, s2.
		m.s1 = sizes[rng.Intn(len(sizes))]
		m.s2 = sizes[rng.Intn(len(sizes))]
		m.mix = fmt.Sprintf("%s-%s+%s-%s", m.w1, m.s1, m.w2, m.s2)
		mixes[p] = m
	}
	type row struct {
		mix  string
		pimS float64
		laS  float64
	}
	rows := make([]row, len(mixes))
	err := r.forEach(ctx, len(mixes), func(ctx context.Context, p int) error {
		m := mixes[p]
		r.logf("fig9 %d/%d: %s", p+1, r.Opts.Pairs, m.mix)
		run := func(mode pim.Mode) (machine.Result, error) {
			return r.runPair(ctx, m.w1, m.s1, m.w2, m.s2, int64(p), mode)
		}
		host, err := run(pim.HostOnly)
		if err != nil {
			return err
		}
		mem, err := run(pim.PIMOnly)
		if err != nil {
			return err
		}
		la, err := run(pim.LocalityAware)
		if err != nil {
			return err
		}
		rows[p] = row{mix: m.mix, pimS: mem.IPC() / host.IPC(), laS: la.IPC() / host.IPC()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].laS < rows[j].laS })
	better := 0
	for i, rw := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i), rw.mix, fmtF(rw.pimS), fmtF(rw.laS)})
		if rw.laS >= rw.pimS && rw.laS >= 1.0 {
			better++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Locality-Aware ≥ both baselines in %d/%d mixes", better, len(rows)))
	return t, nil
}

// runPair runs two workloads concurrently, each on half the cores.
func (r *Runner) runPair(ctx context.Context, w1 string, s1 workloads.Size, w2 string, s2 workloads.Size, seed int64, mode pim.Mode) (machine.Result, error) {
	if err := ctx.Err(); err != nil {
		return machine.Result{}, err
	}
	r.simulations.Add(1)
	cfg := r.Opts.Cfg.Clone()
	cfg.MaxOps = 0
	half := cfg.Cores / 2
	if half == 0 {
		half = 1
	}
	p1 := r.params(s1)
	p1.Threads = half
	p1.Seed = seed*2 + 1
	p2 := r.params(s2)
	p2.Threads = cfg.Cores - half
	p2.Seed = seed*2 + 2
	a, err := workloads.New(w1, p1)
	if err != nil {
		return machine.Result{}, err
	}
	b, err := workloads.New(w2, p2)
	if err != nil {
		return machine.Result{}, err
	}
	km, err := machine.ParseKernelMode(r.Opts.Kernel)
	if err != nil {
		return machine.Result{}, err
	}
	m, err := machine.New(cfg, mode, machine.WithKernel(km, r.Opts.KernelWorkers))
	if err != nil {
		return machine.Result{}, err
	}
	streams := append(a.Streams(m), b.Streams(m)...)
	res, err := m.RunContext(ctx, streams)
	if err == nil {
		r.recordProto(m)
	}
	m.Release()
	return res, err
}

// Fig10 reproduces Figure 10: speedup of balanced dispatch (§7.4) on
// top of Locality-Aware, large inputs.
func (r *Runner) Fig10(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Figure 10: balanced dispatch speedup over plain Locality-Aware (large inputs)",
		Header: []string{"workload", "LA_cycles", "LA+BD_cycles", "speedup"},
		Notes:  []string{"paper: up to +25%, biggest on SC/SVM (read-dominated, large inputs)"},
	}
	type pair struct{ la, bd machine.Result }
	out := make([]pair, len(r.Opts.Workloads))
	err := r.forEach(ctx, len(out), func(ctx context.Context, i int) error {
		name := r.Opts.Workloads[i]
		r.logf("fig10: %s", name)
		la, err := r.RunCell(ctx, Cell{name, workloads.Large, pim.LocalityAware})
		if err != nil {
			return err
		}
		bd, err := r.runWorkload(ctx, name, r.params(workloads.Large), pim.LocalityAware,
			func(c *config.Config) { c.BalancedDispatch = true })
		if err != nil {
			return err
		}
		out[i] = pair{la, bd}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []float64
	for i, name := range r.Opts.Workloads {
		s := speedup(out[i].la, out[i].bd)
		all = append(all, s)
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(out[i].la.Cycles), fmt.Sprint(out[i].bd.Cycles), fmtF(s)})
	}
	t.Rows = append(t.Rows, []string{"GM", "", "", fmtF(geomean(all))})
	return t, nil
}

// Fig11a reproduces Figure 11a: sensitivity to operand buffer size
// (normalized to the 4-entry default), Locality-Aware, geometric mean
// over workloads; min/max columns give the error bars.
func (r *Runner) Fig11a(ctx context.Context) (*Table, error) {
	return r.pcuSweep(ctx, "Figure 11a: operand buffer entries (speedup vs 4-entry default)",
		[]int{1, 2, 4, 8, 16},
		func(c *config.Config, v int) { c.OperandBufferEntries = v },
		4)
}

// Fig11b reproduces Figure 11b: sensitivity to PCU execution width.
func (r *Runner) Fig11b(ctx context.Context) (*Table, error) {
	return r.pcuSweep(ctx, "Figure 11b: PCU execution width (speedup vs single-issue default)",
		[]int{1, 2, 4},
		func(c *config.Config, v int) { c.PCUExecWidth = v },
		1)
}

func (r *Runner) pcuSweep(ctx context.Context, title string, values []int, set func(*config.Config, int), def int) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"value", "GM_speedup", "min", "max"},
		Notes:  []string{"paper: 4-entry buffers buy >30% over 1-entry; width beyond 1 is negligible"},
	}
	size := workloads.Medium
	names := r.Opts.Workloads
	base := make([]machine.Result, len(names))
	err := r.forEach(ctx, len(names), func(ctx context.Context, i int) error {
		res, err := r.runWorkload(ctx, names[i], r.params(size), pim.LocalityAware,
			func(c *config.Config) { set(c, def) })
		if err != nil {
			return err
		}
		base[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	// One flat (value × workload) grid keeps the pool saturated across
	// sweep points.
	grid := make([]machine.Result, len(values)*len(names))
	err = r.forEach(ctx, len(grid), func(ctx context.Context, j int) error {
		v, name := values[j/len(names)], names[j%len(names)]
		r.logf("pcu sweep: value %d, %s", v, name)
		res, err := r.runWorkload(ctx, name, r.params(size), pim.LocalityAware,
			func(c *config.Config) { set(c, v) })
		if err != nil {
			return err
		}
		grid[j] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range values {
		var sps []float64
		minS, maxS := 0.0, 0.0
		for i := range names {
			s := speedup(base[i], grid[vi*len(names)+i])
			sps = append(sps, s)
			if i == 0 || s < minS {
				minS = s
			}
			if i == 0 || s > maxS {
				maxS = s
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(v), fmtF(geomean(sps)), fmtF(minS), fmtF(maxS)})
	}
	return t, nil
}

// Sec76 reproduces §7.6: the performance cost of the real PMU versus
// idealized directory and locality-monitor structures.
func (r *Runner) Sec76(ctx context.Context) (*Table, error) {
	t := &Table{
		Title:  "Section 7.6: PMU idealization (speedup over real PMU, geometric mean)",
		Header: []string{"variant", "GM_speedup"},
		Notes:  []string{"paper: ideal directory +0.13%, ideal monitor +0.31% - both negligible"},
	}
	size := workloads.Medium
	variants := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"ideal directory", func(c *config.Config) { c.IdealDirectory = true; c.DirectoryLatency = 0 }},
		{"ideal monitor", func(c *config.Config) { c.IdealMonitor = true; c.MonitorLatency = 0 }},
		{"both ideal", func(c *config.Config) {
			c.IdealDirectory = true
			c.DirectoryLatency = 0
			c.IdealMonitor = true
			c.MonitorLatency = 0
		}},
	}
	names := r.Opts.Workloads
	sps := make([]float64, len(variants)*len(names))
	err := r.forEach(ctx, len(sps), func(ctx context.Context, j int) error {
		v, name := variants[j/len(names)], names[j%len(names)]
		baseRes, err := r.RunCell(ctx, Cell{name, size, pim.LocalityAware})
		if err != nil {
			return err
		}
		res, err := r.runWorkload(ctx, name, r.params(size), pim.LocalityAware, v.mutate)
		if err != nil {
			return err
		}
		sps[j] = speedup(baseRes, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		t.Rows = append(t.Rows, []string{v.name, fmtF(geomean(sps[vi*len(names) : (vi+1)*len(names)]))})
	}
	return t, nil
}

// Fig12 reproduces Figure 12: memory-hierarchy energy of Host-Only,
// PIM-Only, and Locality-Aware normalized to Ideal-Host.
func (r *Runner) Fig12(ctx context.Context, size workloads.Size) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 12 (%s inputs): memory-hierarchy energy normalized to Ideal-Host", size),
		Header: []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: Locality-Aware lowest across all sizes; PIM-Only pays 2.2x DRAM on small"},
	}
	cells, err := r.runFourModes(ctx, "fig12", size)
	if err != nil {
		return nil, err
	}
	for i, name := range r.Opts.Workloads {
		c := cells[i]
		norm := func(x machine.Result) string {
			if c.ideal.Energy.Total() == 0 {
				return "0"
			}
			return fmtF(x.Energy.Total() / c.ideal.Energy.Total())
		}
		t.Rows = append(t.Rows, []string{name, norm(c.host), norm(c.mem), norm(c.la)})
	}
	return t, nil
}
