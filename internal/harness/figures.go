package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"pimsim/internal/config"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// graphSweep lists the nine Figure 2/8 graphs, scaled by the runner's
// scale factor.
func (r *Runner) graphSweep() []graph.DatasetSpec {
	return graph.Figure2Graphs
}

// Fig2 reproduces Figure 2: PageRank speedup of always-in-memory atomic
// add (PIM-Only) over the idealized host, across the nine graphs.
func (r *Runner) Fig2() (*Table, error) {
	t := &Table{
		Title:  "Figure 2: PageRank with in-memory atomic add (speedup over Ideal-Host)",
		Header: []string{"graph", "host_cycles", "pim_cycles", "speedup"},
		Notes: []string{
			"paper: up to +53% on large graphs, up to -20% on cache-resident graphs",
			fmt.Sprintf("graphs are R-MAT stand-ins scaled 1/%d (DESIGN.md §3)", r.Opts.Scale),
		},
	}
	for _, spec := range r.graphSweep() {
		r.Opts.logf("fig2: %s", spec.Name)
		host, err := r.runGraphWorkload("pr", spec, pim.IdealHost)
		if err != nil {
			return nil, err
		}
		mem, err := r.runGraphWorkload("pr", spec, pim.PIMOnly)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprint(host.Cycles),
			fmt.Sprint(mem.Cycles),
			fmtF(speedup(host, mem)),
		})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: speedups of Host-Only, PIM-Only, and
// Locality-Aware over Ideal-Host for the ten workloads under one input
// size. The paper's sub-figures (a/b/c) are the three sizes.
func (r *Runner) Fig6(size workloads.Size) (*Table, error) {
	t := &Table{
		Title:     fmt.Sprintf("Figure 6 (%s inputs): speedup over Ideal-Host", size),
		Header:    []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware", "PIM%"},
		BarColumn: 3,
	}
	var host, mem, la []float64
	for _, name := range r.Opts.Workloads {
		r.Opts.logf("fig6/%s: %s", size, name)
		ideal, err := r.RunCell(Cell{name, size, pim.IdealHost})
		if err != nil {
			return nil, err
		}
		h, err := r.RunCell(Cell{name, size, pim.HostOnly})
		if err != nil {
			return nil, err
		}
		p, err := r.RunCell(Cell{name, size, pim.PIMOnly})
		if err != nil {
			return nil, err
		}
		l, err := r.RunCell(Cell{name, size, pim.LocalityAware})
		if err != nil {
			return nil, err
		}
		sh, sp, sl := speedup(ideal, h), speedup(ideal, p), speedup(ideal, l)
		host = append(host, sh)
		mem = append(mem, sp)
		la = append(la, sl)
		t.Rows = append(t.Rows, []string{name, fmtF(sh), fmtF(sp), fmtF(sl), fmtPct(l.PIMFraction())})
	}
	t.Rows = append(t.Rows, []string{"GM", fmtF(geomean(host)), fmtF(geomean(mem)), fmtF(geomean(la)), ""})
	return t, nil
}

// Fig7 reproduces Figure 7: total off-chip transfer of Host-Only and
// PIM-Only normalized to Ideal-Host.
func (r *Runner) Fig7(size workloads.Size) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 (%s inputs): off-chip transfer normalized to Ideal-Host", size),
		Header: []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: PIM-Only ≪ 1 on large inputs, up to 502x on small (SC)"},
	}
	norm := func(base, x machine.Result) float64 {
		if base.OffchipBytes == 0 {
			return 0
		}
		return float64(x.OffchipBytes) / float64(base.OffchipBytes)
	}
	for _, name := range r.Opts.Workloads {
		ideal, err := r.RunCell(Cell{name, size, pim.IdealHost})
		if err != nil {
			return nil, err
		}
		h, err := r.RunCell(Cell{name, size, pim.HostOnly})
		if err != nil {
			return nil, err
		}
		p, err := r.RunCell(Cell{name, size, pim.PIMOnly})
		if err != nil {
			return nil, err
		}
		l, err := r.RunCell(Cell{name, size, pim.LocalityAware})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, fmtF(norm(ideal, h)), fmtF(norm(ideal, p)), fmtF(norm(ideal, l))})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: PageRank across the nine graphs under
// Host-Only, PIM-Only, and Locality-Aware (normalized to Host-Only),
// with the fraction of PEIs executed memory-side.
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{
		Title:     "Figure 8: PageRank vs graph size (speedup over Host-Only)",
		Header:    []string{"graph", "PIM-Only", "Locality-Aware", "PIM%"},
		BarColumn: 3,
		Notes: []string{
			"paper: PIM% grows from 0.3% (soc-Slashdot0811) to 87% (cit-Patents)",
		},
	}
	for _, spec := range r.graphSweep() {
		r.Opts.logf("fig8: %s", spec.Name)
		host, err := r.runGraphWorkload("pr", spec, pim.HostOnly)
		if err != nil {
			return nil, err
		}
		mem, err := r.runGraphWorkload("pr", spec, pim.PIMOnly)
		if err != nil {
			return nil, err
		}
		la, err := r.runGraphWorkload("pr", spec, pim.LocalityAware)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmtF(speedup(host, mem)),
			fmtF(speedup(host, la)),
			fmtPct(la.PIMFraction()),
		})
	}
	return t, nil
}

// Fig9 reproduces Figure 9: randomly mixed multiprogrammed pairs, each
// application on half the cores, measuring IPC-sum speedup of
// Locality-Aware and PIM-Only over Host-Only. Rows are sorted by
// Locality-Aware speedup, matching the paper's sorted curves.
func (r *Runner) Fig9() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 9: %d multiprogrammed pairs (IPC sum over Host-Only, sorted)", r.Opts.Pairs),
		Header: []string{"pair", "mix", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: Locality-Aware beats both baselines for the overwhelming majority"},
	}
	sizes := []workloads.Size{workloads.Small, workloads.Medium, workloads.Large}
	rng := rand.New(rand.NewSource(12345))
	type row struct {
		mix  string
		pimS float64
		laS  float64
	}
	var rows []row
	for p := 0; p < r.Opts.Pairs; p++ {
		w1 := r.Opts.Workloads[rng.Intn(len(r.Opts.Workloads))]
		w2 := r.Opts.Workloads[rng.Intn(len(r.Opts.Workloads))]
		s1 := sizes[rng.Intn(len(sizes))]
		s2 := sizes[rng.Intn(len(sizes))]
		mix := fmt.Sprintf("%s-%s+%s-%s", w1, s1, w2, s2)
		r.Opts.logf("fig9 %d/%d: %s", p+1, r.Opts.Pairs, mix)
		run := func(mode pim.Mode) (machine.Result, error) {
			return r.runPair(w1, s1, w2, s2, int64(p), mode)
		}
		host, err := run(pim.HostOnly)
		if err != nil {
			return nil, err
		}
		mem, err := run(pim.PIMOnly)
		if err != nil {
			return nil, err
		}
		la, err := run(pim.LocalityAware)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{mix: mix, pimS: mem.IPC() / host.IPC(), laS: la.IPC() / host.IPC()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].laS < rows[j].laS })
	better := 0
	for i, rw := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i), rw.mix, fmtF(rw.pimS), fmtF(rw.laS)})
		if rw.laS >= rw.pimS && rw.laS >= 1.0 {
			better++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Locality-Aware ≥ both baselines in %d/%d mixes", better, len(rows)))
	return t, nil
}

// runPair runs two workloads concurrently, each on half the cores.
func (r *Runner) runPair(w1 string, s1 workloads.Size, w2 string, s2 workloads.Size, seed int64, mode pim.Mode) (machine.Result, error) {
	cfg := r.Opts.Cfg.Clone()
	cfg.MaxOps = 0
	half := cfg.Cores / 2
	if half == 0 {
		half = 1
	}
	p1 := r.params(s1)
	p1.Threads = half
	p1.Seed = seed*2 + 1
	p2 := r.params(s2)
	p2.Threads = cfg.Cores - half
	p2.Seed = seed*2 + 2
	a, err := workloads.New(w1, p1)
	if err != nil {
		return machine.Result{}, err
	}
	b, err := workloads.New(w2, p2)
	if err != nil {
		return machine.Result{}, err
	}
	m, err := machine.New(cfg, mode)
	if err != nil {
		return machine.Result{}, err
	}
	streams := append(a.Streams(m), b.Streams(m)...)
	return m.Run(streams)
}

// Fig10 reproduces Figure 10: speedup of balanced dispatch (§7.4) on
// top of Locality-Aware, large inputs.
func (r *Runner) Fig10() (*Table, error) {
	t := &Table{
		Title:  "Figure 10: balanced dispatch speedup over plain Locality-Aware (large inputs)",
		Header: []string{"workload", "LA_cycles", "LA+BD_cycles", "speedup"},
		Notes:  []string{"paper: up to +25%, biggest on SC/SVM (read-dominated, large inputs)"},
	}
	var all []float64
	for _, name := range r.Opts.Workloads {
		r.Opts.logf("fig10: %s", name)
		la, err := r.RunCell(Cell{name, workloads.Large, pim.LocalityAware})
		if err != nil {
			return nil, err
		}
		bd, err := r.runWorkload(name, r.params(workloads.Large), pim.LocalityAware,
			func(c *config.Config) { c.BalancedDispatch = true })
		if err != nil {
			return nil, err
		}
		s := speedup(la, bd)
		all = append(all, s)
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(la.Cycles), fmt.Sprint(bd.Cycles), fmtF(s)})
	}
	t.Rows = append(t.Rows, []string{"GM", "", "", fmtF(geomean(all))})
	return t, nil
}

// Fig11a reproduces Figure 11a: sensitivity to operand buffer size
// (normalized to the 4-entry default), Locality-Aware, geometric mean
// over workloads; min/max columns give the error bars.
func (r *Runner) Fig11a() (*Table, error) {
	return r.pcuSweep("Figure 11a: operand buffer entries (speedup vs 4-entry default)",
		[]int{1, 2, 4, 8, 16},
		func(c *config.Config, v int) { c.OperandBufferEntries = v },
		4)
}

// Fig11b reproduces Figure 11b: sensitivity to PCU execution width.
func (r *Runner) Fig11b() (*Table, error) {
	return r.pcuSweep("Figure 11b: PCU execution width (speedup vs single-issue default)",
		[]int{1, 2, 4},
		func(c *config.Config, v int) { c.PCUExecWidth = v },
		1)
}

func (r *Runner) pcuSweep(title string, values []int, set func(*config.Config, int), def int) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"value", "GM_speedup", "min", "max"},
		Notes:  []string{"paper: 4-entry buffers buy >30% over 1-entry; width beyond 1 is negligible"},
	}
	size := workloads.Medium
	base := make(map[string]machine.Result)
	for _, name := range r.Opts.Workloads {
		res, err := r.runWorkload(name, r.params(size), pim.LocalityAware,
			func(c *config.Config) { set(c, def) })
		if err != nil {
			return nil, err
		}
		base[name] = res
	}
	for _, v := range values {
		r.Opts.logf("pcu sweep: value %d", v)
		var sps []float64
		minS, maxS := 0.0, 0.0
		for i, name := range r.Opts.Workloads {
			res, err := r.runWorkload(name, r.params(size), pim.LocalityAware,
				func(c *config.Config) { set(c, v) })
			if err != nil {
				return nil, err
			}
			s := speedup(base[name], res)
			sps = append(sps, s)
			if i == 0 || s < minS {
				minS = s
			}
			if i == 0 || s > maxS {
				maxS = s
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(v), fmtF(geomean(sps)), fmtF(minS), fmtF(maxS)})
	}
	return t, nil
}

// Sec76 reproduces §7.6: the performance cost of the real PMU versus
// idealized directory and locality-monitor structures.
func (r *Runner) Sec76() (*Table, error) {
	t := &Table{
		Title:  "Section 7.6: PMU idealization (speedup over real PMU, geometric mean)",
		Header: []string{"variant", "GM_speedup"},
		Notes:  []string{"paper: ideal directory +0.13%, ideal monitor +0.31% - both negligible"},
	}
	size := workloads.Medium
	variants := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"ideal directory", func(c *config.Config) { c.IdealDirectory = true; c.DirectoryLatency = 0 }},
		{"ideal monitor", func(c *config.Config) { c.IdealMonitor = true; c.MonitorLatency = 0 }},
		{"both ideal", func(c *config.Config) {
			c.IdealDirectory = true
			c.DirectoryLatency = 0
			c.IdealMonitor = true
			c.MonitorLatency = 0
		}},
	}
	for _, v := range variants {
		var sps []float64
		for _, name := range r.Opts.Workloads {
			baseRes, err := r.RunCell(Cell{name, size, pim.LocalityAware})
			if err != nil {
				return nil, err
			}
			res, err := r.runWorkload(name, r.params(size), pim.LocalityAware, v.mutate)
			if err != nil {
				return nil, err
			}
			sps = append(sps, speedup(baseRes, res))
		}
		t.Rows = append(t.Rows, []string{v.name, fmtF(geomean(sps))})
	}
	return t, nil
}

// Fig12 reproduces Figure 12: memory-hierarchy energy of Host-Only,
// PIM-Only, and Locality-Aware normalized to Ideal-Host.
func (r *Runner) Fig12(size workloads.Size) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 12 (%s inputs): memory-hierarchy energy normalized to Ideal-Host", size),
		Header: []string{"workload", "Host-Only", "PIM-Only", "Locality-Aware"},
		Notes:  []string{"paper: Locality-Aware lowest across all sizes; PIM-Only pays 2.2x DRAM on small"},
	}
	for _, name := range r.Opts.Workloads {
		ideal, err := r.RunCell(Cell{name, size, pim.IdealHost})
		if err != nil {
			return nil, err
		}
		h, err := r.RunCell(Cell{name, size, pim.HostOnly})
		if err != nil {
			return nil, err
		}
		p, err := r.RunCell(Cell{name, size, pim.PIMOnly})
		if err != nil {
			return nil, err
		}
		l, err := r.RunCell(Cell{name, size, pim.LocalityAware})
		if err != nil {
			return nil, err
		}
		norm := func(x machine.Result) string {
			if ideal.Energy.Total() == 0 {
				return "0"
			}
			return fmtF(x.Energy.Total() / ideal.Energy.Total())
		}
		t.Rows = append(t.Rows, []string{name, norm(h), norm(p), norm(l)})
	}
	return t, nil
}
