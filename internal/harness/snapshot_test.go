package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pimsim/internal/pim"
	"pimsim/internal/workloads"
)

// snapOptions is tinyOptions plus multi-round workloads, so interior
// phase boundaries actually exist.
func snapOptions(dir string) Options {
	o := Default()
	o.Scale = 512
	o.OpBudget = 5_000
	o.Workloads = []string{"pr", "bfs"}
	o.SnapshotDir = dir
	return o
}

// runSnapCell runs one cell through a fresh runner with the given
// snapshot dir ("" = unphased) and kernel selection.
func runSnapCell(t *testing.T, dir, kernel string, workers int, cell Cell) (*Runner, interface{ IPC() float64 }) {
	t.Helper()
	o := snapOptions(dir)
	o.Kernel = kernel
	o.KernelWorkers = workers
	r := NewRunner(o)
	res, err := r.RunCell(context.Background(), cell)
	if err != nil {
		t.Fatalf("cell %v (dir=%q kernel=%q w=%d): %v", cell, dir, kernel, workers, err)
	}
	return r, res
}

// TestPhasedMatchesUnphased pins what phasing preserves relative to the
// one-shot path: every op retires, on the same cores, with the same PEI
// totals. Cycle counts legitimately differ by a little — a forced drain
// at a boundary aligns all cores to one global quiescent cycle, whereas
// the one-shot run lets each core resume at its own fence-completion
// cycle — so enabling SnapshotDir selects the phased execution model,
// within which everything is bit-exact (see TestResumeEquivalence).
func TestPhasedMatchesUnphased(t *testing.T) {
	for _, wl := range []string{"pr", "bfs", "rp"} {
		for _, mode := range []pim.Mode{pim.HostOnly, pim.LocalityAware} {
			cell := Cell{wl, workloads.Small, mode}
			t.Run(cell.key(), func(t *testing.T) {
				o := snapOptions("")
				o.Workloads = []string{wl}
				cold := NewRunner(o)
				want, err := cold.RunCell(context.Background(), cell)
				if err != nil {
					t.Fatal(err)
				}
				op := o
				op.SnapshotDir = t.TempDir()
				phased := NewRunner(op)
				got, err := phased.RunCell(context.Background(), cell)
				if err != nil {
					t.Fatal(err)
				}
				if got.Retired != want.Retired ||
					!reflect.DeepEqual(got.PerCoreRetired, want.PerCoreRetired) ||
					got.PEIs != want.PEIs {
					t.Fatalf("phased run lost or duplicated work\nphased:   retired=%d percore=%v peis=%d\nunphased: retired=%d percore=%v peis=%d",
						got.Retired, got.PerCoreRetired, got.PEIs,
						want.Retired, want.PerCoreRetired, want.PEIs)
				}
			})
		}
	}
}

// TestResumeEquivalence is the tentpole acceptance test: restoring from
// EVERY stored phase boundary must reproduce the cold run's result
// exactly, under both kernels and multiple worker counts. Blobs are
// written by the sequential kernel and consumed by PDES too, pinning
// kernel-agnostic snapshots.
func TestResumeEquivalence(t *testing.T) {
	cell := Cell{"pr", workloads.Small, pim.LocalityAware}
	coldDir := t.TempDir()
	coldRunner, coldRes := runSnapCell(t, coldDir, "seq", 0, cell)
	rep := coldRunner.SnapshotReport()
	if rep.Store.Misses == 0 || rep.Store.Hits != 0 {
		t.Fatalf("cold run should miss, not hit: %+v", rep.Store)
	}
	blobs, err := filepath.Glob(filepath.Join(coldDir, "*.snap"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("cold run stored no snapshots (err=%v)", err)
	}
	kernels := []struct {
		kernel  string
		workers int
	}{{"seq", 0}, {"pdes", 1}, {"pdes", 4}}
	for _, blob := range blobs {
		for _, k := range kernels {
			name := fmt.Sprintf("%s/%s-w%d", filepath.Base(blob), k.kernel, k.workers)
			t.Run(name, func(t *testing.T) {
				// A dir holding exactly one boundary forces the resume
				// to start from that phase.
				dir := t.TempDir()
				data, err := os.ReadFile(blob)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(blob)), data, 0o644); err != nil {
					t.Fatal(err)
				}
				warmRunner, warmRes := runSnapCell(t, dir, k.kernel, k.workers, cell)
				if !reflect.DeepEqual(coldRes, warmRes) {
					t.Fatalf("warm result diverged from cold\nwarm: %+v\ncold: %+v", warmRes, coldRes)
				}
				rep := warmRunner.SnapshotReport()
				if rep.Store.Hits != 1 {
					t.Fatalf("warm run should hit once: %+v", rep.Store)
				}
				if rep.CyclesSkipped == 0 {
					t.Fatalf("warm run skipped no cycles: %+v", rep)
				}
			})
		}
	}
}

// TestSnapshotBlobsKernelAgnostic pins the byte-level claim: the blob a
// sequential run writes at a boundary is identical to the one its PDES
// twin writes — digest, name, and contents.
func TestSnapshotBlobsKernelAgnostic(t *testing.T) {
	cell := Cell{"bfs", workloads.Small, pim.LocalityAware}
	seqDir, pdesDir := t.TempDir(), t.TempDir()
	runSnapCell(t, seqDir, "seq", 0, cell)
	runSnapCell(t, pdesDir, "pdes", 4, cell)
	seqBlobs, _ := filepath.Glob(filepath.Join(seqDir, "*.snap"))
	pdesBlobs, _ := filepath.Glob(filepath.Join(pdesDir, "*.snap"))
	if len(seqBlobs) == 0 || len(seqBlobs) != len(pdesBlobs) {
		t.Fatalf("blob counts differ: seq=%d pdes=%d", len(seqBlobs), len(pdesBlobs))
	}
	for i, sb := range seqBlobs {
		pb := pdesBlobs[i]
		if filepath.Base(sb) != filepath.Base(pb) {
			t.Fatalf("blob names differ: %s vs %s", filepath.Base(sb), filepath.Base(pb))
		}
		sd, err1 := os.ReadFile(sb)
		pd, err2 := os.ReadFile(pb)
		if err1 != nil || err2 != nil {
			t.Fatalf("read blobs: %v %v", err1, err2)
		}
		if !bytes.Equal(sd, pd) {
			t.Fatalf("blob %s differs between kernels", filepath.Base(sb))
		}
	}
}

// TestWarmSweepTables is the sweep-level check behind the CI warm-start
// step, for the two figures named in the acceptance criteria: a cold
// sweep followed by a warm rerun sharing the snapshot dir must render
// byte-identical tables while hitting the store and simulating fewer
// cycles. Fig2 exercises the graph-workload path (runGraphWorkload),
// Fig6-small the size-sweep path.
func TestWarmSweepTables(t *testing.T) {
	figures := []struct {
		name string
		run  func(*Runner) (*Table, error)
	}{
		{"fig2", func(r *Runner) (*Table, error) {
			return r.Fig2(context.Background())
		}},
		{"fig6-small", func(r *Runner) (*Table, error) {
			return r.Fig6(context.Background(), workloads.Small)
		}},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			dir := t.TempDir()
			render := func() ([]byte, SnapshotReport) {
				o := snapOptions(dir)
				r := NewRunner(o)
				tb, err := fig.run(r)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				return buf.Bytes(), r.SnapshotReport()
			}
			coldTable, coldRep := render()
			warmTable, warmRep := render()
			if !bytes.Equal(coldTable, warmTable) {
				t.Fatalf("warm table diverged from cold\n--- warm ---\n%s--- cold ---\n%s", warmTable, coldTable)
			}
			if warmRep.Store.Hits == 0 {
				t.Fatalf("warm sweep had no snapshot hits: %+v", warmRep.Store)
			}
			if warmRep.CyclesSimulated >= coldRep.CyclesSimulated {
				t.Fatalf("warm sweep simulated %d cycles, cold %d — warm should be cheaper",
					warmRep.CyclesSimulated, coldRep.CyclesSimulated)
			}
		})
	}
}
