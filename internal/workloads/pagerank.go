package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
)

// pagerank is the parallel PageRank of Figure 1: each iteration
// scatters 0.85*rank/degree to successors with double-precision
// atomic-add PEIs (phase A), then swaps rank arrays while accumulating
// the convergence delta into a shared counter with another fadd PEI
// (phase B). Phases are separated by barrier + pfence, exactly where
// Figure 1 requires the pfence.
type pagerank struct {
	phaseCtl
	p          Params
	iterations int

	gm       *GraphMem
	rank     memlayout.U64Array // float64 bits
	nextRank memlayout.U64Array
	diffAddr uint64

	goldenRank []float64
	goldenDiff float64
}

const prDamping = 0.85

func newPageRank(p Params) *pagerank {
	return &pagerank{p: p, iterations: 3}
}

func (w *pagerank) Name() string { return "pr" }

// goldenPageRank runs the same fixed number of synchronous iterations.
func goldenPageRank(gm *GraphMem, iters int) ([]float64, float64) {
	g := gm.G
	n := g.NumVertices()
	base := (1 - prDamping) / float64(n)
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
		next[v] = base
	}
	var diff float64
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			deg := g.OutDegree(v)
			if deg == 0 {
				continue
			}
			delta := prDamping * rank[v] / float64(deg)
			for _, succ := range g.Successors(v) {
				next[succ] += delta
			}
		}
		diff = 0
		for v := 0; v < n; v++ {
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			diff += d
			rank[v] = next[v]
			next[v] = base
		}
	}
	return rank, diff
}

func (w *pagerank) Streams(m *machine.Machine) []cpu.Stream {
	w.gm = buildGraph(m, graphInput(w.p))
	g := w.gm.G
	n := g.NumVertices()
	base := (1 - prDamping) / float64(n)

	w.rank = m.Store.AllocU64Array(n)
	w.nextRank = m.Store.AllocU64Array(n)
	w.diffAddr = m.Store.Alloc(8, 64)
	for v := 0; v < n; v++ {
		w.rank.SetF(v, 1.0/float64(n))
		w.nextRank.SetF(v, base)
	}
	w.goldenRank, w.goldenDiff = goldenPageRank(w.gm, w.iterations)

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(2*w.iterations, barrier)
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(n, w.p.Threads, t)
		isFirst := t == 0
		budget := w.p.OpBudget
		d := &roundDriver{
			budget: &budget,
			// Two supersteps per iteration: scatter, then swap+diff.
			rounds:  2 * w.iterations,
			barrier: barrier,
			items:   hi - lo,
			beforeRound: func(round int) {
				// The diff accumulator is reset at the start of each
				// iteration's scatter phase by thread 0.
				if isFirst && round%2 == 0 {
					m.Store.WriteF64(w.diffAddr, 0)
				}
			},
			perItem: func(q *cpu.Queue, round, i int) {
				v := lo + i
				if round%2 == 0 {
					// Phase A: scatter deltas to successors.
					q.PushLoad(w.rank.Addr(v))
					deg := w.gm.G.OutDegree(v)
					if deg == 0 {
						return
					}
					delta := prDamping * w.rank.GetF(v) / float64(deg)
					off := w.gm.G.Offsets[v]
					for j, succ := range w.gm.G.Successors(v) {
						q.PushLoad(w.gm.EdgeAddr(off + int64(j)))
						q.PushPEI(&pim.PEI{
							Op:     pim.OpFloatAdd,
							Target: w.nextRank.Addr(int(succ)),
							Input:  pim.F64Input(delta),
						})
					}
					return
				}
				// Phase B: diff += |next-rank|; rank = next; next = base.
				q.PushLoad(w.nextRank.Addr(v))
				nv, rv := w.nextRank.GetF(v), w.rank.GetF(v)
				d := nv - rv
				if d < 0 {
					d = -d
				}
				q.PushPEI(&pim.PEI{Op: pim.OpFloatAdd, Target: w.diffAddr, Input: pim.F64Input(d)})
				w.rank.SetF(v, nv)
				q.PushStore(w.rank.Addr(v))
				w.nextRank.SetF(v, base)
				q.PushStore(w.nextRank.Addr(v))
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *pagerank) Verify(m *machine.Machine) error {
	for v := range w.goldenRank {
		if got := w.rank.GetF(v); !approxEqual(got, w.goldenRank[v], 1e-9) {
			return fmt.Errorf("pr: rank[%d] = %g, want %g", v, got, w.goldenRank[v])
		}
	}
	if got := m.Store.ReadF64(w.diffAddr); !approxEqual(got, w.goldenDiff, 1e-6) {
		return fmt.Errorf("pr: diff = %g, want %g", got, w.goldenDiff)
	}
	return nil
}
