package workloads

import (
	"bytes"
	"context"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
)

// TestPhasedVerifyAllWorkloads proves a checkpoint round-trip in the
// middle of the run preserves functional correctness for every
// workload: simulate to the midpoint boundary, serialize, restore into
// a second freshly built machine, finish the run there, and Verify on
// the second machine. Workloads with a single superstep have no
// interior boundary; for them the snapshot/restore leg is skipped and
// the phased driver alone is exercised.
// TestRestorePoolHygiene pins the pool discipline across Restore:
// transaction pools are recycling capacity, never serialized, so
// restoring a snapshot into a machine whose pools are already populated
// from its own earlier run must neither resurrect a pooled transaction
// into live state nor lose one. Both failure modes surface as a
// double-release panic (the pools panic on re-release of a free
// transaction) or a wrong functional result when the run continues to
// completion — so finishing the restored run and verifying it is the
// whole test.
func TestRestorePoolHygiene(t *testing.T) {
	ctx := context.Background()
	p := testParams()

	// Source machine: run pr to its midpoint boundary and snapshot.
	w := MustNew("pr", p)
	pw := w.(Phased)
	m := machine.MustNew(config.Scaled(), pim.LocalityAware)
	streams := pw.Streams(m)
	mid := pw.Rounds() / 2
	if mid < 2 {
		t.Fatalf("pr has %d rounds; need at least 4 for distinct boundaries", pw.Rounds())
	}
	pw.SetRoundLimit(mid)
	if err := m.Start(streams); err != nil {
		t.Fatal(err)
	}
	if err := m.Drive(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SnapshotTo(&buf, pw.SnapshotTo); err != nil {
		t.Fatal(err)
	}

	// Target machine: drive it to an EARLIER boundary first, so its
	// transaction pools hold released transactions and its architectural
	// state differs from the snapshot, then restore the midpoint
	// snapshot over it.
	w2 := MustNew("pr", p)
	pw2 := w2.(Phased)
	m2 := machine.MustNew(config.Scaled(), pim.LocalityAware)
	streams2 := pw2.Streams(m2)
	pw2.SetRoundLimit(1)
	if err := m2.Start(streams2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Drive(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m2.RestoreFrom(bytes.NewReader(buf.Bytes()), pw2.RestoreFrom); err != nil {
		t.Fatalf("restore into a used machine: %v", err)
	}
	pw2.SetRoundLimit(0)
	if err := m2.Start(streams2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Drive(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckDone(streams2); err != nil {
		t.Fatal(err)
	}
	m2.Finish()
	if err := w2.Verify(m2); err != nil {
		t.Fatalf("restored run lost functional correctness: %v", err)
	}
}

func TestPhasedVerifyAllWorkloads(t *testing.T) {
	ctx := context.Background()
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			p := testParams()
			w := MustNew(name, p)
			pw, ok := w.(Phased)
			if !ok {
				t.Fatalf("%s does not implement Phased", name)
			}
			m := machine.MustNew(config.Scaled(), pim.LocalityAware)
			streams := pw.Streams(m)
			rounds := pw.Rounds()
			mid := rounds / 2

			drive := func(m *machine.Machine, pw Phased, limit int) {
				t.Helper()
				pw.SetRoundLimit(limit)
				if err := m.Start(streams); err != nil {
					t.Fatal(err)
				}
				if err := m.Drive(ctx); err != nil {
					t.Fatal(err)
				}
			}

			if mid > 0 {
				drive(m, pw, mid)
				var buf bytes.Buffer
				if err := m.SnapshotTo(&buf, pw.SnapshotTo); err != nil {
					t.Fatalf("snapshot at phase %d: %v", mid, err)
				}

				// Second machine: fresh build, restore, finish there.
				w2 := MustNew(name, p)
				pw2 := w2.(Phased)
				m2 := machine.MustNew(config.Scaled(), pim.LocalityAware)
				streams2 := pw2.Streams(m2)
				if err := m2.RestoreFrom(bytes.NewReader(buf.Bytes()), pw2.RestoreFrom); err != nil {
					t.Fatalf("restore at phase %d: %v", mid, err)
				}
				pw2.SetRoundLimit(0)
				if err := m2.Start(streams2); err != nil {
					t.Fatal(err)
				}
				if err := m2.Drive(ctx); err != nil {
					t.Fatal(err)
				}
				if err := m2.CheckDone(streams2); err != nil {
					t.Fatal(err)
				}
				m2.Finish()
				if err := w2.Verify(m2); err != nil {
					t.Fatalf("%s verification failed after restore at phase %d/%d: %v", name, mid, rounds, err)
				}
				return
			}
			drive(m, pw, 0)
			if err := m.CheckDone(streams); err != nil {
				t.Fatal(err)
			}
			m.Finish()
			if err := w.Verify(m); err != nil {
				t.Fatalf("%s verification failed (phased driver): %v", name, err)
			}
		})
	}
}
