package workloads

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
)

// hashjoin is the in-memory hash join of §5.2: build a bucket-chained
// hash table from relation R, then probe it with every key of relation
// S using the hash-table-probing PEI, which checks one bucket and
// returns the match result plus the next bucket address. Chained
// buckets cost one PEI per hop, and multiple independent probes overlap
// in the out-of-order window (the software unrolling the paper
// describes).
type hashjoin struct {
	phaseCtl
	p Params

	nBuckets   int
	bucketBase uint64
	store      *memlayout.Store

	rRows, sRows int
	goldenHits   int64
	hits         int64

	// chainScratch backs chainFor's result so the per-probe walks (one
	// at table build, one per generated probe) do not allocate.
	chainScratch []uint64
}

func newHashJoin(p Params) *hashjoin { return &hashjoin{p: p} }

func (w *hashjoin) Name() string { return "hj" }

func (w *hashjoin) sizes() (r, s int) {
	switch w.p.Size {
	case Small:
		r = 128 << 10
	case Medium:
		r = 1 << 20
	default:
		r = 128 << 20
	}
	s = 128 << 20
	r /= w.p.Scale
	s /= w.p.Scale
	if r < 64 {
		r = 64
	}
	// Cap the probe relation so a full probe pass stays laptop-scale;
	// runs are budget-limited by MaxOps anyway.
	if s > 1<<21 {
		s = 1 << 21
	}
	if s < 256 {
		s = 256
	}
	return
}

func (w *hashjoin) rKey(i int) uint64 { return uint64(i)*2 + 1 }

// sKey alternates present and absent keys.
func (w *hashjoin) sKey(i int) uint64 {
	h := uint64(i)*2862933555777941757 + uint64(w.p.Seed) + 3037000493
	if i%2 == 0 {
		return w.rKey(int(h % uint64(w.rRows)))
	}
	return h | 1<<62 // guaranteed absent (above all R keys)
}

func (w *hashjoin) hash(key uint64) int {
	return int((key * 11400714819323198485) % uint64(w.nBuckets))
}

// insert places key into the table, chaining overflow buckets.
func (w *hashjoin) insert(st *memlayout.Store, key uint64) {
	b := w.bucketBase + uint64(w.hash(key))*addr.BlockBytes
	for {
		for slot := 0; slot < pim.HashBucketKeys; slot++ {
			off := b + pim.HashBucketKeyOff + uint64(slot*pim.HashBucketStride)
			if st.ReadU64(off) == 0 {
				st.WriteU64(off, key)
				st.WriteU64(off+8, key^0xda7a)
				return
			}
		}
		next := st.ReadU64(b + pim.HashBucketNextOff)
		if next == 0 {
			next = st.Alloc(addr.BlockBytes, addr.BlockBytes)
			st.WriteU64(b+pim.HashBucketNextOff, next)
		}
		b = next
	}
}

// chainFor computes the sequence of buckets a probe visits: every bucket
// up to and including the first match (or the whole chain on a miss).
// The table is read-only during probing, so this generation-time walk
// matches what the PEIs will see at simulation time. The returned slice
// aliases a scratch buffer valid until the next chainFor call.
func (w *hashjoin) chainFor(key uint64) (chain []uint64, hit bool) {
	chain = w.chainScratch[:0]
	b := w.bucketBase + uint64(w.hash(key))*addr.BlockBytes
	for b != 0 && !hit {
		chain = append(chain, b)
		for slot := 0; slot < pim.HashBucketKeys; slot++ {
			off := b + pim.HashBucketKeyOff + uint64(slot*pim.HashBucketStride)
			if w.store.ReadU64(off) == key {
				hit = true
				break
			}
		}
		if !hit {
			b = w.store.ReadU64(b + pim.HashBucketNextOff)
		}
	}
	w.chainScratch = chain
	return chain, hit
}

func (w *hashjoin) Streams(m *machine.Machine) []cpu.Stream {
	w.store = m.Store
	w.rRows, w.sRows = w.sizes()
	w.nBuckets = 1
	for w.nBuckets < w.rRows/2 {
		w.nBuckets <<= 1
	}
	w.bucketBase = m.Store.Alloc(w.nBuckets*addr.BlockBytes, addr.BlockBytes)
	for i := 0; i < w.rRows; i++ {
		w.insert(m.Store, w.rKey(i))
	}
	// Golden hit count (chains themselves are walked lazily at
	// generation time — the table is read-only during probing).
	w.goldenHits = 0
	for i := 0; i < w.sRows; i++ {
		if _, hit := w.chainFor(w.sKey(i)); hit {
			w.goldenHits++
		}
	}

	w.initPhases(1, nil)
	// The match counter lives host-side (PEI completion callbacks), so it
	// must ride in the snapshot alongside the machine state.
	w.snapExtra = func(sw *snap.Writer) { sw.I64(w.hits) }
	w.restoreExtra = func(sr *snap.Reader) { w.hits = sr.I64() }
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(w.sRows, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget: &budget,
			rounds: 1,
			items:  hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				key := w.sKey(lo + i)
				q.PushCompute(2) // hash computation
				chain, _ := w.chainFor(key)
				for _, bucket := range chain {
					p := &pim.PEI{Op: pim.OpHashProbe, Target: bucket, Input: pim.U64Input(key)}
					p.Done = func() {
						if p.Output[0] == 1 {
							w.hits++
						}
					}
					q.PushPEI(p)
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *hashjoin) Verify(m *machine.Machine) error {
	if w.hits != w.goldenHits {
		return fmt.Errorf("hj: %d matches, want %d", w.hits, w.goldenHits)
	}
	return nil
}
