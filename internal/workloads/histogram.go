package workloads

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
)

// histBins is the paper's 256-bin histogram over 32-bit integers; the
// bin index is the value's top byte (shift amount 24 passed as the PEI's
// input operand).
const (
	histBins  = 256
	histShift = 24
)

// histogram is HG of §5.2: one histogram-bin-index PEI per 16-integer
// cache block replaces reading the whole block through the hierarchy;
// the returned 16 bin bytes are accumulated into thread-local counts,
// which are merged into the shared bin array at the end.
type histogram struct {
	phaseCtl
	p Params

	n        int
	dataBase uint64
	bins     memlayout.U64Array
	local    [][]uint64 // per-thread accumulators
	golden   []uint64
}

func newHistogram(p Params) *histogram { return &histogram{p: p} }

func (w *histogram) Name() string { return "hg" }

func (w *histogram) inputSize() int {
	var n int
	switch w.p.Size {
	case Small:
		n = 1_000_000
	case Medium:
		n = 10_000_000
	default:
		n = 100_000_000
	}
	n /= w.p.Scale
	if n < 1024 {
		n = 1024
	}
	return n &^ 15 // whole blocks
}

func (w *histogram) value(i int) uint32 {
	return uint32(uint64(i)*2654435761 + uint64(w.p.Seed)*977)
}

// buildData lays out the input and golden histogram; shared with RP.
func (w *histogram) buildData(m *machine.Machine) {
	w.n = w.inputSize()
	w.dataBase = m.Store.Alloc(w.n*4, addr.BlockBytes)
	w.golden = make([]uint64, histBins)
	for i := 0; i < w.n; i++ {
		v := w.value(i)
		m.Store.WriteU32(w.dataBase+uint64(i*4), v)
		w.golden[v>>histShift]++
	}
	w.bins = m.Store.AllocU64Array(histBins)
	w.local = make([][]uint64, w.p.Threads)
	for t := range w.local {
		w.local[t] = make([]uint64, histBins)
	}
}

// newHistBinPEI builds the histogram-bin-index PEI for one block.
func newHistBinPEI(blockAddr uint64) *pim.PEI {
	return &pim.PEI{Op: pim.OpHistBin, Target: blockAddr, Input: []byte{histShift}}
}

// histPEI emits the bin-index PEI for the 16-integer block starting at
// element base, accumulating into acc.
func histPEI(q *cpu.Queue, blockAddr uint64, acc []uint64) {
	p := newHistBinPEI(blockAddr)
	p.Done = func() {
		for _, bin := range p.Output {
			acc[bin]++
		}
	}
	q.PushPEI(p)
}

func (w *histogram) Streams(m *machine.Machine) []cpu.Stream {
	w.buildData(m)
	blocks := w.n / 16
	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(1, barrier)
	w.snapExtra = func(sw *snap.Writer) { snapU64Grid(sw, w.local) }
	w.restoreExtra = func(sr *snap.Reader) { restoreU64Grid(sr, w.local) }
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(blocks, w.p.Threads, t)
		tid := t
		budget := w.p.OpBudget
		d := &roundDriver{
			budget:  &budget,
			rounds:  1,
			barrier: barrier,
			drain:   true,
			items:   hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				histPEI(q, w.dataBase+uint64((lo+i)*16*4), w.local[tid])
			},
			afterRounds: func(q *cpu.Queue) {
				// Merge thread-local counts into the shared bins with
				// normal loads/stores (the merge is tiny compared to
				// the scan and needs no PEIs).
				for b := 0; b < histBins; b++ {
					q.PushLoad(w.bins.Addr(b))
					w.bins.Set(b, w.bins.Get(b)+w.local[tid][b])
					q.PushStore(w.bins.Addr(b))
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *histogram) Verify(m *machine.Machine) error {
	for b := 0; b < histBins; b++ {
		if got := w.bins.Get(b); got != w.golden[b] {
			return fmt.Errorf("hg: bin[%d] = %d, want %d", b, got, w.golden[b])
		}
	}
	return nil
}
