package workloads

import (
	"math"
	"testing"

	"pimsim/internal/graph"
)

// These tests pin the golden reference implementations the workload
// verifiers compare against. If a golden model is wrong, every
// "verified" simulation result is wrong with it — so the goldens get
// their own invariants checked on independent graphs.

func goldenGraph() *graph.Graph {
	return graph.RMAT(512, 4096, 77)
}

func TestGoldenBFSInvariants(t *testing.T) {
	g := goldenGraph()
	src := g.MaxDegreeVertex()
	levels, rounds := goldenBFS(g, src)
	if levels[src] != 0 {
		t.Fatalf("source level %d", levels[src])
	}
	if rounds <= 0 {
		t.Fatal("no rounds")
	}
	// Triangle property of BFS levels: along any edge (v,w),
	// level(w) <= level(v)+1; and every finite level is witnessed by a
	// predecessor at level-1.
	witnessed := make([]bool, g.NumVertices())
	witnessed[src] = true
	for v := 0; v < g.NumVertices(); v++ {
		if levels[v] == infDist {
			continue
		}
		for _, w := range g.Successors(v) {
			if levels[w] > levels[v]+1 {
				t.Fatalf("edge (%d,%d): level %d -> %d violates BFS", v, w, levels[v], levels[w])
			}
			if levels[w] == levels[v]+1 {
				witnessed[w] = true
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if levels[v] != infDist && levels[v] > 0 && !witnessed[v] {
			t.Fatalf("vertex %d at level %d has no predecessor at level %d", v, levels[v], levels[v]-1)
		}
	}
}

func TestGoldenSSSPInvariants(t *testing.T) {
	g := goldenGraph()
	src := g.MaxDegreeVertex()
	dist, rounds := goldenSSSP(g, src)
	if dist[src] != 0 || rounds <= 0 {
		t.Fatalf("src dist %d rounds %d", dist[src], rounds)
	}
	// Relaxed fixpoint: no edge can improve any distance.
	for v := 0; v < g.NumVertices(); v++ {
		if dist[v] == infDist {
			continue
		}
		for _, w := range g.Successors(v) {
			if dist[v]+edgeWeight(v, w) < dist[w] {
				t.Fatalf("edge (%d,%d) still relaxable: %d + %d < %d",
					v, w, dist[v], edgeWeight(v, w), dist[w])
			}
		}
	}
	// SSSP distances dominate BFS levels (weights >= 1).
	levels, _ := goldenBFS(g, src)
	for v := range dist {
		if (dist[v] == infDist) != (levels[v] == infDist) {
			t.Fatalf("vertex %d reachability disagrees between BFS and SSSP", v)
		}
		if dist[v] != infDist && dist[v] < levels[v] {
			t.Fatalf("vertex %d: weighted dist %d below hop count %d", v, dist[v], levels[v])
		}
	}
}

func TestGoldenWCCInvariants(t *testing.T) {
	g := goldenGraph().Symmetrize()
	labels, rounds := goldenWCC(g)
	if rounds <= 0 {
		t.Fatal("no rounds")
	}
	// Fixpoint: neighbors share labels (the graph is symmetric).
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Successors(v) {
			if labels[v] != labels[w] {
				t.Fatalf("edge (%d,%d) crosses components %d/%d", v, w, labels[v], labels[w])
			}
		}
	}
	// Each label is the minimum vertex id of its component, so the
	// vertex carrying the label must label itself.
	for v := 0; v < g.NumVertices(); v++ {
		l := labels[v]
		if labels[l] != l {
			t.Fatalf("label %d is not its own representative", l)
		}
		if l > uint64(v) {
			t.Fatalf("vertex %d has label %d > its own id", v, l)
		}
	}
}

func TestGoldenPageRankInvariants(t *testing.T) {
	g := goldenGraph()
	gm := &GraphMem{G: g}
	rank, diff := goldenPageRank(gm, 3)
	if diff < 0 {
		t.Fatalf("negative diff %v", diff)
	}
	sum := 0.0
	minRank := math.Inf(1)
	for _, r := range rank {
		sum += r
		if r < minRank {
			minRank = r
		}
	}
	// Every vertex keeps at least the teleport mass.
	base := (1 - prDamping) / float64(g.NumVertices())
	if minRank < base-1e-12 {
		t.Fatalf("min rank %v below teleport mass %v", minRank, base)
	}
	// Total mass stays bounded by 1 (dangling vertices leak mass in
	// this formulation, so <= 1 rather than == 1).
	if sum > 1+1e-9 {
		t.Fatalf("rank mass %v exceeds 1", sum)
	}
	// More iterations must not increase the per-iteration delta for a
	// convergent damped walk.
	_, diff5 := goldenPageRank(gm, 6)
	if diff5 > diff*1.5 {
		t.Fatalf("diff grew with iterations: %v -> %v", diff, diff5)
	}
}

func TestGoldenDeterminism(t *testing.T) {
	g := goldenGraph()
	a, ra := goldenBFS(g, 3)
	b, rb := goldenBFS(g, 3)
	if ra != rb {
		t.Fatal("round counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("golden BFS nondeterministic")
		}
	}
}
