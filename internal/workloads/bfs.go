package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
)

// infDist marks unreached vertices in BFS/SSSP (large but addable
// without overflow).
const infDist = uint64(1) << 60

// bfs is level-synchronous parallel breadth-first search (§5.1): each
// round, vertices at the frontier level update their neighbors' level
// fields with 8-byte atomic-min PEIs; rounds are separated by a barrier
// plus pfence. The number of rounds is the BFS depth of the graph,
// computed by the golden implementation up front (see DESIGN.md on
// fixed-round supersteps).
type bfs struct {
	phaseCtl
	p  Params
	gm *GraphMem

	level  memlayout.U64Array
	src    int
	golden []uint64
	rounds int
}

func newBFS(p Params) *bfs { return &bfs{p: p} }

func (w *bfs) Name() string { return "bfs" }

// goldenBFS runs synchronous BFS, returning final levels and the round
// count to fixpoint.
func goldenBFS(g *graph.Graph, src int) ([]uint64, int) {
	levels := make([]uint64, g.NumVertices())
	for i := range levels {
		levels[i] = infDist
	}
	levels[src] = 0
	frontier := []int{src}
	depth := 0
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, succ := range g.Successors(v) {
				if levels[succ] == infDist {
					levels[succ] = levels[v] + 1
					next = append(next, int(succ))
				}
			}
		}
		frontier = next
		depth++
	}
	return levels, depth
}

func (w *bfs) Streams(m *machine.Machine) []cpu.Stream {
	w.gm = buildGraph(m, graphInput(w.p))
	g := w.gm.G
	n := g.NumVertices()
	w.src = g.MaxDegreeVertex()
	w.golden, w.rounds = goldenBFS(g, w.src)

	w.level = m.Store.AllocU64Array(n)
	w.level.Fill(infDist)
	w.level.Set(w.src, 0)

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(w.rounds, barrier)
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(n, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget:  &budget,
			rounds:  w.rounds,
			barrier: barrier,
			items:   hi - lo,
			perItem: func(q *cpu.Queue, round, i int) {
				v := lo + i
				q.PushLoad(w.level.Addr(v))
				if w.level.Get(v) != uint64(round) {
					return
				}
				off := w.gm.G.Offsets[v]
				for j, succ := range w.gm.G.Successors(v) {
					q.PushLoad(w.gm.EdgeAddr(off + int64(j)))
					q.PushPEI(&pim.PEI{
						Op:     pim.OpMin64,
						Target: w.level.Addr(int(succ)),
						Input:  pim.U64Input(uint64(round) + 1),
					})
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *bfs) Verify(m *machine.Machine) error {
	for v := range w.golden {
		if got := w.level.Get(v); got != w.golden[v] {
			return fmt.Errorf("bfs: level[%d] = %d, want %d", v, got, w.golden[v])
		}
	}
	return nil
}
