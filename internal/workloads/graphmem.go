package workloads

import (
	"fmt"
	"sync" //peilint:allow partsafe generation-time graph cache shared across harness cells; immutable after construction, never touched by event handlers

	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
)

// GraphMem is a CSR graph laid out in simulated memory: the edge-target
// array lives in the store so edge-list traversal generates real
// sequential loads, while per-vertex property arrays are allocated by
// each workload.
type GraphMem struct {
	G        *graph.Graph
	edgeBase uint64
}

// LayoutGraph places g's edge array (4 bytes per target) in the store.
func LayoutGraph(st *memlayout.Store, g *graph.Graph) *GraphMem {
	gm := &GraphMem{G: g}
	n := g.NumEdges()
	if n == 0 {
		n = 1
	}
	gm.edgeBase = st.Alloc(n*4, 64)
	for i, w := range g.Edges {
		st.WriteU32(gm.edgeBase+uint64(i*4), uint32(w))
	}
	return gm
}

// EdgeAddr returns the simulated address of edge index e.
func (gm *GraphMem) EdgeAddr(e int64) uint64 { return gm.edgeBase + uint64(e)*4 }

// graphInput resolves a Params into the Table 3 graph for the size,
// scaled down by Scale.
func graphInput(p Params) graph.DatasetSpec {
	if p.Graph != nil {
		return p.Graph.Scaled(p.Scale)
	}
	var spec graph.DatasetSpec
	switch p.Size {
	case Small:
		spec = graph.Table3Graphs["small"]
	case Medium:
		spec = graph.Table3Graphs["medium"]
	default:
		spec = graph.Table3Graphs["large"]
	}
	spec.Seed += p.Seed * 131
	return spec.Scaled(p.Scale)
}

// graphCache memoizes generated graphs (and their symmetrized forms)
// across runs: the experiment harness builds the same dataset for each
// of the four system configurations, and generation dominates build time
// at large scales. Graphs are immutable after construction, so sharing
// is safe.
var graphCache sync.Map

func cachedGraph(spec graph.DatasetSpec, symmetrize bool) *graph.Graph {
	key := fmt.Sprintf("%s/%d/%d/%d/%v", spec.Name, spec.Vertices, spec.Edges, spec.Seed, symmetrize)
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := spec.Generate()
	if symmetrize {
		g = g.Symmetrize()
	}
	graphCache.Store(key, g)
	return g
}

// buildGraph generates (with caching) and lays out the input graph.
func buildGraph(m *machine.Machine, spec graph.DatasetSpec) *GraphMem {
	return LayoutGraph(m.Store, cachedGraph(spec, false))
}
