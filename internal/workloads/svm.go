package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"pimsim/internal/addr"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
	"pimsim/internal/snap"
)

// newEuclidPEI builds the 16-dim single-precision distance PEI (SC).
func newEuclidPEI(target uint64, input []byte) *pim.PEI {
	return &pim.PEI{Op: pim.OpEuclideanDist, Target: target, Input: input}
}

// svm is SVM-RFE of §5.3: the kernel computes dot products between one
// hyperplane vector w (hot, register/cache resident) and a large number
// of input vectors x_i (streamed). Every 4-dimension double-precision
// chunk of an instance is one dot-product PEI: target = the x chunk in
// memory, input operand = the matching w chunk. Partial dot products are
// summed host-side into the per-instance kernel value.
//
// The paper uses the ovarian-cancer microarray dataset (§6.2); we
// substitute synthetic dense vectors with the same instance counts and a
// scaled feature count (DESIGN.md §3) — the access pattern depends only
// on the shape.
type svm struct {
	phaseCtl
	p Params

	instances, features int
	xBase               uint64
	wVec                []float64

	// partials[i][c] is instance i's chunk-c dot product, filled by PEI
	// completion callbacks and folded in chunk order at Verify (so the
	// summation order matches the golden implementation regardless of
	// PEI completion order).
	partials [][]float64
	golden   []float64
}

func newSVM(p Params) *svm { return &svm{p: p} }

func (w *svm) Name() string { return "svm" }

func (w *svm) shape() (instances, features int) {
	switch w.p.Size {
	case Small:
		instances = 50
	case Medium:
		instances = 130
	default:
		instances = 253
	}
	// Ovarian cancer dataset has 15154 features; scale them down but
	// keep whole 8-double blocks.
	features = 15154 / w.p.Scale
	if features < 64 {
		features = 64
	}
	features &^= 7
	return
}

func (w *svm) x(i, f int) float64 {
	h := uint64(i)*2862933555777941757 + uint64(f)*3202034522624059733 + uint64(w.p.Seed)
	return float64(int64(h%2048)-1024) / 256.0
}

func (w *svm) xAddr(i, f int) uint64 {
	return w.xBase + uint64((i*w.features+f)*8)
}

func (w *svm) Streams(m *machine.Machine) []cpu.Stream {
	w.instances, w.features = w.shape()
	w.xBase = m.Store.Alloc(w.instances*w.features*8, addr.BlockBytes)
	for i := 0; i < w.instances; i++ {
		for f := 0; f < w.features; f++ {
			m.Store.WriteF64(w.xAddr(i, f), w.x(i, f))
		}
	}
	w.wVec = make([]float64, w.features)
	for f := range w.wVec {
		w.wVec[f] = float64(int64(uint64(f)*0x9E3779B97F4A7C15%512)-256) / 128.0
	}

	// Golden dot products, accumulated exactly as the PEIs do (4-dim
	// chunks in order).
	w.golden = make([]float64, w.instances)
	for i := range w.golden {
		var total float64
		for c := 0; c < w.features/4; c++ {
			var sum float64
			for d := 0; d < 4; d++ {
				f := c*4 + d
				sum += w.x(i, f) * w.wVec[f]
			}
			total += sum
		}
		w.golden[i] = total
	}

	w.partials = make([][]float64, w.instances)
	for i := range w.partials {
		w.partials[i] = make([]float64, w.features/4)
	}
	w.initPhases(1, nil)
	w.snapExtra = func(sw *snap.Writer) {
		for _, row := range w.partials {
			for _, v := range row {
				sw.F64(v)
			}
		}
	}
	w.restoreExtra = func(sr *snap.Reader) {
		for _, row := range w.partials {
			for i := range row {
				row[i] = sr.F64()
			}
		}
	}
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(w.instances, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget: &budget,
			rounds: 1,
			items:  hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				inst := lo + i
				for c := 0; c < w.features/4; c++ {
					input := make([]byte, 32)
					for d := 0; d < 4; d++ {
						binary.LittleEndian.PutUint64(input[d*8:],
							math.Float64bits(w.wVec[c*4+d]))
					}
					pei := &pim.PEI{
						Op:     pim.OpDotProduct,
						Target: w.xAddr(inst, c*4),
						Input:  input,
					}
					cc := c
					pei.Done = func() {
						w.partials[inst][cc] = math.Float64frombits(binary.LittleEndian.Uint64(pei.Output))
					}
					q.PushPEI(pei)
				}
				q.PushCompute(2)
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *svm) Verify(m *machine.Machine) error {
	for i := range w.golden {
		var dot float64
		for _, p := range w.partials[i] {
			dot += p
		}
		if dot != w.golden[i] {
			return fmt.Errorf("svm: dot[%d] = %g, want %g", i, dot, w.golden[i])
		}
	}
	return nil
}
