package workloads

import (
	"fmt"

	"pimsim/internal/addr"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/snap"
)

// radix is RP of §5.2: radix partitioning of an in-memory relation.
// Each query first builds a histogram of the data (reusing the
// histogram-bin-index PEI), then re-reads the data and scatters rows to
// their partitions. The paper applies the algorithm repeatedly to the
// same relation (database servers answering a query stream); Passes
// controls the repeat count.
type radix struct {
	phaseCtl
	p      Params
	Passes int

	n        int
	dataBase uint64
	dstBase  uint64

	// offsets[t][b] is where thread t writes its next element of bin b
	// (global prefix sums plus per-thread skew), recomputed per pass.
	offsets   [][]int
	local     [][]uint64
	goldenDst []uint32
	value     func(i int) uint32
}

func newRadixPartition(p Params) *radix { return &radix{p: p, Passes: 2} }

func (w *radix) Name() string { return "rp" }

func (w *radix) inputSize() int {
	var n int
	switch w.p.Size {
	case Small:
		n = 128 << 10
	case Medium:
		n = 1 << 20
	default:
		n = 128 << 20
	}
	n /= w.p.Scale
	if n < 1024 {
		n = 1024
	}
	return n &^ 15
}

func (w *radix) Streams(m *machine.Machine) []cpu.Stream {
	w.n = w.inputSize()
	w.value = func(i int) uint32 { return uint32(uint64(i)*2654435761 + uint64(w.p.Seed)*977) }
	w.dataBase = m.Store.Alloc(w.n*4, addr.BlockBytes)
	w.dstBase = m.Store.Alloc(w.n*4, addr.BlockBytes)
	hist := make([]uint64, histBins)
	for i := 0; i < w.n; i++ {
		v := w.value(i)
		m.Store.WriteU32(w.dataBase+uint64(i*4), v)
		hist[v>>histShift]++
	}

	// Golden: stable partition with threads writing their contiguous
	// input slices into per-bin regions, thread-major within each bin.
	w.offsets = make([][]int, w.p.Threads)
	w.local = make([][]uint64, w.p.Threads)
	perThreadBin := make([][]uint64, w.p.Threads)
	totalBlocks := w.n / 16
	for t := 0; t < w.p.Threads; t++ {
		counts := make([]uint64, histBins)
		blo, bhi := PartitionRange(totalBlocks, w.p.Threads, t)
		lo, hi := blo*16, bhi*16
		for i := lo; i < hi; i++ {
			counts[w.value(i)>>histShift]++
		}
		perThreadBin[t] = counts
		w.local[t] = make([]uint64, histBins)
	}
	binStart := make([]int, histBins)
	acc := 0
	for b := 0; b < histBins; b++ {
		binStart[b] = acc
		acc += int(hist[b])
	}
	for t := 0; t < w.p.Threads; t++ {
		w.offsets[t] = make([]int, histBins)
		for b := 0; b < histBins; b++ {
			w.offsets[t][b] = binStart[b]
			for u := 0; u < t; u++ {
				w.offsets[t][b] += int(perThreadBin[u][b])
			}
		}
	}
	w.goldenDst = make([]uint32, w.n)
	cursor := make([][]int, w.p.Threads)
	for t := range cursor {
		cursor[t] = append([]int(nil), w.offsets[t]...)
	}
	for t := 0; t < w.p.Threads; t++ {
		blo, bhi := PartitionRange(totalBlocks, w.p.Threads, t)
		for i := blo * 16; i < bhi*16; i++ {
			v := w.value(i)
			b := v >> histShift
			w.goldenDst[cursor[t][b]] = v
			cursor[t][b]++
		}
	}

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(2*w.Passes, barrier)
	// scatterCursor needs no snapshot: beforeRound recomputes it from
	// offsets at the start of every scatter round, and phase boundaries
	// only fall between rounds.
	w.snapExtra = func(sw *snap.Writer) { snapU64Grid(sw, w.local) }
	w.restoreExtra = func(sr *snap.Reader) { restoreU64Grid(sr, w.local) }
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		blo, bhi := PartitionRange(totalBlocks, w.p.Threads, t)
		lo := blo * 16
		blocks := bhi - blo
		tid := t
		var scatterCursor []int
		budget := w.p.OpBudget
		d := &roundDriver{
			budget: &budget,
			// Per pass: one histogram superstep + one scatter superstep.
			rounds:  2 * w.Passes,
			barrier: barrier,
			drain:   true,
			items:   blocks,
			beforeRound: func(round int) {
				if round%2 == 1 {
					scatterCursor = append([]int(nil), w.offsets[tid]...)
				}
			},
			perItem: func(q *cpu.Queue, round, i int) {
				blockBase := w.dataBase + uint64(lo+i*16)*4
				if round%2 == 0 {
					histPEI(q, blockBase, w.local[tid])
					return
				}
				// Scatter: re-read the block, then store each element to
				// its partition.
				q.PushLoad(blockBase)
				for e := 0; e < 16; e++ {
					idx := lo + i*16 + e
					v := w.value(idx)
					b := v >> histShift
					dst := w.dstBase + uint64(scatterCursor[b])*4
					m.Store.WriteU32(dst, v)
					scatterCursor[b]++
					q.PushStore(dst)
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *radix) Verify(m *machine.Machine) error {
	for i := 0; i < w.n; i++ {
		if got := m.Store.ReadU32(w.dstBase + uint64(i*4)); got != w.goldenDst[i] {
			return fmt.Errorf("rp: dst[%d] = %d, want %d", i, got, w.goldenDst[i])
		}
	}
	// The output must be partitioned: bin indexes nondecreasing.
	last := uint32(0)
	for i := 0; i < w.n; i++ {
		b := m.Store.ReadU32(w.dstBase+uint64(i*4)) >> histShift
		if b < last {
			return fmt.Errorf("rp: output not partitioned at %d (bin %d after %d)", i, b, last)
		}
		last = b
	}
	return nil
}
