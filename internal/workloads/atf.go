package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
)

// atf is Average Teenage Follower (§5.1): for every teenager vertex,
// increment the follower counter of each successor. One pass over the
// graph; the counter increments are 8-byte atomic-increment PEIs landing
// randomly across the counter array (pointer chasing over edges).
type atf struct {
	phaseCtl
	p  Params
	gm *GraphMem

	teen     memlayout.U64Array
	counters memlayout.U64Array
	teenFlag []bool
}

func newATF(p Params) *atf { return &atf{p: p} }

func (w *atf) Name() string { return "atf" }

// isTeen deterministically marks ~28% of vertices as teenagers.
func isTeen(v int) bool { return (uint32(v)*2654435761)%7 < 2 }

func (w *atf) Streams(m *machine.Machine) []cpu.Stream {
	w.gm = buildGraph(m, graphInput(w.p))
	g := w.gm.G
	n := g.NumVertices()
	w.teen = m.Store.AllocU64Array(n)
	w.counters = m.Store.AllocU64Array(n)
	w.teenFlag = make([]bool, n)
	for v := 0; v < n; v++ {
		if isTeen(v) {
			w.teen.Set(v, 1)
			w.teenFlag[v] = true
		}
	}

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(1, barrier)
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(n, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget:  &budget,
			rounds:  1,
			barrier: barrier,
			items:   hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				v := lo + i
				q.PushLoad(w.teen.Addr(v))
				if !w.teenFlag[v] {
					return
				}
				off := w.gm.G.Offsets[v]
				for j, succ := range w.gm.G.Successors(v) {
					q.PushLoad(w.gm.EdgeAddr(off + int64(j)))
					q.PushPEI(&pim.PEI{Op: pim.OpInc64, Target: w.counters.Addr(int(succ))})
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *atf) Verify(m *machine.Machine) error {
	golden := make([]uint64, w.gm.G.NumVertices())
	for v := 0; v < w.gm.G.NumVertices(); v++ {
		if !w.teenFlag[v] {
			continue
		}
		for _, succ := range w.gm.G.Successors(v) {
			golden[succ]++
		}
	}
	for v := range golden {
		if got := w.counters.Get(v); got != golden[v] {
			return fmt.Errorf("atf: counter[%d] = %d, want %d", v, got, golden[v])
		}
	}
	return nil
}
