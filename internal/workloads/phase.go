package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/snap"
)

// Phased is implemented by workloads whose runs can be cut at superstep
// boundaries for checkpointing. Between phases the machine drains to
// quiescence; SnapshotTo then captures the only state that lives outside
// the simulated machine — the generators' positions and any host-side
// accumulators PEI completion callbacks write into.
//
// All ten workloads implement Phased by embedding phaseCtl.
type Phased interface {
	Workload
	// Rounds reports the total number of supersteps the workload runs.
	Rounds() int
	// SetRoundLimit caps generation at the first limit rounds (0 or
	// negative clears the cap). With a cap below Rounds(), streams
	// report exhaustion at the cap and the machine drains to a
	// checkpointable boundary; raising the cap and re-arming the cores
	// resumes generation exactly where it stopped.
	SetRoundLimit(limit int)
	// SnapshotTo appends the workload's generator state to a machine
	// snapshot stream. Only valid at a drained phase boundary.
	SnapshotTo(w *snap.Writer)
	// RestoreFrom loads generator state into a freshly built workload
	// whose Streams have been constructed on the restore target.
	RestoreFrom(r *snap.Reader)
}

// Every workload is checkpointable.
var (
	_ Phased = (*atf)(nil)
	_ Phased = (*bfs)(nil)
	_ Phased = (*pagerank)(nil)
	_ Phased = (*sssp)(nil)
	_ Phased = (*wcc)(nil)
	_ Phased = (*hashjoin)(nil)
	_ Phased = (*histogram)(nil)
	_ Phased = (*radix)(nil)
	_ Phased = (*streamcluster)(nil)
	_ Phased = (*svm)(nil)
)

// phaseCtl is the shared Phased implementation. Streams() calls
// initPhases and registers each thread's roundDriver (and the shared
// barrier, if any); workloads with host-side PEI accumulators hook
// snapExtra/restoreExtra to carry them across the boundary.
type phaseCtl struct {
	totalRounds int //peilint:allow snapcomplete workload configuration, re-established by initPhases when the streams are rebuilt before any restore
	barrier     *cpu.Barrier
	drivers     []*roundDriver
	// snapExtra/restoreExtra serialize workload-specific host state
	// (e.g. hashjoin's match counter, histogram's per-thread bins).
	snapExtra    func(w *snap.Writer) //peilint:allow snapcomplete code hook reinstalled by Streams; the state it serializes lives in the workload
	restoreExtra func(r *snap.Reader) //peilint:allow snapcomplete code hook reinstalled by Streams; the state it loads lives in the workload
}

// initPhases resets phase bookkeeping for a (re)build of the streams.
func (c *phaseCtl) initPhases(rounds int, barrier *cpu.Barrier) {
	c.totalRounds = rounds
	c.barrier = barrier
	c.drivers = nil
	c.snapExtra = nil
	c.restoreExtra = nil
}

// addDriver registers a thread's driver and returns it (so call sites
// can register inline while building streams).
func (c *phaseCtl) addDriver(d *roundDriver) *roundDriver {
	c.drivers = append(c.drivers, d)
	return d
}

func (c *phaseCtl) Rounds() int { return c.totalRounds }

func (c *phaseCtl) SetRoundLimit(limit int) {
	for _, d := range c.drivers {
		d.limit = limit
	}
}

func (c *phaseCtl) SnapshotTo(w *snap.Writer) {
	w.Section("WKLD")
	w.Bool(c.barrier != nil)
	if c.barrier != nil {
		c.barrier.SnapshotTo(w)
	}
	w.Int(len(c.drivers))
	for _, d := range c.drivers {
		w.Int(d.round)
		w.Int(d.pos)
		w.Bool(d.tailDone)
		w.Bool(d.budget != nil)
		if d.budget != nil {
			w.I64(*d.budget)
		}
	}
	if c.snapExtra != nil {
		c.snapExtra(w)
	}
}

func (c *phaseCtl) RestoreFrom(r *snap.Reader) {
	r.Section("WKLD")
	hasBarrier := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasBarrier != (c.barrier != nil) {
		r.Fail(fmt.Errorf("workloads: snapshot barrier presence %v, workload has %v", hasBarrier, c.barrier != nil))
		return
	}
	if c.barrier != nil {
		c.barrier.RestoreFrom(r)
	}
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(c.drivers) {
		r.Fail(fmt.Errorf("workloads: snapshot has %d drivers, workload has %d", n, len(c.drivers)))
		return
	}
	for _, d := range c.drivers {
		d.round = r.Int()
		d.pos = r.Int()
		d.tailDone = r.Bool()
		hasBudget := r.Bool()
		if r.Err() != nil {
			return
		}
		if hasBudget != (d.budget != nil) {
			r.Fail(fmt.Errorf("workloads: snapshot budget presence %v, driver has %v", hasBudget, d.budget != nil))
			return
		}
		if hasBudget {
			*d.budget = r.I64()
		}
	}
	if c.restoreExtra != nil {
		c.restoreExtra(r)
	}
}

// snapU64Grid / restoreU64Grid serialize per-thread accumulator arrays
// (histogram bins, radix partition counts) as extra sections.
func snapU64Grid(w *snap.Writer, grid [][]uint64) {
	w.Int(len(grid))
	for _, row := range grid {
		w.U64s(row)
	}
}

func restoreU64Grid(r *snap.Reader, grid [][]uint64) {
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(grid) {
		r.Fail(fmt.Errorf("workloads: snapshot has %d accumulator rows, workload has %d", n, len(grid)))
		return
	}
	for t := range grid {
		row := r.U64s()
		if r.Err() != nil {
			return
		}
		if len(row) != len(grid[t]) {
			r.Fail(fmt.Errorf("workloads: accumulator row %d has %d entries, snapshot has %d", t, len(grid[t]), len(row)))
			return
		}
		copy(grid[t], row)
	}
}
