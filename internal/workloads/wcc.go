package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
)

// wcc finds weakly connected components (§5.1) by label propagation on
// the symmetrized graph: every vertex pushes its label to its neighbors
// with atomic-min PEIs until labels stop changing; the component label
// converges to the smallest vertex id in the component.
type wcc struct {
	phaseCtl
	p  Params
	gm *GraphMem

	label  memlayout.U64Array
	golden []uint64
	rounds int
}

func newWCC(p Params) *wcc { return &wcc{p: p} }

func (w *wcc) Name() string { return "wcc" }

// goldenWCC runs synchronous label propagation to fixpoint.
func goldenWCC(g *graph.Graph) ([]uint64, int) {
	n := g.NumVertices()
	label := make([]uint64, n)
	for v := range label {
		label[v] = uint64(v)
	}
	rounds := 0
	for {
		prev := append([]uint64(nil), label...)
		changed := false
		for v := 0; v < n; v++ {
			for _, succ := range g.Successors(v) {
				if prev[v] < label[succ] {
					label[succ] = prev[v]
					changed = true
				}
			}
		}
		rounds++
		if !changed {
			break
		}
	}
	return label, rounds
}

func (w *wcc) Streams(m *machine.Machine) []cpu.Stream {
	spec := graphInput(w.p)
	g := cachedGraph(spec, true)
	w.gm = LayoutGraph(m.Store, g)
	n := g.NumVertices()
	w.golden, w.rounds = goldenWCC(g)

	w.label = m.Store.AllocU64Array(n)
	for v := 0; v < n; v++ {
		w.label.Set(v, uint64(v))
	}

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(w.rounds, barrier)
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(n, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget:  &budget,
			rounds:  w.rounds,
			barrier: barrier,
			items:   hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				v := lo + i
				q.PushLoad(w.label.Addr(v))
				lv := w.label.Get(v)
				off := w.gm.G.Offsets[v]
				for j, succ := range w.gm.G.Successors(v) {
					q.PushLoad(w.gm.EdgeAddr(off + int64(j)))
					q.PushPEI(&pim.PEI{
						Op:     pim.OpMin64,
						Target: w.label.Addr(int(succ)),
						Input:  pim.U64Input(lv),
					})
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *wcc) Verify(m *machine.Machine) error {
	for v := range w.golden {
		if got := w.label.Get(v); got != w.golden[v] {
			return fmt.Errorf("wcc: label[%d] = %d, want %d", v, got, w.golden[v])
		}
	}
	return nil
}
