// Package workloads implements the ten data-intensive applications of
// the paper's case study (§5) as op-stream generators over the simulated
// machine: five graph kernels (ATF, BFS, PR, SP, WCC), three in-memory
// analytics kernels (HJ, HG, RP), and two machine-learning kernels (SC,
// SVM). Each workload lays its data out in the machine's simulated
// memory, emits the loads/stores/PEIs its inner loops perform, and can
// verify its functional results against a golden sequential
// implementation after the run — so coherence or atomicity bugs in the
// architecture show up as wrong answers.
package workloads

import (
	"fmt"
	"sort"

	"pimsim/internal/cpu"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
)

// Size selects the input scale of Table 3.
type Size int

const (
	Small Size = iota
	Medium
	Large
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// ParseSize converts "small"/"medium"/"large".
func ParseSize(s string) (Size, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("workloads: unknown size %q", s)
}

// Params configures a workload instance.
type Params struct {
	// Threads is the number of streams to build (one per core).
	Threads int
	// Size picks the Table 3 input set.
	Size Size
	// Scale divides the Table 3 input sizes (and should be paired with a
	// proportionally scaled cache configuration); 1 reproduces the paper
	// sizes.
	Scale int
	// Seed perturbs synthetic inputs (multiprogrammed runs use distinct
	// seeds).
	Seed int64
	// OpBudget caps the work ops each thread generates (the stand-in for
	// the paper's 2 B-instruction simulation budget). Supersteps still
	// run their barriers and fences so multi-threaded runs terminate
	// cleanly, but per-item bodies stop once the budget is spent. With a
	// budget set, Verify is meaningless (the run is truncated).
	OpBudget int64
	// Graph overrides the Table 3 graph selection for graph workloads
	// (used by the Figure 2/8 sweeps over the nine named graphs).
	Graph *graph.DatasetSpec
}

func (p Params) withDefaults() Params {
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	return p
}

// Workload is one benchmark application.
type Workload interface {
	// Name is the paper's abbreviation (e.g. "pr").
	Name() string
	// Streams allocates the workload's data in m's simulated memory and
	// returns one op stream per thread. Call once per machine.
	Streams(m *machine.Machine) []cpu.Stream
	// Verify checks functional results against a golden implementation;
	// call after the machine has run.
	Verify(m *machine.Machine) error
}

// Names lists all workloads in the paper's order.
var Names = []string{"atf", "bfs", "pr", "sp", "wcc", "hj", "hg", "rp", "sc", "svm"}

// New constructs a workload by its paper abbreviation.
func New(name string, p Params) (Workload, error) {
	p = p.withDefaults()
	switch name {
	case "atf":
		return newATF(p), nil
	case "bfs":
		return newBFS(p), nil
	case "pr":
		return newPageRank(p), nil
	case "sp":
		return newSSSP(p), nil
	case "wcc":
		return newWCC(p), nil
	case "hj":
		return newHashJoin(p), nil
	case "hg":
		return newHistogram(p), nil
	case "rp":
		return newRadixPartition(p), nil
	case "sc":
		return newStreamcluster(p), nil
	case "svm":
		return newSVM(p), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names)
}

// MustNew panics on unknown names (for tables of known workloads).
func MustNew(name string, p Params) Workload {
	w, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return w
}

// PartitionRange splits [0,n) into `threads` contiguous chunks and
// returns chunk t.
func PartitionRange(n, threads, t int) (lo, hi int) {
	lo = n * t / threads
	hi = n * (t + 1) / threads
	return
}

// roundDriver generates superstep-structured streams: each round emits
// per-item ops for this thread's slice, then a barrier and a pfence.
// Fill granularity is chunked so op buffers stay small.
type roundDriver struct {
	rounds  int
	barrier *cpu.Barrier
	// budget, if non-nil, is decremented by ops emitted; at zero,
	// per-item bodies are skipped (barriers/fences still run).
	budget *int64
	// drain inserts an OpDrain before each round's barrier, for phases
	// whose PEI outputs the next phase consumes host-side.
	drain bool
	items int // this thread's item count
	// beforeRound runs at the start of each round (generation time).
	beforeRound func(round int)
	// perItem emits ops for item i (thread-local index) of the round.
	perItem func(q *cpu.Queue, round, i int)
	// afterRounds optionally emits a final tail after the last barrier.
	afterRounds func(q *cpu.Queue)

	// limit, when positive, caps generation at the first limit rounds:
	// the stream reports exhaustion at the cap so the machine drains to
	// a quiescent checkpoint boundary, and raising the limit (plus
	// re-arming the core) resumes exactly where generation stopped.
	// Zero or negative means no cap.
	limit int

	round, pos int
	tailDone   bool
}

const fillChunk = 64

func (d *roundDriver) Fill(q *cpu.Queue) bool {
	if d.limit > 0 && d.round >= d.limit && d.round < d.rounds {
		return false // parked at a phase boundary
	}
	if d.round >= d.rounds {
		if d.afterRounds != nil && !d.tailDone {
			d.tailDone = true
			d.afterRounds(q)
			return true
		}
		return false
	}
	if d.pos == 0 && d.beforeRound != nil {
		d.beforeRound(d.round)
	}
	end := d.pos + fillChunk
	if end > d.items {
		end = d.items
	}
	for ; d.pos < end; d.pos++ {
		if d.budget != nil && *d.budget <= 0 {
			continue
		}
		before := q.Len()
		d.perItem(q, d.round, d.pos)
		if d.budget != nil {
			*d.budget -= int64(q.Len() - before)
		}
	}
	if d.pos >= d.items {
		if d.drain {
			q.Push(cpu.Op{Kind: cpu.OpDrain})
		}
		if d.barrier != nil {
			q.Push(cpu.Op{Kind: cpu.OpBarrier, Barrier: d.barrier})
		}
		q.PushFence()
		d.pos = 0
		d.round++
	}
	return true
}

func (d *roundDriver) stream() cpu.Stream {
	if d.budget != nil && *d.budget <= 0 {
		d.budget = nil // zero or negative initial budget means unlimited
	}
	return &cpu.Queue{Fill: d.Fill}
}

// approxEqual compares floats with a tolerance scaled to magnitude, for
// verifying floating-point reductions whose summation order differs from
// the golden implementation's.
func approxEqual(a, b, rel float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := 1.0
	if m := abs(a); m > mag {
		mag = m
	}
	if m := abs(b); m > mag {
		mag = m
	}
	return diff <= rel*mag
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortedCopy returns a sorted copy of xs (verification helper).
func sortedCopy(xs []uint64) []uint64 {
	c := append([]uint64(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}
