package workloads

import (
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/machine"
	"pimsim/internal/pim"
)

func testParams() Params {
	return Params{Threads: 4, Size: Small, Scale: 512}
}

// runWorkload builds a scaled machine, runs the workload to completion,
// and verifies functional results.
func runWorkload(t *testing.T, name string, mode pim.Mode, p Params) machine.Result {
	t.Helper()
	w, err := New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(config.Scaled(), mode)
	streams := w.Streams(m)
	if len(streams) != p.Threads {
		t.Fatalf("%s: %d streams, want %d", name, len(streams), p.Threads)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatalf("%s verification failed (%s): %v", name, mode, err)
	}
	if res.PEIs == 0 {
		t.Fatalf("%s issued no PEIs", name)
	}
	return res
}

// Every workload must produce correct results in every execution mode —
// this is the end-to-end proof that atomicity (PIM directory), coherence
// (back-invalidation/back-writeback), and steering do not corrupt data.
func TestAllWorkloadsAllModes(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, mode := range []pim.Mode{pim.HostOnly, pim.PIMOnly, pim.LocalityAware, pim.IdealHost} {
				runWorkload(t, name, mode, testParams())
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := runWorkload(t, "pr", pim.LocalityAware, testParams())
	b := runWorkload(t, "pr", pim.LocalityAware, testParams())
	if a.Cycles != b.Cycles || a.PEIMem != b.PEIMem {
		t.Fatalf("pr nondeterministic: %d/%d vs %d/%d cycles/mem", a.Cycles, a.PEIMem, b.Cycles, b.PEIMem)
	}
}

func TestSeedChangesInputs(t *testing.T) {
	p := testParams()
	p2 := p
	p2.Seed = 99
	a := runWorkload(t, "hj", pim.HostOnly, p)
	b := runWorkload(t, "hj", pim.HostOnly, p2)
	if a.PEIs == b.PEIs && a.Cycles == b.Cycles {
		t.Log("seeds produced identical runs; acceptable but suspicious")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nope", Params{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Size
	}{{"small", Small}, {"medium", Medium}, {"large", Large}} {
		got, err := ParseSize(tc.s)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSize(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartitionRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for threads := 1; threads <= 8; threads++ {
			covered := 0
			prevHi := 0
			for t2 := 0; t2 < threads; t2++ {
				lo, hi := PartitionRange(n, threads, t2)
				if lo != prevHi {
					t.Fatalf("gap: n=%d threads=%d t=%d lo=%d prevHi=%d", n, threads, t2, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d threads=%d covered %d", n, threads, covered)
			}
		}
	}
}

func TestSingleThreadWorkloads(t *testing.T) {
	p := testParams()
	p.Threads = 1
	for _, name := range []string{"atf", "bfs", "hg"} {
		runWorkload(t, name, pim.LocalityAware, p)
	}
}

// PageRank on a graph that fits in cache should steer mostly to the
// host; the same workload with a large (relative to cache) graph should
// offload mostly to memory — the paper's central claim, in miniature.
func TestLocalitySteeringMatchesFootprint(t *testing.T) {
	pSmall := Params{Threads: 4, Size: Small, Scale: 2048} // tiny graph
	small := runWorkload(t, "atf", pim.LocalityAware, pSmall)
	// Scale 64 leaves a ~600 KB PEI-target array against the scaled
	// 256 KB L3: a genuinely memory-resident footprint.
	pLarge := Params{Threads: 4, Size: Large, Scale: 64}
	large := runWorkload(t, "atf", pim.LocalityAware, pLarge)
	if small.PIMFraction() > 0.5 {
		t.Fatalf("small input offloaded %.0f%% to memory", 100*small.PIMFraction())
	}
	if large.PIMFraction() < 0.3 {
		t.Fatalf("large input offloaded only %.0f%% to memory", 100*large.PIMFraction())
	}
	if large.PIMFraction() <= small.PIMFraction() {
		t.Fatal("PIM fraction should grow with footprint")
	}
}

// Sanity check Figure 6's qualitative result at miniature scale: for a
// large input, PIM-Only beats Host-Only; for a cache-resident input,
// Host-Only beats PIM-Only; Locality-Aware is never far behind the best.
func TestFig6ShapeMiniature(t *testing.T) {
	largeP := Params{Threads: 4, Size: Large, Scale: 64}
	hostL := runWorkload(t, "atf", pim.HostOnly, largeP)
	pimL := runWorkload(t, "atf", pim.PIMOnly, largeP)
	laL := runWorkload(t, "atf", pim.LocalityAware, largeP)
	if pimL.Cycles >= hostL.Cycles {
		t.Logf("warning: PIM-Only (%d) did not beat Host-Only (%d) on large input",
			pimL.Cycles, hostL.Cycles)
	}
	bestL := hostL.Cycles
	if pimL.Cycles < bestL {
		bestL = pimL.Cycles
	}
	if float64(laL.Cycles) > 1.4*float64(bestL) {
		t.Fatalf("Locality-Aware (%d) is >40%% behind best (%d) on large input", laL.Cycles, bestL)
	}

	smallP := Params{Threads: 4, Size: Small, Scale: 2048}
	hostS := runWorkload(t, "atf", pim.HostOnly, smallP)
	pimS := runWorkload(t, "atf", pim.PIMOnly, smallP)
	laS := runWorkload(t, "atf", pim.LocalityAware, smallP)
	if hostS.Cycles >= pimS.Cycles {
		t.Fatalf("Host-Only (%d) should beat PIM-Only (%d) on cache-resident input",
			hostS.Cycles, pimS.Cycles)
	}
	if float64(laS.Cycles) > 1.4*float64(hostS.Cycles) {
		t.Fatalf("Locality-Aware (%d) is >40%% behind Host-Only (%d) on small input", laS.Cycles, hostS.Cycles)
	}
}

// Functional results must be independent of the machine's timing
// parameters: any window size, issue width, cache geometry, vault count,
// or VM setting yields the same verified answers. This pins the
// timing/function split the whole simulator rests on.
func TestFunctionIndependentOfTiming(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*config.Config)
	}{
		{"serial-core", func(c *config.Config) { c.WindowSize = 1; c.IssueWidth = 1 }},
		{"tiny-caches", func(c *config.Config) {
			c.L1 = config.CacheConfig{SizeBytes: 1 << 10, Ways: 2, LatencyCycles: 4, MSHRs: 2}
			c.L2 = config.CacheConfig{SizeBytes: 4 << 10, Ways: 4, LatencyCycles: 12, MSHRs: 2}
			c.L3 = config.CacheConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 30, MSHRs: 8}
			c.L3Banks = 2
		}},
		{"one-vault", func(c *config.Config) { c.VaultsPerCube = 1; c.BanksPerVault = 2 }},
		{"slow-links", func(c *config.Config) { c.LinkBytesPerCycle = 1; c.TSVBytesPerCycle = 0.5 }},
		{"vm-on", func(c *config.Config) { c.EnableVM = true }},
		{"tiny-directory", func(c *config.Config) { c.DirectoryEntries = 2 }},
		{"one-buffer", func(c *config.Config) { c.OperandBufferEntries = 1 }},
	}
	p := Params{Threads: 4, Size: Small, Scale: 1024}
	for _, mu := range mutations {
		mu := mu
		t.Run(mu.name, func(t *testing.T) {
			cfg := config.Scaled()
			mu.mutate(cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"bfs", "pr", "hj"} {
				w := MustNew(name, p)
				m := machine.MustNew(cfg, pim.LocalityAware)
				if _, err := m.Run(w.Streams(m)); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := w.Verify(m); err != nil {
					t.Fatalf("%s under %s: %v", name, mu.name, err)
				}
			}
		})
	}
}

// A budget-truncated run must terminate cleanly (no barrier deadlock)
// for every workload, including multi-round ones.
func TestBudgetedRunsTerminate(t *testing.T) {
	for _, name := range Names {
		p := Params{Threads: 4, Size: Small, Scale: 512, OpBudget: 500}
		w := MustNew(name, p)
		m := machine.MustNew(config.Scaled(), pim.LocalityAware)
		res, err := m.Run(w.Streams(m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Retired == 0 {
			t.Fatalf("%s made no progress under budget", name)
		}
	}
}
