package workloads

import (
	"fmt"

	"pimsim/internal/cpu"
	"pimsim/internal/graph"
	"pimsim/internal/machine"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
)

// sssp is parallel Bellman-Ford single-source shortest paths (§5.1):
// each round every reached vertex relaxes its outgoing edges with
// atomic-min PEIs; rounds run to the fixpoint depth computed by the
// golden implementation. Edge weights are a deterministic function of
// the edge so no extra weight array is needed.
type sssp struct {
	phaseCtl
	p  Params
	gm *GraphMem

	dist   memlayout.U64Array
	src    int
	golden []uint64
	rounds int
}

func newSSSP(p Params) *sssp { return &sssp{p: p} }

func (w *sssp) Name() string { return "sp" }

// edgeWeight gives a deterministic weight in [1,16].
func edgeWeight(v int, succ int32) uint64 {
	return uint64((uint32(v)*31+uint32(succ)*17)%16) + 1
}

// goldenSSSP runs synchronous Bellman-Ford, returning distances and the
// number of rounds to fixpoint.
func goldenSSSP(g *graph.Graph, src int) ([]uint64, int) {
	dist := make([]uint64, g.NumVertices())
	for i := range dist {
		dist[i] = infDist
	}
	dist[src] = 0
	rounds := 0
	for {
		prev := append([]uint64(nil), dist...)
		changed := false
		for v := 0; v < g.NumVertices(); v++ {
			if prev[v] == infDist {
				continue
			}
			for _, succ := range g.Successors(v) {
				if nd := prev[v] + edgeWeight(v, succ); nd < dist[succ] {
					dist[succ] = nd
					changed = true
				}
			}
		}
		rounds++
		if !changed {
			break
		}
	}
	return dist, rounds
}

func (w *sssp) Streams(m *machine.Machine) []cpu.Stream {
	w.gm = buildGraph(m, graphInput(w.p))
	g := w.gm.G
	n := g.NumVertices()
	w.src = g.MaxDegreeVertex()
	w.golden, w.rounds = goldenSSSP(g, w.src)

	w.dist = m.Store.AllocU64Array(n)
	w.dist.Fill(infDist)
	w.dist.Set(w.src, 0)

	barrier := cpu.NewBarrier(w.p.Threads)
	w.initPhases(w.rounds, barrier)
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(n, w.p.Threads, t)
		budget := w.p.OpBudget
		d := &roundDriver{
			budget:  &budget,
			rounds:  w.rounds,
			barrier: barrier,
			items:   hi - lo,
			perItem: func(q *cpu.Queue, _, i int) {
				v := lo + i
				q.PushLoad(w.dist.Addr(v))
				dv := w.dist.Get(v)
				if dv == infDist {
					return
				}
				off := w.gm.G.Offsets[v]
				for j, succ := range w.gm.G.Successors(v) {
					q.PushLoad(w.gm.EdgeAddr(off + int64(j)))
					q.PushPEI(&pim.PEI{
						Op:     pim.OpMin64,
						Target: w.dist.Addr(int(succ)),
						Input:  pim.U64Input(dv + edgeWeight(v, succ)),
					})
				}
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *sssp) Verify(m *machine.Machine) error {
	for v := range w.golden {
		if got := w.dist.Get(v); got != w.golden[v] {
			return fmt.Errorf("sp: dist[%d] = %d, want %d", v, got, w.golden[v])
		}
	}
	return nil
}
