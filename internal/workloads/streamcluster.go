package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"pimsim/internal/addr"
	"pimsim/internal/cpu"
	"pimsim/internal/machine"
	"pimsim/internal/snap"
)

// streamcluster is SC of §5.3: online clustering whose kernel computes
// Euclidean distances from a few cluster centers to many data points.
// Each 16-dimension chunk of a point is one Euclidean-distance PEI whose
// target block holds the point chunk and whose input operand carries the
// center chunk (centers are few and register-resident). Points with more
// than 16 dimensions issue one PEI per chunk and the squared partial
// distances are summed host-side.
type streamcluster struct {
	phaseCtl
	p Params

	points, dims, centers int
	pointBase             uint64
	centerVecs            [][]float32

	// partial[p][c][ch] holds chunk distances, folded in chunk order at
	// Verify so float summation matches the golden implementation.
	partial [][][]float32
	golden  []int
}

func newStreamcluster(p Params) *streamcluster { return &streamcluster{p: p} }

func (w *streamcluster) Name() string { return "sc" }

func (w *streamcluster) shape() (points, dims int) {
	switch w.p.Size {
	case Small:
		points, dims = 4096, 32
	case Medium:
		points, dims = 65536, 128
	default:
		points, dims = 1<<20, 128
	}
	points /= w.p.Scale
	if points < 64 {
		points = 64
	}
	return
}

func (w *streamcluster) coord(p, d int) float32 {
	h := uint64(p)*6364136223846793005 + uint64(d)*1442695040888963407 + uint64(w.p.Seed)
	return float32(h%1024) / 32.0
}

func (w *streamcluster) pointAddr(p, chunk int) uint64 {
	chunks := w.dims / 16
	return w.pointBase + uint64((p*chunks+chunk)*addr.BlockBytes)
}

func (w *streamcluster) Streams(m *machine.Machine) []cpu.Stream {
	w.points, w.dims = w.shape()
	w.centers = 8
	if w.centers > w.points {
		w.centers = w.points
	}
	chunks := w.dims / 16
	w.pointBase = m.Store.Alloc(w.points*chunks*addr.BlockBytes, addr.BlockBytes)
	for p := 0; p < w.points; p++ {
		for d := 0; d < w.dims; d++ {
			m.Store.WriteF32(w.pointAddr(p, d/16)+uint64(d%16*4), w.coord(p, d))
		}
	}
	// Centers are the first k points, register-resident during the scan.
	w.centerVecs = make([][]float32, w.centers)
	for c := range w.centerVecs {
		vec := make([]float32, w.dims)
		for d := 0; d < w.dims; d++ {
			vec[d] = w.coord(c*(w.points/w.centers), d)
		}
		w.centerVecs[c] = vec
	}

	// Golden assignment: nearest center per point, accumulating exactly
	// as the PEI does (float32, per-16-dim chunk) so results are
	// bit-identical.
	w.golden = make([]int, w.points)
	for p := 0; p < w.points; p++ {
		best := 0
		dists := make([]float32, w.centers)
		for c := range w.centerVecs {
			var total float32
			for ch := 0; ch < chunks; ch++ {
				var sum float32
				for d := 0; d < 16; d++ {
					diff := w.coord(p, ch*16+d) - w.centerVecs[c][ch*16+d]
					sum += diff * diff
				}
				total += sum
			}
			dists[c] = total
		}
		for k := 1; k < w.centers; k++ {
			if dists[k] < dists[best] {
				best = k
			}
		}
		w.golden[p] = best
	}

	w.partial = make([][][]float32, w.points)
	for p := range w.partial {
		w.partial[p] = make([][]float32, w.centers)
		for c := range w.partial[p] {
			w.partial[p][c] = make([]float32, chunks)
		}
	}
	w.initPhases(w.centers, nil)
	// The chunk distances live host-side (PEI completion callbacks);
	// the shape is deterministic, so values stream without lengths.
	w.snapExtra = func(sw *snap.Writer) {
		for _, pc := range w.partial {
			for _, cs := range pc {
				for _, v := range cs {
					sw.F32(v)
				}
			}
		}
	}
	w.restoreExtra = func(sr *snap.Reader) {
		for _, pc := range w.partial {
			for _, cs := range pc {
				for i := range cs {
					cs[i] = sr.F32()
				}
			}
		}
	}
	streams := make([]cpu.Stream, w.p.Threads)
	for t := 0; t < w.p.Threads; t++ {
		lo, hi := PartitionRange(w.points, w.p.Threads, t)
		budget := w.p.OpBudget
		// Loop order follows the application: one pass over all points
		// per candidate center (the point set far exceeds the caches, so
		// every pass re-streams it — the behaviour behind the paper's
		// Figure 7 SC numbers and the §7.4 bandwidth-balance discussion).
		d := &roundDriver{
			budget: &budget,
			rounds: w.centers,
			items:  hi - lo,
			perItem: func(q *cpu.Queue, c, i int) {
				p := lo + i
				for ch := 0; ch < chunks; ch++ {
					input := make([]byte, 64)
					for d := 0; d < 16; d++ {
						binary.LittleEndian.PutUint32(input[d*4:],
							math.Float32bits(w.centerVecs[c][ch*16+d]))
					}
					pei := newEuclidPEI(w.pointAddr(p, ch), input)
					cc, cch := c, ch
					pei.Done = func() {
						w.partial[p][cc][cch] = math.Float32frombits(binary.LittleEndian.Uint32(pei.Output))
					}
					q.PushPEI(pei)
				}
				q.PushCompute(4) // running-min bookkeeping
			},
		}
		streams[t] = w.addDriver(d).stream()
	}
	return streams
}

func (w *streamcluster) Verify(m *machine.Machine) error {
	for p := range w.golden {
		best := 0
		var bestDist float32
		for c := range w.partial[p] {
			var total float32
			for _, s := range w.partial[p][c] {
				total += s
			}
			if c == 0 || total < bestDist {
				best, bestDist = c, total
			}
		}
		if best != w.golden[p] {
			return fmt.Errorf("sc: point %d assigned to center %d, want %d", p, best, w.golden[p])
		}
	}
	return nil
}
