package dram

import (
	"fmt"

	"pimsim/internal/snap"
)

// SnapshotTo serializes per-bank row-buffer state and the controller's
// command/refresh timing horizons. The request queue must be empty and
// no pump scheduled — the controller's counters live in the shared
// stats registry and are snapshotted there, and the free list is pure
// recycling capacity with no timing effect, so neither appears here.
func (c *Controller) SnapshotTo(w *snap.Writer) {
	w.Section("DRAM")
	if len(c.queue) != 0 || c.pumpAt >= 0 {
		w.Fail(fmt.Errorf("%w: dram controller has %d queued requests (pumpAt=%d)",
			snap.ErrNotQuiescent, len(c.queue), c.pumpAt))
		return
	}
	w.Int(len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		w.Bool(b.open)
		w.U64(b.openRow)
		w.I64(b.readyAt)
	}
	w.I64(c.nextIssue)
	w.I64(c.nextRefresh)
}

// RestoreFrom loads controller state saved by SnapshotTo. The target
// controller must be quiescent: queued requests or a scheduled pump
// would replay against the restored timing horizons.
func (c *Controller) RestoreFrom(r *snap.Reader) {
	r.Section("DRAM")
	if len(c.queue) != 0 || c.pumpAt >= 0 {
		r.Fail(fmt.Errorf("%w: restore target dram controller has %d queued requests (pumpAt=%d)",
			snap.ErrNotQuiescent, len(c.queue), c.pumpAt))
		return
	}
	banks := r.Int()
	if r.Err() != nil {
		return
	}
	if banks != len(c.banks) {
		r.Fail(fmt.Errorf("dram: controller has %d banks, snapshot has %d", len(c.banks), banks))
		return
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.open = r.Bool()
		b.openRow = r.U64()
		b.readyAt = r.I64()
	}
	c.nextIssue = r.I64()
	c.nextRefresh = r.I64()
}
