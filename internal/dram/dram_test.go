package dram

import (
	"testing"
	"testing/quick"

	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

func testTiming() Timing {
	return Timing{TCL: 55, TRCD: 55, TRP: 55, IssueGap: 2}
}

func testRegistry() *stats.Registry { return stats.NewRegistry() }

func newTestController(banks int) (*sim.Kernel, *Controller, *stats.Registry) {
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	c := NewController(k, banks, testTiming(), reg, "dram.")
	return k, c, reg
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	k, c, reg := newTestController(4)
	var done sim.Cycle = -1
	c.Enqueue(&Request{Bank: 0, Row: 3, Done: func() { done = k.Now() }})
	k.Run()
	if done != 110 { // tRCD + tCL
		t.Fatalf("completion at %d, want 110", done)
	}
	if reg.Get("dram.row_miss") != 1 {
		t.Fatal("expected one row miss")
	}
}

func TestRowHitIsFaster(t *testing.T) {
	k, c, reg := newTestController(4)
	var second sim.Cycle
	c.Enqueue(&Request{Bank: 0, Row: 3, Done: nil})
	c.Enqueue(&Request{Bank: 0, Row: 3, Done: func() { second = k.Now() }})
	k.Run()
	// First: issues at 0, bank ready at 110. Second: row hit issues at
	// 110, completes at 165.
	if second != 165 {
		t.Fatalf("second completion at %d, want 165", second)
	}
	if reg.Get("dram.row_hit") != 1 {
		t.Fatal("expected one row hit")
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	k, c, reg := newTestController(4)
	var second sim.Cycle
	c.Enqueue(&Request{Bank: 0, Row: 1})
	c.Enqueue(&Request{Bank: 0, Row: 2, Done: func() { second = k.Now() }})
	k.Run()
	// Second issues at 110, takes tRP+tRCD+tCL = 165, completes at 275.
	if second != 275 {
		t.Fatalf("conflict completion at %d, want 275", second)
	}
	if reg.Get("dram.row_conflict") != 1 {
		t.Fatal("expected one row conflict")
	}
}

func TestBankParallelism(t *testing.T) {
	k, c, _ := newTestController(4)
	var a, b sim.Cycle
	c.Enqueue(&Request{Bank: 0, Row: 1, Done: func() { a = k.Now() }})
	c.Enqueue(&Request{Bank: 1, Row: 1, Done: func() { b = k.Now() }})
	k.Run()
	// Bank 1's command issues one IssueGap later but overlaps bank 0.
	if a != 110 || b != 112 {
		t.Fatalf("completions %d,%d; want 110,112", a, b)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	k, c, _ := newTestController(1)
	var order []int
	c.Enqueue(&Request{Bank: 0, Row: 1, Done: func() { order = append(order, 1) }})
	// While row 1 is open: a conflicting request arrives first, then a
	// row hit. FR-FCFS should reorder the hit ahead of the conflict.
	c.Enqueue(&Request{Bank: 0, Row: 9, Done: func() { order = append(order, 9) }})
	c.Enqueue(&Request{Bank: 0, Row: 1, Done: func() { order = append(order, 11) }})
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 9 {
		t.Fatalf("completion order %v, want [1 11 9]", order)
	}
}

func TestWriteCounted(t *testing.T) {
	k, c, reg := newTestController(2)
	c.Enqueue(&Request{Bank: 0, Row: 0, Write: true})
	k.Run()
	if reg.Get("dram.writes") != 1 || reg.Get("dram.reads") != 0 {
		t.Fatal("write accounting wrong")
	}
}

func TestBankOutOfRangePanics(t *testing.T) {
	_, c, _ := newTestController(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Enqueue(&Request{Bank: 5, Row: 0})
}

// Property: every enqueued request eventually completes exactly once, in
// any arrival pattern of banks and rows.
func TestAllRequestsComplete(t *testing.T) {
	f := func(pattern []uint8) bool {
		k, c, _ := newTestController(8)
		completed := 0
		for _, p := range pattern {
			c.Enqueue(&Request{
				Bank:  int(p % 8),
				Row:   uint64(p / 8 % 4),
				Write: p%3 == 0,
				Done:  func() { completed++ },
			})
		}
		k.Run()
		return completed == len(pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a single bank, completions are serialized at least
// IssueGap apart and never regress in time.
func TestSingleBankSerialization(t *testing.T) {
	k, c, _ := newTestController(1)
	var times []sim.Cycle
	for i := 0; i < 20; i++ {
		c.Enqueue(&Request{Bank: 0, Row: uint64(i % 2), Done: func() { times = append(times, k.Now()) }})
	}
	k.Run()
	if len(times) != 20 {
		t.Fatalf("completed %d, want 20", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("completions not strictly ordered: %v", times)
		}
	}
}

// Staggered arrivals exercise the pump re-scheduling path.
func TestStaggeredArrivals(t *testing.T) {
	k, c, _ := newTestController(2)
	completed := 0
	for i := 0; i < 10; i++ {
		i := i
		k.At(sim.Cycle(i*30), func() {
			c.Enqueue(&Request{Bank: i % 2, Row: uint64(i), Done: func() { completed++ }})
		})
	}
	k.Run()
	if completed != 10 {
		t.Fatalf("completed %d, want 10", completed)
	}
}

func TestRefreshStallsBanks(t *testing.T) {
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	tm := testTiming()
	tm.TREFI = 1000
	tm.TRFC = 200
	c := NewController(k, 2, tm, reg, "dram.")
	// Arrive just after the first refresh window opens: the access must
	// wait out tRFC and then pay a full row activation (rows closed).
	var done sim.Cycle
	k.At(1000, func() {
		c.Enqueue(&Request{Bank: 0, Row: 1, Done: func() { done = k.Now() }})
	})
	k.Run()
	if done != 1000+200+110 {
		t.Fatalf("completion at %d, want 1310 (tRFC + row activation)", done)
	}
	if reg.Get("dram.refreshes") == 0 {
		t.Fatal("no refresh counted")
	}
}

func TestRefreshClosesOpenRow(t *testing.T) {
	k := sim.NewKernel()
	tm := testTiming()
	tm.TREFI = 1000
	tm.TRFC = 200
	c := NewController(k, 1, tm, testRegistry(), "dram.")
	c.Enqueue(&Request{Bank: 0, Row: 5}) // opens row 5, completes at 110
	var done sim.Cycle
	k.At(1500, func() { // after one refresh epoch
		c.Enqueue(&Request{Bank: 0, Row: 5, Done: func() { done = k.Now() }})
	})
	k.Run()
	// Row was closed by refresh: row miss (tRCD+tCL), not a hit.
	if done != 1500+110 {
		t.Fatalf("completion at %d, want 1610 (row re-activation after refresh)", done)
	}
}

func TestRefreshDisabledByDefaultTiming(t *testing.T) {
	k, c, reg := newTestController(1)
	c.Enqueue(&Request{Bank: 0, Row: 0})
	k.Run()
	if reg.Get("dram.refreshes") != 0 {
		t.Fatal("refresh fired with TREFI=0")
	}
}

func TestLongIdleGapFastForwardsRefresh(t *testing.T) {
	k := sim.NewKernel()
	tm := testTiming()
	tm.TREFI = 100
	tm.TRFC = 10
	c := NewController(k, 1, tm, testRegistry(), "dram.")
	done := false
	k.At(1_000_000, func() {
		c.Enqueue(&Request{Bank: 0, Row: 0, Done: func() { done = true }})
	})
	k.Run()
	if !done {
		t.Fatal("request lost across idle refresh epochs")
	}
}
