// Package dram models the DRAM banks behind one vault controller:
// open-row (row-buffer) state per bank, FR-FCFS scheduling, and the
// tCL/tRCD/tRP timing of Table 2. One Controller corresponds to the
// per-vault DRAM controller on the HMC logic die.
package dram

import (
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// Timing holds DRAM timing parameters in CPU cycles.
type Timing struct {
	TCL  sim.Cycle // column access (row already open)
	TRCD sim.Cycle // row activate
	TRP  sim.Cycle // precharge (row conflict)
	// IssueGap is the minimum spacing between commands issued by one
	// controller (the command bus serialization; 2 CPU cycles = one
	// 2 GHz memory cycle).
	IssueGap sim.Cycle
	// TREFI is the refresh interval and TRFC the refresh cycle time; all
	// banks of the controller stall for TRFC every TREFI. Zero TREFI
	// disables refresh.
	TREFI sim.Cycle
	TRFC  sim.Cycle
}

// Request is one 64-byte block access presented to a vault controller.
// Closure-based compatibility form; hot paths use EnqueueEvent.
type Request struct {
	Bank  int
	Row   uint64
	Write bool
	// Done runs when the access completes (data available at the vault
	// for reads; write restored for writes).
	Done func()
}

// request is the controller's internal queued form, recycled through a
// free list so steady-state traffic allocates nothing.
type request struct {
	bank    int
	row     uint64
	write   bool
	done    sim.Cont
	arrived sim.Cycle
}

type bank struct {
	open    bool
	openRow uint64
	readyAt sim.Cycle
}

// Controller is a per-vault FR-FCFS DRAM controller.
type Controller struct {
	k     sim.Scheduler
	t     Timing
	banks []bank
	queue []*request
	free  []*request //peilint:allow snapcomplete pool of recycled queue records (see getRequest/putRequest): capacity, not state

	// Per-event counters, resolved once at construction (the prefix is
	// baked into the handle names, e.g. "dram.row_hit").
	cRowHit, cRowMiss, cRowConflict stats.Handle
	cReads, cWrites, cRefreshes     stats.Handle

	nextIssue   sim.Cycle
	pumpAt      sim.Cycle // earliest already-scheduled pump; -1 if none
	nextRefresh sim.Cycle
}

// NewController creates a controller with the given bank count. Counter
// names are prefixed (e.g. "dram.") in the shared registry.
func NewController(k sim.Scheduler, banks int, t Timing, reg *stats.Registry, prefix string) *Controller {
	return &Controller{
		k:            k,
		t:            t,
		banks:        make([]bank, banks),
		cRowHit:      reg.Counter(prefix + "row_hit"),
		cRowMiss:     reg.Counter(prefix + "row_miss"),
		cRowConflict: reg.Counter(prefix + "row_conflict"),
		cReads:       reg.Counter(prefix + "reads"),
		cWrites:      reg.Counter(prefix + "writes"),
		cRefreshes:   reg.Counter(prefix + "refreshes"),
		pumpAt:       -1,
	}
}

// QueueLen reports the number of waiting requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Enqueue adds a request; it will be scheduled FR-FCFS. Closure-based
// compatibility form of EnqueueEvent.
func (c *Controller) Enqueue(r *Request) {
	c.EnqueueEvent(r.Bank, r.Row, r.Write, sim.Call(r.Done))
}

// EnqueueEvent adds a block access to the queue; done (which may be the
// zero Cont) is invoked when the access completes. The queued record
// comes from the controller's free list, so steady-state enqueueing
// allocates nothing.
func (c *Controller) EnqueueEvent(bank int, row uint64, write bool, done sim.Cont) {
	if bank < 0 || bank >= len(c.banks) {
		panic("dram: bank out of range")
	}
	r := c.getRequest()
	r.bank = bank
	r.row = row
	r.write = write
	r.done = done
	r.arrived = c.k.Now()
	c.queue = append(c.queue, r)
	c.pump()
}

// getRequest takes a recycled queue record (or allocates the pool's
// next one). The controller owns the record for the request's lifetime;
// pump releases it when the request issues.
func (c *Controller) getRequest() *request {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		r.bank = 0
		return r
	}
	return &request{}
}

// putRequest recycles an issued record. bank is parked at -1 so a
// double release is caught immediately rather than corrupting the pool.
func (c *Controller) putRequest(r *request) {
	if r.bank < 0 {
		panic("dram: request double-released")
	}
	*r = request{bank: -1}
	c.free = append(c.free, r)
}

// latencyFor returns the service latency of r on its bank and the
// counter recording its kind: row hit, row miss (closed row), or
// conflict.
func (c *Controller) latencyFor(r *request) (lat sim.Cycle, kind stats.Handle) {
	b := &c.banks[r.bank]
	switch {
	case b.open && b.openRow == r.row:
		return c.t.TCL, c.cRowHit
	case !b.open:
		return c.t.TRCD + c.t.TCL, c.cRowMiss
	default:
		return c.t.TRP + c.t.TRCD + c.t.TCL, c.cRowConflict
	}
}

// applyRefresh lazily applies any refresh windows that have elapsed:
// every TREFI, all banks stall for TRFC with their rows closed. Applied
// on demand so an idle controller costs no events.
func (c *Controller) applyRefresh(now sim.Cycle) {
	t := c.t
	if t.TREFI <= 0 {
		return
	}
	for c.nextRefresh <= now {
		end := c.nextRefresh + t.TRFC
		for i := range c.banks {
			b := &c.banks[i]
			b.open = false
			if b.readyAt < end {
				b.readyAt = end
			}
		}
		c.cRefreshes.Inc()
		c.nextRefresh += t.TREFI
		if now-c.nextRefresh > 16*t.TREFI {
			// Long idle gap: rows are already closed; skip ahead.
			c.nextRefresh += (now - c.nextRefresh) / t.TREFI * t.TREFI
		}
	}
}

// pump issues as many requests as the FR-FCFS policy allows right now,
// then schedules itself for the next time anything could issue.
func (c *Controller) pump() {
	now := c.k.Now()
	c.applyRefresh(now)
	for {
		idx := c.pick(now)
		if idx < 0 {
			break
		}
		r := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		lat, kind := c.latencyFor(r)
		b := &c.banks[r.bank]
		b.open = true
		b.openRow = r.row
		b.readyAt = now + lat
		c.nextIssue = now + c.t.IssueGap
		kind.Inc()
		if r.write {
			c.cWrites.Inc()
		} else {
			c.cReads.Inc()
		}
		done := r.done
		c.putRequest(r)
		if done.H != nil {
			c.k.ScheduleEvent(lat, done.H, done.Arg)
		}
		now = c.k.Now() // unchanged; loop continues for other ready banks
		if c.nextIssue > now {
			break
		}
	}
	c.scheduleNextPump()
}

// pick selects the FR-FCFS winner issuable at cycle now: the oldest
// row-hit request whose bank is ready, else the oldest ready request.
func (c *Controller) pick(now sim.Cycle) int {
	if c.nextIssue > now {
		return -1
	}
	best := -1
	bestHit := false
	for i, r := range c.queue {
		b := &c.banks[r.bank]
		if b.readyAt > now {
			continue
		}
		hit := b.open && b.openRow == r.row
		switch {
		case best < 0:
			best, bestHit = i, hit
		case hit && !bestHit:
			best, bestHit = i, hit
		}
		// Queue order is arrival order, so the first candidate of each
		// class is the oldest.
		if bestHit {
			break
		}
	}
	return best
}

func (c *Controller) scheduleNextPump() {
	if len(c.queue) == 0 {
		return
	}
	now := c.k.Now()
	var earliest sim.Cycle = -1
	for _, r := range c.queue {
		t := c.banks[r.bank].readyAt
		if t < c.nextIssue {
			t = c.nextIssue
		}
		if t <= now {
			t = now + 1
		}
		if earliest < 0 || t < earliest {
			earliest = t
		}
	}
	if earliest < 0 {
		return
	}
	if c.pumpAt >= 0 && c.pumpAt <= earliest {
		return // an earlier-or-equal pump is already queued
	}
	c.pumpAt = earliest
	c.k.AtEvent(earliest, c, sim.EventArg{})
}

// OnEvent is the controller's self-scheduled pump wakeup (see
// scheduleNextPump); the controller is its own handler so the wakeup
// allocates nothing.
func (c *Controller) OnEvent(sim.EventArg) {
	c.pumpAt = -1
	c.pump()
}
