package vm

import (
	"fmt"
	"sort"

	"pimsim/internal/snap"
)

// SnapshotTo serializes the page table. Translations live in maps, so
// they are written in sorted-vpn order — map iteration order must never
// reach the byte stream (the blob digest is content-addressed).
func (pt *PageTable) SnapshotTo(w *snap.Writer) {
	w.Section("PGTB")
	w.U64(pt.next)
	vpns := make([]uint64, 0, len(pt.entries))
	for vpn := range pt.entries {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	w.Int(len(vpns))
	for _, vpn := range vpns {
		w.U64(vpn)
		w.U64(pt.entries[vpn])
	}
	// Protect only ever stores true, so every key is a read-only page.
	ros := make([]uint64, 0, len(pt.readOnly))
	for vpn := range pt.readOnly {
		ros = append(ros, vpn)
	}
	sort.Slice(ros, func(i, j int) bool { return ros[i] < ros[j] })
	w.U64s(ros)
}

// RestoreFrom replaces the page table's contents with the snapshot's.
func (pt *PageTable) RestoreFrom(r *snap.Reader) {
	r.Section("PGTB")
	pt.next = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	pt.entries = make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		vpn := r.U64()
		pfn := r.U64()
		if r.Err() != nil {
			return
		}
		pt.entries[vpn] = pfn
	}
	ros := r.U64s()
	if r.Err() != nil {
		return
	}
	pt.readOnly = make(map[uint64]bool, len(ros))
	for _, vpn := range ros {
		pt.readOnly[vpn] = true
	}
}

// SnapshotTo serializes the TLB: every slot with its LRU stamp, the LRU
// clock, and the hit/miss counters.
func (t *TLB) SnapshotTo(w *snap.Writer) {
	w.Section("TLB ")
	w.Int(t.entries)
	w.U64(t.clock)
	w.I64(t.Hits)
	w.I64(t.Misses)
	for i := range t.slots {
		s := &t.slots[i]
		w.Bool(s.valid)
		w.U64(s.vpn)
		w.U64(s.pfn)
		w.U64(s.lru)
	}
}

// RestoreFrom loads TLB state into a TLB of identical capacity.
func (t *TLB) RestoreFrom(r *snap.Reader) {
	r.Section("TLB ")
	entries := r.Int()
	if r.Err() != nil {
		return
	}
	if entries != t.entries {
		r.Fail(fmt.Errorf("vm: TLB has %d entries, snapshot has %d", t.entries, entries))
		return
	}
	t.clock = r.U64()
	t.Hits = r.I64()
	t.Misses = r.I64()
	for i := range t.slots {
		s := &t.slots[i]
		s.valid = r.Bool()
		s.vpn = r.U64()
		s.pfn = r.U64()
		s.lru = r.U64()
	}
}
