package vm

import (
	"testing"
	"testing/quick"

	"pimsim/internal/stats"
)

func TestMapAndTranslate(t *testing.T) {
	pt := NewPageTable(1 << 30)
	if n := pt.Map(0x1000, 100); n != 1 {
		t.Fatalf("mapped %d pages, want 1", n)
	}
	pa, err := pt.Translate(0x1234, false)
	if err != nil {
		t.Fatal(err)
	}
	if pa&(PageSize-1) != 0x234 {
		t.Fatalf("page offset not preserved: %#x", pa)
	}
	if pa < 1<<30 {
		t.Fatalf("frame below base: %#x", pa)
	}
}

func TestMapSpansPages(t *testing.T) {
	pt := NewPageTable(0)
	if n := pt.Map(PageSize-8, 16); n != 2 {
		t.Fatalf("cross-page map allocated %d pages, want 2", n)
	}
}

func TestMapIdempotent(t *testing.T) {
	pt := NewPageTable(0)
	pt.Map(0x4000, 8)
	if n := pt.Map(0x4000, 8); n != 0 {
		t.Fatalf("remap allocated %d pages, want 0", n)
	}
}

func TestUnmappedFaults(t *testing.T) {
	pt := NewPageTable(0)
	if _, err := pt.Translate(0x9999, false); err == nil {
		t.Fatal("expected page fault")
	}
}

func TestProtectionFault(t *testing.T) {
	pt := NewPageTable(0)
	pt.Map(0x1000, 8)
	pt.Protect(0x1000)
	if _, err := pt.Translate(0x1008, false); err != nil {
		t.Fatal("read of read-only page should succeed")
	}
	if _, err := pt.Translate(0x1008, true); err == nil {
		t.Fatal("expected protection fault on write")
	}
}

func TestMapAtAlias(t *testing.T) {
	pt := NewPageTable(0)
	pt.MapAt(0xA000, 0x5000)
	pa, err := pt.Translate(0xA010, false)
	if err != nil || pa != 0x5010 {
		t.Fatalf("alias translate = %#x, %v", pa, err)
	}
}

// Property: distinct virtual pages map to distinct physical frames.
func TestNoFrameSharing(t *testing.T) {
	f := func(pages []uint16) bool {
		pt := NewPageTable(0)
		for _, p := range pages {
			pt.Map(uint64(p)<<PageShift, 1)
		}
		seen := map[uint64]uint64{}
		for _, p := range pages {
			pa, err := pt.Translate(uint64(p)<<PageShift, false)
			if err != nil {
				return false
			}
			if prior, ok := seen[pa>>PageShift]; ok && prior != uint64(p) {
				return false
			}
			seen[pa>>PageShift] = uint64(p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestTLB(entries int) (*TLB, *PageTable) {
	pt := NewPageTable(1 << 20)
	return NewTLB(entries, pt, 100, stats.NewRegistry()), pt
}

func TestTLBHitAfterMiss(t *testing.T) {
	tlb, pt := newTestTLB(4)
	pt.Map(0x1000, 8)
	_, hit, err := tlb.Lookup(0x1000, false)
	if err != nil || hit {
		t.Fatalf("first lookup hit=%v err=%v, want miss", hit, err)
	}
	_, hit, err = tlb.Lookup(0x1400, false) // same page
	if err != nil || !hit {
		t.Fatalf("second lookup hit=%v err=%v, want hit", hit, err)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb, pt := newTestTLB(2)
	pt.Map(0, 3*PageSize)
	tlb.Lookup(0*PageSize, false)
	tlb.Lookup(1*PageSize, false)
	tlb.Lookup(0*PageSize, false) // promote page 0
	tlb.Lookup(2*PageSize, false) // evicts page 1 (LRU)
	// Check the survivor first — probing the evicted page would itself
	// install it and perturb the state under test.
	if _, hit, _ := tlb.Lookup(0*PageSize, false); !hit {
		t.Fatal("promoted page was evicted")
	}
	if _, hit, _ := tlb.Lookup(1*PageSize, false); hit {
		t.Fatal("evicted page still hit")
	}
}

func TestTLBFaultNotCached(t *testing.T) {
	tlb, pt := newTestTLB(4)
	if _, _, err := tlb.Lookup(0x7000, false); err == nil {
		t.Fatal("expected fault")
	}
	pt.Map(0x7000, 8)
	pa, hit, err := tlb.Lookup(0x7000, false)
	if err != nil || hit {
		t.Fatalf("post-map lookup pa=%#x hit=%v err=%v", pa, hit, err)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb, pt := newTestTLB(4)
	pt.Map(0x1000, 8)
	tlb.Lookup(0x1000, false)
	tlb.Flush()
	if _, hit, _ := tlb.Lookup(0x1000, false); hit {
		t.Fatal("hit after flush")
	}
}

func TestTLBWriteFaultSurfaces(t *testing.T) {
	tlb, pt := newTestTLB(4)
	pt.Map(0x2000, 8)
	pt.Protect(0x2000)
	tlb.Lookup(0x2000, false) // cached
	if _, _, err := tlb.Lookup(0x2000, true); err == nil {
		t.Fatal("TLB hit must still enforce protection")
	}
}

// Property: translations through the TLB always equal direct page-table
// translations.
func TestTLBConsistentWithPageTable(t *testing.T) {
	f := func(addrs []uint16) bool {
		tlb, pt := newTestTLB(4)
		pt.Map(0, 1<<20)
		for _, a := range addrs {
			va := uint64(a) << 4
			got, _, err := tlb.Lookup(va, false)
			want, err2 := pt.Translate(va, false)
			if err != nil || err2 != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
