// Package vm implements the virtual-memory support of §4.4: per-process
// page tables and per-core TLBs. The paper's design point is that PEIs
// need *no* address translation hardware in memory — the issuing core
// translates the PEI's target through its own TLB, exactly once per PEI
// (the single-cache-block restriction guarantees one page suffices), and
// the PMU and all PCUs see physical addresses only.
//
// The machine runs with an identity-mapped address space by default;
// enabling VM interposes translation on every core access and PEI issue,
// adding TLB hit latency (folded into the L1 pipeline) or a page-table
// walk on misses.
package vm

import (
	"fmt"

	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

// PageShift selects 4 KiB pages.
const PageShift = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageShift

// PageTable is a single-level translation map (the simulator does not
// model the radix-tree walk structurally, only its latency).
type PageTable struct {
	// next is the next free physical frame for Map's allocations.
	next     uint64
	entries  map[uint64]uint64 // vpn -> pfn
	readOnly map[uint64]bool
}

// NewPageTable creates an empty address space whose physical frames
// start at base (frames are handed out sequentially).
func NewPageTable(base uint64) *PageTable {
	return &PageTable{
		next:     base >> PageShift,
		entries:  make(map[uint64]uint64),
		readOnly: make(map[uint64]bool),
	}
}

// Map ensures the n bytes at virtual address va are backed, allocating
// fresh frames for unmapped pages, and returns the number of newly
// mapped pages.
func (pt *PageTable) Map(va uint64, n int) int {
	mapped := 0
	for vpn := va >> PageShift; vpn <= (va+uint64(n)-1)>>PageShift; vpn++ {
		if _, ok := pt.entries[vpn]; !ok {
			pt.entries[vpn] = pt.next
			pt.next++
			mapped++
		}
	}
	return mapped
}

// MapAt installs an explicit translation (for aliasing tests).
func (pt *PageTable) MapAt(va, pa uint64) {
	pt.entries[va>>PageShift] = pa >> PageShift
}

// Protect marks the page containing va read-only.
func (pt *PageTable) Protect(va uint64) { pt.readOnly[va>>PageShift] = true }

// Translate returns the physical address for va, or an error for an
// unmapped page (a page fault — the paper handles these on the host
// exactly as a conventional machine would, so the simulator surfaces
// them as errors rather than modeling OS latency) or a write to a
// read-only page.
func (pt *PageTable) Translate(va uint64, write bool) (uint64, error) {
	vpn := va >> PageShift
	pfn, ok := pt.entries[vpn]
	if !ok {
		return 0, fmt.Errorf("vm: page fault at %#x (unmapped)", va)
	}
	if write && pt.readOnly[vpn] {
		return 0, fmt.Errorf("vm: protection fault at %#x (read-only)", va)
	}
	return pfn<<PageShift | va&(PageSize-1), nil
}

// TLB is a per-core translation lookaside buffer: fully associative,
// true-LRU, holding page translations. Sized like a modern L1 DTLB.
type TLB struct {
	entries int
	slots   []tlbSlot
	clock   uint64

	pt           *PageTable
	cHits, cMiss stats.Handle
	// HitLatency is folded into the L1 access in a real pipeline and
	// costs nothing extra; MissLatency models the page-table walk.
	MissLatency sim.Cycle

	Hits, Misses int64
}

type tlbSlot struct {
	valid bool
	vpn   uint64
	pfn   uint64
	lru   uint64
}

// NewTLB creates a TLB over the given page table.
func NewTLB(entries int, pt *PageTable, missLatency sim.Cycle, reg *stats.Registry) *TLB {
	if entries <= 0 {
		panic("vm: TLB needs at least one entry")
	}
	return &TLB{
		entries: entries, slots: make([]tlbSlot, entries), pt: pt,
		cHits: reg.Counter("tlb.hits"), cMiss: reg.Counter("tlb.misses"),
		MissLatency: missLatency,
	}
}

// Lookup translates va, reporting the physical address, whether the
// translation hit the TLB, and any fault. Misses install the
// translation (walk latency is charged by the caller via MissLatency).
func (t *TLB) Lookup(va uint64, write bool) (pa uint64, hit bool, err error) {
	vpn := va >> PageShift
	t.clock++
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpn == vpn {
			s.lru = t.clock
			t.Hits++
			t.cHits.Inc()
			// Permission checks still consult the page table (the PTE
			// bits travel with the TLB entry in real hardware; the
			// outcome is identical).
			pa, err = t.pt.Translate(va, write)
			return pa, true, err
		}
	}
	t.Misses++
	t.cMiss.Inc()
	pa, err = t.pt.Translate(va, write)
	if err != nil {
		return 0, false, err
	}
	victim := &t.slots[0]
	for i := range t.slots {
		if !t.slots[i].valid {
			victim = &t.slots[i]
			break
		}
		if t.slots[i].lru < victim.lru {
			victim = &t.slots[i]
		}
	}
	*victim = tlbSlot{valid: true, vpn: vpn, pfn: pa >> PageShift, lru: t.clock}
	return pa, false, nil
}

// Flush invalidates all entries (context switch).
func (t *TLB) Flush() {
	for i := range t.slots {
		t.slots[i] = tlbSlot{}
	}
}
