package energy

import (
	"testing"

	"pimsim/internal/stats"
)

func TestComputeBreakdown(t *testing.T) {
	reg := stats.NewRegistry()
	reg.Set("l1.hits", 100)
	reg.Set("l1.misses", 10)
	reg.Set("dram.reads", 5)
	reg.Set("dram.row_miss", 3)
	reg.Set("offchip.req.bytes", 1000)
	reg.Set("tsv.bytes", 640)
	reg.Set("pei.host", 4)
	reg.Set("pei.mem", 6)
	reg.Set("pei.total", 10)

	p := DefaultParams()
	b := Compute(reg, p, 100)
	if b.Caches != 110*p.L1Access {
		t.Fatalf("cache energy %v", b.Caches)
	}
	wantDRAM := 3*p.DRAMActivate + 5*p.DRAMAccess
	if b.DRAM != wantDRAM {
		t.Fatalf("DRAM energy %v, want %v", b.DRAM, wantDRAM)
	}
	if b.Offchip != 1000*p.OffchipPerByte {
		t.Fatalf("offchip energy %v", b.Offchip)
	}
	if b.TSV != 640*p.TSVPerByte {
		t.Fatalf("tsv energy %v", b.TSV)
	}
	if b.PCU != 10*p.PCUOp {
		t.Fatalf("pcu energy %v", b.PCU)
	}
	if b.Static != 100*p.StaticPerCycle {
		t.Fatalf("static energy %v", b.Static)
	}
	if b.Total() <= 0 {
		t.Fatal("total must be positive")
	}
	sum := b.Caches + b.DRAM + b.Offchip + b.TSV + b.PCU + b.PMU + b.Static
	if b.Total() != sum {
		t.Fatal("Total() != component sum")
	}
}

func TestEmptyRegistryZeroEnergy(t *testing.T) {
	b := Compute(stats.NewRegistry(), DefaultParams(), 0)
	if b.Total() != 0 {
		t.Fatalf("empty run energy %v, want 0", b.Total())
	}
}

func TestStaticEnergyScalesWithTime(t *testing.T) {
	p := DefaultParams()
	reg := stats.NewRegistry()
	fast := Compute(reg, p, 1000)
	slow := Compute(reg, p, 5000)
	if slow.Static != 5*fast.Static {
		t.Fatalf("static energy not linear in cycles: %v vs %v", slow.Static, fast.Static)
	}
}

func TestMoreDRAMTrafficMoreEnergy(t *testing.T) {
	p := DefaultParams()
	small := stats.NewRegistry()
	small.Set("dram.reads", 10)
	big := stats.NewRegistry()
	big.Set("dram.reads", 1000)
	if Compute(big, p, 0).DRAM <= Compute(small, p, 0).DRAM {
		t.Fatal("energy not monotone in DRAM accesses")
	}
}
