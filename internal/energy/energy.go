// Package energy estimates memory-hierarchy energy from the event
// counters the simulator records, reproducing Figure 12's breakdown
// (caches, DRAM, off-chip links, PCUs, PMU structures).
//
// Substitution note (DESIGN.md §3): the paper derives per-event energies
// from CACTI 6.5, CACTI-3DD, McPAT and an HMC link model. We use fixed
// constants of the same order of magnitude. Figure 12 compares
// *relative* energy across configurations, which depends on the event
// counts (measured exactly here), not on the absolute constants.
package energy

import "pimsim/internal/stats"

// Params holds per-event energies in nanojoules (or nJ/byte for links).
type Params struct {
	L1Access float64
	L2Access float64
	L3Access float64
	// DRAMActivate is charged per row activation (row miss/conflict),
	// DRAMAccess per column read/write burst.
	DRAMActivate float64
	DRAMAccess   float64
	// OffchipPerByte covers SerDes and link transfer; TSVPerByte the
	// vertical links.
	OffchipPerByte float64
	TSVPerByte     float64
	// PCUOp is the computation energy per executed PEI; PMUAccess per
	// directory/monitor consult.
	PCUOp     float64
	PMUAccess float64
	// StaticPerCycle is the leakage/background power of the memory
	// hierarchy expressed per CPU cycle; it makes faster configurations
	// cheaper, as the paper's CACTI/McPAT-based model does.
	StaticPerCycle float64
}

// DefaultParams gives CACTI-order constants for a 22 nm-class system.
func DefaultParams() Params {
	return Params{
		L1Access:       0.1,
		L2Access:       0.35,
		L3Access:       1.8,
		DRAMActivate:   2.5,
		DRAMAccess:     4.0,
		OffchipPerByte: 0.054, // ~4.3 pJ/bit HMC SerDes+link
		TSVPerByte:     0.011,
		PCUOp:          0.05,
		PMUAccess:      0.02,
		StaticPerCycle: 1.0, // ~4 W hierarchy leakage at 4 GHz
	}
}

// Breakdown is the Figure 12 decomposition, in nanojoules.
type Breakdown struct {
	Caches  float64
	DRAM    float64
	Offchip float64
	TSV     float64
	PCU     float64
	PMU     float64
	Static  float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.Caches + b.DRAM + b.Offchip + b.TSV + b.PCU + b.PMU + b.Static
}

// Compute derives the breakdown from a run's counters and duration.
func Compute(reg *stats.Registry, p Params, cycles int64) Breakdown {
	var b Breakdown
	l1 := reg.Get("l1.hits") + reg.Get("l1.misses")
	l2 := reg.Get("l2.hits") + reg.Get("l2.misses")
	l3 := reg.Get("l3.hits") + reg.Get("l3.misses")
	b.Caches = float64(l1)*p.L1Access + float64(l2)*p.L2Access + float64(l3)*p.L3Access

	activates := reg.Get("dram.row_miss") + reg.Get("dram.row_conflict")
	accesses := reg.Get("dram.reads") + reg.Get("dram.writes")
	b.DRAM = float64(activates)*p.DRAMActivate + float64(accesses)*p.DRAMAccess

	b.Offchip = float64(reg.Get("offchip.req.bytes")+reg.Get("offchip.res.bytes")) * p.OffchipPerByte
	b.TSV = float64(reg.Get("tsv.bytes")) * p.TSVPerByte

	b.PCU = float64(reg.Get("pei.host")+reg.Get("pei.mem")) * p.PCUOp
	pmuEvents := reg.Get("pei.total") + reg.Get("pmu.monitor_hit") + reg.Get("pmu.monitor_miss") + reg.Get("pmu.monitor_ignored_hit")
	b.PMU = float64(pmuEvents) * p.PMUAccess
	b.Static = float64(cycles) * p.StaticPerCycle
	return b
}
