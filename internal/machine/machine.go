// Package machine assembles the full system: cores, the coherent cache
// hierarchy, the crossbar, the PMU with its PCUs, and the HMC chain —
// in one of the four configurations of §7 (Host-Only, PIM-Only,
// Ideal-Host, Locality-Aware). It is the integration point the public
// API, the workloads, and the experiment harness build on.
package machine

import (
	"context"
	"fmt"
	"runtime"

	"pimsim/internal/cache"
	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/dram"
	"pimsim/internal/energy"
	"pimsim/internal/hmc"
	"pimsim/internal/memlayout"
	"pimsim/internal/pim"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
	"pimsim/internal/vm"
)

// KernelMode selects the event-execution engine: the sequential kernel
// (the oracle) or the conservative-PDES parallel kernel. Both produce
// bit-identical results; pdes trades per-epoch synchronization overhead
// for multi-core wall clock on large cells.
type KernelMode int

const (
	KernelSeq KernelMode = iota
	KernelPDES
)

// ParseKernelMode parses a user-facing kernel name. The empty string
// means sequential.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "seq":
		return KernelSeq, nil
	case "pdes":
		return KernelPDES, nil
	}
	return 0, fmt.Errorf("machine: unknown kernel %q (want seq or pdes)", s)
}

func (m KernelMode) String() string {
	if m == KernelPDES {
		return "pdes"
	}
	return "seq"
}

// Option configures machine construction.
type Option func(*buildOptions)

type buildOptions struct {
	kernel  KernelMode
	workers int
}

// WithKernel selects the execution engine and, for KernelPDES, the
// worker goroutine count (0 or less means GOMAXPROCS; 1 runs the full
// epoch protocol inline, which is the cheapest way to validate it).
func WithKernel(km KernelMode, workers int) Option {
	return func(o *buildOptions) { o.kernel = km; o.workers = workers }
}

// Machine is a fully wired simulated system.
type Machine struct {
	K     *sim.Kernel
	Cfg   *config.Config
	Reg   *stats.Registry
	Chain *hmc.Chain
	Hier  *cache.Hierarchy
	Store *memlayout.Store
	PMU   *pim.PMU
	Cores []*cpu.Core

	// pdes is non-nil when the machine runs on the parallel kernel; K
	// then aliases the host partition's calendar queue and shards holds
	// the per-vault stats registries merged into Reg by collect.
	pdes   *sim.PDES
	shards []*stats.Registry

	// proto holds the final PDES protocol counters after collect has
	// recycled the ensemble; protoOK marks that this machine ran pdes.
	proto   sim.ProtoStats
	protoOK bool

	// vml is the virtual-memory layer when EnableVM is set; retained so
	// snapshots can reach the page table and TLBs.
	vml *vmLayer
}

// New builds a machine for cfg in the given mode. cfg is cloned; the
// caller's copy is not retained.
func New(cfg *config.Config, mode pim.Mode, opts ...Option) (*Machine, error) {
	cfg = cfg.Clone()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var bo buildOptions
	for _, o := range opts {
		o(&bo)
	}
	var (
		k      *sim.Kernel
		sched  sim.Scheduler
		pd     *sim.PDES
		shards []*stats.Registry
	)
	reg := stats.NewRegistry()
	hmcCfg := hmc.Config{
		Mapping:           cfg.Mapping(),
		Timing:            dram.Timing{TCL: cfg.TCL, TRCD: cfg.TRCD, TRP: cfg.TRP, IssueGap: 2, TREFI: cfg.TREFI, TRFC: cfg.TRFC},
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
		LinkLatency:       cfg.LinkLatency,
		HopLatency:        cfg.HopLatency,
		TSVBytesPerCycle:  cfg.TSVBytesPerCycle,
		TSVLatency:        cfg.TSVLatency,
		PacketHeaderBytes: cfg.PacketHeaderBytes,
		DispatchWindowCyc: cfg.DispatchWindowCyc,
	}
	if bo.kernel == KernelPDES {
		// Partition 0 is the host (cores, caches, PMU, chain front-end);
		// partition 1+v is vault v (its DRAM controller, TSV link, and
		// vault PCU). The only cross-partition latencies are the off-chip
		// link's, so the link latency is the lookahead window.
		if cfg.LinkLatency < 1 {
			return nil, fmt.Errorf("machine: pdes kernel needs LinkLatency >= 1 for lookahead (have %d)", cfg.LinkLatency)
		}
		nv := cfg.Mapping().VaultsTotal()
		workers := bo.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		pd = sim.NewPDES(cfg.LinkLatency, 1+nv, workers)
		host := pd.Part(0)
		k = &host.Kernel
		sched = host
		shards = make([]*stats.Registry, nv)
		for v := range shards {
			shards[v] = stats.NewRegistry()
		}
		hmcCfg.VaultSched = func(v int) sim.Scheduler { return pd.Part(1 + v) }
		hmcCfg.VaultSink = func(v int) sim.EventSink { return pd.Sink(0, 1+v) }
		hmcCfg.HostSink = func(v int) sim.EventSink { return pd.Sink(1+v, 0) }
		hmcCfg.VaultReg = func(v int) *stats.Registry { return shards[v] }
	} else {
		k = sim.NewKernel()
		sched = k
	}
	chain := hmc.NewChain(sched, hmcCfg, reg)
	hier := cache.NewHierarchy(sched, cfg, chain, reg)
	store := memlayout.NewStore()
	pmu := pim.NewPMU(sched, cfg, hier, chain, store, mode, reg)
	m := &Machine{K: k, Cfg: cfg, Reg: reg, Chain: chain, Hier: hier, Store: store, PMU: pmu, pdes: pd, shards: shards}
	var mem cpu.MemPort = hier
	var peiPort cpu.PEIPort = pmu
	if cfg.EnableVM {
		layer := &vmLayer{
			k:       sched,
			pt:      vm.NewPageTable(0),
			missLat: sim.Cycle(cfg.TLBMissLatency),
			hier:    hier,
			pmu:     pmu,
		}
		for i := 0; i < cfg.Cores; i++ {
			layer.tlbs = append(layer.tlbs, vm.NewTLB(cfg.TLBEntries, layer.pt, sim.Cycle(cfg.TLBMissLatency), reg))
		}
		mem, peiPort = layer, layer
		m.vml = layer
	}
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, cpu.NewCore(i, sched, cfg.IssueWidth, cfg.WindowSize, cfg.MaxOps, mem, peiPort))
	}
	return m, nil
}

// MustNew is New for presets known to be valid.
func MustNew(cfg *config.Config, mode pim.Mode, opts ...Option) *Machine {
	m, err := New(cfg, mode, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// Result summarizes one run.
type Result struct {
	Mode   pim.Mode
	Cycles sim.Cycle
	// Retired is total ops across cores; PerCoreRetired indexes by core.
	Retired        int64
	PerCoreRetired []int64
	PEIs           int64
	PEIHost        int64
	PEIMem         int64
	OffchipBytes   int64
	DRAMAccesses   int64
	Energy         energy.Breakdown
	Stats          map[string]int64
}

// IPC is aggregate retired ops per cycle (the throughput metric of
// §7.3).
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// PIMFraction is the fraction of PEIs executed memory-side (Figure 8's
// "PIM %").
func (r Result) PIMFraction() float64 {
	if r.PEIHost+r.PEIMem == 0 {
		return 0
	}
	return float64(r.PEIMem) / float64(r.PEIHost+r.PEIMem)
}

// Run executes one stream per core (stream i on core i; nil streams
// leave the core idle) and drives the simulation until every stream
// completes. It may be called once per Machine.
//
//peilint:allow ctxfirst compat wrapper; delegates to RunContext with context.Background
func (m *Machine) Run(streams []cpu.Stream) (Result, error) {
	return m.RunContext(context.Background(), streams)
}

// RunContext is Run with cancellation: the event loop checks ctx between
// event batches and returns ctx.Err() promptly once ctx is done. A
// cancelled machine is left mid-simulation and must not be reused.
//
// It is the one-shot composition of the phased API: Start, Drive to
// completion, CheckDone, Finish. Phased callers (checkpointing runs)
// call those pieces directly, interleaving Quiesce and snapshots
// between Drives.
func (m *Machine) RunContext(ctx context.Context, streams []cpu.Stream) (Result, error) {
	if err := m.Start(streams); err != nil {
		return Result{}, err
	}
	if err := m.Drive(ctx); err != nil {
		return Result{}, err
	}
	if err := m.CheckDone(streams); err != nil {
		return Result{}, err
	}
	return m.Finish(), nil
}

// Start arms stream i on core i (nil streams leave the core idle) in
// core-index order, which fixes the bootstrap event order under both
// kernels. Calling Start again re-arms the cores for another phase —
// with the same streams, a round-limited workload resumes exactly where
// its driver stopped.
func (m *Machine) Start(streams []cpu.Stream) error {
	if len(streams) > len(m.Cores) {
		return fmt.Errorf("machine: %d streams for %d cores", len(streams), len(m.Cores))
	}
	started := 0
	for i, s := range streams {
		if s == nil {
			continue
		}
		started++
		m.Cores[i].Run(s)
	}
	if started == 0 {
		return fmt.Errorf("machine: no streams to run")
	}
	return nil
}

// Drive runs the event loop until no work remains (every core drained
// and every queue empty) or ctx is cancelled.
func (m *Machine) Drive(ctx context.Context) error {
	if m.pdes != nil {
		// The PDES engine checks ctx once per epoch itself.
		return m.pdes.Run(ctx)
	}
	if ctx.Done() == nil {
		m.K.Run()
		return nil
	}
	// checkEvery trades cancellation latency (one batch of events,
	// microseconds of wall clock) against per-event select overhead.
	const checkEvery = 8192
	for m.K.Pending() > 0 {
		//peilint:allow partsafe top-level cancellation driver between event batches; no partition exists on the sequential kernel
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for i := 0; i < checkEvery && m.K.Step(); i++ {
		}
	}
	return nil
}

// KernelProtoStats reports the parallel kernel's protocol counters
// (epochs, solo sprints, partitions skipped, mailbox merges). ok is
// false under the sequential kernel. The counters deliberately bypass
// the stats registry: they describe engine work, not simulated
// behavior, and Results must stay byte-identical across kernels.
// It remains valid after Release, which banks the counters before
// recycling the ensemble.
func (m *Machine) KernelProtoStats() (sim.ProtoStats, bool) {
	if m.pdes != nil {
		return m.pdes.Proto(), true
	}
	return m.proto, m.protoOK
}

// Release hands the machine's parallel-kernel ensemble — whose warmed
// calendar rings are the expensive part of building the next machine —
// back to the sim recycle pool. Call it only when completely done with
// the machine (after Finish and any post-run inspection): the kernel
// references are severed, so no component may schedule or read clocks
// afterwards. Safe to call multiple times and a no-op on the sequential
// kernel or when events are still pending.
func (m *Machine) Release() {
	if m.pdes == nil {
		return
	}
	m.proto, m.protoOK = m.pdes.Proto(), true
	m.pdes.Recycle()
	m.pdes = nil
	m.K = nil
}

// CheckDone verifies every armed core retired its whole stream; a core
// with in-flight work after the queues drained is deadlocked.
func (m *Machine) CheckDone(streams []cpu.Stream) error {
	for i, s := range streams {
		if s != nil && !m.Cores[i].Done() {
			return fmt.Errorf("machine: core %d deadlocked (inflight work remains)", i)
		}
	}
	return nil
}

// Finish folds per-vault stat shards into the main registry and builds
// the run's Result. It consumes the shards and must be called exactly
// once, after the final Drive.
func (m *Machine) Finish() Result {
	return m.collect()
}

func (m *Machine) collect() Result {
	// Fold the per-vault registry shards of a PDES run into the main
	// registry first, so every probe below sees the whole system.
	// Addition commutes, so shard order cannot affect the result.
	for _, s := range m.shards {
		m.Reg.AddAll(s)
	}
	m.shards = nil
	cycles := m.K.Now()
	if m.pdes != nil {
		cycles = m.pdes.MaxNow()
	}
	r := Result{
		Mode:         m.PMU.Mode,
		Cycles:       cycles,
		PEIHost:      m.Reg.Get("pei.host"),
		PEIMem:       m.Reg.Get("pei.mem"),
		PEIs:         m.Reg.Get("pei.total"),
		OffchipBytes: m.Chain.OffchipBytes(),
		DRAMAccesses: m.Reg.Get("dram.reads") + m.Reg.Get("dram.writes"),
	}
	for _, c := range m.Cores {
		r.Retired += c.Retired
		r.PerCoreRetired = append(r.PerCoreRetired, c.Retired)
	}
	// Fold PCU execution counts into the registry for the energy model
	// and reports.
	var hostOps, memOps int64
	for _, p := range m.PMU.HostPCU {
		hostOps += p.Executed
	}
	for _, p := range m.PMU.MemPCU {
		memOps += p.Executed
	}
	m.Reg.Set("pcu.host.executed", hostOps)
	m.Reg.Set("pcu.mem.executed", memOps)
	m.Reg.Set("lat.access.mean_x100", int64(100*m.Hier.AccessLatency.Mean()))
	m.Reg.Set("lat.pei.mean_x100", int64(100*m.PMU.PEILatency.Mean()))
	r.Energy = energy.Compute(m.Reg, energy.DefaultParams(), int64(r.Cycles))
	r.Stats = m.Reg.Snapshot()
	return r
}
