package machine

import (
	"pimsim/internal/pim"
	"pimsim/internal/sim"
	"pimsim/internal/vm"
)

// vmLayer interposes virtual-memory translation (§4.4) between the cores
// and the rest of the machine: every core access and every PEI issue
// translates through the issuing core's TLB. The layer demand-maps pages
// identity (va == pa) so the functional store is unaffected — the point
// of the simulation is the translation *traffic*: one TLB access per PEI
// and zero translation hardware below the PMU.
type vmLayer struct {
	k       *sim.Kernel
	pt      *vm.PageTable
	tlbs    []*vm.TLB
	missLat sim.Cycle

	hier interface {
		Access(core int, a uint64, write bool, done func())
	}
	pmu interface {
		Issue(p *pim.PEI)
		Fence(done func())
	}
}

// translate demand-maps and translates va for core, invoking then with
// the physical address after any walk latency.
func (v *vmLayer) translate(core int, va uint64, write bool, then func(pa uint64)) {
	v.pt.MapAt(va, va) // demand paging, identity
	pa, hit, err := v.tlbs[core].Lookup(va, write)
	if err != nil {
		// Unreachable under identity demand paging; a real OS would
		// handle the fault on the host (§4.4).
		panic(err)
	}
	if hit {
		then(pa)
		return
	}
	v.k.Schedule(v.missLat, func() { then(pa) })
}

// Access implements cpu.MemPort.
func (v *vmLayer) Access(core int, a uint64, write bool, done func()) {
	v.translate(core, a, write, func(pa uint64) {
		v.hier.Access(core, pa, write, done)
	})
}

// Issue implements cpu.PEIPort: exactly one translation per PEI — the
// single-cache-block restriction means the target never spans pages.
func (v *vmLayer) Issue(p *pim.PEI) {
	writer := p.Op.Info().Writer
	v.translate(p.Core, p.Target, writer, func(pa uint64) {
		p.Target = pa
		v.pmu.Issue(p)
	})
}

// Fence implements cpu.PEIPort.
func (v *vmLayer) Fence(done func()) { v.pmu.Fence(done) }
