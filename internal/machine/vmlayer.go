package machine

import (
	"pimsim/internal/pim"
	"pimsim/internal/sim"
	"pimsim/internal/vm"
)

// vmLayer interposes virtual-memory translation (§4.4) between the cores
// and the rest of the machine: every core access and every PEI issue
// translates through the issuing core's TLB. The layer demand-maps pages
// identity (va == pa) so the functional store is unaffected — the point
// of the simulation is the translation *traffic*: one TLB access per PEI
// and zero translation hardware below the PMU.
type vmLayer struct {
	k       sim.Scheduler
	pt      *vm.PageTable
	tlbs    []*vm.TLB
	missLat sim.Cycle

	hier interface {
		AccessEvent(core int, a uint64, write bool, done sim.Cont)
	}
	pmu interface {
		Issue(p *pim.PEI)
		FenceEvent(done sim.Cont)
	}

	free []*vmTxn // recycled TLB-miss transactions
}

// vmTxn carries one access or PEI issue across the TLB miss (page walk)
// latency. TLB hits proceed synchronously and never touch the pool.
type vmTxn struct {
	v     *vmLayer
	core  int
	pa    uint64
	write bool
	done  sim.Cont
	pei   *pim.PEI
}

func (t *vmTxn) OnEvent(sim.EventArg) {
	v := t.v
	core, pa, write, done, pei := t.core, t.pa, t.write, t.done, t.pei
	v.putTxn(t)
	if pei != nil {
		pei.Target = pa
		v.pmu.Issue(pei)
		return
	}
	v.hier.AccessEvent(core, pa, write, done)
}

func (v *vmLayer) getTxn() *vmTxn {
	if n := len(v.free); n > 0 {
		t := v.free[n-1]
		v.free = v.free[:n-1]
		t.v = v
		return t
	}
	return &vmTxn{v: v}
}

func (v *vmLayer) putTxn(t *vmTxn) {
	if t.v == nil {
		panic("machine: vm transaction double-released")
	}
	*t = vmTxn{}
	v.free = append(v.free, t)
}

// lookup demand-maps va and performs the TLB access, reporting the
// physical address and whether translation completed without a walk.
func (v *vmLayer) lookup(core int, va uint64, write bool) (pa uint64, hit bool) {
	v.pt.MapAt(va, va) // demand paging, identity
	pa, hit, err := v.tlbs[core].Lookup(va, write)
	if err != nil {
		// Unreachable under identity demand paging; a real OS would
		// handle the fault on the host (§4.4).
		panic(err)
	}
	return pa, hit
}

// AccessEvent implements cpu.MemPort.
func (v *vmLayer) AccessEvent(core int, a uint64, write bool, done sim.Cont) {
	pa, hit := v.lookup(core, a, write)
	if hit {
		v.hier.AccessEvent(core, pa, write, done)
		return
	}
	t := v.getTxn()
	t.core = core
	t.pa = pa
	t.write = write
	t.done = done
	v.k.ScheduleEvent(v.missLat, t, sim.EventArg{})
}

// Access is the closure form of AccessEvent.
func (v *vmLayer) Access(core int, a uint64, write bool, done func()) {
	v.AccessEvent(core, a, write, sim.Call(done))
}

// Issue implements cpu.PEIPort: exactly one translation per PEI — the
// single-cache-block restriction means the target never spans pages.
func (v *vmLayer) Issue(p *pim.PEI) {
	pa, hit := v.lookup(p.Core, p.Target, p.Op.Info().Writer)
	if hit {
		p.Target = pa
		v.pmu.Issue(p)
		return
	}
	t := v.getTxn()
	t.pa = pa
	t.pei = p
	v.k.ScheduleEvent(v.missLat, t, sim.EventArg{})
}

// FenceEvent implements cpu.PEIPort.
func (v *vmLayer) FenceEvent(done sim.Cont) { v.pmu.FenceEvent(done) }
