package machine

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/pim"
)

// The torture tests drive every PEI kind from every core onto shared
// arrays at once and check the per-block reductions against golden
// values. Because the PIM directory serializes conflicting PEIs and each
// block hosts a single commutative operation, the final values are
// order-independent — any lost update, stale read, or atomicity break
// shows up as a wrong answer.

type blockPlan struct {
	op     pim.OpKind
	inputs []uint64 // operands routed to this block, in issue order
}

func buildTorturePlan(rng *rand.Rand, blocks int) []blockPlan {
	kinds := []pim.OpKind{pim.OpInc64, pim.OpMin64, pim.OpFloatAdd}
	plans := make([]blockPlan, blocks)
	for i := range plans {
		plans[i].op = kinds[rng.Intn(len(kinds))]
	}
	return plans
}

func tortureRun(t *testing.T, mode pim.Mode, seed int64) {
	t.Helper()
	cfg := config.Scaled()
	m := MustNew(cfg, mode)
	rng := rand.New(rand.NewSource(seed))

	const blocks = 64
	const opsPerCore = 300
	base := m.Store.Alloc(blocks*64, 64)
	plans := buildTorturePlan(rng, blocks)
	// Initialize min blocks high so mins always land.
	for b := range plans {
		if plans[b].op == pim.OpMin64 {
			m.Store.WriteU64(base+uint64(b*64), math.MaxInt64)
		}
	}

	var streams []cpu.Stream
	for c := 0; c < cfg.Cores; c++ {
		s := &cpu.SliceStream{}
		for i := 0; i < opsPerCore; i++ {
			b := rng.Intn(blocks)
			target := base + uint64(b*64)
			var p *pim.PEI
			switch plans[b].op {
			case pim.OpInc64:
				p = &pim.PEI{Op: pim.OpInc64, Target: target}
				plans[b].inputs = append(plans[b].inputs, 1)
			case pim.OpMin64:
				v := uint64(rng.Intn(1 << 30))
				p = &pim.PEI{Op: pim.OpMin64, Target: target, Input: pim.U64Input(v)}
				plans[b].inputs = append(plans[b].inputs, v)
			case pim.OpFloatAdd:
				v := float64(rng.Intn(1000)) / 8 // exactly representable
				p = &pim.PEI{Op: pim.OpFloatAdd, Target: target, Input: pim.F64Input(v)}
				plans[b].inputs = append(plans[b].inputs, math.Float64bits(v))
			}
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: p})
			// Interleave some plain loads to rattle the coherence
			// machinery (reads never break PEI atomicity).
			if rng.Intn(4) == 0 {
				s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpLoad, Addr: target})
			}
		}
		s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpFence})
		streams = append(streams, s)
	}

	if _, err := m.Run(streams); err != nil {
		t.Fatal(err)
	}

	for b, plan := range plans {
		addr := base + uint64(b*64)
		switch plan.op {
		case pim.OpInc64:
			want := uint64(len(plan.inputs))
			if got := m.Store.ReadU64(addr); got != want {
				t.Fatalf("%v block %d: inc count %d, want %d", mode, b, got, want)
			}
		case pim.OpMin64:
			want := uint64(math.MaxInt64)
			for _, v := range plan.inputs {
				if v < want {
					want = v
				}
			}
			if got := m.Store.ReadU64(addr); got != want {
				t.Fatalf("%v block %d: min %d, want %d", mode, b, got, want)
			}
		case pim.OpFloatAdd:
			// Eighths sum exactly in float64 at these magnitudes, so
			// even ordering differences cannot change the result.
			var want float64
			for _, v := range plan.inputs {
				want += math.Float64frombits(v)
			}
			if got := m.Store.ReadF64(addr); got != want {
				t.Fatalf("%v block %d: sum %v, want %v", mode, b, got, want)
			}
		}
	}
}

func TestTortureAllModes(t *testing.T) {
	for _, mode := range []pim.Mode{pim.HostOnly, pim.PIMOnly, pim.LocalityAware, pim.IdealHost} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tortureRun(t, mode, 1234)
		})
	}
}

func TestTortureManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed torture is slow")
	}
	for seed := int64(0); seed < 8; seed++ {
		tortureRun(t, pim.LocalityAware, seed)
	}
}

// Torture the output-operand ops too: hash probes and dot products from
// all cores against a shared read-only region, verifying every output.
func TestTortureReaderOutputs(t *testing.T) {
	cfg := config.Scaled()
	m := MustNew(cfg, pim.LocalityAware)
	rng := rand.New(rand.NewSource(99))

	const buckets = 32
	base := m.Store.Alloc(buckets*64, 64)
	for b := 0; b < buckets; b++ {
		m.Store.WriteU64(base+uint64(b*64)+pim.HashBucketKeyOff, uint64(b)*10+1)
	}

	type probe struct {
		pei  *pim.PEI
		want byte
	}
	var probes []probe
	var streams []cpu.Stream
	for c := 0; c < cfg.Cores; c++ {
		s := &cpu.SliceStream{}
		for i := 0; i < 100; i++ {
			b := rng.Intn(buckets)
			key := uint64(b)*10 + 1
			want := byte(1)
			if rng.Intn(2) == 0 {
				key = 0xFFFF // absent
				want = 0
			}
			p := &pim.PEI{Op: pim.OpHashProbe, Target: base + uint64(b*64), Input: pim.U64Input(key)}
			probes = append(probes, probe{p, want})
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: p})
		}
		streams = append(streams, s)
	}
	if _, err := m.Run(streams); err != nil {
		t.Fatal(err)
	}
	for i, pr := range probes {
		if len(pr.pei.Output) != 9 || pr.pei.Output[0] != pr.want {
			t.Fatalf("probe %d output %v, want match=%d", i, pr.pei.Output, pr.want)
		}
		if next := binary.LittleEndian.Uint64(pr.pei.Output[1:]); next != 0 {
			t.Fatalf("probe %d next = %#x, want 0", i, next)
		}
	}
}
