package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/pim"
)

// TestRunContextPreCancelled: a machine run under an already-cancelled
// context must return ctx.Err() without completing the simulation.
func TestRunContextPreCancelled(t *testing.T) {
	m := MustNew(config.Scaled(), pim.LocalityAware)
	base := m.Store.Alloc(64*64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunContext(ctx, []cpu.Stream{streamOfPEIs(m, base, 64, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun: cancellation during the event loop aborts
// the run promptly.
func TestRunContextCancelMidRun(t *testing.T) {
	m := MustNew(config.Scaled(), pim.LocalityAware)
	const n = 200_000
	base := m.Store.Alloc(64*64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.RunContext(ctx, []cpu.Stream{streamOfPEIs(m, base, n, 1)})
		errc <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// nil means the run beat the cancellation (tiny machines are
		// fast); anything else must be the context error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// TestRunContextBackgroundCompletes: the context-aware path with a
// non-cancellable context takes the fast path and still completes.
func TestRunContextBackgroundCompletes(t *testing.T) {
	m := MustNew(config.Scaled(), pim.LocalityAware)
	base := m.Store.Alloc(64*64, 64)
	res, err := m.RunContext(context.Background(), []cpu.Stream{streamOfPEIs(m, base, 32, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.PEIs != 32 {
		t.Fatalf("result %+v", res)
	}
}
