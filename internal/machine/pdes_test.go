package machine

import (
	"reflect"
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/pim"
)

// mixedStream exercises every cross-partition path: PEIs (offloadable),
// plain loads and stores (cache miss traffic over the chain), and
// compute ops, spread across blocks so several vaults are active at
// once.
func mixedStream(base uint64, n, lane int) *cpu.SliceStream {
	s := &cpu.SliceStream{}
	for i := 0; i < n; i++ {
		a := base + uint64(((i*7+lane*13)%96)*64)
		switch i % 5 {
		case 0, 1:
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: a}})
		case 2:
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpLoad, Addr: a})
		case 3:
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpStore, Addr: a})
		default:
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpCompute, Cycles: 3})
		}
	}
	return s
}

func runOnce(t *testing.T, mode pim.Mode, opts ...Option) Result {
	t.Helper()
	cfg := config.Scaled()
	m := MustNew(cfg, mode, opts...)
	base := m.Store.Alloc(96*64, 64)
	streams := make([]cpu.Stream, len(m.Cores))
	for i := range streams {
		streams[i] = mixedStream(base, 400, i)
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPDESMatchesSequential is the oracle test: the PDES kernel must
// reproduce the sequential kernel's Result — cycle count, every
// counter, energy — bit for bit, at every worker count, in every mode.
func TestPDESMatchesSequential(t *testing.T) {
	for _, mode := range []pim.Mode{pim.HostOnly, pim.PIMOnly, pim.LocalityAware, pim.IdealHost} {
		seq := runOnce(t, mode)
		for _, workers := range []int{1, 4, 8} {
			got := runOnce(t, mode, WithKernel(KernelPDES, workers))
			if !reflect.DeepEqual(seq, got) {
				for k, v := range seq.Stats {
					if got.Stats[k] != v {
						t.Errorf("%v workers=%d: stat %q = %d, seq %d", mode, workers, k, got.Stats[k], v)
					}
				}
				t.Fatalf("%v workers=%d: pdes result diverged from sequential (cycles %d vs %d)",
					mode, workers, got.Cycles, seq.Cycles)
			}
		}
	}
}
