package machine

import (
	"testing"

	"pimsim/internal/config"
	"pimsim/internal/cpu"
	"pimsim/internal/pim"
)

func streamOfPEIs(m *Machine, base uint64, n int, strideBlocks int) *cpu.SliceStream {
	s := &cpu.SliceStream{}
	for i := 0; i < n; i++ {
		s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{
			Op:     pim.OpInc64,
			Target: base + uint64(i*strideBlocks*64),
		}})
	}
	return s
}

func TestMachineRunHostOnly(t *testing.T) {
	m := MustNew(config.Scaled(), pim.HostOnly)
	base := m.Store.Alloc(64*64, 64)
	res, err := m.Run([]cpu.Stream{streamOfPEIs(m, base, 32, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != 32 || res.PEIHost != 32 || res.PEIMem != 0 {
		t.Fatalf("retired=%d host=%d mem=%d", res.Retired, res.PEIHost, res.PEIMem)
	}
	if res.Cycles <= 0 || res.IPC() <= 0 {
		t.Fatalf("cycles=%d ipc=%v", res.Cycles, res.IPC())
	}
	for i := 0; i < 32; i++ {
		if got := m.Store.ReadU64(base + uint64(i*64)); got != 1 {
			t.Fatalf("block %d value %d, want 1", i, got)
		}
	}
}

func TestMachinePIMOnlyUsesLessOffchipForIncrements(t *testing.T) {
	cfg := config.Scaled()
	run := func(mode pim.Mode) Result {
		m := MustNew(cfg, mode)
		base := m.Store.Alloc(128*64, 64)
		res, err := m.Run([]cpu.Stream{streamOfPEIs(m, base, 128, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	host := run(pim.HostOnly)
	pimOnly := run(pim.PIMOnly)
	// A streaming increment with no locality: host moves 96 B per PEI,
	// memory-side 32 B per PEI.
	if pimOnly.OffchipBytes >= host.OffchipBytes {
		t.Fatalf("PIM-Only off-chip %d >= Host-Only %d for streaming writes",
			pimOnly.OffchipBytes, host.OffchipBytes)
	}
	if pimOnly.PEIMem != 128 {
		t.Fatalf("PIM-Only executed %d in memory", pimOnly.PEIMem)
	}
}

func TestMachineCachedWorkloadFasterOnHost(t *testing.T) {
	cfg := config.Scaled()
	// Hammer 4 blocks repeatedly: everything fits in L1.
	run := func(mode pim.Mode) Result {
		m := MustNew(cfg, mode)
		base := m.Store.Alloc(4*64, 64)
		s := &cpu.SliceStream{}
		for i := 0; i < 400; i++ {
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{
				Op: pim.OpInc64, Target: base + uint64(i%4)*64,
			}})
		}
		res, err := m.Run([]cpu.Stream{s})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Store.ReadU64(base); got != 100 {
			t.Fatalf("value %d, want 100", got)
		}
		return res
	}
	host := run(pim.HostOnly)
	mem := run(pim.PIMOnly)
	if host.Cycles >= mem.Cycles {
		t.Fatalf("high-locality: host %d cycles, pim %d — host should win", host.Cycles, mem.Cycles)
	}
	la := run(pim.LocalityAware)
	if la.PIMFraction() > 0.2 {
		t.Fatalf("locality-aware offloaded %.0f%% of a cache-resident workload", 100*la.PIMFraction())
	}
}

func TestMachineMultipleCores(t *testing.T) {
	m := MustNew(config.Scaled(), pim.LocalityAware)
	var streams []cpu.Stream
	bases := make([]uint64, 4)
	for c := 0; c < 4; c++ {
		bases[c] = m.Store.Alloc(32*64, 64)
		streams = append(streams, streamOfPEIs(m, bases[c], 32, 1))
	}
	res, err := m.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != 128 {
		t.Fatalf("retired %d, want 128", res.Retired)
	}
	if len(res.PerCoreRetired) != 4 {
		t.Fatalf("per-core stats %v", res.PerCoreRetired)
	}
	for c := 0; c < 4; c++ {
		if res.PerCoreRetired[c] != 32 {
			t.Fatalf("core %d retired %d", c, res.PerCoreRetired[c])
		}
	}
}

func TestMachineSharedCounterContention(t *testing.T) {
	// All four cores increment the same word: the PIM directory must
	// serialize, and no update may be lost.
	m := MustNew(config.Scaled(), pim.LocalityAware)
	a := m.Store.Alloc(8, 8)
	var streams []cpu.Stream
	for c := 0; c < 4; c++ {
		s := &cpu.SliceStream{}
		for i := 0; i < 25; i++ {
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: a}})
		}
		streams = append(streams, s)
	}
	if _, err := m.Run(streams); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.ReadU64(a); got != 100 {
		t.Fatalf("shared counter = %d, want 100 (lost updates)", got)
	}
}

func TestMachineErrors(t *testing.T) {
	m := MustNew(config.Scaled(), pim.HostOnly)
	if _, err := m.Run(nil); err == nil {
		t.Fatal("expected error for empty run")
	}
	m2 := MustNew(config.Scaled(), pim.HostOnly)
	too := make([]cpu.Stream, m2.Cfg.Cores+1)
	if _, err := m2.Run(too); err == nil {
		t.Fatal("expected error for too many streams")
	}
	bad := config.Scaled()
	bad.Cores = 0
	if _, err := New(bad, pim.HostOnly); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestMachineEnergyPopulated(t *testing.T) {
	m := MustNew(config.Scaled(), pim.PIMOnly)
	base := m.Store.Alloc(64*64, 64)
	res, err := m.Run([]cpu.Stream{streamOfPEIs(m, base, 64, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("energy not computed")
	}
	if res.Energy.DRAM <= 0 || res.Energy.Offchip <= 0 {
		t.Fatalf("PIM run missing DRAM/offchip energy: %+v", res.Energy)
	}
	if res.Stats["pcu.mem.executed"] != 64 {
		t.Fatalf("pcu.mem.executed = %d", res.Stats["pcu.mem.executed"])
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() Result {
		m := MustNew(config.Scaled(), pim.LocalityAware)
		base := m.Store.Alloc(256*64, 64)
		res, err := m.Run([]cpu.Stream{
			streamOfPEIs(m, base, 100, 1),
			streamOfPEIs(m, base, 100, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.OffchipBytes != b.OffchipBytes || a.PEIMem != b.PEIMem {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMachineWithVirtualMemory(t *testing.T) {
	cfg := config.Scaled()
	cfg.EnableVM = true
	m := MustNew(cfg, pim.LocalityAware)
	base := m.Store.Alloc(64*64, 64)
	res, err := m.Run([]cpu.Stream{streamOfPEIs(m, base, 64, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// Functional results must be unchanged under identity paging.
	for i := 0; i < 64; i++ {
		if got := m.Store.ReadU64(base + uint64(i*64)); got != 1 {
			t.Fatalf("block %d value %d under VM", i, got)
		}
	}
	// §4.4: exactly one TLB access per PEI (plus none here from loads).
	lookups := res.Stats["tlb.hits"] + res.Stats["tlb.misses"]
	if lookups != 64 {
		t.Fatalf("TLB lookups = %d, want one per PEI (64)", lookups)
	}
	if res.Stats["tlb.misses"] == 0 {
		t.Fatal("cold TLB should miss at least once")
	}
}

func TestVMSlowerThanIdentity(t *testing.T) {
	run := func(enable bool) Result {
		cfg := config.Scaled()
		cfg.EnableVM = enable
		cfg.TLBEntries = 2 // tiny TLB, forced thrashing
		cfg.TLBMissLatency = 200
		cfg.WindowSize = 1 // serialize so walk latency is on the critical path
		m := MustNew(cfg, pim.HostOnly)
		base := m.Store.Alloc(64*64*64, 64)
		// Stride one page per PEI, cycling over 4 pages: every access
		// misses a 2-entry TLB.
		s := &cpu.SliceStream{}
		for i := 0; i < 256; i++ {
			s.Ops = append(s.Ops, cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{
				Op:     pim.OpInc64,
				Target: base + uint64(i%4)*4096 + uint64(i/4%64)*64,
			}})
		}
		res, err := m.Run([]cpu.Stream{s})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withVM := run(true)
	without := run(false)
	if withVM.Stats["tlb.misses"] < 200 {
		t.Fatalf("expected heavy TLB thrashing, got %d misses", withVM.Stats["tlb.misses"])
	}
	if withVM.Cycles <= without.Cycles {
		t.Fatalf("thrashing TLB (%d cycles) should be slower than no VM (%d)",
			withVM.Cycles, without.Cycles)
	}
}

func TestLatencyHistogramsPopulated(t *testing.T) {
	m := MustNew(config.Scaled(), pim.LocalityAware)
	base := m.Store.Alloc(64*64, 64)
	s := &cpu.SliceStream{}
	for i := 0; i < 32; i++ {
		s.Ops = append(s.Ops,
			cpu.Op{Kind: cpu.OpLoad, Addr: base + uint64(i*64)},
			cpu.Op{Kind: cpu.OpPEI, PEI: &pim.PEI{Op: pim.OpInc64, Target: base + uint64(i*64)}})
	}
	res, err := m.Run([]cpu.Stream{s})
	if err != nil {
		t.Fatal(err)
	}
	if m.Hier.AccessLatency.N == 0 || m.PMU.PEILatency.N != 32 {
		t.Fatalf("histograms: access N=%d pei N=%d", m.Hier.AccessLatency.N, m.PMU.PEILatency.N)
	}
	if m.PMU.PEILatency.Mean() <= 0 {
		t.Fatal("zero PEI latency")
	}
	if res.Stats["lat.pei.mean_x100"] <= 0 {
		t.Fatal("latency stat not exported")
	}
}
