package machine

import (
	"fmt"
	"io"

	"pimsim/internal/sim"
	"pimsim/internal/snap"
	"pimsim/internal/stats"
)

// This file orchestrates whole-machine snapshots. A snapshot is only
// defined at quiescence — every event queue empty, every transaction
// pool at rest — so what it captures is pure architectural state:
// clocks, tag arrays, row buffers, counters, and functional memory.
// Transaction pools are never serialized (a fresh pool is timing-
// neutral), and the blob a sequential machine writes is byte-identical
// to the one its PDES twin writes at the same boundary, because
// Quiesce aligns all partition clocks first and every section is
// kernel-agnostic.

// Now reports the machine's global clock: the kernel's cycle, or the
// maximum across partitions under PDES.
func (m *Machine) Now() sim.Cycle {
	if m.pdes != nil {
		return m.pdes.MaxNow()
	}
	return m.K.Now()
}

// Quiesce verifies the machine has fully drained and, under PDES,
// aligns every partition's clock to the global maximum so the next
// phase starts from one well-defined cycle under either kernel.
func (m *Machine) Quiesce() error {
	if m.pdes != nil {
		if !m.pdes.Quiesced() {
			return fmt.Errorf("%w: %d events pending across partitions", snap.ErrNotQuiescent, m.pdes.Pending())
		}
		m.pdes.AdvanceAllTo(m.pdes.MaxNow())
		return nil
	}
	if n := m.K.Pending(); n != 0 {
		return fmt.Errorf("%w: %d events pending", snap.ErrNotQuiescent, n)
	}
	return nil
}

// SnapshotTo serializes the machine to wr. The caller must have
// Quiesce()d (SnapshotTo re-checks and fails otherwise). Counters are
// written from a merged view of the main registry and the per-vault
// shards, leaving both untouched so the run can continue past the
// boundary — which is also what makes the stream kernel-agnostic: the
// merged view is the same totals whichever side of the shard split a
// counter lives on. extra, if non-nil, appends caller sections (e.g.
// workload generator state) to the same stream.
func (m *Machine) SnapshotTo(wr io.Writer, extra func(*snap.Writer)) error {
	if err := m.Quiesce(); err != nil {
		return err
	}
	w := snap.NewWriter(wr)
	if m.pdes != nil {
		m.pdes.SnapshotTo(w)
	} else {
		m.K.SnapshotTo(w)
	}
	merged := stats.NewRegistry()
	merged.AddAll(m.Reg)
	for _, s := range m.shards {
		merged.AddAll(s)
	}
	merged.SnapshotTo(w)
	m.Store.SnapshotTo(w)
	w.Int(len(m.Cores))
	for _, c := range m.Cores {
		c.SnapshotTo(w)
	}
	m.Hier.SnapshotTo(w)
	m.Chain.SnapshotTo(w)
	m.PMU.SnapshotTo(w)
	if m.vml != nil {
		m.vml.pt.SnapshotTo(w)
		for _, t := range m.vml.tlbs {
			t.SnapshotTo(w)
		}
	}
	if extra != nil {
		extra(w)
	}
	return w.Err()
}

// RestoreFrom loads a snapshot into a freshly built machine of the
// identical configuration (same config, mode, and workload layout; the
// kernel may differ — blobs are kernel-agnostic). Counter values land
// in the main registry by name; PDES shards stay zeroed and accumulate
// only post-resume deltas, which Finish folds back in, so final totals
// match the cold run's exactly. extra mirrors SnapshotTo's.
func (m *Machine) RestoreFrom(rd io.Reader, extra func(*snap.Reader)) error {
	if err := m.Quiesce(); err != nil {
		return fmt.Errorf("snap: restore target not idle: %w", err)
	}
	r, err := snap.NewReader(rd)
	if err != nil {
		return err
	}
	if m.pdes != nil {
		m.pdes.RestoreFrom(r)
	} else {
		m.K.RestoreFrom(r)
	}
	m.Reg.RestoreFrom(r)
	m.Store.RestoreFrom(r)
	cores := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if cores != len(m.Cores) {
		return fmt.Errorf("snap: machine has %d cores, snapshot has %d", len(m.Cores), cores)
	}
	for _, c := range m.Cores {
		c.RestoreFrom(r)
	}
	m.Hier.RestoreFrom(r)
	m.Chain.RestoreFrom(r)
	m.PMU.RestoreFrom(r)
	if m.vml != nil {
		m.vml.pt.RestoreFrom(r)
		for _, t := range m.vml.tlbs {
			t.RestoreFrom(r)
		}
	}
	if extra != nil {
		extra(r)
	}
	return r.Err()
}
