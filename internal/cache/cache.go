// Package cache implements the on-chip memory hierarchy: a generic
// set-associative tag array (Cache) and the three-level inclusive MESI
// hierarchy (Hierarchy) connecting the cores' private L1/L2 caches
// through a crossbar to a banked shared L3 and the HMC chain behind it.
//
// The caches are timing-structural: real tag arrays, real LRU, real
// MSHRs, real writeback traffic — but no data arrays. Functional values
// are maintained by the workload layer; the hierarchy decides only *when*
// things happen and *how many bytes* move, which is what the paper's
// results depend on.
package cache

// State is a MESI-style line state. The shared L3 tracks sharers
// explicitly, so private lines only distinguish Invalid/Shared/Exclusive/
// Modified.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "M"
	}
}

// Line is one tag-array entry. Key is the full block key (equivalent to
// tag plus set index), kept whole so victims can be written back without
// reconstructing addresses.
type Line struct {
	Key   uint64
	State State
	Dirty bool
	// Sharers is a core bitmask, used only in the L3 (directory bits).
	Sharers uint64
	lru     uint64
}

// Cache is a set-associative tag array with true-LRU replacement. Keys
// are block numbers (the caller applies any banking division first).
type Cache struct {
	sets, ways int
	lines      []Line
	clock      uint64

	// Hits and Misses count Lookup outcomes.
	Hits, Misses int64
}

// New creates a cache with the given geometry. sets must be a power of
// two.
func New(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: bad geometry")
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// Sets and Ways report the geometry.
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(key uint64) []Line {
	s := int(key) & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup finds key and promotes it in LRU order on a hit. It returns the
// line for in-place state updates, or nil on miss.
func (c *Cache) Lookup(key uint64) *Line {
	set := c.set(key)
	for i := range set {
		if set[i].State != Invalid && set[i].Key == key {
			c.clock++
			set[i].lru = c.clock
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Peek finds key without touching LRU or hit/miss counters.
func (c *Cache) Peek(key uint64) *Line {
	set := c.set(key)
	for i := range set {
		if set[i].State != Invalid && set[i].Key == key {
			return &set[i]
		}
	}
	return nil
}

// Victim returns the line that Insert would replace for key: an invalid
// way if present, else the LRU way. The returned line still holds the
// victim's metadata; the caller handles any writeback, then calls Insert.
func (c *Cache) Victim(key uint64) *Line {
	set := c.set(key)
	best := &set[0]
	for i := range set {
		if set[i].State == Invalid {
			return &set[i]
		}
		if set[i].lru < best.lru {
			best = &set[i]
		}
	}
	return best
}

// Insert installs key into the given victim line (obtained from Victim)
// with the supplied state, resetting dirty/sharers and promoting it.
func (c *Cache) Insert(victim *Line, key uint64, st State) {
	c.clock++
	*victim = Line{Key: key, State: st, lru: c.clock}
}

// Invalidate removes key if present, returning the line's prior contents
// and whether it was present.
func (c *Cache) Invalidate(key uint64) (Line, bool) {
	set := c.set(key)
	for i := range set {
		if set[i].State != Invalid && set[i].Key == key {
			old := set[i]
			set[i] = Line{}
			return old, true
		}
	}
	return Line{}, false
}

// ForEach visits every valid line (for invariant checks in tests).
func (c *Cache) ForEach(fn func(setIdx int, l *Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(i/c.ways, &c.lines[i])
		}
	}
}
