package cache

import (
	"math/rand"
	"testing"

	"pimsim/internal/addr"
	"pimsim/internal/config"
	"pimsim/internal/dram"
	"pimsim/internal/hmc"
	"pimsim/internal/sim"
	"pimsim/internal/stats"
)

func newTestHierarchy(t testing.TB) (*sim.Kernel, *Hierarchy, *stats.Registry) {
	t.Helper()
	cfg := config.Scaled()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	chain := hmc.NewChain(k, hmc.Config{
		Mapping:           cfg.Mapping(),
		Timing:            dram.Timing{TCL: cfg.TCL, TRCD: cfg.TRCD, TRP: cfg.TRP, IssueGap: 2},
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
		LinkLatency:       cfg.LinkLatency,
		HopLatency:        cfg.HopLatency,
		TSVBytesPerCycle:  cfg.TSVBytesPerCycle,
		TSVLatency:        cfg.TSVLatency,
		PacketHeaderBytes: cfg.PacketHeaderBytes,
	}, reg)
	return k, NewHierarchy(k, cfg, chain, reg), reg
}

func TestColdMissFillsAllLevels(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	var first sim.Cycle = -1
	h.Access(0, 0x1000, false, func() { first = k.Now() })
	k.Run()
	if first < 0 {
		t.Fatal("access never completed")
	}
	if reg.Get("l1.misses") != 1 || reg.Get("l3.misses") != 1 {
		t.Fatalf("miss counters: l1=%d l3=%d", reg.Get("l1.misses"), reg.Get("l3.misses"))
	}
	blk := addr.BlockOf(0x1000)
	if h.L1(0).Peek(blk) == nil || h.L2(0).Peek(blk) == nil {
		t.Fatal("private caches not filled")
	}
	if !h.CachedAnywhere(0x1000) {
		t.Fatal("block not cached after fill")
	}
	// Second access hits L1 and is much faster.
	var second sim.Cycle
	start := k.Now()
	h.Access(0, 0x1000, false, func() { second = k.Now() - start })
	k.Run()
	if second != 4 { // L1 latency
		t.Fatalf("L1 hit latency = %d, want 4", second)
	}
}

func TestSoleReaderGetsExclusive(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0x2000, false, func() {})
	k.Run()
	blk := addr.BlockOf(0x2000)
	if st := h.L1(0).Peek(blk).State; st != Exclusive {
		t.Fatalf("sole reader state = %v, want E", st)
	}
	// A silent upgrade: write hits E in L1 without another L3 trip.
	l3hits := reg.Get("l3.hits")
	h.Access(0, 0x2000, true, func() {})
	k.Run()
	if reg.Get("l3.hits") != l3hits {
		t.Fatal("E->M upgrade should not reach L3")
	}
	if st := h.L1(0).Peek(blk).State; st != Modified {
		t.Fatalf("state after write = %v, want M", st)
	}
}

func TestSecondReaderGetsShared(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	h.Access(0, 0x3000, false, func() {})
	k.Run()
	h.Access(1, 0x3000, false, func() {})
	k.Run()
	blk := addr.BlockOf(0x3000)
	if st := h.L1(1).Peek(blk).State; st != Shared {
		t.Fatalf("second reader state = %v, want S", st)
	}
	l3 := h.L3Bank(h.bankOf(blk)).Peek(h.bankKey(blk))
	if l3.Sharers != 0b11 {
		t.Fatalf("sharers = %b, want 11", l3.Sharers)
	}
}

func TestWriteInvalidatesOtherSharers(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0x4000, false, func() {})
	k.Run()
	h.Access(1, 0x4000, false, func() {})
	k.Run()
	h.Access(0, 0x4000, true, func() {})
	k.Run()
	blk := addr.BlockOf(0x4000)
	if h.L1(1).Peek(blk) != nil || h.L2(1).Peek(blk) != nil {
		t.Fatal("writer did not invalidate other core's copies")
	}
	if reg.Get("coh.invalidations") == 0 {
		t.Fatal("no invalidations counted")
	}
	if st := h.L1(0).Peek(blk).State; st != Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
}

func TestReadDowngradesModifiedCopy(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0x5000, true, func() {})
	k.Run()
	h.Access(1, 0x5000, false, func() {})
	k.Run()
	blk := addr.BlockOf(0x5000)
	if st := h.L1(0).Peek(blk).State; st != Shared {
		t.Fatalf("old owner state = %v, want S after downgrade", st)
	}
	if reg.Get("coh.downgrades") == 0 {
		t.Fatal("no downgrade counted")
	}
	l3 := h.L3Bank(h.bankOf(blk)).Peek(h.bankKey(blk))
	if !l3.Dirty {
		t.Fatal("L3 should hold the dirty data after downgrade")
	}
}

func TestMSHRMergeSingleMemoryRead(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	done := 0
	for i := 0; i < 4; i++ {
		h.Access(0, 0x6000, false, func() { done++ })
	}
	k.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if got := reg.Get("offchip.req.packets"); got != 1 {
		t.Fatalf("memory requests = %d, want 1 (merged)", got)
	}
}

func TestCrossCoreMergeAtL3(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	done := 0
	h.Access(0, 0x7000, false, func() { done++ })
	h.Access(1, 0x7000, false, func() { done++ })
	k.Run()
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if got := reg.Get("offchip.req.packets"); got != 1 {
		t.Fatalf("memory requests = %d, want 1", got)
	}
}

func TestBackInvalidateRemovesEverywhereAndWritesDirty(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0x8000, true, func() {}) // dirty in core 0
	k.Run()
	resBytes := reg.Get("offchip.req.bytes")
	invDone := false
	h.BackInvalidate(0x8000, func() { invDone = true })
	k.Run()
	if !invDone {
		t.Fatal("BackInvalidate never completed")
	}
	if h.CachedAnywhere(0x8000) {
		t.Fatal("block still cached after BackInvalidate")
	}
	if reg.Get("offchip.req.bytes") <= resBytes {
		t.Fatal("dirty data was not written to memory")
	}
}

func TestBackWritebackKeepsCleanCopies(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	h.Access(0, 0x9000, true, func() {})
	k.Run()
	blk := addr.BlockOf(0x9000)
	done := false
	h.BackWriteback(0x9000, func() { done = true })
	k.Run()
	if !done {
		t.Fatal("BackWriteback never completed")
	}
	l := h.L1(0).Peek(blk)
	if l == nil {
		t.Fatal("BackWriteback evicted the block; it should stay cached")
	}
	if l.Dirty {
		t.Fatal("block still dirty after BackWriteback")
	}
}

func TestBackInvalidateCleanBlockNoMemoryWrite(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0xA000, false, func() {})
	k.Run()
	wrBefore := reg.Get("dram.writes")
	h.BackInvalidate(0xA000, func() {})
	k.Run()
	if reg.Get("dram.writes") != wrBefore {
		t.Fatal("clean invalidation should not write memory")
	}
}

func TestOnL3AccessHookFires(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	var seen []uint64
	h.OnL3Access = func(blk uint64) { seen = append(seen, blk) }
	h.Access(0, 0xB000, false, func() {})
	k.Run()
	if len(seen) != 1 || seen[0] != addr.BlockOf(0xB000) {
		t.Fatalf("hook saw %v", seen)
	}
	// L1 hits must not reach the hook.
	h.Access(0, 0xB000, false, func() {})
	k.Run()
	if len(seen) != 1 {
		t.Fatal("L1 hit leaked to the L3 hook")
	}
}

// Inclusion invariant: any block valid in a private cache is valid in
// the L3 (or has an L3 fill in flight — so check after drain).
func checkInclusion(t *testing.T, h *Hierarchy) {
	t.Helper()
	for c := 0; c < h.cfg.Cores; c++ {
		for _, pc := range []*Cache{h.l1[c], h.l2[c]} {
			pc.ForEach(func(_ int, l *Line) {
				blk := l.Key
				if h.l3[h.bankOf(blk)].Peek(h.bankKey(blk)) == nil {
					t.Fatalf("inclusion violated: core %d holds block %#x absent from L3", c, blk)
				}
			})
		}
	}
}

func TestInclusionUnderRandomTraffic(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	rng := rand.New(rand.NewSource(42))
	outstanding := 0
	for i := 0; i < 3000; i++ {
		core := rng.Intn(4)
		// Footprint bigger than L3 to force evictions.
		a := uint64(rng.Intn(16384)) * addr.BlockBytes
		outstanding++
		h.Access(core, a, rng.Intn(3) == 0, func() { outstanding-- })
		if i%16 == 15 {
			k.Run()
		}
	}
	k.Run()
	if outstanding != 0 {
		t.Fatalf("%d accesses never completed", outstanding)
	}
	checkInclusion(t, h)
}

func TestInclusionAfterBackOps(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := uint64(rng.Intn(512)) * addr.BlockBytes
		switch rng.Intn(4) {
		case 0:
			h.BackInvalidate(a, func() {})
		case 1:
			h.BackWriteback(a, func() {})
		default:
			h.Access(rng.Intn(4), a, rng.Intn(2) == 0, func() {})
		}
		if i%8 == 7 {
			k.Run()
		}
	}
	k.Run()
	checkInclusion(t, h)
}

func TestUpgradeReplayForMergedStore(t *testing.T) {
	k, h, _ := newTestHierarchy(t)
	// A load and a store to the same block issued back-to-back: the
	// store merges into the load's MSHR and must still end Modified.
	loadDone, storeDone := false, false
	h.Access(0, 0xC000, false, func() { loadDone = true })
	h.Access(0, 0xC000, true, func() { storeDone = true })
	k.Run()
	if !loadDone || !storeDone {
		t.Fatalf("load/store done = %v/%v", loadDone, storeDone)
	}
	blk := addr.BlockOf(0xC000)
	if st := h.L1(0).Peek(blk).State; st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestPrefetcherFillsNextLines(t *testing.T) {
	cfg := config.Scaled()
	cfg.PrefetchDepth = 2
	k := sim.NewKernel()
	reg := stats.NewRegistry()
	chain := hmc.NewChain(k, hmc.Config{
		Mapping:           cfg.Mapping(),
		Timing:            dram.Timing{TCL: cfg.TCL, TRCD: cfg.TRCD, TRP: cfg.TRP, IssueGap: 2},
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
		LinkLatency:       cfg.LinkLatency,
		HopLatency:        cfg.HopLatency,
		TSVBytesPerCycle:  cfg.TSVBytesPerCycle,
		TSVLatency:        cfg.TSVLatency,
		PacketHeaderBytes: cfg.PacketHeaderBytes,
	}, reg)
	h := NewHierarchy(k, cfg, chain, reg)
	h.Access(0, 0x10000, false, func() {})
	k.Run()
	if reg.Get("l2.prefetches") != 2 {
		t.Fatalf("prefetches = %d, want 2", reg.Get("l2.prefetches"))
	}
	// The next two blocks are now resident: accessing them hits.
	blk := addr.BlockOf(0x10000)
	if h.L2(0).Peek(blk+1) == nil || h.L2(0).Peek(blk+2) == nil {
		t.Fatal("prefetched blocks not resident in L2")
	}
	// A sequential stream should now have far fewer demand misses.
	missesBefore := reg.Get("l2.misses")
	done := 0
	for i := 1; i <= 2; i++ {
		h.Access(0, 0x10000+uint64(i*64), false, func() { done++ })
	}
	k.Run()
	if done != 2 {
		t.Fatal("accesses lost")
	}
	if reg.Get("l2.misses") != missesBefore {
		t.Fatal("prefetched blocks still missed")
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	k, h, reg := newTestHierarchy(t)
	h.Access(0, 0x20000, false, func() {})
	k.Run()
	if reg.Get("l2.prefetches") != 0 {
		t.Fatal("prefetches issued with depth 0")
	}
	_ = h
}
